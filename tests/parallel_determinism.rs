//! Determinism property tests for the parallel execution layer
//! (ISSUE 4): worker count must never change a result, bit for bit.
//!
//! Three levels are checked against both the forced sequential path
//! (`--threads 1`) and the old hand-rolled sequential code:
//!
//! 1. [`induce_all`] — DAG induction fanned over the pool vs a plain
//!    per-direction `induce_dag` loop;
//! 2. [`best_of_trials`] — parallel best-of-`b` vs
//!    [`best_of_trials_seq`], at several widths;
//! 3. a full bench cell — `run_fig3` executed at 1 and 4 threads into
//!    separate directories, CSVs compared byte for byte.

// Integration tests assert via unwrap/expect by design.
#![allow(clippy::unwrap_used)]

use std::sync::Mutex;

use sweep_scheduling::core::{
    best_of_trials_seq, best_of_trials_with_pool, Algorithm, TrialContext, TrialScratch,
};
use sweep_scheduling::dag::{induce_all, induce_dag, SweepInstance};
use sweep_scheduling::pool::{set_global_threads, ThreadPool};
use sweep_scheduling::prelude::*;

/// The pool's thread-count setting is process-global and cargo's test
/// harness is multithreaded, so tests that touch it must not overlap.
static POOL_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn induce_all_is_thread_count_invariant() {
    let _guard = POOL_LOCK.lock().unwrap();
    let mesh = MeshPreset::Tetonly.build_scaled(0.01).expect("mesh");
    let quad = QuadratureSet::level_symmetric(2).expect("S2");

    // The pre-pool sequential reference: one induce_dag call per
    // direction, in direction order.
    let reference: Vec<_> = quad
        .iter()
        .map(|(_, omega)| induce_dag(&mesh, omega))
        .collect();

    for threads in [1usize, 2, 4, 8] {
        set_global_threads(threads);
        let (dags, stats) = induce_all(&mesh, &quad);
        assert_eq!(dags.len(), reference.len());
        for (d, ((dag, stat), (rdag, rstat))) in dags.iter().zip(&stats).zip(&reference).enumerate()
        {
            assert_eq!(dag, rdag, "direction {d} DAG differs at {threads} threads");
            assert_eq!(
                stat, rstat,
                "direction {d} stats differ at {threads} threads"
            );
        }
    }
    set_global_threads(0);
}

#[test]
fn best_of_trials_is_thread_count_invariant() {
    let _guard = POOL_LOCK.lock().unwrap();
    let instance = SweepInstance::random_layered(80, 4, 6, 3, 11);
    let assignment = Assignment::random_cells(instance.num_cells(), 8, 3);
    let alg = Algorithm::RandomDelayPriorities;
    let (b, master) = (12, 2005);

    let reference = best_of_trials_seq(&instance, &assignment, alg, b, master);
    for threads in [1usize, 2, 4, 8] {
        let pool = ThreadPool::new(threads);
        let got = best_of_trials_with_pool(&pool, &instance, &assignment, alg, b, master);
        assert_eq!(got.trial, reference.trial, "winner at {threads} threads");
        assert_eq!(
            got.seed, reference.seed,
            "winning seed at {threads} threads"
        );
        assert_eq!(
            got.outcomes, reference.outcomes,
            "outcomes at {threads} threads"
        );
        assert_eq!(
            got.schedule.starts(),
            reference.schedule.starts(),
            "winning schedule at {threads} threads"
        );
        validate(&instance, &got.schedule).expect("winner must stay feasible");
    }
    set_global_threads(0);
}

/// 100-round randomized steal-storm: every round draws a fresh
/// (trial count, width, master seed, algorithm) tuple and diffs the
/// lock-free parallel path against the sequential oracle. Small trial
/// counts and uneven widths maximize contended CAS splits on the
/// range queues — exactly the protocol paths the pool model explores
/// exhaustively, here exercised on real schedules.
#[test]
fn steal_storm_matches_sequential_oracle_100_rounds() {
    let _guard = POOL_LOCK.lock().unwrap();
    let instance = SweepInstance::random_layered(48, 3, 5, 2, 7);
    let assignment = Assignment::random_cells(instance.num_cells(), 6, 5);
    let algs = [
        Algorithm::RandomDelay,
        Algorithm::RandomDelayPriorities,
        Algorithm::Greedy,
    ];
    for round in 0..100usize {
        let b = 1 + (round * 7) % 19;
        let threads = 1 + (round * 3) % 8;
        let master = (round as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let alg = algs[round % algs.len()];
        let seq = best_of_trials_seq(&instance, &assignment, alg, b, master);
        let pool = ThreadPool::new(threads);
        let par = best_of_trials_with_pool(&pool, &instance, &assignment, alg, b, master);
        assert_eq!(par.trial, seq.trial, "round {round} winner");
        assert_eq!(par.outcomes, seq.outcomes, "round {round} outcomes");
        assert_eq!(
            par.schedule.starts(),
            seq.schedule.starts(),
            "round {round} schedule (b={b}, threads={threads})"
        );
    }
    set_global_threads(0);
}

/// After the first trial warms a worker's scratch arena, further
/// trials on the tetonly preset must not allocate: the grow-event
/// counter stays flat across 48 post-warm-up trials for every
/// fast-path algorithm.
#[test]
fn scratch_arena_is_allocation_free_after_warm_up() {
    let mesh = MeshPreset::Tetonly.build_scaled(0.01).expect("mesh");
    let quad = QuadratureSet::level_symmetric(2).expect("S2");
    let (instance, _) = SweepInstance::from_mesh(&mesh, &quad, "scratch_test");
    let assignment = Assignment::random_cells(instance.num_cells(), 8, 1);
    for alg in [
        Algorithm::RandomDelay,
        Algorithm::RandomDelayPriorities,
        Algorithm::Greedy,
    ] {
        let ctx = TrialContext::new(&instance, &assignment, alg);
        assert!(ctx.fast_path(), "{alg:?} must take the scratch fast path");
        let mut scratch = TrialScratch::new();
        ctx.run_trial(1, &mut scratch); // warm-up: reserves worst case
        let grows_after_warm_up = scratch.grow_events();
        for seed in 2..50u64 {
            ctx.run_trial(seed, &mut scratch);
        }
        assert_eq!(scratch.trials(), 49);
        assert_eq!(
            scratch.grow_events(),
            grows_after_warm_up,
            "{alg:?} allocated after warm-up"
        );
    }
}

#[test]
fn bench_cell_csv_is_byte_identical_across_widths() {
    let _guard = POOL_LOCK.lock().unwrap();
    let base = std::env::temp_dir().join("sweep-par-determinism-test");
    let mut csvs = Vec::new();
    for threads in [1usize, 4] {
        let args = sweep_bench::BenchArgs {
            scale: 0.003,
            out: base.join(format!("t{threads}")),
            seed: 9,
            threads,
        };
        set_global_threads(threads);
        sweep_bench::run_fig3(
            &args,
            MeshPreset::Tetonly,
            64,
            PriorityScheme::Level,
            "det_cell",
        );
        csvs.push(
            std::fs::read_to_string(args.out.join("det_cell.csv")).expect("cell must write CSV"),
        );
    }
    set_global_threads(0);
    assert!(csvs[0].lines().count() >= 2, "at least one data row");
    assert_eq!(
        csvs[0], csvs[1],
        "bench cell differs between 1 and 4 threads"
    );
}
