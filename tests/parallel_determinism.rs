//! Determinism property tests for the parallel execution layer
//! (ISSUE 4): worker count must never change a result, bit for bit.
//!
//! Three levels are checked against both the forced sequential path
//! (`--threads 1`) and the old hand-rolled sequential code:
//!
//! 1. [`induce_all`] — DAG induction fanned over the pool vs a plain
//!    per-direction `induce_dag` loop;
//! 2. [`best_of_trials`] — parallel best-of-`b` vs
//!    [`best_of_trials_seq`], at several widths;
//! 3. a full bench cell — `run_fig3` executed at 1 and 4 threads into
//!    separate directories, CSVs compared byte for byte.

// Integration tests assert via unwrap/expect by design.
#![allow(clippy::unwrap_used)]

use std::sync::Mutex;

use sweep_scheduling::core::{best_of_trials_seq, best_of_trials_with_pool, Algorithm};
use sweep_scheduling::dag::{induce_all, induce_dag, SweepInstance};
use sweep_scheduling::pool::{set_global_threads, ThreadPool};
use sweep_scheduling::prelude::*;

/// The pool's thread-count setting is process-global and cargo's test
/// harness is multithreaded, so tests that touch it must not overlap.
static POOL_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn induce_all_is_thread_count_invariant() {
    let _guard = POOL_LOCK.lock().unwrap();
    let mesh = MeshPreset::Tetonly.build_scaled(0.01).expect("mesh");
    let quad = QuadratureSet::level_symmetric(2).expect("S2");

    // The pre-pool sequential reference: one induce_dag call per
    // direction, in direction order.
    let reference: Vec<_> = quad
        .iter()
        .map(|(_, omega)| induce_dag(&mesh, omega))
        .collect();

    for threads in [1usize, 2, 4, 8] {
        set_global_threads(threads);
        let (dags, stats) = induce_all(&mesh, &quad);
        assert_eq!(dags.len(), reference.len());
        for (d, ((dag, stat), (rdag, rstat))) in dags.iter().zip(&stats).zip(&reference).enumerate()
        {
            assert_eq!(dag, rdag, "direction {d} DAG differs at {threads} threads");
            assert_eq!(
                stat, rstat,
                "direction {d} stats differ at {threads} threads"
            );
        }
    }
    set_global_threads(0);
}

#[test]
fn best_of_trials_is_thread_count_invariant() {
    let _guard = POOL_LOCK.lock().unwrap();
    let instance = SweepInstance::random_layered(80, 4, 6, 3, 11);
    let assignment = Assignment::random_cells(instance.num_cells(), 8, 3);
    let alg = Algorithm::RandomDelayPriorities;
    let (b, master) = (12, 2005);

    let reference = best_of_trials_seq(&instance, &assignment, alg, b, master);
    for threads in [1usize, 2, 4, 8] {
        let pool = ThreadPool::new(threads);
        let got = best_of_trials_with_pool(&pool, &instance, &assignment, alg, b, master);
        assert_eq!(got.trial, reference.trial, "winner at {threads} threads");
        assert_eq!(
            got.seed, reference.seed,
            "winning seed at {threads} threads"
        );
        assert_eq!(
            got.outcomes, reference.outcomes,
            "outcomes at {threads} threads"
        );
        assert_eq!(
            got.schedule.starts(),
            reference.schedule.starts(),
            "winning schedule at {threads} threads"
        );
        validate(&instance, &got.schedule).expect("winner must stay feasible");
    }
    set_global_threads(0);
}

#[test]
fn bench_cell_csv_is_byte_identical_across_widths() {
    let _guard = POOL_LOCK.lock().unwrap();
    let base = std::env::temp_dir().join("sweep-par-determinism-test");
    let mut csvs = Vec::new();
    for threads in [1usize, 4] {
        let args = sweep_bench::BenchArgs {
            scale: 0.003,
            out: base.join(format!("t{threads}")),
            seed: 9,
            threads,
        };
        set_global_threads(threads);
        sweep_bench::run_fig3(
            &args,
            MeshPreset::Tetonly,
            64,
            PriorityScheme::Level,
            "det_cell",
        );
        csvs.push(
            std::fs::read_to_string(args.out.join("det_cell.csv")).expect("cell must write CSV"),
        );
    }
    set_global_threads(0);
    assert!(csvs[0].lines().count() >= 2, "at least one data row");
    assert_eq!(
        csvs[0], csvs[1],
        "bench cell differs between 1 and 4 threads"
    );
}
