//! End-to-end tests of the sharded serving layer over real loopback
//! sockets: two shards route schedule requests across the
//! consistent-hash ring, forwarding preserves single-flight
//! cluster-wide, a killed home shard degrades to bit-identical local
//! compute (certified by SW029), and a healed partition re-promotes
//! the peer.

#![allow(clippy::unwrap_used)]

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use sweep_serve::{
    certify_cluster_identity, instance_digest, schedule_digest, AccessLogSink, ClusterConfig,
    ClusterState, Member, PeerStatus, ScheduleRequest, Server, ServerConfig, SweepService,
};

/// One request/response exchange; returns (status, headers+body text).
fn exchange(addr: SocketAddr, raw: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(raw.as_bytes()).unwrap();
    let mut reply = String::new();
    stream.read_to_string(&mut reply).unwrap();
    let status = reply.split_whitespace().nth(1).unwrap().parse().unwrap();
    (status, reply)
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    exchange(addr, &format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n"))
}

fn post_schedule(addr: SocketAddr, body: &str) -> (u16, String) {
    exchange(
        addr,
        &format!(
            "POST /v1/schedule HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

/// The body after the blank line separating it from the headers.
fn body_of(reply: &str) -> &str {
    reply.split_once("\r\n\r\n").unwrap().1
}

/// The schedule body with its cache-disposition lines removed — the
/// part the cluster promises is bit-identical no matter which shard
/// answered or how.
fn stripped(reply: &str) -> String {
    body_of(reply)
        .lines()
        .filter(|l| !l.contains("\"cache\"") && !l.contains("\"instance_cache\""))
        .collect::<Vec<_>>()
        .join("\n")
}

/// One running shard with everything the tests need to poke it.
struct Shard {
    addr: SocketAddr,
    handle: sweep_serve::ShutdownHandle,
    service: Arc<SweepService>,
    cluster: Arc<ClusterState>,
    join: std::thread::JoinHandle<std::io::Result<()>>,
}

impl Shard {
    fn stop(self) {
        self.handle.shutdown();
        self.join.join().unwrap().unwrap();
    }
}

/// Boots a two-shard cluster on ephemeral ports. Both servers bind
/// their RPC listeners at port 0 first; the resolved addresses are then
/// patched into the peers' clients before the accept loops start.
fn boot_pair(log0: AccessLogSink, log1: AccessLogSink) -> (Shard, Shard) {
    let members = vec![
        Member {
            id: 0,
            http_addr: "127.0.0.1:0".to_string(),
            rpc_addr: "127.0.0.1:0".to_string(),
        },
        Member {
            id: 1,
            http_addr: "127.0.0.1:0".to_string(),
            rpc_addr: "127.0.0.1:0".to_string(),
        },
    ];
    let config_for = |self_id: u64| {
        let mut c = ClusterConfig::new(self_id, members.clone());
        c.connect_timeout = Duration::from_millis(200);
        c.forward_timeout = Duration::from_secs(2);
        c.probe_interval = Duration::from_millis(200);
        c
    };
    let server_config = |cluster: ClusterConfig, log: AccessLogSink| ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 4,
        max_inflight: 16,
        access_log: log,
        cluster: Some(cluster),
        ..ServerConfig::default()
    };
    let s0 = Server::bind(server_config(config_for(0), log0)).unwrap();
    let s1 = Server::bind(server_config(config_for(1), log1)).unwrap();
    let rpc0 = s0.rpc_addr().unwrap();
    let rpc1 = s1.rpc_addr().unwrap();
    s0.cluster().unwrap().set_peer_addr(1, &rpc1.to_string());
    s1.cluster().unwrap().set_peer_addr(0, &rpc0.to_string());
    let boot = |server: Server| {
        let addr = server.local_addr().unwrap();
        let handle = server.shutdown_handle().unwrap();
        let service = server.service();
        let cluster = server.cluster().unwrap();
        let join = std::thread::spawn(move || server.run());
        Shard {
            addr,
            handle,
            service,
            cluster,
            join,
        }
    };
    (boot(s0), boot(s1))
}

fn body_with_seed(seed: u64) -> String {
    format!(r#"{{"preset": "tetonly", "scale": 0.01, "sn": 2, "m": 4, "seed": {seed}, "b": 2}}"#)
}

/// Finds a request body whose schedule digest homes on `home`,
/// scanning seeds from `from` up — the same digest pipeline the
/// service itself routes by.
fn body_homed_on(cluster: &ClusterState, home: u64, from: u64) -> String {
    for seed in from..from + 64 {
        let body = body_with_seed(seed);
        let req = ScheduleRequest::from_json(&body).unwrap();
        let key = schedule_digest(
            instance_digest(&req.mesh_bytes(), req.sn),
            req.m,
            &req.algorithm,
            req.delays,
            req.seed,
            req.b,
        );
        if cluster.home_of(key) == home {
            return body;
        }
    }
    panic!("no seed in {from}..{} homes on shard {home}", from + 64);
}

#[test]
fn forwarded_requests_hit_the_home_shards_cache_and_certify_sw029() {
    let (s0, s1) = boot_pair(AccessLogSink::Null, AccessLogSink::Null);
    // A request whose digest homes on shard 1, posted to shard 0.
    let body = body_homed_on(&s0.cluster, 1, 0);

    let (status, first) = post_schedule(s0.addr, &body);
    assert_eq!(status, 200, "{first}");
    assert!(first.contains("X-Sweep-Shard: 0\r\n"), "{first}");
    assert!(first.contains("X-Sweep-Forwarded-From: 1\r\n"), "{first}");
    assert!(!first.contains("X-Sweep-Degraded"), "{first}");

    // The forwarded artifact was published into shard 0's local cache;
    // the identical second request is a plain local hit. Shard 1
    // computed it while serving the RPC, so it answers from cache too.
    let (_, second) = post_schedule(s0.addr, &body);
    assert!(!second.contains("X-Sweep-Forwarded-From"), "{second}");
    assert!(body_of(&second).contains("\"cache\": \"hit\""), "{second}");
    let (_, at_home) = post_schedule(s1.addr, &body);
    assert!(at_home.contains("X-Sweep-Shard: 1\r\n"), "{at_home}");
    assert!(
        body_of(&at_home).contains("\"cache\": \"hit\""),
        "{at_home}"
    );

    // The schedule itself is bit-identical on every path.
    assert_eq!(stripped(&first), stripped(&second));
    assert_eq!(stripped(&first), stripped(&at_home));

    // Healthy cluster: healthz is 200 with the cluster fragment and no
    // degraded peers on either shard.
    for shard in [&s0, &s1] {
        let (status, reply) = get(shard.addr, "/healthz");
        assert_eq!(status, 200);
        let doc = sweep_json::parse(body_of(&reply)).unwrap();
        let c = doc.get("cluster").expect(&reply);
        assert_eq!(c.get("degraded").and_then(|v| v.as_bool()), Some(false));
        assert_eq!(
            c.get("peers").and_then(|p| p.as_array()).map(|p| p.len()),
            Some(1)
        );
    }
    // /debug/vars carries the same fragment with live counters.
    let (_, vars) = get(s0.addr, "/debug/vars");
    let doc = sweep_json::parse(body_of(&vars)).unwrap();
    let c = doc.get("cluster").expect(&vars);
    assert!(
        c.get("forwards").and_then(|v| v.as_u64()).unwrap() >= 1,
        "{vars}"
    );

    // SW029: whatever path served it, the artifact is bit-identical to
    // a single-node cold compute.
    let req = ScheduleRequest::from_json(&body).unwrap();
    for shard in [&s0, &s1] {
        let report = certify_cluster_identity(&shard.service, &req).unwrap();
        assert!(!report.has_errors(), "{}", report.render_text());
        assert!(report.has_code(sweep_analyze::Code::Certified));
        assert!(!report.has_code(sweep_analyze::Code::ClusterDivergence));
    }

    s0.stop();
    s1.stop();
}

#[test]
fn forwarding_preserves_single_flight_cluster_wide() {
    let (log0, lines0) = AccessLogSink::memory();
    let (log1, lines1) = AccessLogSink::memory();
    let (s0, s1) = boot_pair(log0, log1);
    // Homed on shard 1, hammered on shard 0 from several clients at
    // once: the coalescing tier must collapse them onto one forward,
    // and the home shard must compute exactly once.
    let body = body_homed_on(&s0.cluster, 1, 100);

    let stripped_bodies: Vec<String> = {
        let results = Arc::new(Mutex::new(Vec::new()));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let results = Arc::clone(&results);
                let body = body.clone();
                scope.spawn(move || {
                    let (status, reply) = post_schedule(s0.addr, &body);
                    assert_eq!(status, 200, "{reply}");
                    results.lock().unwrap().push(stripped(&reply));
                });
            }
        });
        Arc::try_unwrap(results).unwrap().into_inner().unwrap()
    };
    assert_eq!(stripped_bodies.len(), 4);
    for b in &stripped_bodies[1..] {
        assert_eq!(b, &stripped_bodies[0]);
    }

    s0.stop();
    s1.stop();

    // Across *both* shards' access logs there is exactly one real
    // computation (a tier-2 miss that was not satisfied by forwarding)
    // and exactly one forward RPC issued — everything else hit a cache
    // or coalesced onto the in-flight leader.
    let all: Vec<String> = lines0
        .lock()
        .unwrap()
        .iter()
        .chain(lines1.lock().unwrap().iter())
        .cloned()
        .collect();
    let computes = all
        .iter()
        .filter(|l| l.contains("\"tier2\":\"miss\"") && !l.contains("\"cluster\":\"forward\""))
        .count();
    let forwards = all
        .iter()
        .filter(|l| l.contains("\"cluster\":\"forward\""))
        .count();
    let rpc_serves = all.iter().filter(|l| l.contains("/rpc/schedule")).count();
    assert_eq!(computes, 1, "{all:#?}");
    assert_eq!(forwards, 1, "{all:#?}");
    assert_eq!(rpc_serves, 1, "{all:#?}");
}

#[test]
fn killed_home_shard_degrades_to_bit_identical_local_compute() {
    let (s0, s1) = boot_pair(AccessLogSink::Null, AccessLogSink::Null);
    let body = body_homed_on(&s0.cluster, 1, 200);

    // Kill the home shard outright (HTTP and RPC listeners both gone),
    // then ask the surviving shard for a schedule homed on the corpse.
    s1.stop();
    let (status, reply) = post_schedule(s0.addr, &body);
    assert_eq!(status, 200, "{reply}");
    assert!(
        reply.contains("X-Sweep-Degraded: fallback; home=1"),
        "{reply}"
    );
    assert!(!reply.contains("X-Sweep-Forwarded-From"), "{reply}");

    // The degraded answer is bit-identical to what a plain single-node
    // server computes for the same request.
    let single = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        access_log: AccessLogSink::Null,
        ..ServerConfig::default()
    })
    .unwrap();
    let single_addr = single.local_addr().unwrap();
    let single_handle = single.shutdown_handle().unwrap();
    let single_join = std::thread::spawn(move || single.run());
    let (_, lone) = post_schedule(single_addr, &body);
    assert_eq!(stripped(&reply), stripped(&lone));
    single_handle.shutdown();
    single_join.join().unwrap().unwrap();

    // The failure detector saw the dead peer: healthz stays 200 (this
    // shard still serves everything) but reports itself degraded.
    let (status, health) = get(s0.addr, "/healthz");
    assert_eq!(status, 200);
    let doc = sweep_json::parse(body_of(&health)).unwrap();
    let c = doc.get("cluster").expect(&health);
    assert_eq!(c.get("degraded").and_then(|v| v.as_bool()), Some(true));
    assert!(
        c.get("fallbacks").and_then(|v| v.as_u64()).unwrap() >= 1,
        "{health}"
    );

    // SW029 holds on the fallback path too.
    let req = ScheduleRequest::from_json(&body).unwrap();
    let report = certify_cluster_identity(&s0.service, &req).unwrap();
    assert!(!report.has_errors(), "{}", report.render_text());
    assert!(report.has_code(sweep_analyze::Code::Certified));

    s0.stop();
}

#[test]
fn healed_partition_repromotes_the_peer() {
    let (s0, s1) = boot_pair(AccessLogSink::Null, AccessLogSink::Null);
    let first = body_homed_on(&s0.cluster, 1, 300);
    let second = body_homed_on(&s0.cluster, 1, 400);

    // A permanent link partition between shards 0 and 1, injected into
    // shard 0's peer clients (the `cluster-faults` test feature):
    // forwards fail deterministically and the request degrades to
    // local compute.
    let mut plan = sweep_faults::FaultPlan::none();
    plan.partitions.push(sweep_faults::LinkPartition {
        a: 0,
        b: 1,
        start: 0.0,
        end: 1.0e18,
    });
    s0.cluster.install_fault_plan(&plan);
    let (status, reply) = post_schedule(s0.addr, &first);
    assert_eq!(status, 200, "{reply}");
    assert!(
        reply.contains("X-Sweep-Degraded: fallback; home=1"),
        "{reply}"
    );
    let statuses = s0.cluster.peer_statuses();
    assert!(
        statuses
            .iter()
            .any(|&(id, s)| id == 1 && s != PeerStatus::Up),
        "{statuses:?}"
    );

    // Heal the partition; one successful probe re-promotes the peer
    // and the next request forwards again.
    s0.cluster.clear_fault_plan();
    s0.cluster.probe_round();
    let statuses = s0.cluster.peer_statuses();
    assert!(
        statuses
            .iter()
            .any(|&(id, s)| id == 1 && s == PeerStatus::Up),
        "{statuses:?}"
    );
    let (status, reply) = post_schedule(s0.addr, &second);
    assert_eq!(status, 200, "{reply}");
    assert!(reply.contains("X-Sweep-Forwarded-From: 1\r\n"), "{reply}");

    s0.stop();
    s1.stop();
}
