//! End-to-end mesh ingestion (ISSUE 10): the example meshes under
//! `examples/meshes/` round-trip into schedulable instances, the
//! hanging-node example induces (and `break_cycles` repairs) a cycle in
//! every S2 direction, the adversarial corpus dies with typed errors
//! everywhere (library and HTTP route alike), and mesh uploads are
//! content-addressed exactly like preset requests.

#![allow(clippy::unwrap_used)]

use std::collections::HashMap;

use sweep_analyze::{analyze_import, analyze_instance, Code};
use sweep_dag::{induce_dag, SweepInstance, TaskDag};
use sweep_mesh::import::{import_bytes, peek_counts, ImportError, ImportFormat};
use sweep_quadrature::QuadratureSet;
use sweep_serve::{
    certify_cache_identity, MeshSource, Request, ScheduleRequest, ServiceConfig, SweepService,
};

fn example(name: &str) -> Vec<u8> {
    let path = format!("{}/examples/meshes/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"))
}

#[test]
fn example_meshes_import_and_schedule() {
    for (name, cells, fmt) in [
        ("cube.msh", 6, ImportFormat::Msh),
        ("plate.obj", 8, ImportFormat::Obj),
        ("warped.msh", 148, ImportFormat::Msh),
    ] {
        let bytes = example(name);
        // Auto-detection agrees with the extension.
        let got = import_bytes(&bytes, ImportFormat::Auto).unwrap();
        assert_eq!(got.report.format, Some(fmt), "{name}");
        assert_eq!(got.report.cells, cells, "{name}");
        assert!(!got.report.has_errors(), "{name}");
        // The peek's admission estimate covers the real mesh.
        let (_, peeked) = peek_counts(&bytes, ImportFormat::Auto).unwrap();
        assert!(peeked >= cells, "{name}: peek {peeked} < {cells}");
        // Round trip into a schedulable instance; every DAG acyclic.
        let quad = QuadratureSet::level_symmetric(2).unwrap();
        let (inst, _) = SweepInstance::from_mesh(&got.mesh, &quad, name);
        assert_eq!(inst.num_cells(), cells);
        assert!(inst.dags().iter().all(TaskDag::is_acyclic), "{name}");
        let report = analyze_instance(&inst);
        assert!(!report.has_errors(), "{name}: {}", report.render_text());
    }
}

#[test]
fn warped_mesh_cycles_in_every_s2_direction_and_repairs() {
    let got = import_bytes(&example("warped.msh"), ImportFormat::Msh).unwrap();
    assert!(got.report.hanging_resolved > 0, "stitching must engage");
    assert!(!got.report.hanging_vertices.is_empty());
    let import_report = analyze_import(&got.report, "warped.msh");
    assert!(import_report.has_code(Code::HangingNodes));
    assert!(!import_report.has_errors());
    let quad = QuadratureSet::level_symmetric(2).unwrap();
    assert_eq!(quad.len(), 8);
    for (i, (_, omega)) in quad.iter().enumerate() {
        let (dag, stats) = induce_dag(&got.mesh, omega);
        assert!(
            stats.nontrivial_sccs >= 1 && stats.dropped_edges >= 1,
            "direction {i} induced no cycle"
        );
        assert!(dag.is_acyclic(), "direction {i} not repaired");
    }
}

/// Corpus of malformed inputs. Every entry must produce a *typed* error
/// from the library and a 400 from the upload route — never a panic,
/// never a 5xx.
fn adversarial_corpus() -> Vec<(&'static str, Vec<u8>)> {
    // A hex element (Gmsh type 5) inside a 3-D block must be rejected as
    // unsupported, not silently skipped.
    let hexed = String::from_utf8(example("cube.msh"))
        .unwrap()
        .replace("3 1 4 6", "3 1 5 6")
        .into_bytes();
    vec![
        ("non-utf8", vec![0xff, 0xfe, 0x00, 0x41]),
        ("empty", Vec::new()),
        ("unknown-format", b"hello world\n".to_vec()),
        ("truncated-header", b"$MeshFormat\n4.1 0 8\n".to_vec()),
        (
            "truncated-nodes",
            b"$MeshFormat\n4.1 0 8\n$EndMeshFormat\n$Nodes\n1 2 1 2\n3 1 0 2\n1\n".to_vec(),
        ),
        (
            "huge-declared-count",
            b"$MeshFormat\n4.1 0 8\n$EndMeshFormat\n$Nodes\n1 18446744073709551615 1 2\n".to_vec(),
        ),
        (
            "usize-overflow-count",
            b"$MeshFormat\n4.1 0 8\n$EndMeshFormat\n$Nodes\n1 4294967296 1 4294967296\n".to_vec(),
        ),
        (
            "count-mismatch",
            b"$MeshFormat\n4.1 0 8\n$EndMeshFormat\n$Nodes\n1 5 1 5\n3 1 0 1\n1\n0 0 0\n$EndNodes\n$Elements\n0 0 0 0\n$EndElements\n"
                .to_vec(),
        ),
        ("hex-elements", hexed),
        ("zero-cells-obj", b"v 0 0 0\n".to_vec()),
        ("obj-bad-index", b"v 0 0 0\nv 1 0 0\nv 0 1 0\nf 1 2 9\n".to_vec()),
        ("binary-msh", b"$MeshFormat\n4.1 1 8\n$EndMeshFormat\n".to_vec()),
        ("v2-msh", b"$MeshFormat\n2.2 0 8\n$EndMeshFormat\n".to_vec()),
    ]
}

#[test]
fn adversarial_corpus_fails_typed_everywhere() {
    let svc = SweepService::new(ServiceConfig::default());
    for (name, bytes) in &adversarial_corpus() {
        // Library level: a typed ImportError, and the right class where
        // the failure mode is unambiguous.
        let err = import_bytes(bytes, ImportFormat::Auto).unwrap_err();
        let ok = match *name {
            "non-utf8" => matches!(err, ImportError::NotUtf8 { .. }),
            "empty" | "unknown-format" => matches!(err, ImportError::UnknownFormat),
            "truncated-header" | "truncated-nodes" => {
                matches!(err, ImportError::Truncated { .. })
            }
            "huge-declared-count" | "usize-overflow-count" => {
                matches!(err, ImportError::TooLarge { .. })
            }
            "count-mismatch" => matches!(err, ImportError::CountMismatch { .. }),
            "hex-elements" => matches!(err, ImportError::UnsupportedElement { .. }),
            "zero-cells-obj" => matches!(err, ImportError::EmptyMesh { .. }),
            "obj-bad-index" | "binary-msh" | "v2-msh" => {
                matches!(err, ImportError::Syntax { .. })
            }
            _ => unreachable!("unknown corpus entry {name}"),
        };
        assert!(ok, "{name}: unexpected error class {err:?}");
        // The peek pre-validator is a header-only scan: it may accept a
        // file whose *body* is malformed (admission control, not
        // validation), but it must never panic.
        let _ = peek_counts(bytes, ImportFormat::Auto);

        // HTTP level: a 400 with the mesh: prefix, never a 5xx. Non-UTF8
        // bytes cannot travel inside a JSON string, so those entries are
        // exercised through the request struct instead.
        match std::str::from_utf8(bytes) {
            Ok(text) => {
                let body = format!(
                    r#"{{"mesh": "{}", "m": 2, "sn": 2}}"#,
                    sweep_json::escape(text)
                );
                let resp = svc.route(&Request {
                    method: "POST".to_string(),
                    path: "/v1/schedule".to_string(),
                    query: None,
                    headers: HashMap::new(),
                    body: body.into_bytes(),
                });
                assert_eq!(resp.status, 400, "{name}: {} {}", resp.status, resp.body);
                assert!(resp.body.contains("mesh:"), "{name}: {}", resp.body);
            }
            Err(_) => {
                let req = ScheduleRequest {
                    mesh: MeshSource::Mesh {
                        format: "auto".to_string(),
                        text: String::from_utf8_lossy(bytes).into_owned(),
                    },
                    sn: 2,
                    m: 2,
                    algorithm: "greedy".to_string(),
                    delays: false,
                    seed: 1,
                    b: 1,
                };
                let err = svc.schedule(&req).unwrap_err();
                assert!(err.starts_with("mesh:"), "{name}: {err}");
            }
        }
    }
}

#[test]
fn mesh_upload_is_content_addressed_and_certified() {
    let text = String::from_utf8(example("cube.msh")).unwrap();
    let req = ScheduleRequest {
        mesh: MeshSource::Mesh {
            format: "msh".to_string(),
            text,
        },
        sn: 2,
        m: 2,
        algorithm: "rdp".to_string(),
        delays: false,
        seed: 2005,
        b: 4,
    };
    let svc = SweepService::new(ServiceConfig::default());
    let report = certify_cache_identity(&svc, &req).unwrap();
    assert!(!report.has_errors(), "{}", report.render_text());
    assert!(report.has_code(Code::Certified));
}
