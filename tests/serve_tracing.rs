//! End-to-end tests of the request-tracing surface over real loopback
//! sockets: every response carries the deterministic request id and a
//! five-stage `Server-Timing` header; a traced cold schedule request's
//! stage self-times account for its total; a coalesced single-flight
//! waiter's access-log line names its leader's request id; the
//! `/debug/vars` snapshot agrees with the SW024-certified cache state;
//! and the untraced fast path keeps tracing overhead under 5%.

#![allow(clippy::unwrap_used)]

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use sweep_serve::{certify_cache_identity, AccessLogSink, ScheduleRequest, Server, ServerConfig};
use sweep_telemetry::STAGES;

/// One request/response exchange; returns the raw reply text.
fn exchange(addr: SocketAddr, raw: &str) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(raw.as_bytes()).unwrap();
    let mut reply = String::new();
    stream.read_to_string(&mut reply).unwrap();
    reply
}

fn get(addr: SocketAddr, path: &str) -> String {
    exchange(addr, &format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n"))
}

fn post_schedule(addr: SocketAddr, body: &str) -> String {
    exchange(
        addr,
        &format!(
            "POST /v1/schedule HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn schedule_body(seed: u64) -> String {
    format!("{{\"preset\": \"tetonly\", \"scale\": 0.01, \"sn\": 2, \"m\": 4, \"seed\": {seed}, \"b\": 2}}")
}

/// Case-insensitive header lookup in a raw HTTP/1.1 reply.
fn header(reply: &str, name: &str) -> Option<String> {
    let head = reply.split("\r\n\r\n").next()?;
    for line in head.lines().skip(1) {
        let (k, v) = line.split_once(':')?;
        if k.eq_ignore_ascii_case(name) {
            return Some(v.trim().to_string());
        }
    }
    None
}

fn spawn_server(config: ServerConfig) -> (SocketAddr, sweep_serve::ShutdownHandle, ServerGuard) {
    let server = Server::bind(config).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.shutdown_handle().unwrap();
    let service = server.service();
    let thread = std::thread::spawn(move || server.run());
    (
        addr,
        handle.clone(),
        ServerGuard {
            handle,
            thread: Some(thread),
            service,
        },
    )
}

/// Shuts the server down and joins its accept loop on drop.
struct ServerGuard {
    handle: sweep_serve::ShutdownHandle,
    thread: Option<std::thread::JoinHandle<std::io::Result<()>>>,
    service: Arc<sweep_serve::SweepService>,
}

impl Drop for ServerGuard {
    fn drop(&mut self) {
        self.handle.shutdown();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn traced_config(sink: AccessLogSink) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 8,
        trace_sample_every: 1,
        log_sample_every: 1,
        access_log: sink,
        ..ServerConfig::default()
    }
}

/// Waits until the memory sink holds at least `n` lines (log lines are
/// written after the response bytes, so a client can observe the reply
/// before its line lands).
fn wait_for_lines(store: &Arc<Mutex<Vec<String>>>, n: usize) -> Vec<String> {
    for _ in 0..200 {
        let lines = store.lock().unwrap_or_else(|p| p.into_inner()).clone();
        if lines.len() >= n {
            return lines;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    store.lock().unwrap_or_else(|p| p.into_inner()).clone()
}

fn is_hex16(s: &str) -> bool {
    s.len() == 16 && s.chars().all(|c| c.is_ascii_hexdigit())
}

#[test]
fn every_response_carries_request_id_and_five_stage_server_timing() {
    let (sink, store) = AccessLogSink::memory();
    let (addr, _h, _guard) = spawn_server(traced_config(sink));

    let replies = [
        get(addr, "/healthz"),
        post_schedule(addr, &schedule_body(3)),
        get(addr, "/nope"), // 404 still gets an id + timing
    ];
    for reply in &replies {
        let id = header(reply, "X-Sweep-Request-Id").expect("request id header");
        assert!(is_hex16(&id), "malformed request id {id:?}");
        let timing = header(reply, "Server-Timing").expect("server-timing header");
        for stage in STAGES {
            assert!(
                timing.contains(&format!("{stage};dur=")),
                "stage {stage} missing from Server-Timing {timing:?}"
            );
        }
    }
    // Distinct connections get distinct ids.
    let ids: std::collections::BTreeSet<String> = replies
        .iter()
        .map(|r| header(r, "X-Sweep-Request-Id").unwrap())
        .collect();
    assert_eq!(ids.len(), replies.len());

    // One valid JSON access-log line per request, ids matching.
    let lines = wait_for_lines(&store, replies.len());
    assert_eq!(lines.len(), replies.len());
    for line in &lines {
        let v = sweep_json::parse(line).expect("access-log line is valid JSON");
        let logged = v.get("request_id").unwrap().as_str().unwrap().to_string();
        assert!(ids.contains(&logged), "unknown id {logged} in log");
        assert!(v.get("status").unwrap().as_u64().is_some());
        assert!(v.get("total_us").unwrap().as_u64().is_some());
    }
}

#[test]
fn cold_schedule_stage_times_sum_close_to_request_total() {
    let (sink, store) = AccessLogSink::memory();
    let (addr, _h, _guard) = spawn_server(traced_config(sink));

    let reply = post_schedule(addr, &schedule_body(41));
    assert!(reply.starts_with("HTTP/1.1 200"), "got {reply}");
    let id = header(&reply, "X-Sweep-Request-Id").unwrap();

    let lines = wait_for_lines(&store, 1);
    let line = lines
        .iter()
        .find(|l| l.contains(&id))
        .expect("log line for the schedule request");
    let v = sweep_json::parse(line).unwrap();
    let total = v.get("total_us").unwrap().as_u64().unwrap();
    let stages = v.get("stages_us").expect("traced line has stages_us");
    let sum: u64 = STAGES
        .iter()
        .map(|s| stages.get(s).unwrap().as_u64().unwrap())
        .sum();
    // Self-time attribution caps the sum at the total; a cold schedule
    // spends nearly all its wall time inside the five stages (induce +
    // trials dominate), so the sum must also account for most of it.
    assert!(sum <= total, "stage sum {sum} exceeds total {total}");
    assert!(
        sum * 2 >= total,
        "stages account for too little: {sum} of {total} µs"
    );
}

#[test]
fn coalesced_waiter_logs_its_leaders_request_id() {
    let (sink, store) = AccessLogSink::memory();
    let (addr, _h, _guard) = spawn_server(traced_config(sink));

    // Fire identical cold requests concurrently; the single-flight path
    // makes one connection lead and the rest coalesce onto it. Each
    // round uses a fresh seed (fresh content digest) so a rare round
    // with no overlap can simply be retried cold.
    for round in 0..5u64 {
        let body = schedule_body(1000 + round);
        std::thread::scope(|scope| {
            for _ in 0..6 {
                let body = &body;
                scope.spawn(move || {
                    let reply = post_schedule(addr, body);
                    assert!(reply.starts_with("HTTP/1.1 200"), "got {reply}");
                });
            }
        });
        let lines = wait_for_lines(&store, (round as usize + 1) * 6);
        let parsed: Vec<_> = lines
            .iter()
            .map(|l| sweep_json::parse(l).unwrap())
            .collect();
        if let Some(waiter) = parsed.iter().find(|v| v.get("coalesced_onto").is_some()) {
            let leader = waiter
                .get("coalesced_onto")
                .unwrap()
                .as_str()
                .unwrap()
                .to_string();
            assert!(is_hex16(&leader));
            assert!(
                parsed
                    .iter()
                    .any(|v| v.get("request_id").unwrap().as_str() == Some(leader.as_str())),
                "leader {leader} has no access-log line of its own"
            );
            // The waiter is a distinct request with its own id.
            assert_ne!(waiter.get("request_id").unwrap().as_str().unwrap(), leader);
            return;
        }
        eprintln!("round {round}: no coalesced request observed, retrying");
    }
    panic!("no single-flight coalescing observed across 5 concurrent rounds");
}

#[test]
fn debug_vars_agrees_with_sw024_certified_cache_state() {
    let (addr, _h, guard) = spawn_server(traced_config(AccessLogSink::Null));

    // Warm the cache through the socket path, then certify hit identity
    // (SW024) directly against the same live service.
    for seed in [7u64, 7, 8] {
        let reply = post_schedule(addr, &schedule_body(seed));
        assert!(reply.starts_with("HTTP/1.1 200"), "got {reply}");
    }
    let req = ScheduleRequest::preset("tetonly", 0.01, 2, 4);
    let report = certify_cache_identity(&guard.service, &req).expect("certify");
    assert!(!report.has_errors(), "{}", report.render_text());

    let reply = get(addr, "/debug/vars");
    assert!(reply.starts_with("HTTP/1.1 200"), "got {reply}");
    let body = reply.split("\r\n\r\n").nth(1).unwrap();
    let v = sweep_json::parse(body).expect("/debug/vars is valid JSON");

    // The snapshot must agree with the cache the certification ran on.
    let stats = guard.service.cache().stats();
    let (t1, t2) = guard.service.cache().tier_stats();
    let cache = v.get("cache").expect("cache section");
    assert_eq!(cache.get("hits").unwrap().as_u64().unwrap(), stats.hits);
    assert_eq!(cache.get("misses").unwrap().as_u64().unwrap(), stats.misses);
    let jt1 = cache.get("tier1").expect("tier1 section");
    let jt2 = cache.get("tier2").expect("tier2 section");
    assert_eq!(
        jt1.get("entries").unwrap().as_u64().unwrap(),
        t1.entries as u64
    );
    assert_eq!(jt1.get("bytes").unwrap().as_u64().unwrap(), t1.bytes as u64);
    assert_eq!(
        jt2.get("entries").unwrap().as_u64().unwrap(),
        t2.entries as u64
    );
    assert_eq!(jt2.get("bytes").unwrap().as_u64().unwrap(), t2.bytes as u64);
    // Three schedule POSTs with two distinct contents: at least one
    // entry per tier, and the repeat registered as a hit.
    assert!(t1.entries >= 1 && t2.entries >= 1);
    assert!(stats.hits >= 1);
}

#[test]
fn untraced_fast_path_overhead_stays_under_five_percent() {
    let hot_body = schedule_body(90);
    let run = |trace_sample_every: u64| -> f64 {
        let (addr, _h, _guard) = spawn_server(ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 2,
            trace_sample_every,
            log_sample_every: 0,
            access_log: AccessLogSink::Null,
            ..ServerConfig::default()
        });
        // Warm: first request pays induction; the timed loop is pure
        // cache-hit traffic where per-request tracing cost would show.
        let reply = post_schedule(addr, &hot_body);
        assert!(reply.starts_with("HTTP/1.1 200"), "got {reply}");
        let started = Instant::now();
        for _ in 0..80 {
            let reply = post_schedule(addr, &hot_body);
            assert!(reply.starts_with("HTTP/1.1 200"));
        }
        started.elapsed().as_secs_f64()
    };

    // Noise-damped like microbench's overhead guard: accept the first
    // of several attempts under the bound; a loaded CI machine can skew
    // any single socket-level measurement.
    let mut last = f64::NAN;
    for attempt in 0..5 {
        let untraced = run(0);
        let traced = run(1);
        last = traced / untraced.max(1e-9);
        if last < 1.05 {
            return;
        }
        eprintln!("attempt {attempt}: traced/untraced ratio {last:.4}, retrying");
    }
    panic!("tracing overhead ratio {last:.4} ≥ 1.05 across 5 attempts");
}
