//! Property-based tests (proptest) over the core invariants:
//! every scheduler always emits feasible schedules, bounds always hold,
//! partitions stay balanced, cycle breaking always yields DAGs.

use proptest::prelude::*;

use sweep_scheduling::core::{
    improved_random_delay, random_delay, random_delay_priorities,
};
use sweep_scheduling::dag::break_cycles;
use sweep_scheduling::prelude::*;

/// Strategy: a random-layered instance plus processor count and seeds.
fn instance_strategy() -> impl Strategy<Value = (SweepInstance, usize, u64)> {
    (2usize..80, 1usize..6, 2usize..10, 1usize..4, 0u64..1000, 1usize..17).prop_map(
        |(n, k, depth, preds, seed, m)| {
            (SweepInstance::random_layered(n, k, depth, preds, seed), m, seed)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_schedulers_always_feasible((inst, m, seed) in instance_strategy()) {
        let n = inst.num_cells();
        let schedules = [
            random_delay(&inst, Assignment::random_cells(n, m, seed), seed),
            random_delay_priorities(&inst, Assignment::random_cells(n, m, seed), seed),
            improved_random_delay(&inst, Assignment::random_cells(n, m, seed), seed),
            greedy_schedule(&inst, Assignment::random_cells(n, m, seed)),
            Algorithm::Dfds { delays: true }
                .run(&inst, Assignment::random_cells(n, m, seed), seed),
            Algorithm::DescendantPriority { delays: false }
                .run(&inst, Assignment::random_cells(n, m, seed), seed),
            Algorithm::LevelPriority { delays: true }
                .run(&inst, Assignment::random_cells(n, m, seed), seed),
        ];
        for s in &schedules {
            prop_assert!(validate(&inst, s).is_ok());
        }
    }

    #[test]
    fn makespan_never_beats_lower_bounds((inst, m, seed) in instance_strategy()) {
        let lb = lower_bounds(&inst, m);
        let s = random_delay_priorities(
            &inst, Assignment::random_cells(inst.num_cells(), m, seed), seed);
        prop_assert!(s.makespan() as u64 >= lb.best());
        prop_assert!(lb.best() >= lb.paper());
    }

    #[test]
    fn single_processor_makespan_is_exactly_nk((inst, _m, seed) in instance_strategy()) {
        let s = greedy_schedule(&inst, Assignment::single(inst.num_cells()));
        prop_assert_eq!(s.makespan() as usize, inst.num_tasks());
        let _ = seed;
    }

    #[test]
    fn c1_zero_iff_single_processor((inst, m, seed) in instance_strategy()) {
        let single = Assignment::single(inst.num_cells());
        prop_assert_eq!(c1_interprocessor_edges(&inst, &single), 0);
        let multi = Assignment::random_cells(inst.num_cells(), m, seed);
        let c1 = c1_interprocessor_edges(&inst, &multi);
        prop_assert!(c1 as usize <= inst.total_edges());
    }

    #[test]
    fn c2_never_exceeds_c1((inst, m, seed) in instance_strategy()) {
        let a = Assignment::random_cells(inst.num_cells(), m, seed);
        let s = greedy_schedule(&inst, a.clone());
        prop_assert!(c2_comm_delay(&inst, &s) <= c1_interprocessor_edges(&inst, &a));
    }

    #[test]
    fn priority_compaction_never_loses_feasibility_and_rarely_loses_quality(
        (inst, m, seed) in instance_strategy()
    ) {
        // Algorithm 2 vs Algorithm 1 with identical randomness: compaction
        // fills idle slots, so it should essentially never be slower. We
        // assert a weak envelope (≤ 1.25x) rather than strict dominance,
        // which is not a theorem.
        let a = Assignment::random_cells(inst.num_cells(), m, seed);
        let delays = sweep_scheduling::core::random_delays(inst.num_directions(), seed);
        let s1 = sweep_scheduling::core::random_delay_with(&inst, a.clone(), &delays);
        let s2 = sweep_scheduling::core::random_delay_priorities_with(&inst, a, &delays);
        prop_assert!(validate(&inst, &s2).is_ok());
        prop_assert!(
            (s2.makespan() as f64) <= (s1.makespan() as f64) * 1.25 + 2.0,
            "compaction much worse: {} vs {}", s2.makespan(), s1.makespan()
        );
    }

    #[test]
    fn break_cycles_always_yields_dag(
        n in 2usize..40,
        edges in proptest::collection::vec((0u32..40, 0u32..40), 0..160),
        seed in 0u64..100,
    ) {
        let edges: Vec<(u32, u32)> = edges
            .into_iter()
            .map(|(a, b)| (a % n as u32, b % n as u32))
            .filter(|(a, b)| a != b)
            .collect();
        // Arbitrary but deterministic heights.
        let height: Vec<f64> =
            (0..n).map(|v| ((v as u64 * 2654435761 + seed) % 1000) as f64).collect();
        let (kept, dropped, _) = break_cycles(n, edges.clone(), &height);
        prop_assert!(TaskDag::from_edges(n, &kept).is_acyclic());
        prop_assert!(kept.len() + dropped == edges.len());
    }

    #[test]
    fn partition_balance_and_cut_sanity(
        w in 2usize..12,
        h in 2usize..12,
        nparts in 2usize..8,
    ) {
        // Grid graph partitioning: parts stay balanced, cut below the
        // total edge count.
        let id = |x: usize, y: usize| (y * w + x) as u32;
        let mut edges = Vec::new();
        for y in 0..h {
            for x in 0..w {
                if x + 1 < w { edges.push((id(x, y), id(x + 1, y))); }
                if y + 1 < h { edges.push((id(x, y), id(x, y + 1))); }
            }
        }
        let g = CsrGraph::from_edges(w * h, &edges);
        let nparts = nparts.min(w * h);
        let part = sweep_scheduling::partition::partition(
            &g, nparts, &PartitionOptions::default());
        prop_assert_eq!(part.len(), w * h);
        prop_assert!(part.iter().all(|&p| (p as usize) < nparts));
        let cut = sweep_scheduling::partition::edge_cut(&g, &part);
        prop_assert!(cut <= edges.len() as u64);
        if w * h >= 4 * nparts {
            let imb = sweep_scheduling::partition::imbalance(&g, &part, nparts);
            prop_assert!(imb <= 1.6, "imbalance {}", imb);
        }
    }

    #[test]
    fn task_id_roundtrip(n in 1usize..100_000, cell in 0u32..100_000, dir in 0u32..512) {
        let cell = cell % n as u32;
        let t = TaskId::pack(cell, dir, n);
        prop_assert_eq!(t.unpack(n), (cell, dir));
    }

    #[test]
    fn random_delays_well_distributed(k in 1usize..64, seed in 0u64..500) {
        let d = sweep_scheduling::core::random_delays(k, seed);
        prop_assert_eq!(d.len(), k);
        prop_assert!(d.iter().all(|&x| (x as usize) < k));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn mesh_generation_invariants(n in 2usize..5, seed in 0u64..50) {
        let cfg = GeneratorConfig::cube(n, seed);
        let mesh = sweep_scheduling::mesh::generate(&cfg).unwrap();
        // Face count identity: every tet has 4 faces.
        prop_assert_eq!(
            2 * mesh.interior_faces().len() + mesh.boundary_faces().len(),
            4 * mesh.num_cells()
        );
        prop_assert_eq!(mesh.connected_component_size(), mesh.num_cells());
        // All normals unit, all volumes positive.
        for f in mesh.interior_faces() {
            prop_assert!((f.normal.norm() - 1.0).abs() < 1e-9);
        }
        prop_assert!(mesh.volumes().iter().all(|&v| v > 0.0));
    }

    #[test]
    fn induced_dags_acyclic_for_random_directions(seed in 0u64..50) {
        let mesh = TriMesh2d::unit_square(6, 6, 0.25, seed).unwrap();
        let quad = QuadratureSet::random_unit(6, seed).unwrap();
        let (inst, _) = SweepInstance::from_mesh(&mesh, &quad, "prop");
        for d in inst.dags() {
            prop_assert!(d.is_acyclic());
        }
    }
}
