//! Property-style tests over the core invariants, run as deterministic
//! parameter sweeps (no external property-testing dependency): every
//! scheduler always emits feasible schedules, bounds always hold,
//! partitions stay balanced, cycle breaking always yields DAGs.

// Integration tests assert via unwrap/expect by design.
#![allow(clippy::unwrap_used)]

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use sweep_scheduling::core::{improved_random_delay, random_delay, random_delay_priorities};
use sweep_scheduling::dag::break_cycles;
use sweep_scheduling::prelude::*;

/// Deterministic case generator mirroring the old proptest strategy:
/// `(instance, m, seed)` tuples drawn from a seeded RNG.
fn instance_cases(count: usize) -> Vec<(SweepInstance, usize, u64)> {
    let mut rng = StdRng::seed_from_u64(0x5eed_cafe);
    (0..count)
        .map(|_| {
            let n = rng.random_range(2..80usize);
            let k = rng.random_range(1..6usize);
            let depth = rng.random_range(2..10usize);
            let preds = rng.random_range(1..4usize);
            let seed = rng.random_range(0..1000u64);
            let m = rng.random_range(1..17usize);
            (
                SweepInstance::random_layered(n, k, depth, preds, seed),
                m,
                seed,
            )
        })
        .collect()
}

#[test]
fn all_schedulers_always_feasible() {
    for (inst, m, seed) in instance_cases(48) {
        let n = inst.num_cells();
        let schedules = [
            random_delay(&inst, Assignment::random_cells(n, m, seed), seed),
            random_delay_priorities(&inst, Assignment::random_cells(n, m, seed), seed),
            improved_random_delay(&inst, Assignment::random_cells(n, m, seed), seed),
            greedy_schedule(&inst, Assignment::random_cells(n, m, seed)),
            Algorithm::Dfds { delays: true }.run(&inst, Assignment::random_cells(n, m, seed), seed),
            Algorithm::DescendantPriority { delays: false }.run(
                &inst,
                Assignment::random_cells(n, m, seed),
                seed,
            ),
            Algorithm::LevelPriority { delays: true }.run(
                &inst,
                Assignment::random_cells(n, m, seed),
                seed,
            ),
        ];
        for s in &schedules {
            assert!(validate(&inst, s).is_ok(), "{} seed {seed}", inst.name());
        }
    }
}

#[test]
fn makespan_never_beats_lower_bounds() {
    for (inst, m, seed) in instance_cases(48) {
        let lb = lower_bounds(&inst, m);
        let s = random_delay_priorities(
            &inst,
            Assignment::random_cells(inst.num_cells(), m, seed),
            seed,
        );
        assert!(s.makespan() as u64 >= lb.best());
        assert!(lb.best() >= lb.paper());
    }
}

#[test]
fn single_processor_makespan_is_exactly_nk() {
    for (inst, _m, _seed) in instance_cases(24) {
        let s = greedy_schedule(&inst, Assignment::single(inst.num_cells()));
        assert_eq!(s.makespan() as usize, inst.num_tasks());
    }
}

#[test]
fn c1_zero_iff_single_processor() {
    for (inst, m, seed) in instance_cases(32) {
        let single = Assignment::single(inst.num_cells());
        assert_eq!(c1_interprocessor_edges(&inst, &single), 0);
        let multi = Assignment::random_cells(inst.num_cells(), m, seed);
        let c1 = c1_interprocessor_edges(&inst, &multi);
        assert!(c1 as usize <= inst.total_edges());
    }
}

#[test]
fn c2_never_exceeds_c1() {
    for (inst, m, seed) in instance_cases(32) {
        let a = Assignment::random_cells(inst.num_cells(), m, seed);
        let s = greedy_schedule(&inst, a.clone());
        assert!(c2_comm_delay(&inst, &s) <= c1_interprocessor_edges(&inst, &a));
    }
}

#[test]
fn priority_compaction_never_loses_feasibility_and_rarely_loses_quality() {
    // Algorithm 2 vs Algorithm 1 with identical randomness: compaction
    // fills idle slots, so it should essentially never be slower. We
    // assert a weak envelope (≤ 1.25x) rather than strict dominance,
    // which is not a theorem.
    for (inst, m, seed) in instance_cases(48) {
        let a = Assignment::random_cells(inst.num_cells(), m, seed);
        let delays = sweep_scheduling::core::random_delays(inst.num_directions(), seed);
        let s1 = sweep_scheduling::core::random_delay_with(&inst, a.clone(), &delays);
        let s2 = sweep_scheduling::core::random_delay_priorities_with(&inst, a, &delays);
        assert!(validate(&inst, &s2).is_ok());
        assert!(
            (s2.makespan() as f64) <= (s1.makespan() as f64) * 1.25 + 2.0,
            "compaction much worse: {} vs {}",
            s2.makespan(),
            s1.makespan()
        );
    }
}

#[test]
fn break_cycles_always_yields_dag() {
    let mut rng = StdRng::seed_from_u64(77);
    for round in 0..40 {
        let n = rng.random_range(2..40usize);
        let ne = rng.random_range(0..160usize);
        let edges: Vec<(u32, u32)> = (0..ne)
            .map(|_| (rng.random_range(0..n as u32), rng.random_range(0..n as u32)))
            .filter(|(a, b)| a != b)
            .collect();
        let seed = rng.random_range(0..100u64);
        // Arbitrary but deterministic heights.
        let height: Vec<f64> = (0..n)
            .map(|v| ((v as u64 * 2654435761 + seed) % 1000) as f64)
            .collect();
        let (kept, dropped, _) = break_cycles(n, edges.clone(), &height);
        assert!(
            TaskDag::from_edges(n, &kept).is_acyclic(),
            "round {round}: cyclic after break_cycles"
        );
        assert!(kept.len() + dropped == edges.len());
    }
}

#[test]
fn partition_balance_and_cut_sanity() {
    // Grid graph partitioning: parts stay balanced, cut below the total
    // edge count.
    for (w, h, nparts) in [
        (2usize, 2usize, 2usize),
        (3, 5, 3),
        (4, 4, 2),
        (6, 7, 5),
        (8, 8, 4),
        (11, 9, 7),
        (10, 3, 6),
        (5, 11, 2),
    ] {
        let id = |x: usize, y: usize| (y * w + x) as u32;
        let mut edges = Vec::new();
        for y in 0..h {
            for x in 0..w {
                if x + 1 < w {
                    edges.push((id(x, y), id(x + 1, y)));
                }
                if y + 1 < h {
                    edges.push((id(x, y), id(x, y + 1)));
                }
            }
        }
        let g = CsrGraph::from_edges(w * h, &edges);
        let nparts = nparts.min(w * h);
        let part = sweep_scheduling::partition::partition(&g, nparts, &PartitionOptions::default());
        assert_eq!(part.len(), w * h);
        assert!(part.iter().all(|&p| (p as usize) < nparts));
        let cut = sweep_scheduling::partition::edge_cut(&g, &part);
        assert!(cut <= edges.len() as u64);
        if w * h >= 4 * nparts {
            let imb = sweep_scheduling::partition::imbalance(&g, &part, nparts);
            assert!(imb <= 1.6, "{w}x{h}/{nparts}: imbalance {imb}");
        }
    }
}

#[test]
fn task_id_roundtrip() {
    let mut rng = StdRng::seed_from_u64(13);
    for _ in 0..200 {
        let n = rng.random_range(1..100_000usize);
        let cell = rng.random_range(0..100_000u32) % n as u32;
        let dir = rng.random_range(0..512u32);
        let t = TaskId::pack(cell, dir, n);
        assert_eq!(t.unpack(n), (cell, dir));
    }
}

#[test]
fn random_delays_well_distributed() {
    let mut rng = StdRng::seed_from_u64(21);
    for _ in 0..60 {
        let k = rng.random_range(1..64usize);
        let seed = rng.random_range(0..500u64);
        let d = sweep_scheduling::core::random_delays(k, seed);
        assert_eq!(d.len(), k);
        assert!(d.iter().all(|&x| (x as usize) < k));
    }
}

#[test]
fn mesh_generation_invariants() {
    for (n, seed) in [(2usize, 0u64), (2, 17), (3, 5), (3, 31), (4, 2), (4, 44)] {
        let cfg = GeneratorConfig::cube(n, seed);
        let mesh = sweep_scheduling::mesh::generate(&cfg).unwrap();
        // Face count identity: every tet has 4 faces.
        assert_eq!(
            2 * mesh.interior_faces().len() + mesh.boundary_faces().len(),
            4 * mesh.num_cells()
        );
        assert_eq!(mesh.connected_component_size(), mesh.num_cells());
        // All normals unit, all volumes positive.
        for f in mesh.interior_faces() {
            assert!((f.normal.norm() - 1.0).abs() < 1e-9);
        }
        assert!(mesh.volumes().iter().all(|&v| v > 0.0));
    }
}

#[test]
fn induced_dags_acyclic_for_random_directions() {
    for seed in [0u64, 7, 19, 23, 42, 49] {
        let mesh = TriMesh2d::unit_square(6, 6, 0.25, seed).unwrap();
        let quad = QuadratureSet::random_unit(6, seed).unwrap();
        let (inst, _) = SweepInstance::from_mesh(&mesh, &quad, "prop");
        for d in inst.dags() {
            assert!(d.is_acyclic(), "seed {seed}");
        }
    }
}
