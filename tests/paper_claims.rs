//! Scaled-down versions of the paper's headline empirical claims, run as
//! regression tests so the full benchmark harness cannot silently drift.

// Integration tests assert via unwrap/expect by design.
#![allow(clippy::unwrap_used)]

use sweep_scheduling::core::{layer_congestion, random_delay_with, random_delays};
use sweep_scheduling::prelude::*;

/// Shared instance: tetonly stand-in at 1%, S4's 24 directions.
fn tetonly_s4() -> SweepInstance {
    let mesh = MeshPreset::Tetonly.build_scaled(0.01).expect("mesh");
    let quad = QuadratureSet::level_symmetric(4).expect("S4");
    SweepInstance::from_mesh(&mesh, &quad, "tetonly-1%").0
}

/// §2 observation 3: makespan ≤ 3·nk/m with per-cell random assignment,
/// through a wide range of processor counts.
#[test]
fn makespan_within_3x_average_load() {
    let inst = tetonly_s4();
    let nk = inst.num_tasks() as f64;
    for m in [2usize, 8, 32] {
        let a = Assignment::random_cells(inst.num_cells(), m, 3);
        let s = Algorithm::RandomDelayPriorities.run(&inst, a, 5);
        validate(&inst, &s).unwrap();
        let ratio = s.makespan() as f64 / (nk / m as f64);
        assert!(ratio <= 3.0, "m={m}: ratio {ratio:.2} > 3");
    }
}

/// §5.1 observation 3: "Random Delays with Priorities" beats plain
/// "Random Delays", with the gap growing at higher processor counts.
#[test]
fn priorities_improve_on_layer_sequential() {
    let inst = tetonly_s4();
    let m = 64;
    let delays = random_delays(inst.num_directions(), 9);
    let a = Assignment::random_cells(inst.num_cells(), m, 10);
    let s1 = random_delay_with(&inst, a.clone(), &delays);
    let s2 = sweep_scheduling::core::random_delay_priorities_with(&inst, a, &delays);
    assert!(
        s2.makespan() < s1.makespan(),
        "priorities {} should beat layered {}",
        s2.makespan(),
        s1.makespan()
    );
}

/// §5.1 observation 1: with per-cell random assignment the fraction of
/// interprocessor edges approaches (m−1)/m — i.e. C1 is terrible.
#[test]
fn per_cell_assignment_cuts_almost_everything() {
    let inst = tetonly_s4();
    let m = 16;
    let a = Assignment::random_cells(inst.num_cells(), m, 1);
    let f = sweep_scheduling::core::cut_fraction(&inst, &a);
    let expect = (m - 1) as f64 / m as f64;
    assert!((f - expect).abs() < 0.05, "cut fraction {f} vs {expect}");
}

/// §5.1 observation 2 / Figure 2(b): block partitioning slashes C1, and
/// larger blocks cut less.
#[test]
fn block_partitioning_monotone_in_block_size() {
    let mesh = MeshPreset::Tetonly.build_scaled(0.01).expect("mesh");
    let quad = QuadratureSet::level_symmetric(4).expect("S4");
    let (inst, _) = SweepInstance::from_mesh(&mesh, &quad, "blk");
    let (xadj, adjncy) = mesh.adjacency_csr();
    let graph = CsrGraph::from_csr_parts(xadj, adjncy);
    let m = 8;
    let mut last_c1 = u64::MAX;
    for block in [1usize, 4, 16] {
        let blocks = block_partition(&graph, block, &PartitionOptions::default());
        let a = Assignment::random_blocks(&blocks, m, 2);
        let c1 = c1_interprocessor_edges(&inst, &a);
        assert!(c1 <= last_c1, "block {block}: C1 {c1} > previous {last_c1}");
        last_c1 = c1;
    }
}

/// Lemma 2 empirically: with random delays, the max number of copies of a
/// cell in a combined layer is O(log) — far below k — while without
/// delays it can reach k.
#[test]
fn lemma2_congestion_collapse() {
    let inst = SweepInstance::identical_chains(60, 24);
    let a = Assignment::random_cells(60, 8, 4);
    let zero = vec![0u32; 24];
    let no_delays = layer_congestion(&inst, &a, &zero);
    assert_eq!(no_delays.max_copies_per_cell_layer, 24);
    let mut worst = 0;
    for seed in 0..5u64 {
        let d = random_delays(24, seed);
        let s = layer_congestion(&inst, &a, &d);
        worst = worst.max(s.max_copies_per_cell_layer);
    }
    assert!(
        worst <= 8,
        "delayed copy congestion {worst} not logarithmic-ish"
    );
}

/// The adversarial separation driving the whole paper: on identical
/// chains, layer-sequential scheduling without delays pays Θ(nk) while
/// the same algorithm with delays is near `n + k`.
#[test]
fn adversarial_family_separation() {
    let (n, k, m) = (80usize, 16usize, 16usize);
    let inst = SweepInstance::identical_chains(n, k);
    let a = Assignment::random_cells(n, m, 6);
    let s_no = random_delay_with(&inst, a.clone(), &vec![0; k]);
    let s_yes = random_delay_with(&inst, a.clone(), &random_delays(k, 7));
    let s_prio = Algorithm::RandomDelayPriorities.run(&inst, a, 7);
    assert_eq!(s_no.makespan() as usize, n * k);
    assert!((s_yes.makespan() as usize) < n * k / 2);
    assert!(s_prio.makespan() <= s_yes.makespan());
    // List-scheduled version approaches the lower bound n (+ k pipeline fill).
    assert!(
        (s_prio.makespan() as usize) < 4 * (n + k),
        "priorities: {}",
        s_prio.makespan()
    );
}

/// Theorem-2-flavoured sanity: the approximation ratio stays ≪ the proven
/// `O(log² n)` envelope on every preset-mesh instance we can afford in a
/// test.
#[test]
fn empirical_ratio_far_below_log_squared() {
    for preset in [MeshPreset::Tetonly, MeshPreset::Long] {
        let mesh = preset.build_scaled(0.005).expect("mesh");
        let quad = QuadratureSet::level_symmetric(2).expect("S2");
        let (inst, _) = SweepInstance::from_mesh(&mesh, &quad, preset.name());
        let m = 16;
        let a = Assignment::random_cells(inst.num_cells(), m, 8);
        let s = Algorithm::RandomDelayPriorities.run(&inst, a, 9);
        let ratio = approx_ratio(&inst, m, s.makespan());
        let n = inst.num_cells() as f64;
        let envelope = n.ln() * n.ln();
        assert!(
            ratio < envelope / 4.0,
            "{}: ratio {ratio:.2} not ≪ log²n = {envelope:.1}",
            preset.name()
        );
        assert!(ratio < 4.0, "{}: ratio {ratio:.2}", preset.name());
    }
}
