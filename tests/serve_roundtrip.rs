//! End-to-end test of the serving layer over real loopback sockets: an
//! ephemeral-port server answers the whole endpoint surface, a repeated
//! request hits the content-addressed cache (and SW024 certifies the
//! hit bit-identical to a cold recomputation), and a saturated in-flight
//! limit sheds load with `429` + `Retry-After`.

#![allow(clippy::unwrap_used)]

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use sweep_serve::{certify_cache_identity, ScheduleRequest, Server, ServerConfig};

const BODY: &str = r#"{"preset": "tetonly", "scale": 0.01, "sn": 2, "m": 4, "seed": 11, "b": 4}"#;

/// One request/response exchange; returns (status, headers+body text).
fn exchange(addr: SocketAddr, raw: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(raw.as_bytes()).unwrap();
    let mut reply = String::new();
    stream.read_to_string(&mut reply).unwrap();
    let status = reply.split_whitespace().nth(1).unwrap().parse().unwrap();
    (status, reply)
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    exchange(addr, &format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n"))
}

fn post_schedule(addr: SocketAddr, body: &str) -> (u16, String) {
    exchange(
        addr,
        &format!(
            "POST /v1/schedule HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

/// The body after the blank line separating it from the headers.
fn body_of(reply: &str) -> &str {
    reply.split_once("\r\n\r\n").unwrap().1
}

#[test]
fn roundtrip_endpoints_cache_hit_and_sw024() {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        max_inflight: 8,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.shutdown_handle().unwrap();
    let service = server.service();
    let join = std::thread::spawn(move || server.run());

    // Liveness and the presets listing.
    let (status, reply) = get(addr, "/healthz");
    assert_eq!(status, 200, "{reply}");
    assert!(reply.ends_with("ok\n"));
    let (status, reply) = get(addr, "/v1/presets");
    assert_eq!(status, 200);
    let presets = sweep_json::parse(body_of(&reply)).unwrap();
    let names = presets.get("presets").unwrap().as_array().unwrap();
    assert_eq!(names.len(), 4, "{reply}");

    // First schedule request computes, the identical second one must be
    // a tier-2 cache hit with the same digest and makespan.
    let (status, first) = post_schedule(addr, BODY);
    assert_eq!(status, 200, "{first}");
    let first = sweep_json::parse(body_of(&first)).unwrap();
    assert_eq!(first.get("cache").unwrap().as_str().unwrap(), "miss");
    let (status, second) = post_schedule(addr, BODY);
    assert_eq!(status, 200);
    let second = sweep_json::parse(body_of(&second)).unwrap();
    assert_eq!(second.get("cache").unwrap().as_str().unwrap(), "hit");
    assert_eq!(
        second.get("instance_cache").unwrap().as_str().unwrap(),
        "hit"
    );
    for key in ["digest", "makespan", "lower_bound", "c1", "c2", "trial"] {
        assert_eq!(
            first.get(key).cloned(),
            second.get(key).cloned(),
            "field '{key}' differs between miss and hit"
        );
    }

    // SW024: the cached artifact is bit-identical to a cold
    // recomputation of the same content.
    let request = ScheduleRequest::from_json(BODY).unwrap();
    let report = certify_cache_identity(&service, &request).unwrap();
    assert!(!report.has_errors(), "{}", report.render_text());
    assert!(report.has_code(sweep_analyze::Code::Certified));
    assert!(!report.has_code(sweep_analyze::Code::CacheDivergence));

    // Error mapping over the wire: malformed JSON is 400, a well-formed
    // request naming an unknown preset is 422, wrong method is 405.
    let (status, _) = post_schedule(addr, "not json");
    assert_eq!(status, 400);
    let (status, _) = post_schedule(addr, r#"{"preset": "mars", "m": 4}"#);
    assert_eq!(status, 422);
    let (status, _) = get(addr, "/v1/schedule");
    assert_eq!(status, 405);
    let (status, _) = get(addr, "/nope");
    assert_eq!(status, 404);

    // /metrics exposes the cache counters with nonzero hits.
    let (status, metrics) = get(addr, "/metrics");
    assert_eq!(status, 200);
    let hits_line = metrics
        .lines()
        .find(|l| l.starts_with("sweep_serve_cache_hits"))
        .unwrap_or_else(|| panic!("no sweep_serve_cache_hits in:\n{metrics}"));
    let hits: f64 = hits_line
        .split_whitespace()
        .last()
        .unwrap()
        .parse()
        .unwrap();
    assert!(hits >= 1.0, "{hits_line}");

    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn saturated_inflight_limit_sheds_with_429() {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 1,
        max_inflight: 1,
        read_timeout: Duration::from_secs(5),
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.shutdown_handle().unwrap();
    let join = std::thread::spawn(move || server.run());

    // Occupy the single in-flight slot with a deliberately unfinished
    // request: the worker blocks reading the rest of the headers.
    let mut blocker = TcpStream::connect(addr).unwrap();
    blocker
        .write_all(b"POST /v1/schedule HTTP/1.1\r\nContent-Length: 10\r\n")
        .unwrap();

    // The accept loop dispatches the blocker asynchronously; poll until
    // the saturation is observable, then assert the shed response.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let reply = loop {
        let (status, reply) = get(addr, "/healthz");
        if status == 429 {
            break reply;
        }
        assert_eq!(status, 200, "{reply}");
        assert!(std::time::Instant::now() < deadline, "never saw a 429");
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(reply.contains("Retry-After:"), "{reply}");
    assert!(reply.contains("in-flight request limit"), "{reply}");

    // Releasing the slot (EOF mid-request drops the connection) makes
    // the server answer normally again.
    drop(blocker);
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let (status, _) = get(addr, "/healthz");
        if status == 200 {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "never recovered");
        std::thread::sleep(Duration::from_millis(10));
    }

    handle.shutdown();
    join.join().unwrap().unwrap();
}
