//! Adversarial corpus for `sweep-analyze`, mirroring the style of
//! `validator_oracle.rs`: each deliberately corrupted artifact must
//! surface exactly the expected SW0xx diagnostic code. This pins the
//! code registry — a refactor that silently changes which code fires
//! (or stops firing) fails here.

// Integration tests assert via unwrap/expect by design.
#![allow(clippy::unwrap_used)]

use sweep_scheduling::analyze::{
    analyze_all, analyze_assignment, analyze_async, analyze_instance, analyze_raw_schedule,
    analyze_schedule, analyze_schedule_with, AnalyzeOptions, Code, RawSchedule, Severity,
};
use sweep_scheduling::prelude::*;

fn layered(seed: u64) -> SweepInstance {
    SweepInstance::random_layered(36, 3, 6, 2, seed)
}

fn good_schedule(inst: &SweepInstance, m: usize, seed: u64) -> Schedule {
    let a = Assignment::random_cells(inst.num_cells(), m, seed);
    greedy_schedule(inst, a)
}

// ---------------------------------------------------------------- SW001

/// A hanging-node-like defect: one warped face flips its upwind
/// orientation for direction 0, re-entering three cells into a cycle,
/// while direction 1 stays a clean chain.
fn hanging_node_instance() -> SweepInstance {
    let d0 = TaskDag::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 1), (3, 4)]);
    let d1 = TaskDag::from_edges(5, &[(4, 3), (3, 2), (2, 1), (1, 0)]);
    SweepInstance::new_unchecked(5, vec![d0, d1], "hanging-node")
}

#[test]
fn sw001_cycle_with_verified_witness() {
    let inst = hanging_node_instance();
    let r = analyze_instance(&inst);
    assert!(r.has_errors());
    assert_eq!(r.count_code(Code::CyclicDependency), 1);
    let d = r
        .diagnostics()
        .iter()
        .find(|d| d.code == Code::CyclicDependency)
        .expect("SW001 present");
    assert_eq!(d.anchor.dir, Some(0), "cycle lives in direction 0");
    // The witness is a closed walk whose edges all exist in the graph.
    assert!(d.trail.len() >= 3);
    assert_eq!(d.trail.first(), d.trail.last());
    for w in d.trail.windows(2) {
        assert!(
            inst.dag(0).successors(w[0]).contains(&w[1]),
            "witness edge ({}, {}) missing",
            w[0],
            w[1]
        );
    }
}

#[test]
fn sw001_via_unchecked_text_parser() {
    let text = "sweep-instance v1\nname cyc\ncells 4\ndirections 1\n\
                dag 0 edges 4\n0 1\n1 2\n2 3\n3 0\nend\n";
    let inst = sweep_scheduling::dag::from_text_unchecked(text).expect("parses");
    let r = analyze_instance(&inst);
    assert!(r.has_code(Code::CyclicDependency));
    assert_eq!(
        r.diagnostics()[0].trail,
        vec![0, 1, 2, 3, 0],
        "4-cycle witness"
    );
}

// ------------------------------------------------- SW002/SW003 collect-all

#[test]
fn sw002_every_inverted_edge_reported() {
    let inst = layered(1);
    let s = good_schedule(&inst, 4, 1);
    let n = inst.num_cells();
    let mut starts = s.starts().to_vec();
    // Invert three distinct precedence edges in direction 0.
    let edges: Vec<(u32, u32)> = inst.dag(0).edges().take(3).collect();
    assert_eq!(edges.len(), 3);
    for &(u, v) in &edges {
        starts[TaskId::pack(v, 0, n).index()] =
            starts[TaskId::pack(u, 0, n).index()].saturating_sub(1);
    }
    let bad = Schedule::new(starts, s.assignment().clone()).expect("same shape");
    // The first-error validator sees exactly one...
    assert!(validate(&inst, &bad).is_err());
    // ...the analyzer sees one SW002 per inverted edge (at least; the
    // rewrites can invert incident edges too).
    let r = analyze_schedule(&inst, &bad);
    assert!(
        r.count_code(Code::PrecedenceViolation) >= 3,
        "{}",
        r.render_text()
    );
}

#[test]
fn sw003_processor_conflicts_counted_per_slot() {
    let inst = layered(2);
    let s = good_schedule(&inst, 3, 2);
    let n = inst.num_cells();
    let a = s.assignment();
    // Pick two cells on one processor and give their direction-0 tasks
    // identical start times far past the horizon (no precedence fallout).
    let p0 = a.proc_of(0);
    let mate = (1..n as u32).find(|&c| a.proc_of(c) == p0).expect("m < n");
    let mut starts = s.starts().to_vec();
    let far = s.makespan() + 50;
    starts[TaskId::pack(0, 0, n).index()] = far;
    starts[TaskId::pack(mate, 0, n).index()] = far;
    let bad = Schedule::new(starts, a.clone()).expect("same shape");
    let r = analyze_schedule(&inst, &bad);
    let conflicts: Vec<_> = r
        .diagnostics()
        .iter()
        .filter(|d| d.code == Code::ProcessorConflict)
        .collect();
    assert_eq!(conflicts.len(), 1, "{}", r.render_text());
    assert_eq!(conflicts[0].anchor.proc, Some(p0));
    assert_eq!(conflicts[0].anchor.timestep, Some(far));
}

// ---------------------------------------------------------------- SW004

#[test]
fn sw004_split_cell_copies_on_raw_tables() {
    let inst = layered(3);
    let s = good_schedule(&inst, 4, 3);
    let mut raw = RawSchedule::from_schedule(&s);
    let n = inst.num_cells();
    // Move cell 7's direction-2 copy to a different processor — a state
    // `Schedule` cannot even represent, which is why the analyzer works
    // on raw per-task tables.
    let idx = TaskId::pack(7, 2, n).index();
    raw.proc[idx] = (raw.proc[idx] + 1) % raw.m as u32;
    let r = analyze_raw_schedule(&inst, &raw);
    assert_eq!(
        r.count_code(Code::SplitCellCopies),
        1,
        "{}",
        r.render_text()
    );
    let d = r
        .diagnostics()
        .iter()
        .find(|d| d.code == Code::SplitCellCopies)
        .expect("SW004");
    assert_eq!(d.anchor.cell, Some(7));
}

// ---------------------------------------------------------------- SW005

#[test]
fn sw005_short_and_long_tables() {
    let inst = layered(4);
    for len in [0usize, 10, inst.num_tasks() + 5] {
        let raw = RawSchedule {
            start: vec![0; len],
            proc: vec![0; len],
            m: 2,
        };
        let r = analyze_raw_schedule(&inst, &raw);
        assert_eq!(r.count_code(Code::TaskCountMismatch), 1, "len={len}");
        assert!(r.has_errors());
    }
}

// ---------------------------------------------------------------- SW006

#[test]
fn sw006_assignment_covers_wrong_instance() {
    let inst = layered(5);
    let other = Assignment::random_cells(inst.num_cells() + 4, 3, 1);
    let r = analyze_assignment(&inst, &other);
    assert!(r.has_code(Code::AssignmentMismatch));
    assert!(r.has_errors());
    // Same through the schedule path.
    let small = SweepInstance::random_layered(20, 3, 4, 2, 6);
    let s = good_schedule(&small, 3, 2);
    let r2 = analyze_schedule(&inst, &s);
    assert!(r2.has_code(Code::AssignmentMismatch));
}

// --------------------------------------------------------- SW010/SW011

#[test]
fn sw010_sw011_lopsided_assignment() {
    let inst = layered(6);
    let n = inst.num_cells();
    // Everything on processor 0 of 4.
    let a = Assignment::from_vec(vec![0; n], 4);
    let r = analyze_assignment(&inst, &a);
    assert_eq!(r.count_code(Code::EmptyProcessor), 3);
    assert_eq!(r.count_code(Code::LoadImbalance), 1);
    assert!(!r.has_errors(), "warnings only: {}", r.render_text());
}

// ---------------------------------------------------------------- SW012

#[test]
fn sw012_isolated_cell_never_swept() {
    // Cell 4 exchanges no flux in either direction.
    let d0 = TaskDag::from_edges(5, &[(0, 1), (1, 2), (2, 3)]);
    let d1 = TaskDag::from_edges(5, &[(3, 2), (2, 1), (1, 0)]);
    let inst = SweepInstance::new(5, vec![d0, d1], "island");
    let r = analyze_instance(&inst);
    assert_eq!(r.count_code(Code::UnreachableCell), 1);
    assert_eq!(
        r.diagnostics()
            .iter()
            .find(|d| d.code == Code::UnreachableCell)
            .expect("SW012")
            .anchor
            .cell,
        Some(4)
    );
}

// ---------------------------------------------------------------- SW013

#[test]
fn sw013_edgeless_direction() {
    let inst = SweepInstance::new(
        4,
        vec![
            TaskDag::from_edges(4, &[(0, 1), (1, 2)]),
            TaskDag::edgeless(4),
        ],
        "flat",
    );
    let r = analyze_instance(&inst);
    assert_eq!(r.count_code(Code::DegenerateDirection), 1);
    assert_eq!(r.diagnostics()[0].anchor.dir, Some(1));
}

// ---------------------------------------------------------------- SW014

#[test]
fn sw014_absurdly_padded_schedule() {
    // A feasible but wasteful schedule: every task 60 steps after its
    // chain predecessor. Feasibility holds; the envelope check flags it.
    let inst = SweepInstance::identical_chains(8, 2);
    let n = 8usize;
    let mut starts = vec![0u32; inst.num_tasks()];
    for dir in 0..2u32 {
        for v in 0..n as u32 {
            starts[TaskId::pack(v, dir, n).index()] = v * 60 + dir * 31;
        }
    }
    let s = Schedule::new(starts, Assignment::single(n)).expect("right shape");
    assert!(validate(&inst, &s).is_ok(), "padded schedule is feasible");
    let r = analyze_schedule(&inst, &s);
    assert!(
        r.has_code(Code::DelayEnvelopeExceeded),
        "{}",
        r.render_text()
    );
    assert!(!r.has_errors());
    // A tight schedule on the same instance certifies instead.
    let tight = good_schedule(&inst, 2, 1);
    let r2 = analyze_schedule(&inst, &tight);
    assert!(r2.has_code(Code::Certified), "{}", r2.render_text());
}

// ---------------------------------------------------------------- SW015

#[test]
fn sw015_round_robin_cuts_every_edge() {
    // Round-robin on a chain instance puts consecutive cells on
    // different processors: 100% of edges cross.
    let inst = SweepInstance::identical_chains(30, 2);
    let a = Assignment::round_robin(30, 3);
    let r = analyze_assignment(&inst, &a);
    assert!(r.has_code(Code::HighCommBound), "{}", r.render_text());
    // Block assignment keeps most edges internal.
    let blocks: Vec<u32> = (0..30u32).map(|v| v / 10).collect();
    let b = Assignment::from_vec(blocks, 3);
    let r2 = analyze_assignment(&inst, &b);
    assert!(!r2.has_code(Code::HighCommBound), "{}", r2.render_text());
}

// ---------------------------------------------------------------- SW016

#[test]
fn sw016_message_race_from_concurrent_producers() {
    // Producers on procs 0 and 1 feed a consumer on proc 2 with equal
    // path lengths: their fluxes arrive simultaneously and causally
    // unordered.
    let dag = TaskDag::from_edges(3, &[(0, 2), (1, 2)]);
    let inst = SweepInstance::new(3, vec![dag], "race");
    let a = Assignment::from_vec(vec![0, 1, 2], 3);
    let r = analyze_async(&inst, &a, &[0, 0, 0], 1.0);
    assert_eq!(r.count_code(Code::MessageRace), 1, "{}", r.render_text());
    assert_eq!(r.count(Severity::Error), 0);
    // Serializing the producers on one processor removes the race.
    let serial = Assignment::from_vec(vec![0, 0, 1], 2);
    let r2 = analyze_async(&inst, &serial, &[0, 0, 0], 1.0);
    assert_eq!(r2.count_code(Code::MessageRace), 0, "{}", r2.render_text());
}

// ------------------------------------------------------- acceptance gate

#[test]
fn doubly_corrupted_schedule_yields_two_codes_where_validate_yields_one() {
    let inst = layered(7);
    let s = good_schedule(&inst, 4, 7);
    let n = inst.num_cells();
    let a = s.assignment();
    let mut starts = s.starts().to_vec();
    // Corruption A: invert a precedence edge in direction 0.
    let (u, v) = inst.dag(0).edges().next().expect("has edges");
    starts[TaskId::pack(v, 0, n).index()] = starts[TaskId::pack(u, 0, n).index()];
    // Corruption B: double-book a processor slot far past the horizon.
    let p0 = a.proc_of(0);
    let mate = (1..n as u32).find(|&c| a.proc_of(c) == p0).expect("m < n");
    let far = s.makespan() + 99;
    starts[TaskId::pack(0, 1, n).index()] = far;
    starts[TaskId::pack(mate, 1, n).index()] = far;

    let bad = Schedule::new(starts, a.clone()).expect("same shape");
    // The seed validator stops at its first finding — one violation.
    let one = validate(&inst, &bad).expect_err("infeasible");
    let _single: sweep_scheduling::core::ScheduleViolation = one;
    // The analyzer reports both corruption families.
    let r = analyze_schedule(&inst, &bad);
    assert!(r.has_code(Code::PrecedenceViolation), "{}", r.render_text());
    assert!(r.has_code(Code::ProcessorConflict), "{}", r.render_text());
    assert!(r.len() >= 2);
}

// ------------------------------------------------------------ clean runs

#[test]
fn clean_pipeline_certifies_with_no_errors_or_warnings_beyond_comm() {
    let inst = layered(8);
    let a = Assignment::random_cells(inst.num_cells(), 4, 9);
    let s = greedy_schedule(&inst, a.clone());
    let r = analyze_all(&inst, Some(&a), Some(&s), &AnalyzeOptions::default());
    assert!(!r.has_errors(), "{}", r.render_text());
    assert!(r.has_code(Code::Certified));
    assert!(r.has_code(Code::Stats));
    // Renderers agree on the error count.
    assert!(r.render_text().contains("0 error(s)"));
    assert!(r.render_json().contains("\"errors\": 0"));
}

#[test]
fn every_algorithm_output_certifies_on_mesh_instance() {
    let mesh = MeshPreset::Tetonly
        .build_scaled(0.01)
        .expect("preset builds");
    let quad = QuadratureSet::level_symmetric(2).expect("S2 exists");
    let (inst, _) = SweepInstance::from_mesh(&mesh, &quad, "tetonly-s2");
    for alg in [
        Algorithm::RandomDelayPriorities,
        Algorithm::Greedy,
        Algorithm::Dfds { delays: false },
    ] {
        let a = Assignment::random_cells(inst.num_cells(), 8, 3);
        let s = alg.run(&inst, a, 11);
        let r = analyze_schedule_with(&inst, &s, &AnalyzeOptions::default());
        assert!(!r.has_errors(), "{}: {}", alg.name(), r.render_text());
        assert!(r.has_code(Code::Certified), "{}", alg.name());
    }
}
