//! Failure injection: corrupt feasible schedules in every way the
//! feasibility constraints can break, and assert the independent
//! validator catches each one. This is what makes the hundreds of
//! "validate(...)" assertions elsewhere meaningful — the oracle itself
//! is adversarially tested here. (The `sweep-analyze` crate has a sibling
//! corpus in `tests/analyze_corpus.rs` asserting the *collect-all*
//! analyzer reports the same corruptions with stable `SW0xx` codes.)

// Integration tests assert via unwrap/expect by design.
#![allow(clippy::unwrap_used)]

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use sweep_scheduling::core::{Schedule, ScheduleBuildError, ScheduleViolation};
use sweep_scheduling::prelude::*;

fn feasible_pair() -> (SweepInstance, Schedule) {
    let inst = SweepInstance::random_layered(40, 3, 6, 2, 9);
    let a = Assignment::random_cells(40, 5, 2);
    let s = Algorithm::RandomDelayPriorities.run(&inst, a, 3);
    validate(&inst, &s).expect("baseline must be feasible");
    (inst, s)
}

/// Rebuild a schedule with mutated start times (keeping the assignment).
fn with_starts(s: &Schedule, starts: Vec<u32>) -> Schedule {
    Schedule::new(starts, s.assignment().clone()).expect("same shape as original")
}

#[test]
fn swapping_a_dependent_pair_is_caught() {
    let (inst, s) = feasible_pair();
    let n = inst.num_cells();
    // Find any edge and swap the start times of its endpoints.
    let dag = inst.dag(0);
    let (u, v) = dag.edges().next().expect("instance has edges");
    let mut starts = s.starts().to_vec();
    starts.swap(TaskId::pack(u, 0, n).index(), TaskId::pack(v, 0, n).index());
    let bad = with_starts(&s, starts);
    assert!(matches!(
        validate(&inst, &bad),
        Err(ScheduleViolation::Precedence { .. } | ScheduleViolation::ProcessorConflict { .. })
    ));
}

#[test]
fn collapsing_all_starts_is_caught() {
    let (inst, s) = feasible_pair();
    let bad = with_starts(&s, vec![0; inst.num_tasks()]);
    assert!(validate(&inst, &bad).is_err());
}

#[test]
fn duplicating_a_slot_is_caught() {
    let (inst, s) = feasible_pair();
    let n = inst.num_cells();
    // Find two tasks on the same processor and give them the same start.
    let mut starts = s.starts().to_vec();
    let mut by_proc: std::collections::HashMap<u32, usize> = Default::default();
    let mut injected = false;
    for dir in 0..inst.num_directions() as u32 {
        for v in 0..n as u32 {
            let p = s.proc_of_cell(v);
            let idx = TaskId::pack(v, dir, n).index();
            if let Some(&other) = by_proc.get(&p) {
                starts[idx] = starts[other];
                injected = true;
                break;
            }
            by_proc.insert(p, idx);
        }
        if injected {
            break;
        }
    }
    assert!(injected, "test setup: found two tasks on one processor");
    let bad = with_starts(&s, starts);
    assert!(validate(&inst, &bad).is_err());
}

#[test]
fn truncated_schedule_is_rejected_at_construction() {
    let (inst, s) = feasible_pair();
    let mut starts = s.starts().to_vec();
    starts.pop();
    // Schedule::new itself rejects non-multiple-of-n lengths with a typed
    // error (no panic).
    let err = Schedule::new(starts, s.assignment().clone()).unwrap_err();
    assert_eq!(
        err,
        ScheduleBuildError::StartCountMismatch {
            starts: inst.num_tasks() - 1,
            cells: inst.num_cells(),
        }
    );
    assert!(err.to_string().contains("multiple of the cell count"));
}

#[test]
fn whole_direction_missing_is_caught() {
    // Dropping a full direction keeps the length a multiple of n, so
    // construction succeeds — the validator must catch the count mismatch.
    let (inst, s) = feasible_pair();
    let n = inst.num_cells();
    let bad = with_starts(&s, s.starts()[..n * (inst.num_directions() - 1)].to_vec());
    assert!(matches!(
        validate(&inst, &bad),
        Err(ScheduleViolation::WrongTaskCount { .. })
    ));
}

#[test]
fn wrong_assignment_size_is_caught() {
    let (inst, _s) = feasible_pair();
    let bigger = Assignment::single(inst.num_cells() + 1);
    let bad = Schedule::new(
        vec![0; (inst.num_cells() + 1) * inst.num_directions()],
        bigger,
    )
    .expect("shape is consistent with its own assignment");
    assert!(matches!(
        validate(&inst, &bad),
        Err(ScheduleViolation::AssignmentMismatch { .. })
    ));
}

/// Random single-task perturbations: moving one task strictly earlier
/// either stays feasible (it landed in a free slot with no precedence
/// impact — rare) or is caught; corrupting feasibility silently is
/// impossible.
#[test]
fn random_perturbations_never_silently_accepted() {
    let mut rng = StdRng::seed_from_u64(0x0dac1e);
    for _ in 0..32 {
        let seed = rng.random_range(0..50u64);
        let task_sel = rng.random_range(0..1000usize);
        let delta = rng.random_range(1..10u32);
        let inst = SweepInstance::random_layered(30, 3, 5, 2, seed);
        let a = Assignment::random_cells(30, 4, seed ^ 1);
        let s = Algorithm::Greedy.run(&inst, a, 0);
        validate(&inst, &s).unwrap();
        let mut starts = s.starts().to_vec();
        let idx = task_sel % starts.len();
        let old = starts[idx];
        starts[idx] = old.saturating_sub(delta);
        let moved = starts[idx] != old;
        let bad = with_starts(&s, starts);
        // Err(_) means the corruption was caught, as desired; acceptance is
        // only legitimate if the move preserved all constraints, re-checked
        // externally here.
        if validate(&inst, &bad).is_ok() && moved {
            let n = inst.num_cells();
            let (v, dir) = TaskId(idx as u64).unpack(n);
            // All predecessors must still finish before the new start.
            for &u in inst.dag(dir as usize).predecessors(v) {
                let su = bad.start_of(TaskId::pack(u, dir, n));
                assert!(su < bad.start_of(TaskId(idx as u64)));
            }
        }
    }
}

/// The validator accepts every schedule our algorithms emit (no false
/// positives), across the whole algorithm portfolio.
#[test]
fn no_false_positives() {
    let mut rng = StdRng::seed_from_u64(0xfa15e);
    for _ in 0..40 {
        let seed = rng.random_range(0..40u64);
        let alg_sel = rng.random_range(0..8usize);
        let m = rng.random_range(1..9usize);
        let inst = SweepInstance::random_layered(25, 3, 4, 2, seed);
        let alg = Algorithm::COMPARISON_SET[alg_sel % Algorithm::COMPARISON_SET.len()];
        let a = Assignment::random_cells(25, m, seed);
        let s = alg.run(&inst, a, seed ^ 3);
        assert!(validate(&inst, &s).is_ok(), "{} rejected", alg.name());
    }
}
