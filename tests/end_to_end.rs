//! End-to-end integration tests: mesh generation → quadrature → DAG
//! induction → (optional) partitioning → scheduling → validation →
//! metrics, across every algorithm.

// Integration tests assert via unwrap/expect by design.
#![allow(clippy::unwrap_used)]

use sweep_scheduling::prelude::*;
use sweep_scheduling::sim::execute_sequential;

/// A small but fully unstructured 3-D pipeline shared by several tests.
fn small_3d() -> (TetMesh, QuadratureSet) {
    let mesh = MeshPreset::Tetonly.build_scaled(0.01).expect("mesh");
    let quad = QuadratureSet::level_symmetric(2).expect("S2");
    (mesh, quad)
}

#[test]
fn full_pipeline_3d_all_algorithms() {
    let (mesh, quad) = small_3d();
    let (instance, stats) = SweepInstance::from_mesh(&mesh, &quad, "e2e");
    assert_eq!(instance.num_cells(), mesh.num_cells());
    assert_eq!(instance.num_directions(), 8);
    // Cycle breaking must be rare on these meshes.
    let dropped: usize = stats.iter().map(|s| s.dropped_edges).sum();
    let raw: usize = stats.iter().map(|s| s.raw_edges).sum();
    assert!(dropped * 50 <= raw, "dropped {dropped} of {raw} edges");

    let m = 16;
    let lb = lower_bounds(&instance, m);
    for alg in Algorithm::COMPARISON_SET {
        let assignment = Assignment::random_cells(instance.num_cells(), m, 7);
        let schedule = alg.run(&instance, assignment, 8);
        validate(&instance, &schedule).unwrap_or_else(|e| panic!("{} infeasible: {e}", alg.name()));
        assert!(
            schedule.makespan() as u64 >= lb.best(),
            "{} beat the lower bound",
            alg.name()
        );
        // The paper's empirical observation: within a small factor of LB.
        assert!(
            (schedule.makespan() as u64) < 8 * lb.best(),
            "{} makespan {} vs lb {}",
            alg.name(),
            schedule.makespan(),
            lb.best()
        );
    }
}

#[test]
fn full_pipeline_2d() {
    let mesh = TriMesh2d::unit_square(12, 12, 0.2, 3).expect("mesh");
    let quad = QuadratureSet::uniform_2d(8).expect("fan");
    let (instance, _) = SweepInstance::from_mesh(&mesh, &quad, "2d");
    let assignment = Assignment::random_cells(instance.num_cells(), 8, 1);
    let schedule = Algorithm::RandomDelayPriorities.run(&instance, assignment, 2);
    validate(&instance, &schedule).unwrap();
    assert!(schedule.makespan() as usize >= instance.num_tasks() / 8);
}

#[test]
fn block_pipeline_reduces_c1_without_wrecking_makespan() {
    let (mesh, quad) = small_3d();
    let (instance, _) = SweepInstance::from_mesh(&mesh, &quad, "blocks");
    let m = 16;

    let per_cell = Assignment::random_cells(instance.num_cells(), m, 5);
    let s_cell = Algorithm::RandomDelayPriorities.run(&instance, per_cell, 6);

    let (xadj, adjncy) = mesh.adjacency_csr();
    let graph = CsrGraph::from_csr_parts(xadj, adjncy);
    let blocks = block_partition(&graph, 4, &PartitionOptions::default());
    let per_block = Assignment::random_blocks(&blocks, m, 5);
    let s_block = Algorithm::RandomDelayPriorities.run(&instance, per_block, 6);

    validate(&instance, &s_cell).unwrap();
    validate(&instance, &s_block).unwrap();

    let c1_cell = c1_interprocessor_edges(&instance, s_cell.assignment());
    let c1_block = c1_interprocessor_edges(&instance, s_block.assignment());
    assert!(
        c1_block * 2 < c1_cell,
        "blocks must cut C1 at least in half: {c1_block} vs {c1_cell}"
    );
    // Paper: "the makespan does not increase too much".
    assert!(
        s_block.makespan() < 6 * s_cell.makespan(),
        "block makespan {} vs cell {}",
        s_block.makespan(),
        s_cell.makespan()
    );
}

#[test]
fn simulator_consistent_with_metrics() {
    let (mesh, quad) = small_3d();
    let (instance, _) = SweepInstance::from_mesh(&mesh, &quad, "sim");
    let assignment = Assignment::random_cells(instance.num_cells(), 8, 2);
    let schedule = Algorithm::RandomDelayPriorities.run(&instance, assignment, 3);
    let report = simulate(&instance, &schedule, &SimConfig::default());
    assert_eq!(report.compute_steps, schedule.makespan() as u64);
    assert_eq!(report.comm_units, c2_comm_delay(&instance, &schedule));
    assert_eq!(
        report.total_messages,
        c1_interprocessor_edges(&instance, schedule.assignment())
    );
    // Edge-coloring rounds dominate the max-send measure.
    let colored = simulate(
        &instance,
        &schedule,
        &SimConfig {
            model: CommModel::EdgeColoring,
            ..SimConfig::default()
        },
    );
    assert!(colored.comm_units >= report.comm_units);
}

#[test]
fn executor_agrees_with_sequential_on_mesh_instances() {
    let (mesh, quad) = small_3d();
    let (instance, _) = SweepInstance::from_mesh(&mesh, &quad, "exec");
    let reference = execute_sequential(&instance);
    let assignment = Assignment::random_cells(instance.num_cells(), 2, 4);
    let report = execute_parallel(&instance, &assignment, 4);
    assert!((report.checksum - reference).abs() < 1e-9 * reference.abs());
}

#[test]
fn transport_solver_runs_on_generated_mesh() {
    let (mesh, quad) = small_3d();
    let solver = TransportSolver::new(
        &mesh,
        &quad,
        Material {
            sigma_t: 1.0,
            sigma_s: 0.4,
            source: 1.0,
        },
    )
    .expect("solver");
    let result = solver.solve(300, 1e-7);
    assert!(result.converged, "residual {}", result.residual);
    assert!(result.phi.iter().all(|&x| x >= 0.0 && x.is_finite()));
    // The solver's instance is schedulable.
    let inst = solver.instance();
    let a = Assignment::random_cells(inst.num_cells(), 4, 1);
    let s = Algorithm::Greedy.run(inst, a, 0);
    validate(inst, &s).unwrap();
}

#[test]
fn all_mesh_presets_build_and_induce_acyclic_dags() {
    for preset in MeshPreset::ALL {
        let mesh = preset
            .build_scaled(0.005)
            .unwrap_or_else(|_| panic!("{}", preset.name()));
        let quad = QuadratureSet::level_symmetric(2).unwrap();
        let (instance, _) = SweepInstance::from_mesh(&mesh, &quad, preset.name());
        for d in instance.dags() {
            assert!(d.is_acyclic(), "{} has a cyclic DAG", preset.name());
        }
        assert!(instance.max_depth() >= 3, "{} too shallow", preset.name());
    }
}

#[test]
fn single_processor_everything_serializes() {
    let (mesh, quad) = small_3d();
    let (instance, _) = SweepInstance::from_mesh(&mesh, &quad, "serial");
    let schedule = Algorithm::RandomDelayPriorities.run(
        &instance,
        Assignment::single(instance.num_cells()),
        1,
    );
    validate(&instance, &schedule).unwrap();
    assert_eq!(schedule.makespan() as usize, instance.num_tasks());
    assert_eq!(c1_interprocessor_edges(&instance, schedule.assignment()), 0);
}
