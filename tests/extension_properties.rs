//! Property-style tests for the extension modules, run as deterministic
//! parameter sweeps: weighted scheduling, the latency/async execution
//! models, the exact optimizer, edge coloring, KBA, and schedule
//! serialization.

// Integration tests assert via unwrap/expect by design.
#![allow(clippy::unwrap_used)]

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use sweep_scheduling::core::{
    delayed_level_priorities, from_csv, optimal_makespan_fixed_assignment, optimal_sweep_makespan,
    random_delays, to_csv, validate_weighted, weighted_list_schedule, weighted_lower_bound,
    weighted_random_delay_priorities,
};
use sweep_scheduling::prelude::*;
use sweep_scheduling::sim::{async_makespan, color_edges, is_proper_coloring, max_degree};

/// Deterministic `(instance, m, seed)` cases mirroring the old proptest
/// `small_instance()` strategy.
fn small_cases(count: usize) -> Vec<(SweepInstance, usize, u64)> {
    let mut rng = StdRng::seed_from_u64(0xeeee_0001);
    (0..count)
        .map(|_| {
            let n = rng.random_range(2..40usize);
            let k = rng.random_range(1..4usize);
            let depth = rng.random_range(2..6usize);
            let seed = rng.random_range(0..500u64);
            let m = rng.random_range(1..8usize);
            (SweepInstance::random_layered(n, k, depth, 2, seed), m, seed)
        })
        .collect()
}

#[test]
fn weighted_schedules_always_feasible_and_bounded() {
    let mut rng = StdRng::seed_from_u64(3);
    for (inst, m, seed) in small_cases(40) {
        let wmax = rng.random_range(2..12u64);
        let n = inst.num_cells();
        let weights: Vec<u64> = (0..n as u64).map(|v| 1 + (v * 7 + seed) % wmax).collect();
        let a = Assignment::random_cells(n, m, seed);
        let s = weighted_random_delay_priorities(&inst, a, &weights, seed);
        assert!(validate_weighted(&inst, &s, &weights).is_ok());
        let lb = weighted_lower_bound(&inst, &weights, m);
        assert!(s.makespan >= lb);
        // Work-conserving upper bound: total work.
        let total: u64 = weights.iter().sum::<u64>() * inst.num_directions() as u64;
        assert!(s.makespan <= total);
    }
}

#[test]
fn weighted_single_proc_exact() {
    for (inst, _m, _seed) in small_cases(20) {
        let n = inst.num_cells();
        let weights: Vec<u64> = (0..n as u64).map(|v| 1 + v % 5).collect();
        let prio = vec![0i64; inst.num_tasks()];
        let s = weighted_list_schedule(&inst, Assignment::single(n), &weights, &prio);
        let total: u64 = weights.iter().sum::<u64>() * inst.num_directions() as u64;
        assert_eq!(s.makespan, total);
    }
}

#[test]
fn async_zero_latency_bounded_by_serial() {
    for (inst, m, seed) in small_cases(40) {
        let n = inst.num_cells();
        let a = Assignment::random_cells(n, m, seed);
        let d = random_delays(inst.num_directions(), seed);
        let prio = delayed_level_priorities(&inst, &d);
        let r = async_makespan(&inst, &a, &prio, None, 0.0);
        assert!(r.makespan <= inst.num_tasks() as f64 + 1e-9);
        assert!(r.makespan >= (inst.num_tasks() as f64 / m as f64).floor());
        assert_eq!(r.messages, c1_interprocessor_edges(&inst, &a));
    }
}

/// Latency cannot collapse the makespan below half its zero-latency
/// value. (Strict monotonicity is *not* a theorem — greedy dispatch has
/// Graham-style anomalies where extra delay reorders work beneficially —
/// but the list-scheduling 2-approximation gives
/// `r0 ≤ 2·OPT_0 ≤ 2·OPT_lat ≤ 2·r_lat`.)
#[test]
fn async_latency_never_halves_makespan() {
    let mut rng = StdRng::seed_from_u64(8);
    for (inst, m, seed) in small_cases(40) {
        let lat: f64 = rng.random_range(0.0..8.0);
        let n = inst.num_cells();
        let a = Assignment::random_cells(n, m, seed);
        let prio = vec![0i64; inst.num_tasks()];
        let r0 = async_makespan(&inst, &a, &prio, None, 0.0);
        let r1 = async_makespan(&inst, &a, &prio, None, lat);
        assert!(2.0 * r1.makespan + 1e-9 >= r0.makespan);
    }
}

#[test]
fn latency_model_matches_async_messages() {
    for (inst, m, seed) in small_cases(30) {
        let n = inst.num_cells();
        let a = Assignment::random_cells(n, m, seed);
        let s = greedy_schedule(&inst, a.clone());
        let rep = latency_makespan(&inst, &s, 1.0);
        assert_eq!(rep.messages, c1_interprocessor_edges(&inst, &a));
    }
}

#[test]
fn schedule_csv_round_trips() {
    for (inst, m, seed) in small_cases(30) {
        let a = Assignment::random_cells(inst.num_cells(), m, seed);
        let s = Algorithm::RandomDelayPriorities.run(&inst, a, seed);
        let text = to_csv(&inst, &s);
        let back = from_csv(&text, inst.num_cells(), inst.num_directions()).unwrap();
        assert_eq!(back.starts(), s.starts());
        assert!(validate(&inst, &back).is_ok());
    }
}

#[test]
fn coloring_always_proper_and_bounded() {
    let mut rng = StdRng::seed_from_u64(40);
    for _ in 0..40 {
        let m = rng.random_range(2..12usize);
        let ne = rng.random_range(0..80usize);
        let edges: Vec<(u32, u32)> = (0..ne)
            .map(|_| (rng.random_range(0..m as u32), rng.random_range(0..m as u32)))
            .filter(|(a, b)| a != b)
            .collect();
        let (colors, nc) = color_edges(m, &edges);
        assert!(is_proper_coloring(m, &edges, &colors));
        let delta = max_degree(m, &edges);
        if delta > 0 {
            assert!(nc < 2 * delta);
            assert!(nc >= delta);
        } else {
            assert_eq!(nc, 0);
        }
    }
}

/// OPT is sandwiched between every lower bound and every feasible
/// schedule, and the fixed-assignment optimum dominates the free one.
#[test]
fn exact_optimum_sandwich() {
    let mut rng = StdRng::seed_from_u64(60);
    for _ in 0..12 {
        let n = rng.random_range(2..7usize);
        let k = rng.random_range(1..3usize);
        let m = rng.random_range(1..4usize);
        let seed = rng.random_range(0..60u64);
        let inst = SweepInstance::random_layered(n, k, 2, 2, seed);
        let opt = optimal_sweep_makespan(&inst, m);
        let lb = lower_bounds(&inst, m).best() as u32;
        assert!(opt >= lb);
        let a = Assignment::random_cells(n, m, seed);
        let fixed = optimal_makespan_fixed_assignment(&inst, &a);
        assert!(fixed >= opt, "free optimum beats fixed");
        let s = greedy_schedule(&inst, a);
        assert!(s.makespan() >= fixed, "greedy beats its own fixed optimum");
    }
}

#[test]
fn kba_assignment_matches_manual_grid_math() {
    use sweep_scheduling::mesh::{generate, Carve};
    let mut cfg = GeneratorConfig::cube(3, 1);
    cfg.jitter = 0.0;
    cfg.carve = Carve::None;
    let mesh = generate(&cfg).unwrap();
    let a = kba_assignment(3, 3, 3, mesh.num_cells(), 9);
    // 3x3 processor grid over 3x3 columns: column (i, j) -> proc i*3+j.
    for i in 0..3usize {
        for j in 0..3usize {
            for kz in 0..3usize {
                let hex = (i * 3 + j) * 3 + kz;
                assert_eq!(a.proc_of((hex * 12) as u32), (i * 3 + j) as u32);
            }
        }
    }
}
