//! Property tests for the extension modules: weighted scheduling, the
//! latency/async execution models, the exact optimizer, edge coloring,
//! KBA, and schedule serialization.

use proptest::prelude::*;

use sweep_scheduling::core::{
    delayed_level_priorities, from_csv, optimal_makespan_fixed_assignment,
    optimal_sweep_makespan, random_delays, to_csv, validate_weighted,
    weighted_list_schedule, weighted_lower_bound, weighted_random_delay_priorities,
};
use sweep_scheduling::prelude::*;
use sweep_scheduling::sim::{async_makespan, color_edges, is_proper_coloring, max_degree};

fn small_instance() -> impl Strategy<Value = (SweepInstance, usize, u64)> {
    (2usize..40, 1usize..4, 2usize..6, 0u64..500, 1usize..8).prop_map(
        |(n, k, depth, seed, m)| {
            (SweepInstance::random_layered(n, k, depth, 2, seed), m, seed)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn weighted_schedules_always_feasible_and_bounded(
        (inst, m, seed) in small_instance(),
        wmax in 2u64..12,
    ) {
        let n = inst.num_cells();
        let weights: Vec<u64> = (0..n as u64).map(|v| 1 + (v * 7 + seed) % wmax).collect();
        let a = Assignment::random_cells(n, m, seed);
        let s = weighted_random_delay_priorities(&inst, a, &weights, seed);
        prop_assert!(validate_weighted(&inst, &s, &weights).is_ok());
        let lb = weighted_lower_bound(&inst, &weights, m);
        prop_assert!(s.makespan >= lb);
        // Work-conserving upper bound: total work.
        let total: u64 = weights.iter().sum::<u64>() * inst.num_directions() as u64;
        prop_assert!(s.makespan <= total);
    }

    #[test]
    fn weighted_single_proc_exact((inst, _m, seed) in small_instance()) {
        let n = inst.num_cells();
        let weights: Vec<u64> = (0..n as u64).map(|v| 1 + v % 5).collect();
        let prio = vec![0i64; inst.num_tasks()];
        let s = weighted_list_schedule(&inst, Assignment::single(n), &weights, &prio);
        let total: u64 = weights.iter().sum::<u64>() * inst.num_directions() as u64;
        prop_assert_eq!(s.makespan, total);
        let _ = seed;
    }

    #[test]
    fn async_zero_latency_bounded_by_serial((inst, m, seed) in small_instance()) {
        let n = inst.num_cells();
        let a = Assignment::random_cells(n, m, seed);
        let d = random_delays(inst.num_directions(), seed);
        let prio = delayed_level_priorities(&inst, &d);
        let r = async_makespan(&inst, &a, &prio, None, 0.0);
        prop_assert!(r.makespan <= inst.num_tasks() as f64 + 1e-9);
        prop_assert!(r.makespan >= (inst.num_tasks() as f64 / m as f64).floor());
        prop_assert_eq!(r.messages, c1_interprocessor_edges(&inst, &a));
    }

    /// Latency cannot collapse the makespan below half its zero-latency
    /// value. (Strict monotonicity is *not* a theorem — greedy dispatch
    /// has Graham-style anomalies where extra delay reorders work
    /// beneficially — but the list-scheduling 2-approximation gives
    /// `r0 ≤ 2·OPT_0 ≤ 2·OPT_lat ≤ 2·r_lat`.)
    #[test]
    fn async_latency_never_halves_makespan(
        (inst, m, seed) in small_instance(),
        lat in 0.0f64..8.0,
    ) {
        let n = inst.num_cells();
        let a = Assignment::random_cells(n, m, seed);
        let prio = vec![0i64; inst.num_tasks()];
        let r0 = async_makespan(&inst, &a, &prio, None, 0.0);
        let r1 = async_makespan(&inst, &a, &prio, None, lat);
        prop_assert!(2.0 * r1.makespan + 1e-9 >= r0.makespan);
    }

    #[test]
    fn latency_model_matches_async_messages((inst, m, seed) in small_instance()) {
        let n = inst.num_cells();
        let a = Assignment::random_cells(n, m, seed);
        let s = greedy_schedule(&inst, a.clone());
        let rep = latency_makespan(&inst, &s, 1.0);
        prop_assert_eq!(rep.messages, c1_interprocessor_edges(&inst, &a));
    }

    #[test]
    fn schedule_csv_round_trips((inst, m, seed) in small_instance()) {
        let a = Assignment::random_cells(inst.num_cells(), m, seed);
        let s = Algorithm::RandomDelayPriorities.run(&inst, a, seed);
        let text = to_csv(&inst, &s);
        let back = from_csv(&text, inst.num_cells(), inst.num_directions()).unwrap();
        prop_assert_eq!(back.starts(), s.starts());
        prop_assert!(validate(&inst, &back).is_ok());
    }

    #[test]
    fn coloring_always_proper_and_bounded(
        m in 2usize..12,
        raw in proptest::collection::vec((0u32..12, 0u32..12), 0..80),
    ) {
        let edges: Vec<(u32, u32)> = raw
            .into_iter()
            .map(|(a, b)| (a % m as u32, b % m as u32))
            .filter(|(a, b)| a != b)
            .collect();
        let (colors, nc) = color_edges(m, &edges);
        prop_assert!(is_proper_coloring(m, &edges, &colors));
        let delta = max_degree(m, &edges);
        if delta > 0 {
            prop_assert!(nc < 2 * delta);
            prop_assert!(nc >= delta);
        } else {
            prop_assert_eq!(nc, 0);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// OPT is sandwiched between every lower bound and every feasible
    /// schedule, and the fixed-assignment optimum dominates the free one.
    #[test]
    fn exact_optimum_sandwich(n in 2usize..7, k in 1usize..3, m in 1usize..4, seed in 0u64..60) {
        let inst = SweepInstance::random_layered(n, k, 2, 2, seed);
        let opt = optimal_sweep_makespan(&inst, m);
        let lb = lower_bounds(&inst, m).best() as u32;
        prop_assert!(opt >= lb);
        let a = Assignment::random_cells(n, m, seed);
        let fixed = optimal_makespan_fixed_assignment(&inst, &a);
        prop_assert!(fixed >= opt, "free optimum beats fixed");
        let s = greedy_schedule(&inst, a);
        prop_assert!(s.makespan() >= fixed, "greedy beats its own fixed optimum");
    }
}

#[test]
fn kba_assignment_matches_manual_grid_math() {
    use sweep_scheduling::mesh::{generate, Carve};
    let mut cfg = GeneratorConfig::cube(3, 1);
    cfg.jitter = 0.0;
    cfg.carve = Carve::None;
    let mesh = generate(&cfg).unwrap();
    let a = kba_assignment(3, 3, 3, mesh.num_cells(), 9);
    // 3x3 processor grid over 3x3 columns: column (i, j) -> proc i*3+j.
    for i in 0..3usize {
        for j in 0..3usize {
            for kz in 0..3usize {
                let hex = (i * 3 + j) * 3 + kz;
                assert_eq!(a.proc_of((hex * 12) as u32), (i * 3 + j) as u32);
            }
        }
    }
}
