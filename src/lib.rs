//! # sweep-scheduling — provable parallel sweep scheduling on unstructured meshes
//!
//! A full reproduction of Anil Kumar, Marathe, Parthasarathy, Srinivasan &
//! Zust, *Provable Algorithms for Parallel Sweep Scheduling on Unstructured
//! Meshes* (IPPS 2005), including every substrate the paper depends on:
//!
//! | crate | contents |
//! |---|---|
//! | [`mesh`] | synthetic unstructured tetrahedral/triangular meshes, presets for the paper's four evaluation meshes |
//! | [`quadrature`] | level-symmetric S_n and random direction sets |
//! | [`dag`] | per-direction dependence DAGs, levels, descendant counts, instance generators |
//! | [`partition`] | multilevel graph partitioner (METIS stand-in) for block assignment |
//! | [`core`] | Algorithms 1–3 (Random Delay family), Level/Descendant/DFDS heuristics, list-scheduling engine, C1/C2 metrics, lower bounds |
//! | [`sim`] | step-synchronous simulator, edge-coloring communication rounds, threaded sweep executor, toy S_n transport solver |
//! | [`analyze`] | static analysis: SW0xx diagnostics (cycle witnesses, collect-all schedule validation, bound certification, message-race detection, parallel-determinism certification) with text/JSON/SARIF output |
//! | [`pool`] | dependency-free work-stealing thread pool backing parallel DAG induction, best-of-`b` trials, and the bench grids |
//!
//! ## Quickstart
//!
//! ```
//! use sweep_scheduling::prelude::*;
//!
//! // A small unstructured mesh and an S2 (8-direction) quadrature.
//! let mesh = MeshPreset::Tetonly.build_scaled(0.02).unwrap();
//! let quad = QuadratureSet::level_symmetric(2).unwrap();
//! let (instance, _) = SweepInstance::from_mesh(&mesh, &quad, "quickstart");
//!
//! // Schedule on 16 processors with the paper's practical algorithm.
//! let assignment = Assignment::random_cells(instance.num_cells(), 16, 1);
//! let schedule = Algorithm::RandomDelayPriorities.run(&instance, assignment, 2);
//! validate(&instance, &schedule).unwrap();
//!
//! // Empirically the makespan stays within ~3x of the lower bound.
//! let lb = lower_bounds(&instance, 16);
//! assert!((schedule.makespan() as u64) < 4 * lb.best());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub use sweep_analyze as analyze;
pub use sweep_core as core;
pub use sweep_dag as dag;
pub use sweep_mesh as mesh;
pub use sweep_partition as partition;
pub use sweep_pool as pool;
pub use sweep_quadrature as quadrature;
pub use sweep_sim as sim;

/// One-stop imports for applications.
pub mod prelude {
    pub use sweep_analyze::{
        analyze_all, analyze_assignment, analyze_instance, analyze_schedule, AnalyzeOptions, Code,
        Report, Severity,
    };
    pub use sweep_core::{
        approx_ratio, c1_interprocessor_edges, c2_comm_delay, greedy_schedule, kba_assignment,
        list_schedule, lower_bounds, optimal_sweep_makespan, random_delay, random_delay_priorities,
        render_gantt, replicate, validate, validate_weighted, weighted_lower_bound,
        weighted_random_delay_priorities, Algorithm, Assignment, AssignmentDraw, BestOfTrials,
        PriorityScheme, Schedule,
    };
    pub use sweep_core::{best_of_trials, best_of_trials_seq};
    pub use sweep_dag::{dag_stats, instance_stats, SweepInstance, TaskDag, TaskId};
    pub use sweep_mesh::{
        quality_report, to_vtk, GeneratorConfig, MeshPreset, SweepMesh, TetMesh, TriMesh2d, Vec3,
    };
    pub use sweep_partition::{block_partition, CsrGraph, PartitionOptions};
    pub use sweep_pool::{set_global_threads, ThreadPool};
    pub use sweep_quadrature::{DirectionId, QuadratureSet};
    pub use sweep_sim::{
        execute_parallel, latency_makespan, simulate, CommModel, Material, SimConfig,
        TransportSolver,
    };
}
