//! # sweep-json — the workspace's shared mini-JSON codec
//!
//! Escaping for the emitters and a small recursive-descent parser for
//! the validators, the serving layer, and round-trip tests.
//! Dependency-free by design; handles the full JSON grammar (including
//! `\uXXXX` escapes and surrogate pairs) with a fixed nesting limit.
//!
//! Historically this lived inside `sweep-telemetry`; it is now a crate
//! of its own so `sweep-serve`, `sweep-faults`, and `sweep-analyze` can
//! share one implementation instead of growing private copies
//! (`sweep_telemetry::json` remains available as a re-export).
//!
//! ```
//! let v = sweep_json::parse(r#"{"makespan": 42, "cache": "hit"}"#).unwrap();
//! assert_eq!(v.get("makespan").and_then(sweep_json::Value::as_f64), Some(42.0));
//! assert_eq!(v.get("cache").and_then(sweep_json::Value::as_str), Some("hit"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, as `f64`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order (duplicate keys are kept).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object member lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The boolean value, if this is `true` or `false`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if this is a number with an
    /// exact `u64` representation (no fraction, no overflow).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }
}

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Parses a complete JSON document. Errors carry a byte offset.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".to_string());
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("bad number at byte {start}"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require \uXXXX low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("invalid low surrogate".to_string());
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| "invalid \\u escape".to_string())?,
                            );
                        }
                        other => {
                            return Err(format!("bad escape '\\{}'", other as char));
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8".to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    if (c as u32) < 0x20 {
                        return Err(format!("raw control character at byte {}", self.pos));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or("truncated \\u escape")?;
        let text = std::str::from_utf8(slice).map_err(|_| "bad \\u escape".to_string())?;
        let v = u32::from_str_radix(text, 16).map_err(|_| format!("bad \\u escape '{text}'"))?;
        self.pos = end;
        Ok(v)
    }

    fn array(&mut self, depth: usize) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_arrays_objects() {
        let v = parse(r#"{"a": [1, 2.5, -3e2], "b": "x\ny", "c": null, "d": true}"#).unwrap();
        assert_eq!(v.get("c"), Some(&Value::Null));
        assert_eq!(v.get("d"), Some(&Value::Bool(true)));
        assert_eq!(v.get("b").and_then(Value::as_str), Some("x\ny"));
        let a = v.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(a[2].as_f64(), Some(-300.0));
    }

    #[test]
    fn unicode_escapes_and_surrogates() {
        let v = parse(r#""é 😀""#).unwrap();
        assert_eq!(v.as_str(), Some("é 😀"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1, ]x",
            "{\"a\" 1}",
            "\"unterminated",
            "01a",
            "[1] trailing",
            "{\"a\": \u{1}}",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "a\"b\\c\nd\te\u{7}f — ünïcode";
        let doc = format!("\"{}\"", escape(nasty));
        assert_eq!(parse(&doc).unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(10) + &"]".repeat(10);
        assert!(parse(&ok).is_ok());
    }
}
