//! Fault-aware asynchronous execution: [`async_makespan`]
//! (`async_exec`) generalized to imperfect clusters.
//!
//! [`async_makespan_faulty`] replays the same event-driven distributed
//! execution model under a deterministic [`FaultPlan`]:
//!
//! * **Lossy links.** Every cross-processor face-flux message is sent
//!   through an ack/timeout/retry protocol: a delivery attempt may be
//!   dropped (per-attempt hash of the plan seed) or blocked by a
//!   transient link partition; the sender times out after
//!   `rto · 2^attempt` (exponential backoff, `rto = max(min_rto,
//!   2·latency)`) and retransmits. Duplicated deliveries are discarded
//!   at the receiver (exactly-once at the consumer), and per-message
//!   jitter models reordering.
//! * **Stragglers.** Tasks started inside a slowdown window take
//!   `factor ×` their nominal duration.
//! * **Crashes and recovery.** A crashed processor aborts its in-flight
//!   task and never works again. Every cell it owned with incomplete
//!   work is reassigned *whole* to the least-loaded survivor —
//!   preserving the paper's invariant that all `k` copies of a cell
//!   live on one processor in every surviving epoch — and the
//!   already-computed upstream fluxes those recovered tasks need are
//!   refetched from the durable flux store (modelled as a resend from
//!   each producer's processor, one failover timeout later).
//!
//! With an **empty plan the execution is bit-identical to
//! [`async_makespan`]** — same makespan, same message count, same
//! trace — which the property tests pin down across presets and seeds.
//! The engine emits a [`FaultReport`] (degraded makespan, retry /
//! recovery counters, bounded fault timeline) next to the usual
//! [`AsyncTrace`], which `sweep-analyze` certifies precedence-correct
//! and exactly-once.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use sweep_core::Assignment;
use sweep_dag::{BitSet, SweepInstance, TaskId};
use sweep_faults::{FaultConfig, FaultKind, FaultPlan, FaultReport};
use sweep_telemetry as telemetry;

use crate::async_exec::{async_makespan, AsyncTrace, TraceExec, TraceMessage};

/// Retransmission attempts after which a delivery is forced through
/// (the link is considered healed). With per-attempt drop probability
/// `p < 1` the chance of reaching this is `p^64 ≈ 0`; it exists so a
/// pathological `drop_rate = 1` plan still terminates.
const MAX_ATTEMPTS: u32 = 64;

/// Simulation events, ordered by time. Ties break readiness arrivals
/// (0) before completions (1) before crashes (2), then by processor and
/// payload — the same deterministic order as the fault-free engine,
/// extended with the crash kind.
#[derive(PartialEq)]
struct Ev(f64, u8, u32, u64);
impl Eq for Ev {}
impl PartialOrd for Ev {
    fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(o))
    }
}
impl Ord for Ev {
    fn cmp(&self, o: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&o.0)
            .expect("finite times")
            .then(self.1.cmp(&o.1))
            .then(self.2.cmp(&o.2))
            .then(self.3.cmp(&o.3))
    }
}

struct Engine<'a> {
    instance: &'a SweepInstance,
    plan: &'a FaultPlan,
    priority: &'a [i64],
    weights: Option<&'a [u64]>,
    latency: f64,
    /// Retransmission timeout base (also the failover detection delay).
    rto: f64,
    n: usize,
    m: usize,
    // --- mutable execution state -------------------------------------
    events: BinaryHeap<Reverse<Ev>>,
    ready: Vec<BinaryHeap<Reverse<(i64, u64)>>>,
    indeg: Vec<u32>,
    /// Latest input-arrival time per task.
    avail: Vec<f64>,
    /// Current owner of each cell (starts at the assignment, moves on
    /// crashes — always one processor per cell).
    owner: Vec<u32>,
    /// Cells currently owned per processor (failover balance).
    owned: Vec<u32>,
    alive: BitSet,
    idle: BitSet,
    busy: Vec<f64>,
    completed: BitSet,
    started: BitSet,
    /// Where each completed task ran.
    exec_proc: Vec<u32>,
    /// In-flight task per processor: `(task, finish, trace index)`.
    current: Vec<Option<(u64, f64, usize)>>,
    /// Trace indices of executions aborted by a crash (removed at the
    /// end — an aborted run never completed).
    aborted: Vec<usize>,
    makespan: f64,
    done: usize,
    trace: AsyncTrace,
    report: FaultReport,
}

impl<'a> Engine<'a> {
    fn dur(&self, v: u32) -> f64 {
        self.weights.map_or(1.0, |w| w[v as usize] as f64)
    }

    fn cell_of(&self, task: u64) -> u32 {
        (task % self.n as u64) as u32
    }

    /// Try to start work on (alive, idle) processor `p` at `now`,
    /// skipping stale queue entries (completed / already started /
    /// reassigned away).
    fn start_if_possible(&mut self, p: usize, now: f64) {
        if !self.alive.contains(p) || !self.idle.contains(p) {
            return;
        }
        while let Some(Reverse((_, task))) = self.ready[p].pop() {
            let ti = task as usize;
            if self.completed.contains(ti) || self.started.contains(ti) {
                continue;
            }
            let v = self.cell_of(task);
            if self.owner[v as usize] != p as u32 {
                continue;
            }
            let mut d = self.dur(v);
            let factor = self.plan.slowdown_factor(p as u32, now);
            if factor != 1.0 {
                d *= factor;
                self.report.slowed_tasks += 1;
                let dir = task / self.n as u64;
                self.report.record(
                    now,
                    p as u32,
                    FaultKind::SlowTask,
                    format!("task (cell {v}, dir {dir}) slowed {factor}x"),
                );
            }
            self.started.insert(ti);
            self.idle.remove(p);
            self.busy[p] += d;
            let idx = self.trace.execs.len();
            self.trace.execs.push(TraceExec {
                task,
                proc: p as u32,
                start: now,
                finish: now + d,
            });
            self.current[p] = Some((task, now + d, idx));
            self.events.push(Reverse(Ev(now + d, 1, p as u32, task)));
            return;
        }
    }

    /// Delivers the flux `from → wt` from processor `p` (sent at `t`)
    /// to processor `q` through the lossy link, simulating the
    /// ack/timeout/retry protocol, and returns the arrival time of the
    /// first successful attempt.
    fn deliver(&mut self, from: u64, p: usize, t: f64, wt: usize, q: usize) -> f64 {
        let mut send = t;
        let mut attempt = 0u32;
        loop {
            let dropped = attempt < MAX_ATTEMPTS
                && (self.plan.drops_attempt(from, wt as u64, attempt)
                    || self.plan.partitioned(p as u32, q as u32, send));
            if !dropped {
                let mut arrive = send + self.latency;
                let jitter = self.plan.jitter_of(from, wt as u64, attempt);
                if jitter > 0.0 {
                    arrive += jitter;
                }
                self.report.messages += 1;
                self.trace.messages.push(TraceMessage {
                    from_task: from,
                    from_proc: p as u32,
                    send,
                    to_task: wt as u64,
                    to_proc: q as u32,
                    arrive,
                });
                if self.plan.duplicates(from, wt as u64) {
                    self.report.redeliveries += 1;
                    self.report.record(
                        arrive,
                        q as u32,
                        FaultKind::Duplicate,
                        format!("duplicate flux of task {from} discarded"),
                    );
                }
                return arrive;
            }
            self.report.dropped += 1;
            self.report.retries += 1;
            self.report.record(
                send,
                p as u32,
                FaultKind::Drop,
                format!("flux of task {from} to proc {q} lost (attempt {attempt})"),
            );
            send += sweep_faults::backoff::delay(self.rto, attempt);
            attempt += 1;
        }
    }

    /// Processes a completion of `task` on alive processor `p` at `t`:
    /// notify successors, route cross-processor fluxes through the
    /// retry protocol, and start the next local task.
    fn complete(&mut self, p: usize, t: f64, task: u64) {
        let ti = task as usize;
        self.current[p] = None;
        self.idle.insert(p);
        self.completed.insert(ti);
        self.exec_proc[ti] = p as u32;
        self.makespan = self.makespan.max(t);
        self.done += 1;
        let (v, dir) = TaskId(task).unpack(self.n);
        let succs: Vec<u32> = self.instance.dag(dir as usize).successors(v).to_vec();
        for w in succs {
            let wt = TaskId::pack(w, dir, self.n).index();
            let wp = self.owner[w as usize] as usize;
            let arrives = if wp == p {
                t
            } else {
                self.deliver(task, p, t, wt, wp)
            };
            self.avail[wt] = self.avail[wt].max(arrives);
            self.indeg[wt] -= 1;
            if self.indeg[wt] == 0 {
                // Ready once the last-arriving input lands.
                if self.avail[wt] <= t && wp == p {
                    self.ready[p].push(Reverse((self.priority[wt], wt as u64)));
                } else {
                    self.events
                        .push(Reverse(Ev(self.avail[wt].max(t), 0, wp as u32, wt as u64)));
                }
            }
        }
        self.start_if_possible(p, t);
    }

    /// The surviving processor owning the fewest cells (ties: lowest
    /// id) — the failover target for a reassigned cell.
    fn pick_survivor(&self) -> u32 {
        (0..self.m)
            .filter(|&q| self.alive.contains(q))
            .min_by_key(|&q| (self.owned[q], q))
            .expect("at least one survivor") as u32
    }

    /// Processes the crash of processor `p` at time `t`: abort its
    /// in-flight task, reassign every incomplete cell it owns to a
    /// survivor (whole cells — the one-processor-per-cell invariant),
    /// refetch the durable fluxes those tasks had already received, and
    /// re-enqueue recovered ready tasks one failover timeout later.
    fn crash(&mut self, p: usize, t: f64) {
        if !self.alive.contains(p) {
            return;
        }
        if self.alive.count_ones() <= 1 {
            self.report.record(
                t,
                p as u32,
                FaultKind::CrashSkipped,
                "planned crash skipped: last surviving processor".to_string(),
            );
            return;
        }
        self.alive.remove(p);
        self.report.crashed_procs.push(p as u32);
        self.report.record(
            t,
            p as u32,
            FaultKind::Crash,
            "processor crashed".to_string(),
        );
        if let Some((task, finish, idx)) = self.current[p].take() {
            let ti = task as usize;
            self.started.remove(ti);
            // Keep only the time actually burned on the doomed run.
            self.busy[p] -= finish - t;
            self.aborted.push(idx);
            self.report.record(
                t,
                p as u32,
                FaultKind::Abort,
                format!("in-flight task {task} aborted"),
            );
        }
        let k = self.instance.num_directions();
        let detect = t + self.rto;
        for v in 0..self.n {
            if self.owner[v] != p as u32 {
                continue;
            }
            let incomplete: Vec<u32> = (0..k as u32)
                .filter(|&d| {
                    !self
                        .completed
                        .contains(TaskId::pack(v as u32, d, self.n).index())
                })
                .collect();
            if incomplete.is_empty() {
                continue; // fully swept cell: nothing to recover
            }
            let q = self.pick_survivor();
            self.owner[v] = q;
            self.owned[q as usize] += 1;
            self.report.reassigned_cells += 1;
            self.report.record(
                t,
                q,
                FaultKind::Reassign,
                format!("cell {v} reassigned from proc {p} to proc {q}"),
            );
            for d in incomplete {
                let wt = TaskId::pack(v as u32, d, self.n).index();
                self.report.recovered_tasks += 1;
                // Refetch already-produced inputs from the durable flux
                // store: anything the old owner had received (or
                // produced locally) died with it.
                let mut fetched = 0u32;
                let preds: Vec<u32> = self
                    .instance
                    .dag(d as usize)
                    .predecessors(v as u32)
                    .to_vec();
                for u in preds {
                    let ut = TaskId::pack(u, d, self.n).index();
                    if self.completed.contains(ut) && self.exec_proc[ut] != q {
                        self.report.messages += 1;
                        self.report.retries += 1;
                        self.trace.messages.push(TraceMessage {
                            from_task: ut as u64,
                            from_proc: self.exec_proc[ut],
                            send: detect,
                            to_task: wt as u64,
                            to_proc: q,
                            arrive: detect + self.latency,
                        });
                        fetched += 1;
                    }
                }
                if fetched > 0 {
                    self.report.record(
                        detect,
                        q,
                        FaultKind::Refetch,
                        format!("{fetched} flux input(s) of task {wt} refetched"),
                    );
                }
                let ready_at = if fetched > 0 {
                    detect + self.latency
                } else {
                    detect
                };
                self.avail[wt] = self.avail[wt].max(ready_at);
                if self.indeg[wt] == 0 && !self.started.contains(wt) {
                    self.events
                        .push(Reverse(Ev(self.avail[wt], 0, q, wt as u64)));
                }
            }
        }
    }
}

/// [`async_makespan`] under a [`FaultPlan`]: lossy retried messaging,
/// stragglers, link partitions, crashes with work reassignment. Returns
/// the [`FaultReport`] and the trace of *successful* executions and
/// *delivered* messages (`sweep-analyze` certifies it).
///
/// With `plan.is_empty()` the result is bit-identical to the fault-free
/// simulator (same makespan, messages, busy vector, and trace).
///
/// ```
/// use sweep_core::Assignment;
/// use sweep_dag::SweepInstance;
/// use sweep_faults::FaultPlan;
/// use sweep_sim::{async_makespan, async_makespan_faulty};
///
/// let inst = SweepInstance::random_layered(60, 4, 6, 2, 1);
/// let a = Assignment::random_cells(60, 8, 2);
/// let prio = vec![0i64; inst.num_tasks()];
/// let (fr, _) = async_makespan_faulty(&inst, &a, &prio, None, 0.5, &FaultPlan::none());
/// let base = async_makespan(&inst, &a, &prio, None, 0.5);
/// assert_eq!(fr.makespan, base.makespan);
/// assert_eq!(fr.messages, base.messages);
/// ```
///
/// # Panics
/// Panics on mismatched array lengths or negative latency, like the
/// fault-free engine, and if the plan leaves tasks unrecoverable (a
/// plan from [`FaultPlan::random`] never does).
pub fn async_makespan_faulty(
    instance: &SweepInstance,
    assignment: &Assignment,
    priority: &[i64],
    weights: Option<&[u64]>,
    latency: f64,
    plan: &FaultPlan,
) -> (FaultReport, AsyncTrace) {
    let _span = telemetry::span!("sim.faulty.exec");
    let n = instance.num_cells();
    let k = instance.num_directions();
    let total = n * k;
    assert_eq!(priority.len(), total, "one priority per task");
    assert!(latency >= 0.0, "latency must be non-negative");
    if let Some(w) = weights {
        assert_eq!(w.len(), n, "one weight per cell");
        assert!(w.iter().all(|&x| x > 0), "weights must be positive");
    }
    let m = assignment.num_procs();

    let mut indeg = vec![0u32; total];
    for (i, dag) in instance.dags().iter().enumerate() {
        for v in 0..n as u32 {
            indeg[TaskId::pack(v, i as u32, n).index()] = dag.in_degree(v);
        }
    }

    let mut ready: Vec<BinaryHeap<Reverse<(i64, u64)>>> = vec![BinaryHeap::new(); m];
    for t in 0..total as u64 {
        if indeg[t as usize] == 0 {
            let v = (t % n as u64) as u32;
            ready[assignment.proc_of(v) as usize].push(Reverse((priority[t as usize], t)));
        }
    }

    let mut owned = vec![0u32; m];
    for v in 0..n as u32 {
        owned[assignment.proc_of(v) as usize] += 1;
    }

    let mut engine = Engine {
        instance,
        plan,
        priority,
        weights,
        latency,
        rto: plan.min_rto.max(2.0 * latency),
        n,
        m,
        events: BinaryHeap::new(),
        ready,
        indeg,
        avail: vec![0.0f64; total],
        owner: assignment.as_slice().to_vec(),
        owned,
        alive: BitSet::full(m),
        idle: BitSet::full(m),
        busy: vec![0.0f64; m],
        completed: BitSet::new(total),
        started: BitSet::new(total),
        exec_proc: vec![u32::MAX; total],
        current: vec![None; m],
        aborted: Vec::new(),
        makespan: 0.0,
        done: 0,
        trace: AsyncTrace::default(),
        report: FaultReport::default(),
    };

    for c in &plan.crashes {
        if (c.proc as usize) < m && c.at.is_finite() && c.at >= 0.0 {
            engine.events.push(Reverse(Ev(c.at, 2, c.proc, 0)));
        }
    }

    for p in 0..m {
        engine.start_if_possible(p, 0.0);
    }

    while let Some(Reverse(Ev(t, kind, p, payload))) = engine.events.pop() {
        let pu = p as usize;
        match kind {
            0 => {
                // Readiness arrival: enqueue unless stale (dead target,
                // reassigned cell, duplicate, or already running).
                let ti = payload as usize;
                if !engine.alive.contains(pu)
                    || engine.completed.contains(ti)
                    || engine.started.contains(ti)
                {
                    continue;
                }
                let v = engine.cell_of(payload);
                if engine.owner[v as usize] != p {
                    continue;
                }
                engine.ready[pu].push(Reverse((engine.priority[ti], payload)));
                engine.start_if_possible(pu, t);
            }
            1 => {
                // Completion — unless the processor died mid-run (the
                // abort was handled by the crash; the task re-runs
                // elsewhere).
                if engine.alive.contains(pu) {
                    engine.complete(pu, t, payload);
                }
            }
            _ => engine.crash(pu, t),
        }
    }
    assert_eq!(
        engine.done, total,
        "all tasks must complete (recovery must cover every crash)"
    );

    // Drop aborted executions from the trace: they never completed.
    engine.aborted.sort_unstable_by(|a, b| b.cmp(a));
    for idx in engine.aborted.drain(..) {
        engine.trace.execs.remove(idx);
    }

    let mut report = engine.report;
    report.makespan = engine.makespan;
    report.busy = engine.busy;
    // Guard the empty instance (makespan 0): define utilization as 1.0,
    // consistent with `Schedule::utilization` — never NaN.
    report.utilization = if engine.makespan > 0.0 {
        report.busy.iter().sum::<f64>() / (m as f64 * engine.makespan)
    } else {
        1.0
    };
    if telemetry::enabled() {
        telemetry::counter_add("sim.faulty.retries", report.retries);
        telemetry::counter_add("sim.faulty.redeliveries", report.redeliveries);
        telemetry::counter_add("sim.faulty.dropped", report.dropped);
        telemetry::counter_add("sim.faulty.recovered_tasks", report.recovered_tasks);
        telemetry::counter_add("sim.faulty.reassigned_cells", report.reassigned_cells);
        telemetry::counter_add("sim.faulty.crashes", report.crashed_procs.len() as u64);
    }
    (report, engine.trace)
}

/// Publishes the fault structure of a finished faulty run to the global
/// telemetry collector: each crash becomes a virtual-clock span from
/// the crash to the degraded makespan on the dead processor's track,
/// each slowdown window a span over its interval. No-op when telemetry
/// is disabled.
pub fn publish_fault_report(plan: &FaultPlan, report: &FaultReport) {
    if !telemetry::enabled() {
        return;
    }
    for &p in &report.crashed_procs {
        if let Some(at) = plan.crash_time(p) {
            let len = (report.makespan - at).max(0.0);
            telemetry::virtual_span("sim.faulty.crash_window", p, at, len);
        }
    }
    for w in &plan.slowdowns {
        telemetry::virtual_span(
            "sim.faulty.slowdown_window",
            w.proc,
            w.start,
            w.end - w.start,
        );
    }
}

/// One sample of a degradation curve: the makespan (and recovery cost)
/// at a given fault rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradationPoint {
    /// The injected crash/drop rate (x-axis).
    pub rate: f64,
    /// Degraded makespan under a plan sampled at that rate.
    pub makespan: f64,
    /// Fault-free makespan of the same configuration (same for every
    /// point).
    pub fault_free: f64,
    /// Retransmissions observed.
    pub retries: u64,
    /// Crash-recovered tasks observed.
    pub recovered_tasks: u64,
}

/// Measures `makespan(fault_rate)`: for each rate, samples a
/// [`FaultPlan`] from `cfg.at_rate(rate)` (horizon = the fault-free
/// makespan) and runs the faulty engine. Deterministic in `seed`.
#[allow(clippy::too_many_arguments)] // mirrors async_makespan's signature + fault knobs
pub fn degradation_curve(
    instance: &SweepInstance,
    assignment: &Assignment,
    priority: &[i64],
    weights: Option<&[u64]>,
    latency: f64,
    cfg: &FaultConfig,
    rates: &[f64],
    seed: u64,
) -> Vec<DegradationPoint> {
    let base = async_makespan(instance, assignment, priority, weights, latency);
    let horizon = base.makespan.max(1.0);
    rates
        .iter()
        .map(|&rate| {
            let plan = FaultPlan::random(assignment.num_procs(), horizon, &cfg.at_rate(rate), seed);
            let (r, _) =
                async_makespan_faulty(instance, assignment, priority, weights, latency, &plan);
            DegradationPoint {
                rate,
                makespan: r.makespan,
                fault_free: base.makespan,
                retries: r.retries,
                recovered_tasks: r.recovered_tasks,
            }
        })
        .collect()
}

/// Renders a degradation curve as CSV (`rate,makespan,fault_free,
/// degradation,retries,recovered_tasks`).
pub fn degradation_csv(points: &[DegradationPoint]) -> String {
    let mut out = String::from("rate,makespan,fault_free,degradation,retries,recovered_tasks\n");
    for p in points {
        out.push_str(&format!(
            "{},{},{},{:.4},{},{}\n",
            p.rate,
            p.makespan,
            p.fault_free,
            p.makespan / p.fault_free.max(f64::MIN_POSITIVE),
            p.retries,
            p.recovered_tasks
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::async_exec::async_makespan_traced;
    use sweep_core::{delayed_level_priorities, random_delays};
    use sweep_faults::{CrashFault, LinkPartition, SlowdownWindow};
    use sweep_mesh::MeshPreset;
    use sweep_quadrature::QuadratureSet;

    fn rdp_priorities(inst: &SweepInstance, seed: u64) -> Vec<i64> {
        let d = random_delays(inst.num_directions(), seed);
        delayed_level_priorities(inst, &d)
    }

    fn preset_instance(preset: MeshPreset) -> SweepInstance {
        let mesh = preset.build_scaled(0.01).expect("preset builds");
        let quad = QuadratureSet::level_symmetric(2).expect("S2");
        let (inst, _) = SweepInstance::from_mesh(&mesh, &quad, preset.name());
        inst
    }

    /// Satellite: an empty `FaultPlan` reproduces `async_makespan`
    /// exactly — bit-identical makespan, messages, busy, and trace —
    /// across 3 presets × 3 seeds.
    #[test]
    fn empty_plan_is_bit_identical_to_async_across_presets_and_seeds() {
        for preset in [
            MeshPreset::Tetonly,
            MeshPreset::WellLogging,
            MeshPreset::Long,
        ] {
            let inst = preset_instance(preset);
            for seed in [1u64, 2, 3] {
                let a = Assignment::random_cells(inst.num_cells(), 8, seed);
                let prio = rdp_priorities(&inst, seed ^ 0x9E37);
                let latency = 0.5 + seed as f64 * 0.25;
                let (base, base_trace) = async_makespan_traced(&inst, &a, &prio, None, latency);
                let (fr, trace) =
                    async_makespan_faulty(&inst, &a, &prio, None, latency, &FaultPlan::none());
                assert_eq!(fr.makespan, base.makespan, "{preset:?} seed {seed}");
                assert_eq!(fr.messages, base.messages, "{preset:?} seed {seed}");
                assert_eq!(fr.busy, base.busy, "{preset:?} seed {seed}");
                assert_eq!(fr.utilization, base.utilization, "{preset:?} seed {seed}");
                assert_eq!(trace, base_trace, "{preset:?} seed {seed}: traces differ");
                assert_eq!(fr.retries, 0);
                assert_eq!(fr.recovered_tasks, 0);
                assert!(fr.timeline.is_empty());
            }
        }
    }

    #[test]
    fn empty_plan_matches_with_weights() {
        let inst = SweepInstance::random_layered(80, 3, 8, 2, 5);
        let a = Assignment::random_cells(80, 6, 9);
        let prio = rdp_priorities(&inst, 4);
        let w: Vec<u64> = (0..80).map(|i| 1 + (i % 5) as u64).collect();
        let (base, base_trace) = async_makespan_traced(&inst, &a, &prio, Some(&w), 1.5);
        let (fr, trace) =
            async_makespan_faulty(&inst, &a, &prio, Some(&w), 1.5, &FaultPlan::none());
        assert_eq!(fr.makespan, base.makespan);
        assert_eq!(trace, base_trace);
    }

    /// A crash mid-run: every task still completes exactly once, the
    /// makespan degrades but stays finite, and ownership of every cell
    /// stays unique (the trace shows one processor per cell per epoch).
    #[test]
    fn crash_recovery_completes_every_task_exactly_once() {
        let inst = SweepInstance::random_layered(120, 4, 10, 2, 7);
        let a = Assignment::random_cells(120, 8, 3);
        let prio = rdp_priorities(&inst, 2);
        let base = async_makespan(&inst, &a, &prio, None, 1.0);
        let mut plan = FaultPlan::none();
        plan.crashes.push(CrashFault {
            proc: 2,
            at: base.makespan * 0.3,
        });
        plan.crashes.push(CrashFault {
            proc: 5,
            at: base.makespan * 0.5,
        });
        let (fr, trace) = async_makespan_faulty(&inst, &a, &prio, None, 1.0, &plan);
        assert_eq!(trace.execs.len(), inst.num_tasks(), "all tasks executed");
        let mut seen: Vec<u64> = trace.execs.iter().map(|e| e.task).collect();
        seen.sort_unstable();
        assert!(seen.windows(2).all(|w| w[0] != w[1]), "exactly once");
        assert!(fr.makespan.is_finite());
        assert!(
            fr.makespan >= base.makespan - 1e-9,
            "faults cannot speed up"
        );
        assert_eq!(fr.crashed_procs, vec![2, 5]);
        assert!(fr.recovered_tasks > 0);
        assert!(fr.reassigned_cells > 0);
        // No execution lands on a crashed processor after its death.
        for e in &trace.execs {
            for c in &plan.crashes {
                if e.proc == c.proc {
                    assert!(
                        e.start < c.at,
                        "proc {} executed task {} after crashing",
                        e.proc,
                        e.task
                    );
                }
            }
        }
    }

    #[test]
    fn crashing_every_processor_keeps_one_survivor() {
        let inst = SweepInstance::random_layered(60, 3, 6, 2, 1);
        let a = Assignment::random_cells(60, 4, 2);
        let prio = vec![0i64; inst.num_tasks()];
        let mut plan = FaultPlan::none();
        for p in 0..4 {
            plan.crashes.push(CrashFault {
                proc: p,
                at: 2.0 + p as f64,
            });
        }
        let (fr, trace) = async_makespan_faulty(&inst, &a, &prio, None, 0.5, &plan);
        assert_eq!(trace.execs.len(), inst.num_tasks());
        assert_eq!(fr.crashed_procs.len(), 3, "last crash skipped");
        assert!(fr
            .timeline
            .iter()
            .any(|e| e.kind == FaultKind::CrashSkipped));
    }

    #[test]
    fn dropped_messages_retry_and_degrade_makespan() {
        let inst = SweepInstance::random_layered(100, 4, 8, 2, 11);
        let a = Assignment::random_cells(100, 8, 5);
        let prio = rdp_priorities(&inst, 6);
        let base = async_makespan(&inst, &a, &prio, None, 1.0);
        let cfg = FaultConfig {
            drop_rate: 0.4,
            ..FaultConfig::default()
        };
        let plan = FaultPlan::random(8, base.makespan, &cfg, 13);
        let (fr, trace) = async_makespan_faulty(&inst, &a, &prio, None, 1.0, &plan);
        assert!(fr.retries > 0, "40% drop rate must force retries");
        assert_eq!(fr.dropped, fr.retries);
        assert!(fr.makespan >= base.makespan - 1e-9);
        assert_eq!(trace.execs.len(), inst.num_tasks());
        // Every delivered message still waited at least the base latency.
        for msg in &trace.messages {
            assert!(msg.arrive - msg.send >= 1.0 - 1e-9);
        }
    }

    #[test]
    fn duplicates_are_counted_but_harmless() {
        let inst = SweepInstance::random_layered(80, 3, 8, 2, 3);
        let a = Assignment::random_cells(80, 6, 1);
        let prio = vec![0i64; inst.num_tasks()];
        let mut plan = FaultPlan::none();
        plan.dup_rate = 1.0; // every delivery duplicated
        let (fr, trace) = async_makespan_faulty(&inst, &a, &prio, None, 1.0, &plan);
        assert_eq!(fr.redeliveries, fr.messages, "all messages duplicated");
        assert_eq!(trace.execs.len(), inst.num_tasks());
        let base = async_makespan(&inst, &a, &prio, None, 1.0);
        assert_eq!(
            fr.makespan, base.makespan,
            "discarded duplicates change nothing"
        );
    }

    #[test]
    fn slowdown_window_scales_covered_work() {
        let inst = SweepInstance::identical_chains(10, 1);
        let a = Assignment::single(10);
        let prio = vec![0i64; 10];
        let mut plan = FaultPlan::none();
        plan.slowdowns.push(SlowdownWindow {
            proc: 0,
            start: 0.0,
            end: 1e9,
            factor: 3.0,
        });
        let (fr, _) = async_makespan_faulty(&inst, &a, &prio, None, 0.0, &plan);
        assert!((fr.makespan - 30.0).abs() < 1e-9, "10 tasks at 3x");
        assert_eq!(fr.slowed_tasks, 10);
    }

    #[test]
    fn link_partition_stalls_cross_messages_until_heal() {
        // Chain 0 → 1 across procs 0 → 1; the link is down until t=10.
        let inst = SweepInstance::identical_chains(2, 1);
        let a = Assignment::from_vec(vec![0, 1], 2);
        let prio = vec![0i64; 2];
        let mut plan = FaultPlan::none();
        plan.partitions.push(LinkPartition {
            a: 0,
            b: 1,
            start: 0.0,
            end: 10.0,
        });
        let (fr, _) = async_makespan_faulty(&inst, &a, &prio, None, 0.5, &plan);
        // Task 0 finishes at 1; retries back off past t=10; task 1 runs after.
        assert!(fr.makespan > 10.0, "partition must delay: {}", fr.makespan);
        assert!(fr.retries > 0);
    }

    #[test]
    fn jitter_reorders_but_loses_nothing() {
        let inst = SweepInstance::random_layered(90, 3, 9, 2, 8);
        let a = Assignment::random_cells(90, 6, 4);
        let prio = rdp_priorities(&inst, 9);
        let mut plan = FaultPlan::none();
        plan.jitter = 3.0;
        let (fr, trace) = async_makespan_faulty(&inst, &a, &prio, None, 1.0, &plan);
        assert_eq!(trace.execs.len(), inst.num_tasks());
        for msg in &trace.messages {
            let extra = msg.arrive - msg.send - 1.0;
            assert!((-1e-9..=3.0 + 1e-9).contains(&extra), "jitter bound");
        }
        let base = async_makespan(&inst, &a, &prio, None, 1.0);
        assert!(fr.makespan >= base.makespan - 1e-9);
    }

    #[test]
    fn degradation_curve_is_monotone_at_zero_and_finite() {
        let inst = SweepInstance::random_layered(80, 3, 8, 2, 2);
        let a = Assignment::random_cells(80, 6, 7);
        let prio = rdp_priorities(&inst, 3);
        let cfg = FaultConfig::default();
        let pts = degradation_curve(&inst, &a, &prio, None, 1.0, &cfg, &[0.0, 0.1, 0.3], 21);
        assert_eq!(pts.len(), 3);
        assert_eq!(
            pts[0].makespan, pts[0].fault_free,
            "rate 0 is the fault-free run"
        );
        for p in &pts {
            assert!(p.makespan.is_finite());
            assert!(p.makespan >= p.fault_free - 1e-9);
        }
        let csv = degradation_csv(&pts);
        assert!(csv.starts_with("rate,makespan"));
        assert_eq!(csv.lines().count(), 4);
    }

    #[test]
    fn empty_instance_reports_unit_utilization() {
        let inst = SweepInstance::new(0, vec![sweep_dag::TaskDag::edgeless(0)], "empty");
        let a = Assignment::from_vec(vec![], 3);
        let (fr, trace) = async_makespan_faulty(&inst, &a, &[], None, 1.0, &FaultPlan::none());
        assert_eq!(fr.makespan, 0.0);
        assert!(fr.utilization.is_finite(), "must not be NaN");
        assert_eq!(fr.utilization, 1.0);
        assert!(trace.execs.is_empty());
    }

    #[test]
    fn random_plan_acceptance_shape() {
        // The ISSUE acceptance shape: crash-rate 0.1 on a preset-scale
        // instance — all tasks complete, makespan finite and >= fault-free.
        let inst = preset_instance(MeshPreset::Tetonly);
        let a = Assignment::random_cells(inst.num_cells(), 8, 17);
        let prio = rdp_priorities(&inst, 23);
        let base = async_makespan(&inst, &a, &prio, None, 1.0);
        let cfg = FaultConfig {
            crash_rate: 0.1,
            drop_rate: 0.05,
            ..FaultConfig::default()
        };
        let plan = FaultPlan::random(8, base.makespan, &cfg, 29);
        let (fr, trace) = async_makespan_faulty(&inst, &a, &prio, None, 1.0, &plan);
        assert_eq!(trace.execs.len(), inst.num_tasks());
        assert!(fr.makespan.is_finite());
        assert!(fr.makespan >= base.makespan - 1e-9);
    }
}
