//! Greedy edge coloring of per-step message graphs.
//!
//! The paper (§5) notes that realizing the C2 communication measure
//! requires coordination, "one way this can be done in a distributed
//! manner is to use an edge coloring algorithm \[11\]". Messages exchanged
//! after one computation step form a multigraph over processors; a proper
//! edge coloring groups them into rounds in which every processor sends
//! and receives at most one message. Greedy coloring uses at most
//! `2Δ − 1` colors (Δ = max degree), within 2× of the optimum (≥ Δ).

/// Colors the edges of a multigraph over `m` vertices so that edges
/// sharing an endpoint get distinct colors. Returns `(color_per_edge,
/// num_colors)`; self-loops are rejected.
///
/// # Panics
/// Panics on out-of-range endpoints or self-loops.
pub fn color_edges(m: usize, edges: &[(u32, u32)]) -> (Vec<u32>, usize) {
    for &(a, b) in edges {
        assert!(
            (a as usize) < m && (b as usize) < m,
            "endpoint out of range"
        );
        assert_ne!(a, b, "processors do not message themselves");
    }
    // used[v] holds a bitmask of colors taken at vertex v (chunked u64s).
    let mut used: Vec<Vec<u64>> = vec![Vec::new(); m];
    let mut colors = vec![0u32; edges.len()];
    let mut num_colors = 0usize;
    for (e, &(a, b)) in edges.iter().enumerate() {
        // Smallest color free at both endpoints.
        let c = smallest_free_color(&used[a as usize], &used[b as usize]);
        set_bit(&mut used[a as usize], c);
        set_bit(&mut used[b as usize], c);
        colors[e] = c;
        num_colors = num_colors.max(c as usize + 1);
    }
    (colors, num_colors)
}

fn smallest_free_color(a: &[u64], b: &[u64]) -> u32 {
    let words = a.len().max(b.len()) + 1;
    for w in 0..words {
        let aw = a.get(w).copied().unwrap_or(0);
        let bw = b.get(w).copied().unwrap_or(0);
        let free = !(aw | bw);
        if free != 0 {
            return (w * 64) as u32 + free.trailing_zeros();
        }
    }
    unreachable!("a free color always exists within words+1")
}

fn set_bit(bits: &mut Vec<u64>, c: u32) {
    let w = (c / 64) as usize;
    if bits.len() <= w {
        bits.resize(w + 1, 0);
    }
    bits[w] |= 1u64 << (c % 64);
}

/// Verifies a proper edge coloring (used by tests and debug assertions).
pub fn is_proper_coloring(m: usize, edges: &[(u32, u32)], colors: &[u32]) -> bool {
    use std::collections::HashSet;
    let mut seen: Vec<HashSet<u32>> = vec![HashSet::new(); m];
    for (&(a, b), &c) in edges.iter().zip(colors) {
        if !seen[a as usize].insert(c) || !seen[b as usize].insert(c) {
            return false;
        }
    }
    true
}

/// Maximum vertex degree of the message multigraph — the lower bound on
/// the number of rounds (and exactly the per-step C2 contribution when
/// only sends are counted).
pub fn max_degree(m: usize, edges: &[(u32, u32)]) -> usize {
    let mut deg = vec![0usize; m];
    for &(a, b) in edges {
        deg[a as usize] += 1;
        deg[b as usize] += 1;
    }
    deg.into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn colors_triangle_with_three() {
        let edges = [(0u32, 1u32), (1, 2), (0, 2)];
        let (colors, nc) = color_edges(3, &edges);
        assert!(is_proper_coloring(3, &edges, &colors));
        assert_eq!(nc, 3); // odd cycle needs Δ+1 = 3
    }

    #[test]
    fn colors_star_with_degree() {
        let edges: Vec<(u32, u32)> = (1..6u32).map(|v| (0, v)).collect();
        let (colors, nc) = color_edges(6, &edges);
        assert!(is_proper_coloring(6, &edges, &colors));
        assert_eq!(nc, 5); // star: exactly Δ colors
        assert_eq!(max_degree(6, &edges), 5);
    }

    #[test]
    fn parallel_edges_get_distinct_colors() {
        let edges = [(0u32, 1u32), (0, 1), (0, 1)];
        let (colors, nc) = color_edges(2, &edges);
        assert_eq!(nc, 3);
        let mut c = colors.clone();
        c.sort_unstable();
        c.dedup();
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn greedy_within_two_delta() {
        // Random multigraph sanity: colors ≤ 2Δ - 1.
        let mut edges = Vec::new();
        let mut x: u64 = 12345;
        for _ in 0..500 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = ((x >> 33) % 16) as u32;
            let b = ((x >> 13) % 16) as u32;
            if a != b {
                edges.push((a, b));
            }
        }
        let (colors, nc) = color_edges(16, &edges);
        assert!(is_proper_coloring(16, &edges, &colors));
        let delta = max_degree(16, &edges);
        assert!(nc < 2 * delta, "{nc} > 2·{delta}−1");
        assert!(nc >= delta);
    }

    #[test]
    fn empty_graph_needs_no_colors() {
        let (colors, nc) = color_edges(4, &[]);
        assert!(colors.is_empty());
        assert_eq!(nc, 0);
        assert_eq!(max_degree(4, &[]), 0);
    }

    #[test]
    #[should_panic(expected = "do not message themselves")]
    fn self_loop_panics() {
        color_edges(2, &[(1, 1)]);
    }

    #[test]
    fn many_colors_cross_word_boundary() {
        // Force > 64 colors via 70 parallel edges.
        let edges: Vec<(u32, u32)> = (0..70).map(|_| (0u32, 1u32)).collect();
        let (colors, nc) = color_edges(2, &edges);
        assert_eq!(nc, 70);
        assert!(is_proper_coloring(2, &edges, &colors));
    }
}
