//! Step-synchronous distributed-execution simulator.
//!
//! Replays a feasible [`Schedule`] under an explicit cost model: every
//! computation step costs `p`, followed by one communication round whose
//! duration depends on the chosen [`CommModel`]. The paper's two extreme
//! measures (§5) are `Ignore` (pure makespan) and `MaxSend` (the C2
//! measure: the round takes as long as the busiest sender); the
//! `EdgeColoring` model refines C2 by requiring each processor to also
//! *receive* at most one message per sub-round, using the coloring of
//! [`crate::coloring`].

use sweep_core::Schedule;
use sweep_dag::{SweepInstance, TaskId};
use sweep_telemetry as telemetry;

use crate::coloring::{color_edges, max_degree};

/// How a post-step communication round is charged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommModel {
    /// No communication cost: total time is `p · makespan`.
    Ignore,
    /// The paper's C2: the round costs `c ·` (max messages any processor
    /// sends after the step).
    MaxSend,
    /// One sub-round per edge color: the round costs `c ·` (colors needed
    /// for the step's message multigraph) — between Δ and 2Δ−1 sub-rounds.
    EdgeColoring,
}

/// Cost parameters: `p` per task, `c` per unit of communication.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Cost of computing one task (the paper's uniform `p`).
    pub compute_cost: f64,
    /// Cost of one message sub-round (the paper's uniform `c`).
    pub comm_cost: f64,
    /// The communication model.
    pub model: CommModel,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            compute_cost: 1.0,
            comm_cost: 1.0,
            model: CommModel::MaxSend,
        }
    }
}

/// Outcome of simulating one schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Number of computation steps (= schedule makespan).
    pub compute_steps: u64,
    /// Total messages exchanged (= C1).
    pub total_messages: u64,
    /// Sum over steps of the per-step communication charge (unitless;
    /// multiply by `c`).
    pub comm_units: u64,
    /// End-to-end time under the config: `p·steps + c·comm_units`.
    pub total_time: f64,
}

/// Replays `schedule` on `instance` under `config`.
///
/// # Panics
/// Panics (in debug builds) if the schedule is infeasible; run
/// `sweep_core::validate` first when in doubt.
pub fn simulate(instance: &SweepInstance, schedule: &Schedule, config: &SimConfig) -> SimReport {
    let _span = telemetry::span!("sim.sync");
    // Sampled once so the per-step histogram probes below vanish when
    // telemetry is disabled.
    let recording = telemetry::enabled();
    let n = instance.num_cells();
    let steps = schedule.makespan() as usize;
    // Group cut-edge messages by the source task's completion step.
    let mut per_step: Vec<Vec<(u32, u32)>> = vec![Vec::new(); steps];
    let mut total_messages = 0u64;
    for (i, dag) in instance.dags().iter().enumerate() {
        for (u, v) in dag.edges() {
            let pu = schedule.proc_of_cell(u);
            let pv = schedule.proc_of_cell(v);
            if pu != pv {
                let t = schedule.start_of(TaskId::pack(u, i as u32, n)) as usize;
                per_step[t].push((pu, pv));
                total_messages += 1;
            }
        }
    }
    let m = schedule.num_procs();
    let mut comm_units = 0u64;
    match config.model {
        CommModel::Ignore => {}
        CommModel::MaxSend => {
            // Max *send* degree: count per (sender) only.
            let mut sends = vec![0u64; m];
            for msgs in &per_step {
                for &(pu, _) in msgs {
                    sends[pu as usize] += 1;
                }
                let step_units = sends.iter().copied().max().unwrap_or(0);
                if recording {
                    telemetry::histogram_record("sim.sync.step_comm_units", step_units as f64);
                }
                comm_units += step_units;
                for &(pu, _) in msgs {
                    sends[pu as usize] = 0;
                }
            }
        }
        CommModel::EdgeColoring => {
            for msgs in &per_step {
                if msgs.is_empty() {
                    continue;
                }
                // Self-messages cannot occur (pu != pv by construction).
                let (_, colors) = color_edges(m, msgs);
                debug_assert!(colors >= max_degree(m, msgs).div_ceil(2));
                if recording {
                    telemetry::histogram_record("sim.sync.step_comm_units", colors as f64);
                }
                comm_units += colors as u64;
            }
        }
    }
    if recording {
        telemetry::counter_add("sim.sync.messages", total_messages);
        telemetry::counter_add("sim.sync.steps", steps as u64);
    }
    SimReport {
        compute_steps: steps as u64,
        total_messages,
        comm_units,
        total_time: config.compute_cost * steps as f64 + config.comm_cost * comm_units as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sweep_core::{c1_interprocessor_edges, c2_comm_delay, greedy_schedule, Assignment};
    use sweep_dag::SweepInstance;

    fn setup(m: usize, seed: u64) -> (SweepInstance, Schedule) {
        let inst = SweepInstance::random_layered(60, 4, 6, 2, seed);
        let a = Assignment::random_cells(60, m, seed ^ 0xf00);
        let s = greedy_schedule(&inst, a);
        (inst, s)
    }

    #[test]
    fn ignore_model_is_pure_makespan() {
        let (inst, s) = setup(4, 1);
        let cfg = SimConfig {
            compute_cost: 2.0,
            comm_cost: 9.0,
            model: CommModel::Ignore,
        };
        let r = simulate(&inst, &s, &cfg);
        assert_eq!(r.compute_steps, s.makespan() as u64);
        assert_eq!(r.comm_units, 0);
        assert!((r.total_time - 2.0 * s.makespan() as f64).abs() < 1e-12);
    }

    #[test]
    fn max_send_matches_core_c2() {
        for seed in 0..4u64 {
            let (inst, s) = setup(6, seed);
            let r = simulate(&inst, &s, &SimConfig::default());
            assert_eq!(r.comm_units, c2_comm_delay(&inst, &s), "seed {seed}");
            assert_eq!(
                r.total_messages,
                c1_interprocessor_edges(&inst, s.assignment())
            );
        }
    }

    #[test]
    fn coloring_rounds_at_least_max_send() {
        // Each color round delivers ≤ 1 message per sender, so the number
        // of rounds is ≥ the busiest sender's load at that step.
        let (inst, s) = setup(6, 7);
        let send = simulate(&inst, &s, &SimConfig::default());
        let color = simulate(
            &inst,
            &s,
            &SimConfig {
                model: CommModel::EdgeColoring,
                ..SimConfig::default()
            },
        );
        assert!(color.comm_units >= send.comm_units);
    }

    #[test]
    fn single_processor_has_no_messages() {
        let inst = SweepInstance::random_layered(40, 3, 5, 2, 3);
        let s = greedy_schedule(&inst, Assignment::single(40));
        let r = simulate(&inst, &s, &SimConfig::default());
        assert_eq!(r.total_messages, 0);
        assert_eq!(r.comm_units, 0);
        assert!((r.total_time - s.makespan() as f64).abs() < 1e-12);
    }
}
