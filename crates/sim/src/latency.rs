//! Latency-aware schedule evaluation — between the paper's two extremes.
//!
//! The paper scores communication with two proxies (C1, C2) and notes the
//! real cost lies in between; it also flags its no-overlap assumption as
//! "clearly a simplifying assumption". This module evaluates a schedule
//! under a *message-latency* model with full computation/communication
//! overlap:
//!
//! * each processor executes its tasks in the order given by the
//!   schedule (ties broken by start time, then task id);
//! * a task may begin once its processor is free **and** every
//!   predecessor result has arrived — instantly from the same processor,
//!   after `latency` time units from another one;
//! * messages travel concurrently (no bandwidth contention).
//!
//! The resulting completion time is the longest path through the
//! "order-plus-dependence" graph, computed in one topological pass. At
//! `latency = 0` it equals the unit-cost makespan whenever the schedule
//! is non-idling; as `latency` grows, assignments with fewer cut edges
//! (block/KBA) overtake per-cell random assignment — quantifying the
//! trade-off Figures 2(a)/(b) only show as separate curves.

use sweep_core::Schedule;
use sweep_dag::{SweepInstance, TaskId};

/// Result of a latency-model evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyReport {
    /// Completion time of the last task.
    pub makespan: f64,
    /// Completion time with `latency = 0` (non-idling replay baseline).
    pub zero_latency_makespan: f64,
    /// Number of cross-processor messages (= C1).
    pub messages: u64,
}

/// Evaluates `schedule` under the overlap model with per-message
/// `latency ≥ 0` and unit task cost.
pub fn latency_makespan(
    instance: &SweepInstance,
    schedule: &Schedule,
    latency: f64,
) -> LatencyReport {
    assert!(latency >= 0.0, "latency must be non-negative");
    let n = instance.num_cells();
    let k = instance.num_directions();
    let total = n * k;
    let m = schedule.num_procs();

    // Per-processor execution order, by scheduled start time.
    let mut per_proc: Vec<Vec<u64>> = vec![Vec::new(); m];
    for t in 0..total as u64 {
        let (v, _) = TaskId(t).unpack(n);
        per_proc[schedule.proc_of_cell(v) as usize].push(t);
    }
    for list in per_proc.iter_mut() {
        list.sort_unstable_by_key(|&t| (schedule.starts()[t as usize], t));
    }

    // Completion-time recurrence over the union of dependence edges and
    // same-processor order edges. Process tasks globally ordered by
    // (scheduled start, id): every predecessor of either kind has a
    // strictly smaller scheduled start (dependence ⇒ earlier start by
    // feasibility; order ⇒ earlier by construction), so one pass suffices.
    let mut order: Vec<u64> = (0..total as u64).collect();
    order.sort_unstable_by_key(|&t| (schedule.starts()[t as usize], t));

    // Predecessor in the per-processor sequence.
    let mut prev_on_proc: Vec<Option<u64>> = vec![None; total];
    for list in &per_proc {
        for w in list.windows(2) {
            prev_on_proc[w[1] as usize] = Some(w[0]);
        }
    }

    let mut finish = vec![0.0f64; total];
    let mut messages = 0u64;
    let mut zero_finish = vec![0.0f64; total];
    for &t in &order {
        let (v, dir) = TaskId(t).unpack(n);
        let pv = schedule.proc_of_cell(v);
        let mut ready = 0.0f64;
        let mut ready0 = 0.0f64;
        if let Some(p) = prev_on_proc[t as usize] {
            ready = ready.max(finish[p as usize]);
            ready0 = ready0.max(zero_finish[p as usize]);
        }
        for &u in instance.dag(dir as usize).predecessors(v) {
            let ut = TaskId::pack(u, dir, n).index();
            let cross = schedule.proc_of_cell(u) != pv;
            let delay = if cross { latency } else { 0.0 };
            ready = ready.max(finish[ut] + delay);
            ready0 = ready0.max(zero_finish[ut]);
            if cross {
                messages += 1;
            }
        }
        finish[t as usize] = ready + 1.0;
        zero_finish[t as usize] = ready0 + 1.0;
    }
    LatencyReport {
        makespan: finish.iter().copied().fold(0.0, f64::max),
        zero_latency_makespan: zero_finish.iter().copied().fold(0.0, f64::max),
        messages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sweep_core::{greedy_schedule, validate, Assignment};
    use sweep_dag::{SweepInstance, TaskDag};

    #[test]
    fn zero_latency_matches_replay() {
        let inst = SweepInstance::random_layered(60, 4, 6, 2, 3);
        let a = Assignment::random_cells(60, 6, 1);
        let s = greedy_schedule(&inst, a);
        validate(&inst, &s).unwrap();
        let r = latency_makespan(&inst, &s, 0.0);
        assert!((r.makespan - r.zero_latency_makespan).abs() < 1e-12);
        // Greedy list schedules are non-idling replays, so the latency-0
        // completion time can only improve on (or match) the slotted
        // makespan.
        assert!(r.makespan <= s.makespan() as f64 + 1e-9);
    }

    #[test]
    fn latency_increases_makespan_monotonically() {
        let inst = SweepInstance::random_layered(80, 4, 8, 2, 5);
        let a = Assignment::random_cells(80, 8, 2);
        let s = greedy_schedule(&inst, a);
        let mut prev = 0.0;
        for lat in [0.0, 0.5, 1.0, 4.0, 16.0] {
            let r = latency_makespan(&inst, &s, lat);
            assert!(r.makespan >= prev, "latency {lat}");
            prev = r.makespan;
        }
    }

    #[test]
    fn single_processor_ignores_latency() {
        let inst = SweepInstance::random_layered(40, 3, 5, 2, 1);
        let s = greedy_schedule(&inst, Assignment::single(40));
        let r0 = latency_makespan(&inst, &s, 0.0);
        let r9 = latency_makespan(&inst, &s, 99.0);
        assert_eq!(r0.messages, 0);
        assert!((r0.makespan - r9.makespan).abs() < 1e-12);
        assert_eq!(r0.makespan, inst.num_tasks() as f64);
    }

    #[test]
    fn cross_chain_pays_latency_per_hop() {
        // Chain 0 -> 1 -> 2 alternating processors: makespan = 3 tasks + 2
        // crossings × latency.
        let dag = TaskDag::from_edges(3, &[(0, 1), (1, 2)]);
        let inst = SweepInstance::new(3, vec![dag], "c");
        let a = Assignment::from_vec(vec![0, 1, 0], 2);
        let s = greedy_schedule(&inst, a);
        let r = latency_makespan(&inst, &s, 10.0);
        assert_eq!(r.messages, 2);
        assert!((r.makespan - (3.0 + 20.0)).abs() < 1e-12);
    }

    #[test]
    fn fewer_cut_edges_win_at_high_latency() {
        // The experiment motivating this module, in miniature: a chain
        // split across processors vs kept on one. At latency 0 they tie
        // (chain is sequential anyway); at high latency the single-proc
        // placement wins.
        let dag = TaskDag::from_edges(10, &(0..9u32).map(|v| (v, v + 1)).collect::<Vec<_>>());
        let inst = SweepInstance::new(10, vec![dag], "chain");
        let split = Assignment::from_vec((0..10u32).map(|v| v % 2).collect(), 2);
        let solo = Assignment::from_vec(vec![0; 10], 2);
        let s_split = greedy_schedule(&inst, split);
        let s_solo = greedy_schedule(&inst, solo);
        let high = 5.0;
        let r_split = latency_makespan(&inst, &s_split, high);
        let r_solo = latency_makespan(&inst, &s_solo, high);
        assert!(r_solo.makespan < r_split.makespan);
        let r_split0 = latency_makespan(&inst, &s_split, 0.0);
        let r_solo0 = latency_makespan(&inst, &s_solo, 0.0);
        assert!((r_split0.makespan - r_solo0.makespan).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_latency_rejected() {
        let inst = SweepInstance::identical_chains(3, 1);
        let s = greedy_schedule(&inst, Assignment::single(3));
        latency_makespan(&inst, &s, -1.0);
    }
}
