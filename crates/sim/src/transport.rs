//! A toy one-group S_n radiation-transport solver — the application that
//! motivates sweep scheduling (paper §1).
//!
//! Source iteration on a first-order upwind discretization: each outer
//! iteration performs one *sweep* per direction (solving cells in
//! DAG-topological order, exactly the computation the schedules
//! orchestrate), then updates the scalar flux
//! `φ(v) = Σ_i w_i ψ(v, i)`. With scattering ratio `σ_s/σ_t < 1` the
//! iteration is a contraction and converges geometrically.
//!
//! The discretization is deliberately simple (area-weighted upwind
//! average, uniform characteristic cell size `h`): the point is to
//! exercise the sweep machinery end-to-end — mesh → quadrature →
//! per-direction DAGs → ordered cell solves — not to compete with
//! production discretizations.

use sweep_dag::SweepInstance;
use sweep_mesh::{CellId, SweepMesh};
use sweep_quadrature::{DirectionId, QuadratureSet};

/// Material and source description (uniform over the mesh).
#[derive(Debug, Clone, Copy)]
pub struct Material {
    /// Total cross section `σ_t > 0`.
    pub sigma_t: f64,
    /// Scattering cross section `0 ≤ σ_s < σ_t`.
    pub sigma_s: f64,
    /// Isotropic fixed source strength `q ≥ 0`.
    pub source: f64,
}

impl Material {
    /// Validates physical constraints.
    pub fn validated(self) -> Result<Material, String> {
        if self.sigma_t <= 0.0 || self.sigma_t.is_nan() {
            return Err(format!("sigma_t must be positive, got {}", self.sigma_t));
        }
        if !(0.0..1.0).contains(&(self.sigma_s / self.sigma_t)) {
            return Err(format!(
                "scattering ratio must be in [0,1), got {}",
                self.sigma_s / self.sigma_t
            ));
        }
        if self.source < 0.0 {
            return Err("source must be non-negative".into());
        }
        Ok(self)
    }
}

/// Convergence report of a transport solve.
#[derive(Debug, Clone)]
pub struct TransportResult {
    /// Scalar flux per cell.
    pub phi: Vec<f64>,
    /// Outer (source) iterations performed.
    pub iterations: usize,
    /// Final iteration's max-norm flux change.
    pub residual: f64,
    /// Whether `residual ≤ tol` was reached within the iteration budget.
    pub converged: bool,
}

/// One-group S_n transport solver over a mesh and quadrature set.
pub struct TransportSolver<'m, M: SweepMesh> {
    mesh: &'m M,
    quadrature: &'m QuadratureSet,
    instance: SweepInstance,
    /// Per-cell materials (uniform problems repeat one entry).
    materials: Vec<Material>,
    /// Characteristic cell size `h ≈ n^{-1/dim}` of the unit-ish domain.
    h: f64,
    /// Topological orders of all directions, concatenated: direction
    /// `d`'s sequential sweep order is `topo[d·n .. (d+1)·n]`. Flat so
    /// the inner sweep loop walks one contiguous allocation.
    topo: Vec<u32>,
    /// CSR offsets into the stencil arrays, indexed by `d·n + cell`
    /// (length `k·n + 1`).
    stencil_xadj: Vec<u32>,
    /// Upstream cell of each stencil entry (parallel to
    /// [`Self::stencil_w`]).
    stencil_up: Vec<u32>,
    /// Normalized area weight of each stencil entry, consistent with
    /// the (cycle-broken) DAG.
    stencil_w: Vec<f64>,
}

impl<'m, M: SweepMesh + Sync> TransportSolver<'m, M> {
    /// Builds the solver for a uniform material (induces the
    /// per-direction DAGs internally).
    pub fn new(
        mesh: &'m M,
        quadrature: &'m QuadratureSet,
        material: Material,
    ) -> Result<TransportSolver<'m, M>, String> {
        let material = material.validated()?;
        Self::with_materials(mesh, quadrature, vec![material; mesh.num_cells()])
    }

    /// Builds the solver for a heterogeneous problem: one [`Material`] per
    /// cell (regions with different cross sections / sources, as in the
    /// borehole and shielding configurations transport codes model).
    pub fn with_materials(
        mesh: &'m M,
        quadrature: &'m QuadratureSet,
        materials: Vec<Material>,
    ) -> Result<TransportSolver<'m, M>, String> {
        if materials.len() != mesh.num_cells() {
            return Err(format!(
                "need one material per cell: {} for {} cells",
                materials.len(),
                mesh.num_cells()
            ));
        }
        let materials: Vec<Material> = materials
            .into_iter()
            .map(Material::validated)
            .collect::<Result<_, _>>()?;
        let (instance, _) = SweepInstance::from_mesh(mesh, quadrature, "transport");
        let n = mesh.num_cells();
        let k = quadrature.len();
        let h = 1.0 / (n as f64).powf(1.0 / mesh.dim() as f64);
        // Flatten the per-direction topological orders and stencils
        // into CSR-style arrays: one offset table indexed by
        // `d·n + cell`, one flat upstream-cell array, one flat weight
        // array. The solve loop then streams contiguous memory instead
        // of chasing a Vec<Vec<Vec<_>>>.
        let mut topo = Vec::with_capacity(k * n);
        for dag in instance.dags() {
            topo.extend(dag.topo_order().expect("induced DAGs are acyclic"));
        }
        let mut stencil_xadj = Vec::with_capacity(k * n + 1);
        let mut stencil_up = Vec::new();
        let mut stencil_w = Vec::new();
        stencil_xadj.push(0u32);
        for d in 0..k {
            for cell in stencil_for_direction(mesh, &instance, quadrature, d) {
                for (up, w) in cell {
                    stencil_up.push(up);
                    stencil_w.push(w);
                }
                stencil_xadj.push(stencil_up.len() as u32);
            }
        }
        Ok(TransportSolver {
            mesh,
            quadrature,
            instance,
            materials,
            h,
            topo,
            stencil_xadj,
            stencil_up,
            stencil_w,
        })
    }

    /// The solver's sweep instance (schedulable with `sweep-core`).
    pub fn instance(&self) -> &SweepInstance {
        &self.instance
    }

    /// Runs source iteration until the max-norm change of `φ` drops below
    /// `tol` or `max_iters` is hit.
    pub fn solve(&self, max_iters: usize, tol: f64) -> TransportResult {
        let n = self.mesh.num_cells();
        let k = self.quadrature.len();
        let weight_total: f64 = self.quadrature.ordinates().iter().map(|o| o.weight).sum();
        let mut phi = vec![0.0f64; n];
        let mut psi = vec![0.0f64; n]; // per-direction workspace
        let mut iterations = 0usize;
        let mut residual = f64::INFINITY;
        for _ in 0..max_iters {
            iterations += 1;
            let mut phi_new = vec![0.0f64; n];
            for d in 0..k {
                let w_d = self.quadrature.ordinates()[d].weight;
                let base = d * n;
                for &v in &self.topo[base..base + n] {
                    let mat = self.materials[v as usize];
                    let atten = 1.0 + mat.sigma_t * self.h;
                    let mut inflow = 0.0f64;
                    let (s, e) = (
                        self.stencil_xadj[base + v as usize] as usize,
                        self.stencil_xadj[base + v as usize + 1] as usize,
                    );
                    for (u, w) in self.stencil_up[s..e].iter().zip(&self.stencil_w[s..e]) {
                        inflow += w * psi[*u as usize];
                    }
                    // Upwind balance: attenuated inflow plus the cell's
                    // isotropic emission (fixed source + scattering of the
                    // previous iterate's scalar flux).
                    let emission = (mat.source + mat.sigma_s * phi[v as usize]) / weight_total;
                    psi[v as usize] = (inflow + emission * self.h) / atten;
                }
                for v in 0..n {
                    phi_new[v] += w_d * psi[v];
                }
            }
            residual = phi
                .iter()
                .zip(&phi_new)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            phi = phi_new;
            if residual <= tol {
                return TransportResult {
                    phi,
                    iterations,
                    residual,
                    converged: true,
                };
            }
        }
        TransportResult {
            phi,
            iterations,
            residual,
            converged: false,
        }
    }

    /// Mean scalar flux over the mesh.
    pub fn mean_flux(phi: &[f64]) -> f64 {
        if phi.is_empty() {
            return 0.0;
        }
        phi.iter().sum::<f64>() / phi.len() as f64
    }

    /// Centroid of the given cell (exposed for plotting in examples).
    pub fn centroid(&self, c: u32) -> sweep_mesh::Point3 {
        self.mesh.centroid(CellId(c))
    }
}

/// The per-cell incoming stencil of direction `d`: for each cell the list
/// of `(upstream cell, normalized area weight)` pairs across faces whose
/// induced edge survived cycle breaking.
fn stencil_for_direction(
    mesh: &impl SweepMesh,
    instance: &SweepInstance,
    quadrature: &QuadratureSet,
    d: usize,
) -> Vec<Vec<(u32, f64)>> {
    let n = mesh.num_cells();
    let dag = instance.dag(d);
    let omega = quadrature.direction(DirectionId(d as u32));
    let mut per_cell: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
    for f in mesh.interior_faces() {
        let dot = f.normal.dot(omega);
        if dot.abs() <= 1e-12 {
            continue;
        }
        let (up, down) = if dot > 0.0 { (f.a, f.b) } else { (f.b, f.a) };
        if dag.successors(up.0).contains(&down.0) {
            per_cell[down.index()].push((up.0, f.area * dot.abs()));
        }
    }
    for cell in per_cell.iter_mut() {
        let total: f64 = cell.iter().map(|&(_, w)| w).sum();
        if total > 0.0 {
            for e in cell.iter_mut() {
                e.1 /= total;
            }
        }
    }
    per_cell
}

#[cfg(test)]
mod tests {
    use super::*;
    use sweep_mesh::TriMesh2d;

    fn solver_on(
        mesh: &TriMesh2d,
        quad: &QuadratureSet,
        sigma_s: f64,
    ) -> TransportSolver<'static, TriMesh2d> {
        // Tests construct with leaked refs for lifetime simplicity.
        let mesh: &'static TriMesh2d = Box::leak(Box::new(mesh.clone()));
        let quad: &'static QuadratureSet = Box::leak(Box::new(quad.clone()));
        TransportSolver::new(
            mesh,
            quad,
            Material {
                sigma_t: 1.0,
                sigma_s,
                source: 1.0,
            },
        )
        .unwrap()
    }

    #[test]
    fn pure_absorber_converges_fast() {
        let mesh = TriMesh2d::unit_square(6, 6, 0.15, 1).unwrap();
        let quad = QuadratureSet::uniform_2d(8).unwrap();
        let s = solver_on(&mesh, &quad, 0.0);
        let r = s.solve(60, 1e-10);
        assert!(r.converged, "residual {}", r.residual);
        assert!(r.phi.iter().all(|&x| x >= 0.0));
        assert!(TransportSolver::<TriMesh2d>::mean_flux(&r.phi) > 0.0);
        // No scattering ⇒ no φ feedback into ψ… except through the fixed
        // point detection; convergence must be quick.
        assert!(r.iterations <= 5, "{} iterations", r.iterations);
    }

    #[test]
    fn scattering_converges_and_needs_more_iterations() {
        let mesh = TriMesh2d::unit_square(6, 6, 0.15, 2).unwrap();
        let quad = QuadratureSet::uniform_2d(8).unwrap();
        let none = solver_on(&mesh, &quad, 0.0).solve(300, 1e-8);
        let some = solver_on(&mesh, &quad, 0.8).solve(300, 1e-8);
        assert!(none.converged && some.converged);
        assert!(
            some.iterations > none.iterations,
            "scattering {} vs absorber {}",
            some.iterations,
            none.iterations
        );
        // Scattering re-emits: flux must be higher.
        let m_none = TransportSolver::<TriMesh2d>::mean_flux(&none.phi);
        let m_some = TransportSolver::<TriMesh2d>::mean_flux(&some.phi);
        assert!(m_some > m_none, "{m_some} !> {m_none}");
    }

    #[test]
    fn flux_scales_linearly_with_source() {
        let mesh = TriMesh2d::unit_square(5, 5, 0.1, 3).unwrap();
        let quad = QuadratureSet::uniform_2d(4).unwrap();
        let mesh1: &'static TriMesh2d = Box::leak(Box::new(mesh.clone()));
        let quad1: &'static QuadratureSet = Box::leak(Box::new(quad.clone()));
        let s1 = TransportSolver::new(
            mesh1,
            quad1,
            Material {
                sigma_t: 1.0,
                sigma_s: 0.3,
                source: 1.0,
            },
        )
        .unwrap();
        let s2 = TransportSolver::new(
            mesh1,
            quad1,
            Material {
                sigma_t: 1.0,
                sigma_s: 0.3,
                source: 2.0,
            },
        )
        .unwrap();
        let r1 = s1.solve(300, 1e-12);
        let r2 = s2.solve(300, 1e-12);
        let m1 = TransportSolver::<TriMesh2d>::mean_flux(&r1.phi);
        let m2 = TransportSolver::<TriMesh2d>::mean_flux(&r2.phi);
        assert!((m2 / m1 - 2.0).abs() < 1e-6, "ratio {}", m2 / m1);
    }

    #[test]
    fn bad_materials_rejected() {
        assert!(Material {
            sigma_t: 0.0,
            sigma_s: 0.0,
            source: 1.0
        }
        .validated()
        .is_err());
        assert!(Material {
            sigma_t: 1.0,
            sigma_s: 1.0,
            source: 1.0
        }
        .validated()
        .is_err());
        assert!(Material {
            sigma_t: 1.0,
            sigma_s: 0.5,
            source: -1.0
        }
        .validated()
        .is_err());
        assert!(Material {
            sigma_t: 1.0,
            sigma_s: 0.5,
            source: 1.0
        }
        .validated()
        .is_ok());
    }

    #[test]
    fn instance_is_exposed_for_scheduling() {
        let mesh = TriMesh2d::unit_square(4, 4, 0.1, 5).unwrap();
        let quad = QuadratureSet::uniform_2d(4).unwrap();
        let s = solver_on(&mesh, &quad, 0.2);
        assert_eq!(s.instance().num_cells(), 32);
        assert_eq!(s.instance().num_directions(), 4);
    }

    #[test]
    fn heterogeneous_source_region_has_higher_flux() {
        // Source only in the left half of the domain: flux there must be
        // larger than in the purely absorbing right half.
        let mesh = TriMesh2d::unit_square(8, 8, 0.1, 4).unwrap();
        let mesh: &'static TriMesh2d = Box::leak(Box::new(mesh));
        let quad: &'static QuadratureSet =
            Box::leak(Box::new(QuadratureSet::uniform_2d(8).unwrap()));
        use sweep_mesh::CellId;
        let mats: Vec<Material> = (0..mesh.num_cells())
            .map(|c| {
                let left = mesh.centroid(CellId(c as u32)).x < 0.5;
                Material {
                    sigma_t: 1.0,
                    sigma_s: 0.3,
                    source: if left { 1.0 } else { 0.0 },
                }
            })
            .collect();
        let s = TransportSolver::with_materials(mesh, quad, mats).unwrap();
        let r = s.solve(300, 1e-9);
        assert!(r.converged);
        let (mut left_sum, mut left_n, mut right_sum, mut right_n) =
            (0.0f64, 0usize, 0.0f64, 0usize);
        for c in 0..mesh.num_cells() {
            if mesh.centroid(CellId(c as u32)).x < 0.5 {
                left_sum += r.phi[c];
                left_n += 1;
            } else {
                right_sum += r.phi[c];
                right_n += 1;
            }
        }
        let (left_mean, right_mean) = (left_sum / left_n as f64, right_sum / right_n as f64);
        assert!(
            left_mean > 2.0 * right_mean,
            "source region flux {left_mean:.4} vs void {right_mean:.4}"
        );
        assert!(right_mean > 0.0, "transport must carry flux into the void");
    }

    #[test]
    fn with_materials_validates_input() {
        let mesh = TriMesh2d::unit_square(3, 3, 0.1, 1).unwrap();
        let mesh: &'static TriMesh2d = Box::leak(Box::new(mesh));
        let quad: &'static QuadratureSet =
            Box::leak(Box::new(QuadratureSet::uniform_2d(4).unwrap()));
        // Wrong length.
        let too_few = vec![
            Material {
                sigma_t: 1.0,
                sigma_s: 0.0,
                source: 1.0
            };
            3
        ];
        match TransportSolver::with_materials(mesh, quad, too_few) {
            Err(e) => assert!(e.contains("one material per cell"), "{e}"),
            Ok(_) => panic!("length mismatch must be rejected"),
        }
        // Invalid entry.
        let mut mats = vec![
            Material {
                sigma_t: 1.0,
                sigma_s: 0.0,
                source: 1.0
            };
            mesh.num_cells()
        ];
        mats[0].sigma_s = 2.0;
        assert!(TransportSolver::with_materials(mesh, quad, mats).is_err());
    }

    #[test]
    fn works_on_3d_tet_meshes() {
        let mesh = sweep_mesh::MeshPreset::Tetonly.build_scaled(0.005).unwrap();
        let mesh: &'static sweep_mesh::TetMesh = Box::leak(Box::new(mesh));
        let quad: &'static QuadratureSet =
            Box::leak(Box::new(QuadratureSet::level_symmetric(2).unwrap()));
        let s = TransportSolver::new(
            mesh,
            quad,
            Material {
                sigma_t: 1.0,
                sigma_s: 0.5,
                source: 1.0,
            },
        )
        .unwrap();
        let r = s.solve(300, 1e-8);
        assert!(r.converged);
        assert!(r.phi.iter().all(|&x| x >= 0.0 && x.is_finite()));
    }
}
