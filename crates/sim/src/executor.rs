//! Shared-memory parallel sweep executor.
//!
//! The paper simulates schedules; this module additionally *runs* a sweep
//! on real threads — one worker per simulated processor — to demonstrate
//! that an [`Assignment`] drives an actual parallel computation. Each task
//! performs a small upwind flux update; dependence tracking uses one
//! atomic remaining-predecessor counter per task, and per-worker mutex
//! queues carry readiness notifications across workers (a message-passing
//! pattern mirroring the MPI structure of real sweep codes).
//!
//! Data-race freedom: a task's flux slot is written exactly once (by its
//! owner) before the `fetch_sub(AcqRel)` on each successor's counter; the
//! reader observes the counter hit zero with `Acquire`, ordering the write
//! before every read — the release/acquire pattern of the Rust atomics
//! guide.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use sweep_core::Assignment;
use sweep_dag::{SweepInstance, TaskId};

/// A multi-producer work queue (one per simulated processor). A plain
/// mutexed deque is plenty here — contention is per-message, and the
/// executor is a demonstration, not an MPI replacement.
struct WorkQueue(Mutex<VecDeque<u64>>);

impl WorkQueue {
    fn new() -> WorkQueue {
        WorkQueue(Mutex::new(VecDeque::new()))
    }

    fn push(&self, task: u64) {
        self.0.lock().expect("queue mutex poisoned").push_back(task);
    }

    fn pop(&self) -> Option<u64> {
        self.0.lock().expect("queue mutex poisoned").pop_front()
    }
}

/// Result of a parallel sweep execution.
#[derive(Debug, Clone)]
pub struct ExecReport {
    /// Wall-clock seconds for the whole sweep.
    pub wall_seconds: f64,
    /// Tasks executed per simulated processor.
    pub tasks_per_proc: Vec<u64>,
    /// Sum of all task flux values — a deterministic checksum (the flux
    /// recurrence is order-independent given the DAG).
    pub checksum: f64,
}

/// Executes all `n·k` tasks on one OS thread per simulated processor.
///
/// The flux recurrence computed per task is
/// `f(v,i) = 1 + 0.5 · max_{(u,i) → (v,i)} f(u,i)` — its value depends only
/// on the DAG, so the checksum is schedule- and thread-order independent
/// (tests verify this against a sequential run).
///
/// # Panics
/// Panics when `assignment.num_procs()` exceeds `max_threads` (keep `m`
/// small; this is a demonstration executor, not an MPI replacement).
pub fn execute_parallel(
    instance: &SweepInstance,
    assignment: &Assignment,
    max_threads: usize,
) -> ExecReport {
    let n = instance.num_cells();
    let k = instance.num_directions();
    let m = assignment.num_procs();
    assert!(
        m <= max_threads,
        "refusing to spawn {m} threads (cap {max_threads})"
    );
    let total = n * k;

    // Remaining-predecessor counters and write-once flux slots (f64 bits).
    let indeg: Vec<AtomicU32> = (0..total)
        .map(|t| {
            let (v, dir) = TaskId(t as u64).unpack(n);
            AtomicU32::new(instance.dag(dir as usize).in_degree(v))
        })
        .collect();
    let flux: Vec<AtomicU64> = (0..total).map(|_| AtomicU64::new(0)).collect();
    let queues: Vec<WorkQueue> = (0..m).map(|_| WorkQueue::new()).collect();
    let remaining = AtomicUsize::new(total);
    let done_count: Vec<AtomicU64> = (0..m).map(|_| AtomicU64::new(0)).collect();

    // Seed sources.
    for t in 0..total as u64 {
        if indeg[t as usize].load(Ordering::Relaxed) == 0 {
            let v = (t % n as u64) as u32;
            queues[assignment.proc_of(v) as usize].push(t);
        }
    }

    let start = Instant::now();
    std::thread::scope(|scope| {
        for p in 0..m {
            let queues = &queues;
            let indeg = &indeg;
            let flux = &flux;
            let remaining = &remaining;
            let done_count = &done_count;
            scope.spawn(move || {
                let my_q = &queues[p];
                loop {
                    let Some(task) = my_q.pop() else {
                        if remaining.load(Ordering::Acquire) == 0 {
                            break;
                        }
                        std::hint::spin_loop();
                        std::thread::yield_now();
                        continue;
                    };
                    let (v, dir) = TaskId(task).unpack(n);
                    let dag = instance.dag(dir as usize);
                    // Upwind update: all predecessors are complete (their
                    // writes are ordered before our acquire of the counter).
                    let mut upstream = 0.0f64;
                    for &u in dag.predecessors(v) {
                        let fu = f64::from_bits(
                            flux[TaskId::pack(u, dir, n).index()].load(Ordering::Acquire),
                        );
                        upstream = upstream.max(fu);
                    }
                    let f = 1.0 + 0.5 * upstream;
                    flux[task as usize].store(f.to_bits(), Ordering::Release);
                    done_count[p].fetch_add(1, Ordering::Relaxed);
                    for &w in dag.successors(v) {
                        let wt = TaskId::pack(w, dir, n).index();
                        if indeg[wt].fetch_sub(1, Ordering::AcqRel) == 1 {
                            queues[assignment.proc_of(w) as usize].push(wt as u64);
                        }
                    }
                    remaining.fetch_sub(1, Ordering::Release);
                }
            });
        }
    });
    let wall_seconds = start.elapsed().as_secs_f64();

    let checksum = flux
        .iter()
        .map(|f| f64::from_bits(f.load(Ordering::Relaxed)))
        .sum();
    ExecReport {
        wall_seconds,
        tasks_per_proc: done_count
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect(),
        checksum,
    }
}

/// Sequential reference executor computing the same flux recurrence in
/// topological order; used to cross-check the parallel checksum.
pub fn execute_sequential(instance: &SweepInstance) -> f64 {
    let n = instance.num_cells();
    let mut total = 0.0f64;
    for dag in instance.dags() {
        let order = dag.topo_order().expect("instance DAGs are acyclic");
        let mut f = vec![0.0f64; n];
        for &v in &order {
            let mut upstream = 0.0f64;
            for &u in dag.predecessors(v) {
                upstream = upstream.max(f[u as usize]);
            }
            f[v as usize] = 1.0 + 0.5 * upstream;
        }
        total += f.iter().sum::<f64>();
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_matches_sequential_checksum() {
        let inst = SweepInstance::random_layered(200, 4, 10, 3, 5);
        let seq = execute_sequential(&inst);
        for m in [1usize, 2, 4] {
            let a = Assignment::random_cells(200, m, 7);
            let r = execute_parallel(&inst, &a, 8);
            assert!(
                (r.checksum - seq).abs() < 1e-9 * seq.abs().max(1.0),
                "m={m}: {} vs {}",
                r.checksum,
                seq
            );
            assert_eq!(
                r.tasks_per_proc.iter().sum::<u64>() as usize,
                inst.num_tasks()
            );
        }
    }

    #[test]
    fn per_proc_counts_match_assignment() {
        let inst = SweepInstance::random_layered(100, 3, 6, 2, 2);
        let a = Assignment::round_robin(100, 4);
        let r = execute_parallel(&inst, &a, 8);
        let loads = a.loads();
        for (p, (&got, &load)) in r.tasks_per_proc.iter().zip(&loads).enumerate() {
            assert_eq!(got, load as u64 * 3, "proc {p}");
        }
    }

    #[test]
    fn chains_execute_correctly() {
        let inst = SweepInstance::identical_chains(50, 3);
        let a = Assignment::random_cells(50, 3, 1);
        let r = execute_parallel(&inst, &a, 8);
        let seq = execute_sequential(&inst);
        assert!((r.checksum - seq).abs() < 1e-9);
        // Chain flux converges to 2: f_{i+1} = 1 + f_i/2.
        assert!(r.checksum < 2.0 * inst.num_tasks() as f64);
    }

    #[test]
    #[should_panic(expected = "refusing to spawn")]
    fn thread_cap_enforced() {
        let inst = SweepInstance::identical_chains(4, 1);
        let a = Assignment::round_robin(4, 4);
        execute_parallel(&inst, &a, 2);
    }
}
