//! # sweep-sim — execution simulators and the transport application
//!
//! The paper evaluates schedules by *simulation* (§5: "we will simulate
//! the sweeps, instead of actually running them on a distributed
//! machine"); this crate provides that simulator and two extensions:
//!
//! * [`simulate`] — step-synchronous replay under explicit compute/comm
//!   cost models ([`CommModel::Ignore`], the paper's C2 measure
//!   [`CommModel::MaxSend`], and [`CommModel::EdgeColoring`] based on the
//!   distributed edge-coloring idea the paper cites);
//! * [`coloring`] — greedy message edge coloring (≤ 2Δ−1 rounds);
//! * [`execute_parallel`] — a real multithreaded sweep executor (one
//!   thread per simulated processor, per-worker message queues, atomic dependence
//!   counters) demonstrating that assignments drive actual parallel runs;
//! * [`latency_makespan`] — an overlap-capable message-latency model
//!   sitting between the paper's two communication extremes;
//! * [`async_makespan_faulty`] — the event-driven engine under a
//!   deterministic `sweep-faults` plan: lossy retried messaging,
//!   stragglers, link partitions, and crash recovery by whole-cell
//!   reassignment (bit-identical to [`async_makespan`] when the plan is
//!   empty);
//! * [`TransportSolver`] — a toy one-group S_n source-iteration solver,
//!   the application sweeps exist for.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod async_exec;
pub mod coloring;
pub mod executor;
pub mod faulty;
pub mod latency;
pub mod sync_sim;
pub mod transport;

pub use async_exec::{
    async_makespan, async_makespan_traced, publish_trace, AsyncReport, AsyncTrace, TraceExec,
    TraceMessage,
};
pub use coloring::{color_edges, is_proper_coloring, max_degree};
pub use executor::{execute_parallel, execute_sequential, ExecReport};
pub use faulty::{
    async_makespan_faulty, degradation_csv, degradation_curve, publish_fault_report,
    DegradationPoint,
};
pub use latency::{latency_makespan, LatencyReport};
pub use sync_sim::{simulate, CommModel, SimConfig, SimReport};
pub use transport::{Material, TransportResult, TransportSolver};
