//! Asynchronous distributed execution — what actually happens on a
//! cluster.
//!
//! The list scheduler of `sweep-core` assumes a global clock: every
//! processor sees task completions instantly. A real distributed sweep
//! has neither — each processor runs its *local* priority policy over the
//! tasks whose inputs have arrived, and cross-processor completions
//! become visible only after a message latency. This module simulates
//! that execution model exactly (event-driven, deterministic):
//!
//! * each processor owns its assigned tasks and a local ready-queue
//!   ordered by the same priorities used offline;
//! * executing a task takes one time unit (or its weight);
//! * a completion is visible to same-processor successors immediately and
//!   to other processors `latency` later.
//!
//! Comparing [`async_makespan`] against the synchronous makespan measures
//! how much of a schedule's quality survives asynchrony — the gap the
//! paper's simulation methodology (and ours) abstracts away.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use sweep_core::Assignment;
use sweep_dag::{BitSet, SweepInstance, TaskId};
use sweep_telemetry as telemetry;

/// Result of an asynchronous distributed simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct AsyncReport {
    /// Completion time of the last task.
    pub makespan: f64,
    /// Total cross-processor messages sent (= C1).
    pub messages: u64,
    /// Per-processor busy time (Σ task durations).
    pub busy: Vec<f64>,
    /// Mean processor utilization `Σ busy / (m · makespan)`. Defined as
    /// `1.0` when `makespan == 0` (an empty instance has nothing to
    /// waste), matching `Schedule::utilization` — never `NaN`.
    pub utilization: f64,
}

/// One task execution in an [`AsyncTrace`]: task `(cell, dir)` ran on
/// `proc` over `[start, finish)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceExec {
    /// Packed task id (`dir·n + cell`).
    pub task: u64,
    /// Executing processor.
    pub proc: u32,
    /// Execution start time.
    pub start: f64,
    /// Execution finish time (= completion, when successors are notified).
    pub finish: f64,
}

/// One cross-processor message in an [`AsyncTrace`]: the face flux sent
/// when `from_task` completes, consumed by `to_task`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceMessage {
    /// Producing task (packed id).
    pub from_task: u64,
    /// Sender processor.
    pub from_proc: u32,
    /// Send time (= sender's completion time).
    pub send: f64,
    /// Consuming task (packed id).
    pub to_task: u64,
    /// Receiver processor.
    pub to_proc: u32,
    /// Arrival time (`send + latency`).
    pub arrive: f64,
}

/// A full execution trace of [`async_makespan_traced`]: every task
/// execution plus every cross-processor message, in simulation order.
/// Together with the instance's DAG edges these induce the
/// happens-before partial order that `sweep-analyze` checks for
/// message races.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AsyncTrace {
    /// Task executions, in the order they started.
    pub execs: Vec<TraceExec>,
    /// Cross-processor messages, in send order.
    pub messages: Vec<TraceMessage>,
}

/// Event-driven simulation of a distributed sweep under per-task
/// `priority` (smaller first), optional per-cell `weights` (unit cost
/// when `None`), and cross-processor message `latency`.
///
/// ```
/// use sweep_core::{Assignment, random_delays, delayed_level_priorities};
/// use sweep_dag::SweepInstance;
/// use sweep_sim::async_makespan;
///
/// let inst = SweepInstance::random_layered(60, 4, 6, 2, 1);
/// let a = Assignment::random_cells(60, 8, 2);
/// let prio = delayed_level_priorities(&inst, &random_delays(4, 3));
/// let report = async_makespan(&inst, &a, &prio, None, 0.5);
/// assert!(report.makespan >= 60.0 * 4.0 / 8.0);
/// assert!(report.utilization <= 1.0);
/// ```
///
/// # Panics
/// Panics on mismatched array lengths or negative latency.
pub fn async_makespan(
    instance: &SweepInstance,
    assignment: &Assignment,
    priority: &[i64],
    weights: Option<&[u64]>,
    latency: f64,
) -> AsyncReport {
    async_makespan_traced(instance, assignment, priority, weights, latency).0
}

/// [`async_makespan`] plus the full [`AsyncTrace`] of executions and
/// cross-processor messages, for happens-before analysis.
///
/// # Panics
/// Panics on mismatched array lengths or negative latency.
pub fn async_makespan_traced(
    instance: &SweepInstance,
    assignment: &Assignment,
    priority: &[i64],
    weights: Option<&[u64]>,
    latency: f64,
) -> (AsyncReport, AsyncTrace) {
    let _span = telemetry::span!("sim.async.exec");
    let n = instance.num_cells();
    let k = instance.num_directions();
    let total = n * k;
    assert_eq!(priority.len(), total, "one priority per task");
    assert!(latency >= 0.0, "latency must be non-negative");
    if let Some(w) = weights {
        assert_eq!(w.len(), n, "one weight per cell");
        assert!(w.iter().all(|&x| x > 0), "weights must be positive");
    }
    let m = assignment.num_procs();
    let dur = |v: u32| weights.map_or(1.0, |w| w[v as usize] as f64);

    let mut indeg = vec![0u32; total];
    for (i, dag) in instance.dags().iter().enumerate() {
        for v in 0..n as u32 {
            indeg[TaskId::pack(v, i as u32, n).index()] = dag.in_degree(v);
        }
    }

    // Local ready-queues.
    let mut ready: Vec<BinaryHeap<Reverse<(i64, u64)>>> = vec![BinaryHeap::new(); m];
    for t in 0..total as u64 {
        if indeg[t as usize] == 0 {
            let v = (t % n as u64) as u32;
            ready[assignment.proc_of(v) as usize].push(Reverse((priority[t as usize], t)));
        }
    }

    /// Simulation events, ordered by time (ties: arrivals before a
    /// processor-free event at equal time, so newly arrived inputs are
    /// visible — encoded in the enum order of the tuple).
    #[derive(PartialEq)]
    struct Ev(f64, u8, u32, u64); // (time, kind: 0 = arrival, 1 = proc free, proc, payload)
    impl Eq for Ev {}
    impl PartialOrd for Ev {
        fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(o))
        }
    }
    impl Ord for Ev {
        fn cmp(&self, o: &Self) -> std::cmp::Ordering {
            // Min-heap via Reverse at the call sites; here natural order.
            self.0
                .partial_cmp(&o.0)
                .expect("finite times")
                .then(self.1.cmp(&o.1))
                .then(self.2.cmp(&o.2))
                .then(self.3.cmp(&o.3))
        }
    }

    let mut events: BinaryHeap<Reverse<Ev>> = BinaryHeap::new();
    // Latest input-arrival time per task (readiness gate under latency).
    let mut avail = vec![0.0f64; total];
    let mut busy_until = vec![0.0f64; m];
    let mut idle = BitSet::full(m);
    let mut busy = vec![0.0f64; m];
    let mut messages = 0u64;
    let mut makespan = 0.0f64;
    let mut done = 0usize;
    let mut trace = AsyncTrace::default();
    // Sampled once: the ready-depth probe in the event loop vanishes when
    // telemetry is disabled.
    let recording = telemetry::enabled();
    let mut ready_peak = 0usize;

    // Try to start work on processor p at time `now`.
    let start_if_possible = |p: usize,
                             now: f64,
                             ready: &mut Vec<BinaryHeap<Reverse<(i64, u64)>>>,
                             events: &mut BinaryHeap<Reverse<Ev>>,
                             idle: &mut BitSet,
                             busy_until: &mut Vec<f64>,
                             busy: &mut Vec<f64>,
                             trace: &mut AsyncTrace| {
        if !idle.contains(p) {
            return;
        }
        if let Some(Reverse((_, task))) = ready[p].pop() {
            let v = (task % n as u64) as u32;
            let d = dur(v);
            idle.remove(p);
            busy_until[p] = now + d;
            busy[p] += d;
            trace.execs.push(TraceExec {
                task,
                proc: p as u32,
                start: now,
                finish: now + d,
            });
            events.push(Reverse(Ev(now + d, 1, p as u32, task)));
        }
    };

    for p in 0..m {
        start_if_possible(
            p,
            0.0,
            &mut ready,
            &mut events,
            &mut idle,
            &mut busy_until,
            &mut busy,
            &mut trace,
        );
    }

    while let Some(Reverse(Ev(t, kind, p, payload))) = events.pop() {
        if recording {
            ready_peak = ready_peak.max(ready.iter().map(BinaryHeap::len).sum());
        }
        let p = p as usize;
        match kind {
            0 => {
                // Arrival of a remote (or queued local) ready notification.
                let task = payload;
                ready[p].push(Reverse((priority[task as usize], task)));
                start_if_possible(
                    p,
                    t,
                    &mut ready,
                    &mut events,
                    &mut idle,
                    &mut busy_until,
                    &mut busy,
                    &mut trace,
                );
            }
            _ => {
                // Task completion on processor p.
                let task = payload;
                idle.insert(p);
                makespan = makespan.max(t);
                done += 1;
                let (v, dir) = TaskId(task).unpack(n);
                for &w in instance.dag(dir as usize).successors(v) {
                    let wt = TaskId::pack(w, dir, n).index();
                    let wp = assignment.proc_of(w) as usize;
                    // Every cross edge carries one message (the face flux),
                    // arriving `latency` after this completion.
                    let arrives = if wp == p {
                        t
                    } else {
                        messages += 1;
                        trace.messages.push(TraceMessage {
                            from_task: task,
                            from_proc: p as u32,
                            send: t,
                            to_task: wt as u64,
                            to_proc: wp as u32,
                            arrive: t + latency,
                        });
                        t + latency
                    };
                    avail[wt] = avail[wt].max(arrives);
                    indeg[wt] -= 1;
                    if indeg[wt] == 0 {
                        // Ready once the *last-arriving* input lands.
                        if avail[wt] <= t && wp == p {
                            ready[p].push(Reverse((priority[wt], wt as u64)));
                        } else {
                            events.push(Reverse(Ev(avail[wt].max(t), 0, wp as u32, wt as u64)));
                        }
                    }
                }
                start_if_possible(
                    p,
                    t,
                    &mut ready,
                    &mut events,
                    &mut idle,
                    &mut busy_until,
                    &mut busy,
                    &mut trace,
                );
            }
        }
    }
    debug_assert_eq!(done, total, "all tasks must complete");
    if recording {
        telemetry::gauge_max("sim.async.ready_peak", ready_peak as f64);
    }
    let util = if makespan > 0.0 {
        busy.iter().sum::<f64>() / (m as f64 * makespan)
    } else {
        1.0
    };
    (
        AsyncReport {
            makespan,
            messages,
            busy,
            utilization: util,
        },
        trace,
    )
}

/// Publishes an [`AsyncTrace`] to the global telemetry collector: every
/// task execution becomes a virtual-clock span named `sim.async.step` on
/// its processor's track (Chrome export shows them under the "simulated
/// time" process, one row per processor), messages become the
/// `sim.async.messages` counter plus a `sim.async.msg_latency` histogram
/// of arrive−send times. Per-message *events* are deliberately not
/// emitted — realistic runs carry tens of thousands of messages and would
/// swamp the trace.
///
/// No-op when telemetry is disabled.
pub fn publish_trace(trace: &AsyncTrace) {
    if !telemetry::enabled() {
        return;
    }
    for e in &trace.execs {
        telemetry::virtual_span("sim.async.step", e.proc, e.start, e.finish - e.start);
    }
    telemetry::counter_add("sim.async.messages", trace.messages.len() as u64);
    for msg in &trace.messages {
        telemetry::histogram_record("sim.async.msg_latency", msg.arrive - msg.send);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sweep_core::{delayed_level_priorities, greedy_schedule, random_delays, validate};

    fn rdp_priorities(inst: &SweepInstance, seed: u64) -> Vec<i64> {
        let d = random_delays(inst.num_directions(), seed);
        delayed_level_priorities(inst, &d)
    }

    #[test]
    fn zero_latency_matches_synchronous_quality() {
        // With latency 0 the async execution is a work-conserving list
        // schedule under the same priorities: it cannot be worse than the
        // slotted makespan by more than rounding.
        let inst = SweepInstance::random_layered(80, 4, 8, 2, 3);
        let a = Assignment::random_cells(80, 8, 1);
        let prio = rdp_priorities(&inst, 2);
        let sync = sweep_core::list_schedule(&inst, a.clone(), &prio, None);
        validate(&inst, &sync).unwrap();
        let r = async_makespan(&inst, &a, &prio, None, 0.0);
        assert!(r.makespan <= sync.makespan() as f64 + 1e-9);
        assert!(r.makespan >= (inst.num_tasks() as f64 / 8.0) - 1e-9);
        assert_eq!(r.messages, sweep_core::c1_interprocessor_edges(&inst, &a));
    }

    #[test]
    fn latency_degrades_gracefully() {
        let inst = SweepInstance::random_layered(100, 4, 8, 2, 5);
        let a = Assignment::random_cells(100, 8, 2);
        let prio = rdp_priorities(&inst, 3);
        let mut prev = 0.0;
        for lat in [0.0, 0.5, 2.0, 8.0] {
            let r = async_makespan(&inst, &a, &prio, None, lat);
            assert!(
                r.makespan >= prev - 1e-9,
                "latency {lat}: {} < {prev}",
                r.makespan
            );
            prev = r.makespan;
            assert!(r.utilization > 0.0 && r.utilization <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn single_processor_is_total_work_at_any_latency() {
        let inst = SweepInstance::random_layered(40, 3, 5, 2, 1);
        let a = Assignment::single(40);
        let prio = vec![0i64; inst.num_tasks()];
        for lat in [0.0, 7.0] {
            let r = async_makespan(&inst, &a, &prio, None, lat);
            assert!((r.makespan - inst.num_tasks() as f64).abs() < 1e-9);
            assert_eq!(r.messages, 0);
            assert!((r.utilization - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn weighted_async_respects_durations() {
        let inst = SweepInstance::identical_chains(5, 1);
        let a = Assignment::single(5);
        let w: Vec<u64> = vec![2, 3, 1, 4, 2];
        let prio = vec![0i64; 5];
        let r = async_makespan(&inst, &a, &prio, Some(&w), 0.0);
        assert!((r.makespan - 12.0).abs() < 1e-9);
    }

    #[test]
    fn cross_chain_latency_accumulates() {
        let inst = SweepInstance::identical_chains(4, 1);
        // Alternate processors down the chain: 3 crossings.
        let a = Assignment::from_vec(vec![0, 1, 0, 1], 2);
        let prio = vec![0i64; 4];
        let r = async_makespan(&inst, &a, &prio, None, 10.0);
        assert_eq!(r.messages, 3);
        assert!((r.makespan - (4.0 + 30.0)).abs() < 1e-9);
    }

    #[test]
    fn async_consistent_with_greedy_schedule_baseline() {
        // A broad sanity sweep across seeds.
        for seed in 0..4u64 {
            let inst = SweepInstance::random_layered(60, 3, 6, 2, seed);
            let a = Assignment::random_cells(60, 6, seed);
            let s = greedy_schedule(&inst, a.clone());
            let prio = vec![0i64; inst.num_tasks()];
            let r = async_makespan(&inst, &a, &prio, None, 0.0);
            assert!(r.makespan <= s.makespan() as f64 + 1e-9);
        }
    }

    #[test]
    fn trace_covers_every_task_and_message() {
        let inst = SweepInstance::random_layered(50, 3, 6, 2, 9);
        let a = Assignment::random_cells(50, 5, 4);
        let prio = rdp_priorities(&inst, 1);
        let (r, tr) = async_makespan_traced(&inst, &a, &prio, None, 0.75);
        assert_eq!(tr.execs.len(), inst.num_tasks());
        assert_eq!(tr.messages.len() as u64, r.messages);
        let mut seen: Vec<u64> = tr.execs.iter().map(|e| e.task).collect();
        seen.sort_unstable();
        assert!(seen.windows(2).all(|w| w[0] != w[1]), "each task runs once");
        for e in &tr.execs {
            let v = (e.task % 50) as u32;
            assert_eq!(e.proc, a.proc_of(v), "task runs on its cell's processor");
            assert!(e.finish > e.start);
        }
        for msg in &tr.messages {
            assert_ne!(msg.from_proc, msg.to_proc);
            assert!((msg.arrive - msg.send - 0.75).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_latency_rejected() {
        let inst = SweepInstance::identical_chains(2, 1);
        let a = Assignment::single(2);
        async_makespan(&inst, &a, &[0, 0], None, -0.5);
    }

    #[test]
    fn empty_instance_utilization_is_one_not_nan() {
        // Regression: `Σ busy / (m · makespan)` divides by zero on an
        // empty instance; the report must pin utilization to 1.0
        // (consistent with `Schedule::utilization`), never NaN.
        let inst = SweepInstance::new(0, vec![sweep_dag::TaskDag::edgeless(0)], "empty");
        let a = Assignment::from_vec(vec![], 4);
        let (r, tr) = async_makespan_traced(&inst, &a, &[], None, 1.0);
        assert_eq!(r.makespan, 0.0);
        assert_eq!(r.messages, 0);
        assert!(r.utilization.is_finite(), "utilization must not be NaN");
        assert_eq!(r.utilization, 1.0);
        assert!(tr.execs.is_empty() && tr.messages.is_empty());
    }
}
