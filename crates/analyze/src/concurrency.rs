//! Concurrency model-check results → SW0xx diagnostics.
//!
//! `sweep-analyze` sits *below* the concurrent crates in the dependency
//! graph (the pool depends on it transitively), so it cannot call the
//! model checker itself. Instead this module defines the plain-data
//! shape of a model-check run — produced by the `sweep check` CLI
//! subcommand from `sweep_check::ExploreReport`s — and maps it onto the
//! stable diagnostic registry:
//!
//! * lock-order cycles, deadlocks, double-locks, and step-bound
//!   blowups → **SW025** ([`Code::LockOrderCycle`]);
//! * lost wakeups → **SW026** ([`Code::LostWakeup`]), except in
//!   single-flight models where a stuck waiter is the protocol-level
//!   liveness violation → **SW027** ([`Code::SingleFlightLiveness`]);
//! * non-linearizable outcomes (model assertion failures) → **SW023**
//!   ([`Code::PoolNondeterminism`]), the same gate the wall-clock
//!   determinism certification uses;
//! * a clean, finding-free suite → one **SW020** info line per model,
//!   recording executions and steps explored.

use crate::diag::{Anchor, Code, Diagnostic, Report};

/// What kind of concurrency defect a model-check run surfaced
/// (a plain mirror of the checker's finding classification).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConcurrencyFindingKind {
    /// A cycle in the lock-order graph (potential deadlock).
    LockOrderCycle,
    /// A schedule on which every live thread blocks forever.
    Deadlock,
    /// A thread re-acquired a mutex it already holds.
    DoubleLock,
    /// A schedule that parks a waiter nobody can ever notify.
    LostWakeup,
    /// A single-flight waiter wedged on an abandoned leader.
    SingleFlightStall,
    /// A schedule produced a non-linearizable outcome (assertion).
    NonLinearizable,
    /// The exploration step bound tripped (livelock or oversized model).
    StepBound,
}

/// One finding from a model-check run, with its witness trace.
#[derive(Debug, Clone)]
pub struct ConcurrencyFinding {
    /// Defect classification.
    pub kind: ConcurrencyFindingKind,
    /// One-line description from the checker.
    pub message: String,
    /// Witness lines (schedule tail, per-thread status, cycle edges).
    pub witness: Vec<String>,
}

/// The outcome of model-checking one model.
#[derive(Debug, Clone)]
pub struct ModelCheckRun {
    /// Model name, e.g. `pool.range.drain` (names containing
    /// `single-flight` route liveness findings to SW027).
    pub model: String,
    /// Executions explored (DFS + random).
    pub executions: u64,
    /// Total scheduled transitions.
    pub steps: u64,
    /// Whether bounded-exhaustive exploration completed.
    pub complete: bool,
    /// Findings (empty for a clean run).
    pub findings: Vec<ConcurrencyFinding>,
}

impl ConcurrencyFindingKind {
    /// The SW0xx code this defect maps to.
    pub fn code(self) -> Code {
        match self {
            ConcurrencyFindingKind::LockOrderCycle
            | ConcurrencyFindingKind::Deadlock
            | ConcurrencyFindingKind::DoubleLock
            | ConcurrencyFindingKind::StepBound => Code::LockOrderCycle,
            ConcurrencyFindingKind::LostWakeup => Code::LostWakeup,
            ConcurrencyFindingKind::SingleFlightStall => Code::SingleFlightLiveness,
            ConcurrencyFindingKind::NonLinearizable => Code::PoolNondeterminism,
        }
    }
}

/// Folds a witness into a diagnostic message: the one-liner, then the
/// trace lines indented two spaces. (Witness steps are schedule
/// events, not mesh cells, so the cell-trail field does not apply.)
fn fold_witness(message: &str, witness: &[String], cap: usize) -> String {
    if witness.is_empty() {
        return message.to_string();
    }
    let start = witness.len().saturating_sub(cap);
    let mut out = String::from(message);
    out.push_str("\n  witness:");
    for line in &witness[start..] {
        out.push_str("\n    ");
        out.push_str(line);
    }
    out
}

/// Converts model-check runs into a [`Report`] on the SW0xx registry.
///
/// Every finding becomes an error-severity diagnostic with its witness
/// folded into the message; a run with no findings contributes an
/// SW020 info line (so "the suite ran and explored N schedules" is
/// itself recorded, the same pattern as the SW021/SW022
/// certifications). The report's exit-code contract matches the rest
/// of the analyzer: any error ⇒ the CLI exits 2.
pub fn analyze_model_checks(runs: &[ModelCheckRun]) -> Report {
    const WITNESS_CAP: usize = 24;
    let mut report = Report::new("model-check");
    for run in runs {
        if run.findings.is_empty() {
            report.push(Diagnostic::new(
                Code::Stats,
                Anchor::none(),
                format!(
                    "{}: clean — {} execution(s), {} step(s), exploration {}",
                    run.model,
                    run.executions,
                    run.steps,
                    if run.complete {
                        "complete (state space exhausted)"
                    } else {
                        "bounded (budget reached)"
                    },
                ),
            ));
            continue;
        }
        for finding in &run.findings {
            let message = format!(
                "{}: {}",
                run.model,
                fold_witness(&finding.message, &finding.witness, WITNESS_CAP)
            );
            report.push(Diagnostic::new(
                finding.kind.code(),
                Anchor::none(),
                message,
            ));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;

    fn run(model: &str, findings: Vec<ConcurrencyFinding>) -> ModelCheckRun {
        ModelCheckRun {
            model: model.to_string(),
            executions: 12,
            steps: 340,
            complete: true,
            findings,
        }
    }

    fn finding(kind: ConcurrencyFindingKind) -> ConcurrencyFinding {
        ConcurrencyFinding {
            kind,
            message: "boom".to_string(),
            witness: vec!["1  t0: lock Mutex@a.rs:1:1".to_string()],
        }
    }

    #[test]
    fn kinds_map_to_the_registry() {
        use ConcurrencyFindingKind as K;
        assert_eq!(K::LockOrderCycle.code().as_str(), "SW025");
        assert_eq!(K::Deadlock.code().as_str(), "SW025");
        assert_eq!(K::DoubleLock.code().as_str(), "SW025");
        assert_eq!(K::StepBound.code().as_str(), "SW025");
        assert_eq!(K::LostWakeup.code().as_str(), "SW026");
        assert_eq!(K::SingleFlightStall.code().as_str(), "SW027");
        assert_eq!(K::NonLinearizable.code().as_str(), "SW023");
    }

    #[test]
    fn clean_runs_emit_sw020_and_no_errors() {
        let report = analyze_model_checks(&[run("pool.range.drain", vec![])]);
        assert!(!report.has_errors());
        assert!(report.has_code(Code::Stats));
        let text = report.render_text();
        assert!(text.contains("pool.range.drain"));
        assert!(text.contains("complete"));
    }

    #[test]
    fn findings_become_errors_with_witness_lines() {
        let report = analyze_model_checks(&[run(
            "fixture.inverted-locks",
            vec![finding(ConcurrencyFindingKind::Deadlock)],
        )]);
        assert!(report.has_errors());
        assert!(report.has_code(Code::LockOrderCycle));
        let text = report.render_text();
        assert!(text.contains("error[SW025]"));
        assert!(text.contains("witness:"));
        assert!(text.contains("lock Mutex@a.rs:1:1"));
    }

    #[test]
    fn witness_is_capped_to_the_tail() {
        let long: Vec<String> = (0..100).map(|i| format!("line {i}")).collect();
        let folded = fold_witness("msg", &long, 24);
        assert!(!folded.contains("line 75"));
        assert!(folded.contains("line 76"));
        assert!(folded.contains("line 99"));
    }

    #[test]
    fn mixed_runs_keep_per_model_attribution() {
        let report = analyze_model_checks(&[
            run("serve.single-flight.coalesce", vec![]),
            run(
                "fixture.single-flight-leak",
                vec![finding(ConcurrencyFindingKind::SingleFlightStall)],
            ),
        ]);
        assert_eq!(report.count(Severity::Error), 1);
        assert_eq!(report.count(Severity::Info), 1);
        assert!(report.has_code(Code::SingleFlightLiveness));
        assert!(report
            .render_text()
            .contains("fixture.single-flight-leak: boom"));
    }
}
