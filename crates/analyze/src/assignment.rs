//! Static analysis of an [`Assignment`] *before* any scheduling runs:
//! empty processors (SW010), load imbalance (SW011), and the paper's C1
//! communication upper bound (SW015/SW020).
//!
//! C1 (paper §4) counts cross-processor DAG edges — every one carries a
//! face-flux message in any schedule using this assignment, so it is a
//! scheduling-independent *upper bound* on point-to-point traffic and
//! worth gating on before paying for a full schedule.

use sweep_core::{c1_interprocessor_edges, Assignment};
use sweep_dag::SweepInstance;

use crate::diag::{Anchor, Code, Diagnostic, Report};
use crate::AnalyzeOptions;

/// Analyzes an assignment with default thresholds
/// ([`AnalyzeOptions::default`]).
pub fn analyze_assignment(instance: &SweepInstance, assignment: &Assignment) -> Report {
    analyze_assignment_with(instance, assignment, &AnalyzeOptions::default())
}

/// Analyzes an assignment with explicit thresholds.
pub fn analyze_assignment_with(
    instance: &SweepInstance,
    assignment: &Assignment,
    opts: &AnalyzeOptions,
) -> Report {
    let mut report = Report::new(format!("assignment for '{}'", instance.name()));
    let n = instance.num_cells();
    let m = assignment.num_procs();

    if assignment.num_cells() != n {
        report.push(Diagnostic::new(
            Code::AssignmentMismatch,
            Anchor::none(),
            format!(
                "instance has {n} cells but assignment covers {}",
                assignment.num_cells()
            ),
        ));
        return report; // Loads/C1 are meaningless against the wrong instance.
    }

    // SW010: empty processors waste a machine and void the ⌈n/m⌉ balance
    // assumed by the paper's load bound.
    let loads = assignment.loads();
    for (p, &load) in loads.iter().enumerate() {
        if load == 0 {
            report.push(Diagnostic::new(
                Code::EmptyProcessor,
                Anchor::proc(p as u32),
                format!("processor {p} owns no cells ({m} processors, {n} cells)"),
            ));
        }
    }

    // SW011: max load beyond `imbalance_factor ×` the mean. The makespan
    // lower bound scales with max-load·k, so imbalance directly inflates
    // every schedule built on this assignment.
    let mean = n as f64 / m as f64;
    let (worst_proc, &max_load) = loads
        .iter()
        .enumerate()
        .max_by_key(|&(_, l)| *l)
        .expect("at least one processor");
    if n >= m && (max_load as f64) > opts.imbalance_factor * mean {
        report.push(Diagnostic::new(
            Code::LoadImbalance,
            Anchor::proc(worst_proc as u32),
            format!(
                "processor {worst_proc} owns {max_load} cells, {:.1}× the mean {mean:.1} \
                 (threshold {:.1}×); per-processor work bound is max-load·k = {}",
                max_load as f64 / mean,
                opts.imbalance_factor,
                max_load as u64 * instance.num_directions() as u64,
            ),
        ));
    }

    // SW015 / SW020: the C1 upper bound on communication volume.
    let total_edges = instance.total_edges() as u64;
    let c1 = c1_interprocessor_edges(instance, assignment);
    if total_edges > 0 {
        let frac = c1 as f64 / total_edges as f64;
        if frac > opts.comm_fraction {
            report.push(Diagnostic::new(
                Code::HighCommBound,
                Anchor::none(),
                format!(
                    "C1 = {c1} cross-processor edges, {:.0}% of all {total_edges} \
                     (threshold {:.0}%): every schedule on this assignment sends ≥{c1} messages",
                    frac * 100.0,
                    opts.comm_fraction * 100.0,
                ),
            ));
        } else {
            report.push(Diagnostic::new(
                Code::Stats,
                Anchor::none(),
                format!(
                    "C1 = {c1} cross-processor edges ({:.0}% of {total_edges}); \
                     loads min {} / mean {mean:.1} / max {max_load}",
                    frac * 100.0,
                    loads.iter().min().expect("nonempty"),
                ),
            ));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst() -> SweepInstance {
        SweepInstance::random_layered(40, 2, 5, 2, 11)
    }

    #[test]
    fn balanced_assignment_is_clean() {
        let inst = inst();
        let a = Assignment::round_robin(40, 4);
        let r = analyze_assignment(&inst, &a);
        assert!(!r.has_errors());
        assert!(!r.has_code(Code::EmptyProcessor));
        assert!(!r.has_code(Code::LoadImbalance));
    }

    #[test]
    fn empty_processor_flagged() {
        let inst = inst();
        // All 40 cells on proc 0 of 4 ⇒ three empty procs + imbalance.
        let a = Assignment::from_vec(vec![0; 40], 4);
        let r = analyze_assignment(&inst, &a);
        assert_eq!(r.count_code(Code::EmptyProcessor), 3);
        assert_eq!(r.count_code(Code::LoadImbalance), 1);
        assert!(!r.has_errors(), "imbalance is a warning, not an error");
    }

    #[test]
    fn imbalance_threshold_is_configurable() {
        let inst = inst();
        let mut cells = vec![0u32; 40];
        // 25 cells on proc 0, 5 each on 1..=3 ⇒ max/mean = 2.5.
        for (i, c) in cells.iter_mut().enumerate().skip(25) {
            *c = 1 + ((i - 25) % 3) as u32;
        }
        let a = Assignment::from_vec(cells, 4);
        let strict = AnalyzeOptions {
            imbalance_factor: 2.0,
            ..AnalyzeOptions::default()
        };
        let lax = AnalyzeOptions {
            imbalance_factor: 3.0,
            ..AnalyzeOptions::default()
        };
        assert!(analyze_assignment_with(&inst, &a, &strict).has_code(Code::LoadImbalance));
        assert!(!analyze_assignment_with(&inst, &a, &lax).has_code(Code::LoadImbalance));
    }

    #[test]
    fn wrong_cell_count_is_an_error() {
        let inst = inst();
        let a = Assignment::round_robin(30, 4);
        let r = analyze_assignment(&inst, &a);
        assert!(r.has_errors());
        assert!(r.has_code(Code::AssignmentMismatch));
    }

    #[test]
    fn c1_bound_reported() {
        let inst = inst();
        let a = Assignment::random_cells(40, 4, 3);
        let r = analyze_assignment(&inst, &a);
        // Random assignment of 40 cells over 4 procs cuts ~75% of edges.
        assert!(r.has_code(Code::HighCommBound) || r.has_code(Code::Stats));
        let single = Assignment::single(40);
        let r1 = analyze_assignment(&inst, &single);
        assert!(r1.has_code(Code::Stats), "C1 = 0 on one processor");
        assert!(!r1.has_code(Code::HighCommBound));
    }
}
