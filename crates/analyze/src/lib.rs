//! # sweep-analyze
//!
//! Static analysis for sweep-scheduling artifacts: instances,
//! assignments, schedules, and asynchronous execution traces.
//!
//! Every analyzer returns a [`Report`] of [`Diagnostic`]s carrying a
//! stable `SW0xx` [`Code`], a [`Severity`], and an [`Anchor`] into the
//! model (cell / direction / timestep / processor). Reports render as
//! human-readable text, JSON, or SARIF 2.1.0 — the latter uploads
//! directly to CI code-scanning. The full code registry lives in
//! [`diag`].
//!
//! The analyzers:
//!
//! * [`analyze_instance`] — Tarjan-SCC cycle detection with a shortest
//!   witness cycle (SW001), unreachable cells (SW012), degenerate
//!   directions (SW013), width/critical-path statistics (SW020);
//! * [`analyze_quadrature`] — degenerate ordinate normals (SW013);
//! * [`analyze_assignment`] — empty processors (SW010), load imbalance
//!   (SW011), the pre-scheduling C1 communication bound (SW015);
//! * [`analyze_schedule`] / [`analyze_raw_schedule`] — collect-**all**
//!   feasibility (SW002–SW006, where [`sweep_core::validate`] stops at
//!   the first violation) and certification against the paper's bounds
//!   (SW007, SW014, SW021);
//! * [`analyze_async`] — a vector-clock happens-before race detector
//!   over the distributed execution trace (SW016);
//! * [`analyze_parallel_determinism`] — re-runs a best-of-`b`
//!   certification sequentially and twice through the worker pool and
//!   diffs the results bit-for-bit (SW023).
//!
//! ```
//! use sweep_analyze::{analyze_instance, Code};
//! use sweep_dag::from_text_unchecked;
//!
//! // A cyclic "instance" no scheduler will accept — the analyzer
//! // pinpoints the cycle instead of panicking.
//! let text = "sweep-instance v1\nname demo\ncells 3\ndirections 1\n\
//!             dag 0 edges 3\n0 1\n1 2\n2 0\nend\n";
//! let inst = from_text_unchecked(text).unwrap();
//! let report = analyze_instance(&inst);
//! assert!(report.has_errors());
//! assert!(report.has_code(Code::CyclicDependency));
//! assert_eq!(report.diagnostics()[0].trail, vec![0, 1, 2, 0]);
//! ```

// Tests exercise failure paths where unwrap is the assertion.
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod concurrency;
pub mod diag;
pub mod import;

mod assignment;
mod cache_identity;
mod cluster_identity;
mod happens_before;
mod instance;
mod parallel;
mod schedule;
mod trace_integrity;
mod tracetree;

pub use assignment::{analyze_assignment, analyze_assignment_with};
pub use cache_identity::{analyze_cache_identity, CacheIdentityMeta};
pub use cluster_identity::{analyze_cluster_identity, ClusterIdentityMeta};
pub use concurrency::{
    analyze_model_checks, ConcurrencyFinding, ConcurrencyFindingKind, ModelCheckRun,
};
pub use diag::{json_string, Anchor, Code, Diagnostic, Report, Severity};
pub use happens_before::{analyze_async, analyze_trace};
pub use import::analyze_import;
pub use instance::{analyze_instance, analyze_quadrature};
pub use parallel::{analyze_parallel_determinism, CERT_TRIALS};
pub use schedule::{
    analyze_raw_schedule, analyze_raw_schedule_with, analyze_schedule, analyze_schedule_with,
    RawSchedule,
};
pub use trace_integrity::analyze_trace_integrity;
pub use tracetree::{analyze_trace_trees, RequestTraceData, TraceSpanData};

/// Tunable thresholds for the warning-level checks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalyzeOptions {
    /// SW011 fires when `max_load > imbalance_factor × (n/m)`.
    pub imbalance_factor: f64,
    /// SW015 fires when cross-processor edges exceed this fraction of
    /// all edges.
    pub comm_fraction: f64,
    /// SW014 fires when the makespan exceeds
    /// `envelope_factor · log2(nk) · LB` — a generous cover of the
    /// paper's `O(log nk / log log nk)`-factor guarantee.
    pub envelope_factor: f64,
}

impl Default for AnalyzeOptions {
    fn default() -> AnalyzeOptions {
        AnalyzeOptions {
            imbalance_factor: 2.0,
            comm_fraction: 0.9,
            envelope_factor: 2.0,
        }
    }
}

/// Runs every applicable analyzer for an instance plus an optional
/// assignment and schedule, merged into one report.
pub fn analyze_all(
    instance: &sweep_dag::SweepInstance,
    assignment: Option<&sweep_core::Assignment>,
    schedule: Option<&sweep_core::Schedule>,
    opts: &AnalyzeOptions,
) -> Report {
    let mut report = analyze_instance(instance);
    let cyclic = report.has_code(Code::CyclicDependency);
    if let Some(a) = assignment {
        report.merge(analyze_assignment_with(instance, a, opts));
    }
    // Schedules over cyclic instances are meaningless; the cycle error
    // already blocks the pipeline.
    if let Some(s) = schedule {
        if !cyclic {
            report.merge(analyze_schedule_with(instance, s, opts));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use sweep_core::{greedy_schedule, Assignment};
    use sweep_dag::SweepInstance;

    #[test]
    fn analyze_all_merges_sections() {
        let inst = SweepInstance::random_layered(40, 3, 5, 2, 2);
        let a = Assignment::random_cells(40, 4, 1);
        let s = greedy_schedule(&inst, a.clone());
        let r = analyze_all(&inst, Some(&a), Some(&s), &AnalyzeOptions::default());
        assert!(!r.has_errors(), "{}", r.render_text());
        assert!(r.has_code(Code::Certified));
        assert!(r.count_code(Code::Stats) >= 1);
    }

    #[test]
    fn analyze_all_skips_schedule_on_cyclic_instance() {
        use sweep_dag::TaskDag;
        let inst =
            SweepInstance::new_unchecked(2, vec![TaskDag::from_edges(2, &[(0, 1), (1, 0)])], "cyc");
        let a = Assignment::single(2);
        // Build the schedule against a *different* acyclic view; the
        // point is only that analyze_all refuses to certify it.
        let ok = SweepInstance::new(2, vec![TaskDag::from_edges(2, &[(0, 1)])], "ok");
        let s = greedy_schedule(&ok, a.clone());
        let r = analyze_all(&inst, Some(&a), Some(&s), &AnalyzeOptions::default());
        assert!(r.has_code(Code::CyclicDependency));
        assert!(!r.has_code(Code::Certified));
    }
}
