//! Collect-all schedule analysis: where [`sweep_core::validate`] stops
//! at the first feasibility violation, [`analyze_schedule`] reports
//! *every* violation (SW002/SW003/SW005/SW006), checks the
//! same-processor constraint on raw per-task tables (SW004), and
//! certifies feasible schedules against the paper's bounds
//! (SW007/SW014/SW021).

use sweep_core::{lower_bounds, Schedule};
use sweep_dag::{SweepInstance, TaskId};

use crate::diag::{Anchor, Code, Diagnostic, Report};
use crate::AnalyzeOptions;

/// A schedule as raw per-task tables, prior to any of the invariants
/// [`Schedule`] enforces by construction. This is the form external
/// schedulers (or corrupted archives) hand us: `start[t]` and
/// `proc[t]` for every packed task id `t = dir·n + cell`, on `m`
/// processors. Unlike [`Schedule`], it can represent split cells
/// (SW004) and short/long tables (SW005) — exactly what the analyzer
/// must be able to diagnose.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawSchedule {
    /// Start time per packed task.
    pub start: Vec<u32>,
    /// Executing processor per packed task.
    pub proc: Vec<u32>,
    /// Number of processors.
    pub m: usize,
}

impl RawSchedule {
    /// Expands a well-formed [`Schedule`] into raw tables.
    pub fn from_schedule(schedule: &Schedule) -> RawSchedule {
        let n = schedule.assignment().num_cells();
        let total = schedule.starts().len();
        let proc = (0..total)
            .map(|t| schedule.proc_of_cell((t % n.max(1)) as u32))
            .collect();
        RawSchedule {
            start: schedule.starts().to_vec(),
            proc,
            m: schedule.num_procs(),
        }
    }

    /// The makespan implied by the start table (unit tasks).
    pub fn makespan(&self) -> u32 {
        self.start.iter().max().map_or(0, |&t| t + 1)
    }
}

/// Analyzes a constructed [`Schedule`] — collect-all feasibility plus
/// bound certification — with default thresholds.
pub fn analyze_schedule(instance: &SweepInstance, schedule: &Schedule) -> Report {
    analyze_schedule_with(instance, schedule, &AnalyzeOptions::default())
}

/// [`analyze_schedule`] with explicit thresholds.
pub fn analyze_schedule_with(
    instance: &SweepInstance,
    schedule: &Schedule,
    opts: &AnalyzeOptions,
) -> Report {
    let mut report = Report::new(format!("schedule for '{}'", instance.name()));
    let n = instance.num_cells();
    if schedule.assignment().num_cells() != n {
        report.push(Diagnostic::new(
            Code::AssignmentMismatch,
            Anchor::none(),
            format!(
                "instance has {n} cells but the schedule's assignment covers {}",
                schedule.assignment().num_cells()
            ),
        ));
        return report;
    }
    let raw = RawSchedule::from_schedule(schedule);
    collect_feasibility(instance, &raw, &mut report);
    if !report.has_errors() {
        certify_bounds(instance, raw.makespan(), raw.m, opts, &mut report);
    }
    report
}

/// Analyzes raw per-task tables (the collect-all generalization of
/// `validate`): every precedence violation, every processor conflict,
/// split cells, and table-shape errors are reported — not just the
/// first. Feasible tables are then certified against the bounds.
pub fn analyze_raw_schedule(instance: &SweepInstance, raw: &RawSchedule) -> Report {
    analyze_raw_schedule_with(instance, raw, &AnalyzeOptions::default())
}

/// [`analyze_raw_schedule`] with explicit thresholds.
pub fn analyze_raw_schedule_with(
    instance: &SweepInstance,
    raw: &RawSchedule,
    opts: &AnalyzeOptions,
) -> Report {
    let mut report = Report::new(format!("raw schedule for '{}'", instance.name()));
    collect_feasibility(instance, raw, &mut report);
    if !report.has_errors() {
        certify_bounds(instance, raw.makespan(), raw.m, opts, &mut report);
    }
    report
}

/// The collect-all feasibility pass shared by both entry points.
fn collect_feasibility(instance: &SweepInstance, raw: &RawSchedule, report: &mut Report) {
    let n = instance.num_cells();
    let k = instance.num_directions();
    let total = n * k;

    // SW005: table shape. Without the right shape the per-task checks
    // below would index garbage, so this one is a hard stop.
    if raw.start.len() != total || raw.proc.len() != total {
        report.push(Diagnostic::new(
            Code::TaskCountMismatch,
            Anchor::none(),
            format!(
                "expected {total} tasks ({n} cells × {k} directions); \
                 start table has {}, proc table has {}",
                raw.start.len(),
                raw.proc.len(),
            ),
        ));
        return;
    }

    // SW002: every violated precedence edge (unit tasks ⇒ start(v) > start(u)).
    for (i, dag) in instance.dags().iter().enumerate() {
        for (u, v) in dag.edges() {
            let su = raw.start[TaskId::pack(u, i as u32, n).index()];
            let sv = raw.start[TaskId::pack(v, i as u32, n).index()];
            if sv <= su {
                report.push(Diagnostic::new(
                    Code::PrecedenceViolation,
                    Anchor::task(v, i as u32).at_time(sv),
                    format!(
                        "direction {i}: cell {u} (t={su}) must finish before cell {v} (t={sv})"
                    ),
                ));
            }
        }
    }

    // SW003: every double-booked (proc, timestep) slot, reported once per
    // slot with the number of colliding tasks.
    let mut slots: Vec<(u32, u32)> = raw
        .start
        .iter()
        .zip(&raw.proc)
        .map(|(&t, &p)| (p, t))
        .collect();
    slots.sort_unstable();
    let mut i = 0;
    while i < slots.len() {
        let mut j = i + 1;
        while j < slots.len() && slots[j] == slots[i] {
            j += 1;
        }
        if j - i > 1 {
            let (p, t) = slots[i];
            report.push(Diagnostic::new(
                Code::ProcessorConflict,
                Anchor::proc(p).at_time(t),
                format!("processor {p} runs {} tasks at time {t}", j - i),
            ));
        }
        i = j;
    }

    // SW004: all k copies of a cell must share one processor (the
    // model's defining constraint — face fluxes for every direction of a
    // cell live in one memory).
    for v in 0..n as u32 {
        let p0 = raw.proc[TaskId::pack(v, 0, n).index()];
        let mut procs: Vec<u32> = (0..k as u32)
            .map(|d| raw.proc[TaskId::pack(v, d, n).index()])
            .collect();
        procs.sort_unstable();
        procs.dedup();
        if procs.len() > 1 {
            report.push(Diagnostic::new(
                Code::SplitCellCopies,
                Anchor::cell(v),
                format!(
                    "cell {v} runs on {} processors {:?} — all {k} direction copies \
                     must share one (first copy on proc {p0})",
                    procs.len(),
                    procs,
                ),
            ));
        }
    }

    // Out-of-range processors ride along as conflicts of shape.
    for (t, &p) in raw.proc.iter().enumerate() {
        if (p as usize) >= raw.m {
            let (cell, dir) = TaskId(t as u64).unpack(n);
            report.push(Diagnostic::new(
                Code::ProcessorConflict,
                Anchor::task(cell, dir).on_proc(p),
                format!(
                    "task (cell {cell}, dir {dir}) assigned to processor {p} ≥ m = {}",
                    raw.m
                ),
            ));
        }
    }
}

/// Certifies a feasible makespan against the paper's bounds: SW007 if it
/// beats a proven lower bound (impossible ⇒ the schedule is corrupt),
/// SW014 if it exceeds the random-delay `O(log)` envelope, SW021
/// otherwise.
fn certify_bounds(
    instance: &SweepInstance,
    makespan: u32,
    m: usize,
    opts: &AnalyzeOptions,
    report: &mut Report,
) {
    if m == 0 {
        return;
    }
    let lb = lower_bounds(instance, m);
    let best = lb.best();
    if (makespan as u64) < best {
        report.push(Diagnostic::new(
            Code::MakespanBelowBound,
            Anchor::none(),
            format!(
                "makespan {makespan} is below the certified lower bound {best} \
                 (max of ⌈nk/m⌉={}, k={}, D={}, graham={}) — the schedule cannot be real",
                lb.avg_load, lb.directions, lb.depth, lb.graham,
            ),
        ));
        return;
    }
    // Random-delay sanity envelope: the paper proves O(log nk / log log nk)
    // times the lower bound; `envelope_factor · log2(nk)` upper-bounds
    // that comfortably for all practical nk, so exceeding it means the
    // schedule is far outside what *any* of the analyzed algorithms
    // produce — worth a warning, not an error.
    let nk = instance.num_tasks() as f64;
    let envelope = (opts.envelope_factor * nk.max(2.0).log2() * lb.paper() as f64).ceil();
    if makespan as f64 > envelope {
        report.push(Diagnostic::new(
            Code::DelayEnvelopeExceeded,
            Anchor::none(),
            format!(
                "makespan {makespan} exceeds the random-delay envelope {envelope:.0} \
                 (= {:.1} · log2({}) · LB {})",
                opts.envelope_factor,
                instance.num_tasks(),
                lb.paper(),
            ),
        ));
    } else {
        report.push(Diagnostic::new(
            Code::Certified,
            Anchor::none(),
            format!(
                "feasible; makespan {makespan} within [LB {best}, envelope {envelope:.0}], \
                 ratio {:.3} vs paper bound {}",
                makespan as f64 / lb.paper().max(1) as f64,
                lb.paper(),
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sweep_core::{greedy_schedule, validate, Assignment};

    fn inst() -> SweepInstance {
        SweepInstance::random_layered(30, 3, 5, 2, 21)
    }

    fn good_schedule(inst: &SweepInstance) -> Schedule {
        greedy_schedule(inst, Assignment::random_cells(inst.num_cells(), 4, 5))
    }

    #[test]
    fn feasible_schedule_is_certified() {
        let inst = inst();
        let s = good_schedule(&inst);
        let r = analyze_schedule(&inst, &s);
        assert!(!r.has_errors(), "{}", r.render_text());
        assert!(r.has_code(Code::Certified));
    }

    #[test]
    fn collect_all_reports_every_violation() {
        let inst = inst();
        let s = good_schedule(&inst);
        let mut raw = RawSchedule::from_schedule(&s);

        // Corruption 1: invert a precedence edge in direction 0.
        let (u, v) = inst.dag(0).edges().next().expect("has edges");
        let n = inst.num_cells();
        raw.start[TaskId::pack(v, 0, n).index()] = raw.start[TaskId::pack(u, 0, n).index()];
        // Corruption 2: split cell 0's copies across processors.
        let other = (raw.proc[TaskId::pack(0, 0, n).index()] + 1) % raw.m as u32;
        raw.proc[TaskId::pack(0, 1, n).index()] = other;

        let r = analyze_raw_schedule(&inst, &raw);
        assert!(r.has_code(Code::PrecedenceViolation), "{}", r.render_text());
        assert!(r.has_code(Code::SplitCellCopies));
        // The old validator stops at the first violation; the analyzer
        // must surface at least the two distinct corruptions.
        let distinct: std::collections::BTreeSet<_> =
            r.diagnostics().iter().map(|d| d.code).collect();
        assert!(
            distinct.len() >= 2,
            "want ≥2 distinct codes, got {distinct:?}"
        );
    }

    #[test]
    fn old_validator_reports_only_one_of_two_corruptions() {
        // The acceptance scenario: two independent corruptions, one
        // `validate` error, ≥2 analyzer diagnostics.
        let inst = inst();
        let s = good_schedule(&inst);
        let mut starts = s.starts().to_vec();
        let n = inst.num_cells();
        // Corruption 1: precedence inversion in direction 0.
        let (u, v) = inst.dag(0).edges().next().expect("has edges");
        starts[TaskId::pack(v, 0, n).index()] = starts[TaskId::pack(u, 0, n).index()];
        // Corruption 2: processor conflict — give two same-proc cells in
        // direction 1 the same start.
        let a = s.assignment();
        let p0 = a.proc_of(0);
        let mate = (1..n as u32).find(|&c| a.proc_of(c) == p0).expect("m < n");
        starts[TaskId::pack(mate, 1, n).index()] = starts[TaskId::pack(0, 1, n).index()];

        let bad = Schedule::new(starts, a.clone()).expect("shape unchanged");
        let first = validate(&inst, &bad).expect_err("corrupt");
        // validate() returns exactly one violation...
        let _ = first;
        // ...while the analyzer reports both corruption sites.
        let r = analyze_schedule(&inst, &bad);
        let codes: std::collections::BTreeSet<_> = r.diagnostics().iter().map(|d| d.code).collect();
        assert!(
            codes.contains(&Code::PrecedenceViolation) && codes.contains(&Code::ProcessorConflict),
            "want both corruptions reported, got {codes:?}\n{}",
            r.render_text()
        );
        assert!(r.len() >= 2);
    }

    #[test]
    fn short_table_is_sw005() {
        let inst = inst();
        let raw = RawSchedule {
            start: vec![0; 10],
            proc: vec![0; 10],
            m: 2,
        };
        let r = analyze_raw_schedule(&inst, &raw);
        assert_eq!(r.count_code(Code::TaskCountMismatch), 1);
        assert_eq!(r.len(), 1, "shape error short-circuits per-task checks");
    }

    #[test]
    fn impossible_makespan_is_sw007() {
        // A feasible schedule can never beat the chain bound, so SW007
        // never fires on real schedules…
        let inst = SweepInstance::identical_chains(6, 2); // D = 6 ⇒ LB ≥ 12 on 1 proc
        let s = greedy_schedule(&inst, Assignment::single(6));
        let r = analyze_schedule(&inst, &s);
        assert!(!r.has_code(Code::MakespanBelowBound));
        // …and a claimed makespan below the bound is certifiably corrupt.
        let mut report = Report::new("synthetic");
        certify_bounds(&inst, 3, 1, &AnalyzeOptions::default(), &mut report);
        assert!(report.has_code(Code::MakespanBelowBound));
    }

    #[test]
    fn slow_makespan_warns_envelope() {
        let inst = SweepInstance::identical_chains(4, 2); // LB = 8 on 1 proc
        let mut report = Report::new("synthetic");
        certify_bounds(&inst, 10_000, 1, &AnalyzeOptions::default(), &mut report);
        assert!(report.has_code(Code::DelayEnvelopeExceeded));
        assert!(!report.has_errors());
    }
}
