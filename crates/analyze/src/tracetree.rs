//! SW028: well-formedness of request-scoped trace trees.
//!
//! The serving layer attaches a span tree to every sampled request
//! (`sweep-telemetry`'s `TraceCtx`). Operational conclusions drawn from
//! those trees — `Server-Timing` stage attribution, slow-request
//! exemplars, coalescing chains — are only trustworthy if the trees are
//! structurally sound, so this analyzer certifies a corpus of traces:
//!
//! * every opened span was closed (`opened_spans == spans.len()`);
//! * span ids are unique and non-zero within a request;
//! * every non-root span's parent exists and **starts no later than**
//!   the child (parent precedes child);
//! * children end within their parent (interval containment, with a
//!   small tolerance for clock granularity);
//! * a request that coalesced onto a single-flight leader references a
//!   request id that actually appears in the corpus and is not itself.
//!
//! The analyzer is plain-data on purpose: callers (the server, the
//! bench harness) convert their trace types into [`RequestTraceData`]
//! so `sweep-analyze` keeps its dependency footprint unchanged.

use crate::diag::{Anchor, Code, Diagnostic, Report};
use std::collections::{BTreeMap, BTreeSet};

/// One closed span of a request trace, in analyzer-neutral form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSpanData {
    /// Span id, unique and non-zero within its request.
    pub id: u64,
    /// Parent span id (0 = root of the request).
    pub parent: u64,
    /// Span name (stage taxonomy).
    pub name: String,
    /// Start, microseconds since the request began.
    pub start_us: u64,
    /// Duration, microseconds.
    pub dur_us: u64,
}

/// One request's frozen trace, in analyzer-neutral form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestTraceData {
    /// The request's 64-bit id.
    pub request_id: u64,
    /// Single-flight leader this request coalesced onto, if any.
    pub coalesced_onto: Option<u64>,
    /// Spans ever opened on the request; a well-formed trace closes all
    /// of them.
    pub opened_spans: u64,
    /// The closed spans.
    pub spans: Vec<TraceSpanData>,
}

/// Tolerance (µs) for parent/child interval containment: span clocks
/// are read independently, so a child may appear to outlive its parent
/// by a few microseconds of measurement skew without the tree being
/// wrong.
const CONTAINMENT_SLACK_US: u64 = 200;

/// Certifies a corpus of request traces (SW028 errors; SW020 stats and
/// a clean bill of health when nothing is wrong).
pub fn analyze_trace_trees(traces: &[RequestTraceData]) -> Report {
    let mut report = Report::new("trace-trees");
    let all_ids: BTreeSet<u64> = traces.iter().map(|t| t.request_id).collect();
    let mut total_spans = 0usize;
    let mut coalesced = 0usize;

    for t in traces {
        let rid = t.request_id;
        total_spans += t.spans.len();

        if t.opened_spans != t.spans.len() as u64 {
            report.push(Diagnostic::new(
                Code::TraceTreeMalformed,
                Anchor::none(),
                format!(
                    "request {rid:016x}: {} span(s) opened but {} closed — \
                     a guard leaked past finish()",
                    t.opened_spans,
                    t.spans.len()
                ),
            ));
        }

        let mut by_id: BTreeMap<u64, &TraceSpanData> = BTreeMap::new();
        for s in &t.spans {
            if s.id == 0 {
                report.push(Diagnostic::new(
                    Code::TraceTreeMalformed,
                    Anchor::none(),
                    format!("request {rid:016x}: span '{}' has reserved id 0", s.name),
                ));
                continue;
            }
            if by_id.insert(s.id, s).is_some() {
                report.push(Diagnostic::new(
                    Code::TraceTreeMalformed,
                    Anchor::none(),
                    format!("request {rid:016x}: duplicate span id {}", s.id),
                ));
            }
        }

        for s in &t.spans {
            if s.parent == 0 {
                continue;
            }
            let Some(p) = by_id.get(&s.parent) else {
                report.push(Diagnostic::new(
                    Code::TraceTreeMalformed,
                    Anchor::none(),
                    format!(
                        "request {rid:016x}: span '{}' (id {}) has dangling parent {}",
                        s.name, s.id, s.parent
                    ),
                ));
                continue;
            };
            if p.start_us > s.start_us {
                report.push(Diagnostic::new(
                    Code::TraceTreeMalformed,
                    Anchor::none(),
                    format!(
                        "request {rid:016x}: parent '{}' starts at {}µs after child '{}' at {}µs",
                        p.name, p.start_us, s.name, s.start_us
                    ),
                ));
            }
            let p_end = p.start_us + p.dur_us + CONTAINMENT_SLACK_US;
            if s.start_us + s.dur_us > p_end {
                report.push(Diagnostic::new(
                    Code::TraceTreeMalformed,
                    Anchor::none(),
                    format!(
                        "request {rid:016x}: child '{}' ends at {}µs, beyond parent '{}' \
                         end {}µs (+{}µs slack)",
                        s.name,
                        s.start_us + s.dur_us,
                        p.name,
                        p.start_us + p.dur_us,
                        CONTAINMENT_SLACK_US
                    ),
                ));
            }
        }

        if let Some(leader) = t.coalesced_onto {
            coalesced += 1;
            if leader == rid {
                report.push(Diagnostic::new(
                    Code::TraceTreeMalformed,
                    Anchor::none(),
                    format!("request {rid:016x} claims to have coalesced onto itself"),
                ));
            } else if !all_ids.contains(&leader) {
                report.push(Diagnostic::new(
                    Code::TraceTreeMalformed,
                    Anchor::none(),
                    format!(
                        "request {rid:016x} coalesced onto {leader:016x}, which is not in \
                         the corpus"
                    ),
                ));
            }
        }
    }

    report.push(Diagnostic::new(
        Code::Stats,
        Anchor::none(),
        format!(
            "traces={} spans={} coalesced={}",
            traces.len(),
            total_spans,
            coalesced
        ),
    ));
    if !report.has_errors() {
        report.push(Diagnostic::new(
            Code::Certified,
            Anchor::none(),
            format!(
                "all {} trace tree(s) well-formed: every span closed, parents precede \
                 children, coalesce references resolve",
                traces.len()
            ),
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64, parent: u64, name: &str, start_us: u64, dur_us: u64) -> TraceSpanData {
        TraceSpanData {
            id,
            parent,
            name: name.to_string(),
            start_us,
            dur_us,
        }
    }

    fn clean_trace(rid: u64) -> RequestTraceData {
        RequestTraceData {
            request_id: rid,
            coalesced_onto: None,
            opened_spans: 3,
            spans: vec![
                span(1, 0, "request", 0, 100),
                span(2, 1, "cache", 10, 60),
                span(3, 2, "schedule", 20, 40),
            ],
        }
    }

    #[test]
    fn clean_corpus_certifies() {
        let mut follower = clean_trace(22);
        follower.coalesced_onto = Some(11);
        let r = analyze_trace_trees(&[clean_trace(11), follower]);
        assert!(!r.has_errors(), "{}", r.render_text());
        assert!(r.has_code(Code::Certified));
        assert!(r.has_code(Code::Stats));
    }

    #[test]
    fn unclosed_span_is_flagged() {
        let mut t = clean_trace(1);
        t.opened_spans = 4; // one guard never dropped
        let r = analyze_trace_trees(&[t]);
        assert!(r.has_code(Code::TraceTreeMalformed));
        assert!(r.render_text().contains("opened but 3 closed"));
    }

    #[test]
    fn dangling_parent_and_duplicate_ids_are_flagged() {
        let t = RequestTraceData {
            request_id: 5,
            coalesced_onto: None,
            opened_spans: 3,
            spans: vec![
                span(1, 0, "request", 0, 100),
                span(1, 0, "dup", 0, 50),
                span(2, 9, "orphan", 5, 10),
            ],
        };
        let r = analyze_trace_trees(&[t]);
        assert_eq!(r.count_code(Code::TraceTreeMalformed), 2);
        let text = r.render_text();
        assert!(text.contains("duplicate span id 1"));
        assert!(text.contains("dangling parent 9"));
    }

    #[test]
    fn parent_must_precede_child() {
        let t = RequestTraceData {
            request_id: 6,
            coalesced_onto: None,
            opened_spans: 2,
            spans: vec![span(1, 0, "request", 50, 100), span(2, 1, "early", 10, 5)],
        };
        let r = analyze_trace_trees(&[t]);
        assert!(r.has_code(Code::TraceTreeMalformed));
        assert!(r.render_text().contains("after child"));
    }

    #[test]
    fn child_escaping_parent_interval_is_flagged() {
        let t = RequestTraceData {
            request_id: 7,
            coalesced_onto: None,
            opened_spans: 2,
            spans: vec![
                span(1, 0, "request", 0, 100),
                span(2, 1, "runaway", 50, 100_000),
            ],
        };
        let r = analyze_trace_trees(&[t]);
        assert!(r.has_code(Code::TraceTreeMalformed));
        assert!(r.render_text().contains("beyond parent"));
    }

    #[test]
    fn coalesce_must_reference_a_real_other_leader() {
        let mut self_ref = clean_trace(8);
        self_ref.coalesced_onto = Some(8);
        let mut ghost = clean_trace(9);
        ghost.coalesced_onto = Some(0xdead);
        let r = analyze_trace_trees(&[self_ref, ghost]);
        assert_eq!(r.count_code(Code::TraceTreeMalformed), 2);
        let text = r.render_text();
        assert!(text.contains("onto itself"));
        assert!(text.contains("not in"));
    }

    #[test]
    fn empty_corpus_certifies_vacuously() {
        let r = analyze_trace_trees(&[]);
        assert!(!r.has_errors());
        assert!(r.has_code(Code::Certified));
    }
}
