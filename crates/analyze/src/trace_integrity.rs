//! Execution-trace integrity certification (SW005 / SW017 / SW018 /
//! SW022): is a trace — in particular one produced by the fault-aware
//! engine `sweep_sim::async_makespan_faulty` — a *correct* sweep?
//!
//! A fault-injected run retries dropped messages, discards duplicates,
//! and re-executes a crashed processor's work on survivors. All of that
//! is only acceptable if the observable trace still satisfies the
//! sequential semantics of the sweep:
//!
//! 1. **Exactly-once.** Every task `(v, i)` appears exactly once among
//!    the (successful) executions — a missing task is SW005, a
//!    re-execution that was not filtered out is SW017.
//! 2. **Precedence.** For every DAG edge `u → w` in direction `i`, the
//!    execution of `u` finishes no later than the execution of `w`
//!    starts (SW018 otherwise).
//! 3. **Data delivery.** When `u` and `w` executed on different
//!    processors, some delivered message `(u → w)` must have reached
//!    `w`'s processor by `w`'s start — a consumer must never start on
//!    flux it was never sent (SW018).
//!
//! When all three hold the report carries the SW022 *fault-trace
//! certified* info diagnostic, mirroring SW021 for schedules.

use std::collections::HashMap;

use sweep_dag::{SweepInstance, TaskId};
use sweep_sim::AsyncTrace;

use crate::diag::{Anchor, Code, Diagnostic, Report};

/// Reported findings per code before truncation.
const MAX_ISSUES: usize = 16;

/// Slack for floating-point time comparisons.
const EPS: f64 = 1e-9;

/// Certifies that `trace` is an exactly-once, precedence-correct,
/// delivery-backed execution of `instance` (see the module docs). Works
/// on fault-free and fault-injected traces alike; pushes SW022 when the
/// trace is clean.
pub fn analyze_trace_integrity(instance: &SweepInstance, trace: &AsyncTrace) -> Report {
    let mut report = Report::new(format!("trace integrity for '{}'", instance.name()));
    let n = instance.num_cells();
    let total = instance.num_tasks();

    // --- exactly-once -------------------------------------------------
    let mut first: Vec<Option<usize>> = vec![None; total];
    let mut duplicates = 0usize;
    for (i, e) in trace.execs.iter().enumerate() {
        let ti = e.task as usize;
        if ti >= total {
            duplicates += 1;
            if duplicates <= MAX_ISSUES {
                report.push(Diagnostic::new(
                    Code::DuplicateExecution,
                    Anchor::proc(e.proc),
                    format!(
                        "execution of unknown task id {} (instance has {total})",
                        e.task
                    ),
                ));
            }
            continue;
        }
        if let Some(j) = first[ti] {
            duplicates += 1;
            if duplicates <= MAX_ISSUES {
                let (v, d) = TaskId(e.task).unpack(n);
                let prev = &trace.execs[j];
                report.push(Diagnostic::new(
                    Code::DuplicateExecution,
                    Anchor::task(v, d).on_proc(e.proc),
                    format!(
                        "task (cell {v}, dir {d}) executed twice: on proc {} at \
                         t={:.3} and on proc {} at t={:.3} — recovery must \
                         deliver exactly-once",
                        prev.proc, prev.start, e.proc, e.start,
                    ),
                ));
            }
        } else {
            first[ti] = Some(i);
        }
    }
    let mut missing = 0usize;
    for (ti, f) in first.iter().enumerate() {
        if f.is_none() {
            missing += 1;
            if missing <= MAX_ISSUES {
                let (v, d) = TaskId(ti as u64).unpack(n);
                report.push(Diagnostic::new(
                    Code::TaskCountMismatch,
                    Anchor::task(v, d),
                    format!("task (cell {v}, dir {d}) never executed in the trace"),
                ));
            }
        }
    }

    // --- precedence + delivery ---------------------------------------
    // Delivered messages by (producer task, consumer task); a consumer
    // may have several (retransmissions resend with fresh ids only in a
    // real network — here each *successful* delivery is one entry, and
    // crash recovery adds refetches targeting the new owner).
    let mut inbox: HashMap<(u64, u64), Vec<usize>> = HashMap::new();
    for (i, msg) in trace.messages.iter().enumerate() {
        inbox
            .entry((msg.from_task, msg.to_task))
            .or_default()
            .push(i);
    }
    let mut violations = 0usize;
    let mut violation = |report: &mut Report, anchor: Anchor, msg: String| {
        violations += 1;
        if violations <= MAX_ISSUES {
            report.push(Diagnostic::new(Code::TracePrecedenceViolation, anchor, msg));
        }
    };
    for dir in 0..instance.num_directions() {
        let dag = instance.dag(dir);
        for u in 0..n as u32 {
            let ut = TaskId::pack(u, dir as u32, n).index();
            let Some(ue) = first[ut].map(|i| &trace.execs[i]) else {
                continue; // already reported as missing
            };
            for &w in dag.successors(u) {
                let wt = TaskId::pack(w, dir as u32, n).index();
                let Some(we) = first[wt].map(|i| &trace.execs[i]) else {
                    continue;
                };
                if ue.finish > we.start + EPS {
                    violation(
                        &mut report,
                        Anchor::task(w, dir as u32).on_proc(we.proc),
                        format!(
                            "(cell {w}, dir {dir}) started at t={:.3} before its \
                             predecessor (cell {u}, dir {dir}) finished at t={:.3}",
                            we.start, ue.finish,
                        ),
                    );
                    continue;
                }
                if ue.proc == we.proc {
                    continue; // local flux hand-off needs no message
                }
                let delivered = inbox
                    .get(&(ut as u64, wt as u64))
                    .into_iter()
                    .flatten()
                    .map(|&i| &trace.messages[i])
                    .any(|m| m.to_proc == we.proc && m.arrive <= we.start + EPS);
                if !delivered {
                    violation(
                        &mut report,
                        Anchor::task(w, dir as u32).on_proc(we.proc),
                        format!(
                            "(cell {w}, dir {dir}) started on proc {} at t={:.3} \
                             without a delivered flux message from (cell {u}, \
                             dir {dir}) on proc {}",
                            we.proc, we.start, ue.proc,
                        ),
                    );
                }
            }
        }
    }

    let over = duplicates.saturating_sub(MAX_ISSUES)
        + missing.saturating_sub(MAX_ISSUES)
        + violations.saturating_sub(MAX_ISSUES);
    if over > 0 {
        report.push(Diagnostic::new(
            Code::TracePrecedenceViolation,
            Anchor::none(),
            format!("{over} further trace-integrity findings suppressed"),
        ));
    }
    if !report.has_errors() {
        report.push(Diagnostic::new(
            Code::FaultTraceCertified,
            Anchor::none(),
            format!(
                "trace certified: {} tasks exactly-once, every precedence \
                 respected, every cross-processor input delivered before use \
                 ({} messages)",
                trace.execs.len(),
                trace.messages.len(),
            ),
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use sweep_core::{delayed_level_priorities, random_delays, Assignment};
    use sweep_faults::{CrashFault, FaultConfig, FaultPlan};
    use sweep_sim::{async_makespan_faulty, async_makespan_traced};

    fn setup(seed: u64) -> (SweepInstance, Assignment, Vec<i64>) {
        let inst = SweepInstance::random_layered(100, 4, 8, 2, seed);
        let a = Assignment::random_cells(100, 8, seed ^ 1);
        let d = random_delays(4, seed ^ 2);
        let prio = delayed_level_priorities(&inst, &d);
        (inst, a, prio)
    }

    #[test]
    fn fault_free_trace_certifies() {
        let (inst, a, prio) = setup(5);
        let (_, trace) = async_makespan_traced(&inst, &a, &prio, None, 1.0);
        let r = analyze_trace_integrity(&inst, &trace);
        assert!(!r.has_errors(), "{}", r.render_text());
        assert!(r.has_code(Code::FaultTraceCertified));
    }

    /// Satellite: after injected crashes every task executes exactly
    /// once at its consumer and all DAG precedences hold — checked via
    /// the analyzer, not the engine's own invariants.
    #[test]
    fn crash_recovered_trace_certifies() {
        let (inst, a, prio) = setup(7);
        let mut plan = FaultPlan::none();
        plan.crashes.push(CrashFault { proc: 1, at: 4.0 });
        plan.crashes.push(CrashFault { proc: 6, at: 9.0 });
        let (fr, trace) = async_makespan_faulty(&inst, &a, &prio, None, 1.0, &plan);
        assert_eq!(fr.crashed_procs.len(), 2);
        let r = analyze_trace_integrity(&inst, &trace);
        assert!(!r.has_errors(), "{}", r.render_text());
        assert!(r.has_code(Code::FaultTraceCertified));
    }

    #[test]
    fn lossy_randomized_trace_certifies() {
        let (inst, a, prio) = setup(11);
        let cfg = FaultConfig {
            crash_rate: 0.1,
            drop_rate: 0.2,
            dup_rate: 0.1,
            jitter: 1.5,
            ..FaultConfig::default()
        };
        let plan = FaultPlan::random(8, 60.0, &cfg, 42);
        let (_, trace) = async_makespan_faulty(&inst, &a, &prio, None, 1.0, &plan);
        let r = analyze_trace_integrity(&inst, &trace);
        assert!(!r.has_errors(), "{}", r.render_text());
    }

    #[test]
    fn duplicated_execution_is_sw017() {
        let (inst, a, prio) = setup(3);
        let (_, mut trace) = async_makespan_traced(&inst, &a, &prio, None, 1.0);
        let mut dup = trace.execs[0];
        dup.start += 100.0;
        dup.finish += 100.0;
        trace.execs.push(dup);
        let r = analyze_trace_integrity(&inst, &trace);
        assert_eq!(
            r.count_code(Code::DuplicateExecution),
            1,
            "{}",
            r.render_text()
        );
        assert!(r.has_errors());
        assert!(!r.has_code(Code::FaultTraceCertified));
    }

    #[test]
    fn missing_execution_is_sw005() {
        let (inst, a, prio) = setup(4);
        let (_, mut trace) = async_makespan_traced(&inst, &a, &prio, None, 1.0);
        trace.execs.pop();
        let r = analyze_trace_integrity(&inst, &trace);
        assert_eq!(r.count_code(Code::TaskCountMismatch), 1);
        assert!(r.has_errors());
    }

    #[test]
    fn undelivered_flux_is_sw018() {
        let (inst, a, prio) = setup(6);
        let (_, mut trace) = async_makespan_traced(&inst, &a, &prio, None, 1.0);
        assert!(!trace.messages.is_empty());
        trace.messages.remove(0);
        let r = analyze_trace_integrity(&inst, &trace);
        assert!(
            r.count_code(Code::TracePrecedenceViolation) >= 1,
            "{}",
            r.render_text()
        );
    }

    #[test]
    fn out_of_order_start_is_sw018() {
        let (inst, a, prio) = setup(8);
        let (_, mut trace) = async_makespan_traced(&inst, &a, &prio, None, 1.0);
        // Yank an execution with predecessors back before time zero: it
        // now starts before every one of its predecessors finishes.
        let n = inst.num_cells();
        let idx = (0..trace.execs.len())
            .find(|&i| {
                let (v, d) = sweep_dag::TaskId(trace.execs[i].task).unpack(n);
                inst.dag(d as usize).in_degree(v) > 0
            })
            .unwrap();
        trace.execs[idx].start = -5.0;
        trace.execs[idx].finish = -4.0;
        let r = analyze_trace_integrity(&inst, &trace);
        assert!(
            r.count_code(Code::TracePrecedenceViolation) >= 1,
            "{}",
            r.render_text()
        );
    }

    #[test]
    fn empty_trace_of_empty_instance_certifies() {
        let inst = SweepInstance::new(0, vec![sweep_dag::TaskDag::edgeless(0)], "empty");
        let r = analyze_trace_integrity(&inst, &AsyncTrace::default());
        assert!(!r.has_errors());
        assert!(r.has_code(Code::FaultTraceCertified));
    }
}
