//! Diagnostics for imported meshes (SW030–SW033 plus a stats line).
//!
//! [`analyze_import`] turns the [`ImportReport`] produced by
//! `sweep_mesh::import` into the same [`Report`] shape every other
//! analysis emits, so `sweep mesh import` and the server's upload path
//! share the text/JSON/SARIF renderers and exit-code policy with
//! `sweep analyze`.
//!
//! ```
//! use sweep_analyze::{analyze_import, Code};
//! use sweep_mesh::import::{import_bytes, ImportFormat};
//!
//! // A T-junction: f 1 2 3 leaves edge 1-2 unmatched with vertex 4 on it.
//! let obj = b"v 0 0 0\nv 2 0 0\nv 1 1 0\nv 1 0 0\nv 0 -1 0\nv 2 -1 0\n\
//!             f 1 4 5\nf 4 2 6\nf 1 2 3\n";
//! let got = import_bytes(obj, ImportFormat::Obj).unwrap();
//! let report = analyze_import(&got.report, "t-junction.obj");
//! assert!(report.has_code(Code::HangingNodes));
//! assert!(!report.has_errors()); // hanging nodes warn, not fail
//! ```

use sweep_mesh::import::ImportReport;

use crate::diag::{Anchor, Code, Diagnostic, Report};

/// At most this many per-cell diagnostics are emitted per code; the rest
/// are summarized in the final diagnostic's message ("… and N more").
const MAX_SAMPLES: usize = 8;

/// Builds a [`Report`] from an import's validation findings.
///
/// Emits one [`Code::Stats`] info line (deterministic counts, suitable for
/// golden-diffing), then per-finding diagnostics: SW030 for each
/// non-manifold face group, SW031 per inverted cell, one SW032 summarizing
/// hanging nodes (resolved or merely detected), and SW033 per degenerate
/// cell. Sample lists are capped at 8 entries per code.
pub fn analyze_import(report: &ImportReport, subject: &str) -> Report {
    let mut out = Report::new(subject);
    let fmt = report
        .format
        .map(|f| f.name())
        .unwrap_or("unknown")
        .to_string();
    out.push(Diagnostic::new(
        Code::Stats,
        Anchor::none(),
        format!(
            "format {fmt}: {} vertices, {} cells, {} interior faces, {} boundary faces",
            report.vertices, report.cells, report.interior_faces, report.boundary_faces
        ),
    ));

    for (i, group) in report.non_manifold.iter().enumerate() {
        if i == MAX_SAMPLES {
            out.push(Diagnostic::new(
                Code::NonManifoldFace,
                Anchor::none(),
                format!(
                    "… and {} more non-manifold faces",
                    report.non_manifold.len() - MAX_SAMPLES
                ),
            ));
            break;
        }
        let anchor = group
            .first()
            .copied()
            .map_or_else(Anchor::none, Anchor::cell);
        let cells: Vec<String> = group.iter().map(|c| c.to_string()).collect();
        out.push(Diagnostic::new(
            Code::NonManifoldFace,
            anchor,
            format!(
                "face shared by {} cells ({}); no dependence edges induced there",
                group.len(),
                cells.join(", ")
            ),
        ));
    }

    push_cell_list(
        &mut out,
        Code::InvertedOrientation,
        &report.inverted_cells,
        "cell has negative signed volume; orientation re-derived geometrically",
        "more inverted cells",
    );

    if report.hanging_resolved > 0 || !report.hanging_vertices.is_empty() {
        // The offenders are vertex ids, so no cell anchor fits here.
        let anchor = Anchor::none();
        let verts: Vec<String> = report
            .hanging_vertices
            .iter()
            .take(MAX_SAMPLES)
            .map(|v| v.to_string())
            .collect();
        let suffix = if report.hanging_vertices.len() > MAX_SAMPLES {
            format!(" (+{} more)", report.hanging_vertices.len() - MAX_SAMPLES)
        } else {
            String::new()
        };
        let action = if report.hanging_resolved > 0 {
            format!(
                "{} coarse/fine face pairs stitched",
                report.hanging_resolved
            )
        } else {
            "detected only; faces left as boundary".to_string()
        };
        out.push(Diagnostic::new(
            Code::HangingNodes,
            anchor,
            format!(
                "hanging vertices [{}]{suffix}; {action}; induced graphs may contain cycles",
                verts.join(", ")
            ),
        ));
    }
    if report.resolution_skipped {
        out.push(Diagnostic::new(
            Code::HangingNodes,
            Anchor::none(),
            "too many unmatched faces for hanging-node resolution; unmatched faces kept as boundary",
        ));
    }

    push_cell_list(
        &mut out,
        Code::DegenerateCell,
        &report.degenerate_cells,
        "cell has (near-)zero measure; its faces induce no dependence",
        "more degenerate cells",
    );

    out
}

fn push_cell_list(out: &mut Report, code: Code, cells: &[u32], msg: &str, more: &str) {
    for (i, &cell) in cells.iter().enumerate() {
        if i == MAX_SAMPLES {
            out.push(Diagnostic::new(
                code,
                Anchor::none(),
                format!("… and {} {more}", cells.len() - MAX_SAMPLES),
            ));
            return;
        }
        out.push(Diagnostic::new(code, Anchor::cell(cell), msg));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sweep_mesh::import::{import_bytes, ImportFormat};

    #[test]
    fn clean_import_is_stats_only() {
        let obj = b"v 0 0 0\nv 1 0 0\nv 0 1 0\nf 1 2 3\n";
        let got = import_bytes(obj, ImportFormat::Obj).unwrap();
        let rep = analyze_import(&got.report, "tri.obj");
        assert_eq!(rep.len(), 1);
        assert!(rep.has_code(Code::Stats));
        assert!(!rep.has_errors());
        assert!(rep.diagnostics()[0].message.contains("format obj"));
        assert!(rep.diagnostics()[0].message.contains("1 cells"));
    }

    #[test]
    fn non_manifold_is_an_error() {
        // Three triangles share edge 1-2.
        let obj = b"v 0 0 0\nv 1 0 0\nv 0 1 0\nv 0 -1 0\nv 1 1 1\nf 1 2 3\nf 1 2 4\nf 1 2 5\n";
        let got = import_bytes(obj, ImportFormat::Obj).unwrap();
        let rep = analyze_import(&got.report, "nm.obj");
        assert!(rep.has_code(Code::NonManifoldFace));
        assert!(rep.has_errors());
        let d = rep
            .diagnostics()
            .iter()
            .find(|d| d.code == Code::NonManifoldFace)
            .unwrap();
        assert!(d.message.contains("3 cells"));
        assert!(d.anchor.cell.is_some());
    }

    #[test]
    fn sample_lists_are_capped() {
        use sweep_mesh::import::ImportReport;
        let rep = ImportReport {
            inverted_cells: (0..20).collect(),
            ..ImportReport::default()
        };
        let out = analyze_import(&rep, "many");
        assert_eq!(out.count_code(Code::InvertedOrientation), MAX_SAMPLES + 1);
        let last = out
            .diagnostics()
            .iter()
            .rfind(|d| d.code == Code::InvertedOrientation)
            .unwrap();
        assert!(last.message.contains("12 more"));
        assert!(!out.has_errors());
    }
}
