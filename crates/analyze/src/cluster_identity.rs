//! Cluster-identity certification (SW029 / SW021).
//!
//! The sharded serving layer (`sweep-serve --cluster`) promises that a
//! schedule answered through the cluster — forwarded to its home shard,
//! served from a peer's cache, or computed locally in degraded mode
//! after a peer failure — is **bit-identical** to what a single-node
//! cold computation of the same request would produce. Sharding and
//! failover must be routing optimizations, never approximations.
//!
//! This analyzer checks that promise on a concrete pair: the
//! cluster-served artifact (whatever path it took) and an independently
//! recomputed one. The diff is exhaustive: every task start time, every
//! cell's processor, the makespan, and the winning-trial metadata. Any
//! divergence (a corrupted forwarded artifact, digest aliasing across
//! shards, a stale peer cache) is reported as SW029 at error severity;
//! a clean diff — after re-validating the served schedule's feasibility
//! against the instance — pushes the SW021 certification, naming the
//! serving path that was exercised.

use sweep_core::{validate, Schedule};
use sweep_dag::SweepInstance;

use crate::diag::{Anchor, Code, Diagnostic, Report};

/// Provenance and trial metadata accompanying the two schedules under
/// comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterIdentityMeta {
    /// The tier-2 content digest that routed the request on the ring.
    pub digest: u64,
    /// How the cluster answered: `"forward"`, `"fallback"`, `"cached"`,
    /// or `"local"`.
    pub path: String,
    /// Winning trial index of the cluster-served artifact.
    pub served_trial: usize,
    /// Winning trial index of the cold recomputation.
    pub cold_trial: usize,
    /// Winning trial's child seed of the cluster-served artifact.
    pub served_seed: u64,
    /// Winning trial's child seed of the cold recomputation.
    pub cold_seed: u64,
}

/// Diffs a cluster-served schedule against a single-node cold
/// recomputation of the same content-addressed request. See the module
/// docs for what SW029 covers.
pub fn analyze_cluster_identity(
    instance: &SweepInstance,
    served: &Schedule,
    cold: &Schedule,
    meta: ClusterIdentityMeta,
) -> Report {
    let mut report = Report::new(format!(
        "cluster identity for '{}' (digest {:016x}, path {})",
        instance.name(),
        meta.digest,
        meta.path
    ));
    let mut clean = true;

    if meta.served_trial != meta.cold_trial || meta.served_seed != meta.cold_seed {
        clean = false;
        report.push(Diagnostic::new(
            Code::ClusterDivergence,
            Anchor::none(),
            format!(
                "winning trial differs: cluster path '{}' served trial {} (seed {:#x}), cold \
                 run picked trial {} (seed {:#x})",
                meta.path, meta.served_trial, meta.served_seed, meta.cold_trial, meta.cold_seed
            ),
        ));
    }
    if served.makespan() != cold.makespan() {
        clean = false;
        report.push(Diagnostic::new(
            Code::ClusterDivergence,
            Anchor::none(),
            format!(
                "makespan differs: cluster served {} vs cold {}",
                served.makespan(),
                cold.makespan()
            ),
        ));
    }
    if served.starts() != cold.starts() {
        clean = false;
        let witness = served
            .starts()
            .iter()
            .zip(cold.starts())
            .position(|(a, b)| a != b);
        report.push(Diagnostic::new(
            Code::ClusterDivergence,
            Anchor::none(),
            format!(
                "start times differ{}",
                witness.map_or_else(
                    || " in length".to_string(),
                    |t| format!(" (first divergent task index {t})")
                )
            ),
        ));
    }
    let n = instance.num_cells() as u32;
    if let Some(cell) = (0..n).find(|&v| served.proc_of_cell(v) != cold.proc_of_cell(v)) {
        clean = false;
        report.push(Diagnostic::new(
            Code::ClusterDivergence,
            Anchor::cell(cell),
            format!(
                "assignment differs: cluster puts cell {cell} on processor {}, cold on {}",
                served.proc_of_cell(cell),
                cold.proc_of_cell(cell)
            ),
        ));
    }
    if let Err(e) = validate(instance, served) {
        clean = false;
        report.push(Diagnostic::new(
            Code::ClusterDivergence,
            Anchor::none(),
            format!("cluster-served schedule is not even feasible for the instance: {e}"),
        ));
    }

    if clean {
        report.push(Diagnostic::new(
            Code::Certified,
            Anchor::none(),
            format!(
                "cluster identity certified: digest {:016x} via path '{}' serves a schedule \
                 bit-identical to a single-node cold compute (makespan {}, winning trial {})",
                meta.digest,
                meta.path,
                served.makespan(),
                meta.served_trial
            ),
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use sweep_core::{Algorithm, Assignment};

    fn pair() -> (SweepInstance, Schedule) {
        let inst = SweepInstance::random_layered(40, 3, 5, 2, 8);
        let a = Assignment::random_cells(40, 4, 2);
        let s = Algorithm::RandomDelayPriorities.run(&inst, a, 77);
        (inst, s)
    }

    fn meta() -> ClusterIdentityMeta {
        ClusterIdentityMeta {
            digest: 0xfeed,
            path: "forward".to_string(),
            served_trial: 1,
            cold_trial: 1,
            served_seed: 0xabc,
            cold_seed: 0xabc,
        }
    }

    #[test]
    fn identical_schedules_certify_and_name_the_path() {
        let (inst, s) = pair();
        let r = analyze_cluster_identity(&inst, &s, &s.clone(), meta());
        assert!(!r.has_errors(), "{}", r.render_text());
        assert!(r.has_code(Code::Certified));
        assert!(!r.has_code(Code::ClusterDivergence));
        assert!(
            r.render_text().contains("path 'forward'"),
            "{}",
            r.render_text()
        );
    }

    #[test]
    fn divergent_schedules_fire_sw029() {
        let (inst, s) = pair();
        let a = Assignment::random_cells(40, 4, 2);
        let other = Algorithm::RandomDelayPriorities.run(&inst, a, 78);
        let mut m = meta();
        m.path = "fallback".to_string();
        m.cold_trial = 2;
        let r = analyze_cluster_identity(&inst, &s, &other, m);
        assert!(r.has_errors());
        assert!(r.has_code(Code::ClusterDivergence));
        assert!(!r.has_code(Code::Certified));
    }

    #[test]
    fn sw029_registry_entry_is_stable() {
        assert_eq!(Code::ClusterDivergence.as_str(), "SW029");
        assert_eq!(
            Code::ClusterDivergence.severity(),
            crate::diag::Severity::Error
        );
    }
}
