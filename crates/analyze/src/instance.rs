//! Static analysis of a [`SweepInstance`]: cycle detection with a
//! minimal witness (SW001), unreachable cells (SW012), degenerate
//! directions (SW013), and width/critical-path statistics (SW020).

use std::collections::VecDeque;

use sweep_dag::{levels, SweepInstance, TaskDag};
use sweep_quadrature::QuadratureSet;

use crate::diag::{Anchor, Code, Diagnostic, Report};

/// How many cycles to report per direction before truncating — cyclic
/// inputs can contain thousands of SCCs and one witness per SCC is
/// already actionable.
const MAX_CYCLES_PER_DIR: usize = 5;

/// Analyzes the structure of an instance. Never panics on cyclic input
/// (this is the intended consumer of
/// [`sweep_dag::from_text_unchecked`]): cyclic directions are reported
/// as SW001 with a shortest witness cycle instead.
pub fn analyze_instance(instance: &SweepInstance) -> Report {
    let mut report = Report::new(format!("instance '{}'", instance.name()));
    let n = instance.num_cells();
    let k = instance.num_directions();

    let mut all_acyclic = true;
    for (i, dag) in instance.dags().iter().enumerate() {
        let sccs = nontrivial_sccs(dag);
        if !sccs.is_empty() {
            all_acyclic = false;
        }
        for scc in sccs.iter().take(MAX_CYCLES_PER_DIR) {
            let witness = witness_cycle(dag, scc);
            let entry = witness.first().copied().unwrap_or(0);
            report.push(
                Diagnostic::new(
                    Code::CyclicDependency,
                    Anchor::task(entry, i as u32),
                    format!(
                        "direction {i}: {} cells form a dependency cycle \
                         (no sweep ordering exists); shortest witness has {} edges",
                        scc.len(),
                        witness.len().saturating_sub(1),
                    ),
                )
                .with_trail(witness),
            );
        }
        if sccs.len() > MAX_CYCLES_PER_DIR {
            report.push(Diagnostic::new(
                Code::CyclicDependency,
                Anchor::dir(i as u32),
                format!(
                    "direction {i}: {} further cyclic components suppressed",
                    sccs.len() - MAX_CYCLES_PER_DIR
                ),
            ));
        }
        // Degenerate direction: a DAG with no edges induces no precedence
        // at all — for a mesh-induced direction that means every face was
        // parallel to the sweep direction (or induction was skipped).
        if dag.num_edges() == 0 && n > 1 {
            report.push(Diagnostic::new(
                Code::DegenerateDirection,
                Anchor::dir(i as u32),
                format!("direction {i} induces no precedence edges over {n} cells"),
            ));
        }
    }

    // Unreachable cells: isolated in *every* direction — they never
    // exchange a face flux, which on a mesh-induced instance means the
    // cell is disconnected from the domain.
    let mut isolated = Vec::new();
    for v in 0..n as u32 {
        let touched = instance
            .dags()
            .iter()
            .any(|d| d.in_degree(v) > 0 || d.out_degree(v) > 0);
        if !touched {
            isolated.push(v);
        }
    }
    // Only meaningful when some direction has structure at all.
    if !isolated.is_empty() && instance.total_edges() > 0 {
        for &v in isolated.iter().take(8) {
            report.push(Diagnostic::new(
                Code::UnreachableCell,
                Anchor::cell(v),
                format!("cell {v} has no precedence edges in any of the {k} directions"),
            ));
        }
        if isolated.len() > 8 {
            report.push(Diagnostic::new(
                Code::UnreachableCell,
                Anchor::none(),
                format!("{} further isolated cells suppressed", isolated.len() - 8),
            ));
        }
    }

    // Width / critical-path statistics — only computable on acyclic input
    // (levels() assumes a topological order exists).
    if all_acyclic {
        let mut max_depth = 0usize;
        let mut max_width = 0usize;
        for dag in instance.dags() {
            let l = levels(dag);
            max_depth = max_depth.max(l.depth());
            max_width = max_width.max(l.max_width());
        }
        report.push(Diagnostic::new(
            Code::Stats,
            Anchor::none(),
            format!(
                "{n} cells, {k} directions, {} tasks, {} edges; \
                 critical path D={max_depth}, max level width {max_width}",
                instance.num_tasks(),
                instance.total_edges(),
            ),
        ));
    }
    report
}

/// Analyzes a quadrature set for degenerate normals: direction vectors
/// that are far from unit length (including the zero vector) and
/// non-positive quadrature weights, both of which make face-flux
/// upwinding ill-defined.
pub fn analyze_quadrature(quadrature: &QuadratureSet) -> Report {
    let mut report = Report::new(format!("quadrature '{}'", quadrature.name()));
    for (i, o) in quadrature.ordinates().iter().enumerate() {
        let norm = o.dir.norm();
        if !norm.is_finite() || (norm - 1.0).abs() > 1e-6 {
            report.push(Diagnostic::new(
                Code::DegenerateDirection,
                Anchor::dir(i as u32),
                format!("ordinate {i} has non-unit direction (|Ω| = {norm:.6e})"),
            ));
        }
        if !o.weight.is_finite() || o.weight <= 0.0 {
            report.push(Diagnostic::new(
                Code::DegenerateDirection,
                Anchor::dir(i as u32),
                format!("ordinate {i} has non-positive weight {}", o.weight),
            ));
        }
    }
    if report.is_empty() {
        report.push(Diagnostic::new(
            Code::Stats,
            Anchor::none(),
            format!(
                "{} ordinates, all unit-norm with positive weights",
                quadrature.len()
            ),
        ));
    }
    report
}

/// Iterative Tarjan SCC; returns the strongly connected components with
/// more than one node (the graphs have no self-loops, so those are
/// exactly the components containing cycles), in reverse topological
/// order of discovery.
fn nontrivial_sccs(dag: &TaskDag) -> Vec<Vec<u32>> {
    let n = dag.num_nodes();
    const UNSEEN: u32 = u32::MAX;
    let mut index = vec![UNSEEN; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut sccs = Vec::new();

    // Explicit DFS frames: (node, position in its successor list).
    let mut frames: Vec<(u32, usize)> = Vec::new();
    for root in 0..n as u32 {
        if index[root as usize] != UNSEEN {
            continue;
        }
        frames.push((root, 0));
        index[root as usize] = next_index;
        lowlink[root as usize] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root as usize] = true;

        while let Some(&mut (v, ref mut si)) = frames.last_mut() {
            let succs = dag.successors(v);
            if *si < succs.len() {
                let w = succs[*si];
                *si += 1;
                if index[w as usize] == UNSEEN {
                    index[w as usize] = next_index;
                    lowlink[w as usize] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                    frames.push((w, 0));
                } else if on_stack[w as usize] {
                    lowlink[v as usize] = lowlink[v as usize].min(index[w as usize]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    lowlink[parent as usize] = lowlink[parent as usize].min(lowlink[v as usize]);
                }
                if lowlink[v as usize] == index[v as usize] {
                    let mut comp = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w as usize] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    if comp.len() > 1 {
                        comp.sort_unstable();
                        sccs.push(comp);
                    }
                }
            }
        }
    }
    sccs.sort();
    sccs
}

/// A shortest cycle through the smallest-id node of `scc`: BFS restricted
/// to the component from that node back to itself, returned as
/// `v0 → v1 → … → v0` (first element repeated at the end).
fn witness_cycle(dag: &TaskDag, scc: &[u32]) -> Vec<u32> {
    let n = dag.num_nodes();
    let mut in_scc = vec![false; n];
    for &v in scc {
        in_scc[v as usize] = true;
    }
    let start = scc[0];
    let mut parent = vec![u32::MAX; n];
    let mut seen = vec![false; n];
    let mut queue = VecDeque::new();
    // Seed with successors of `start` so the BFS can return to it.
    for &w in dag.successors(start) {
        if in_scc[w as usize] && !seen[w as usize] {
            seen[w as usize] = true;
            parent[w as usize] = start;
            queue.push_back(w);
        }
    }
    while let Some(v) = queue.pop_front() {
        for &w in dag.successors(v) {
            if w == start {
                // Reconstruct start → … → v → start.
                let mut path = vec![start];
                let mut cur = v;
                let mut rev = Vec::new();
                while cur != start {
                    rev.push(cur);
                    cur = parent[cur as usize];
                }
                rev.reverse();
                path.extend(rev);
                path.push(start);
                return path;
            }
            if in_scc[w as usize] && !seen[w as usize] {
                seen[w as usize] = true;
                parent[w as usize] = v;
                queue.push_back(w);
            }
        }
    }
    // Unreachable for a genuine SCC, but stay total.
    vec![start, start]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sweep_dag::SweepInstance;

    fn cyclic_instance() -> SweepInstance {
        // dir 0: 0 -> 1 -> 2 -> 0 plus a tail 2 -> 3.
        let dag = TaskDag::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        SweepInstance::new_unchecked(4, vec![dag], "cyclic")
    }

    #[test]
    fn clean_instance_yields_stats_only() {
        let inst = SweepInstance::random_layered(60, 3, 6, 2, 7);
        let r = analyze_instance(&inst);
        assert!(!r.has_errors());
        assert!(r.has_code(Code::Stats));
    }

    #[test]
    fn cycle_detected_with_witness() {
        let r = analyze_instance(&cyclic_instance());
        assert!(r.has_errors());
        assert_eq!(r.count_code(Code::CyclicDependency), 1);
        let d = &r.diagnostics()[0];
        assert_eq!(d.code, Code::CyclicDependency);
        // Witness is a closed walk: first == last, length = cycle + 1.
        assert_eq!(d.trail.first(), d.trail.last());
        assert_eq!(d.trail.len(), 4, "3-cycle witness: {:?}", d.trail);
        // Every consecutive pair is a real edge.
        let inst = cyclic_instance();
        for w in d.trail.windows(2) {
            assert!(
                inst.dag(0).successors(w[0]).contains(&w[1]),
                "witness edge ({}, {}) not in graph",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn witness_is_shortest_through_entry() {
        // Two cycles through node 0: length 2 (0-4) and length 4.
        let dag = TaskDag::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 4), (4, 0)]);
        let sccs = nontrivial_sccs(&dag);
        assert_eq!(sccs.len(), 1);
        let w = witness_cycle(&dag, &sccs[0]);
        assert_eq!(w, vec![0, 4, 0]);
    }

    #[test]
    fn isolated_cell_flagged() {
        // Cell 3 untouched in the only direction with edges.
        let dag = TaskDag::from_edges(4, &[(0, 1), (1, 2)]);
        let inst = SweepInstance::new(4, vec![dag], "iso");
        let r = analyze_instance(&inst);
        assert_eq!(r.count_code(Code::UnreachableCell), 1);
        assert_eq!(r.diagnostics()[0].anchor.cell, Some(3));
    }

    #[test]
    fn edgeless_direction_flagged_degenerate() {
        let inst = SweepInstance::new(
            3,
            vec![TaskDag::from_edges(3, &[(0, 1)]), TaskDag::edgeless(3)],
            "deg",
        );
        let r = analyze_instance(&inst);
        assert!(r.has_code(Code::DegenerateDirection));
        assert!(!r.has_errors());
    }

    #[test]
    fn quadrature_degenerate_normal_flagged() {
        use sweep_mesh::Vec3;
        let q = QuadratureSet::from_directions(&[
            Vec3 {
                x: 1.0,
                y: 0.0,
                z: 0.0,
            },
            Vec3 {
                x: 0.0,
                y: 1.0,
                z: 0.0,
            },
        ])
        .expect("valid directions");
        assert!(!analyze_quadrature(&q).has_code(Code::DegenerateDirection));
    }

    #[test]
    fn scc_of_acyclic_graph_is_empty() {
        let dag = TaskDag::from_edges(5, &[(0, 1), (1, 2), (0, 3), (3, 4)]);
        assert!(nontrivial_sccs(&dag).is_empty());
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        // 200k-node chain — iterative Tarjan must not recurse.
        let edges: Vec<(u32, u32)> = (0..199_999u32).map(|v| (v, v + 1)).collect();
        let dag = TaskDag::from_edges(200_000, &edges);
        assert!(nontrivial_sccs(&dag).is_empty());
    }
}
