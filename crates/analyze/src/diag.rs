//! The diagnostic model: stable codes, severities, anchors, and the
//! [`Report`] container with its three renderers (human text, JSON,
//! SARIF 2.1.0).
//!
//! Codes are append-only and never renumbered, so downstream tooling
//! (CI gates, SARIF viewers, greppable logs) can rely on them:
//!
//! | code  | severity | meaning |
//! |-------|----------|---------|
//! | SW001 | error | direction graph contains a cycle (witness attached) |
//! | SW002 | error | precedence constraint violated by a schedule |
//! | SW003 | error | processor executes two tasks in one timestep |
//! | SW004 | error | copies of a cell split across processors |
//! | SW005 | error | schedule covers the wrong number of tasks |
//! | SW006 | error | assignment covers the wrong number of cells |
//! | SW007 | error | makespan below a certified lower bound |
//! | SW010 | warning | processor owns no cells |
//! | SW011 | warning | cell load imbalance beyond threshold |
//! | SW012 | warning | cell unreachable (isolated in every direction) |
//! | SW013 | warning | degenerate direction (non-unit vector / edgeless DAG) |
//! | SW014 | warning | makespan exceeds the random-delay O(log) envelope |
//! | SW015 | warning | pre-scheduling C1 communication bound is high |
//! | SW016 | warning | message race: concurrent sends, tied arrival |
//! | SW017 | error | trace executes a task more than once |
//! | SW018 | error | trace violates a precedence or delivers late |
//! | SW020 | info | structural statistics |
//! | SW021 | info | schedule certified against the paper bounds |
//! | SW022 | info | fault-injected trace certified exactly-once and precedence-correct |
//! | SW023 | error | parallel execution nondeterministic or pool dropped queued tasks |
//! | SW024 | error | cache-served schedule differs from a cold recomputation |
//! | SW025 | error | lock-order cycle or deadlocking schedule found by the model checker |
//! | SW026 | error | lost wakeup: a schedule parks a thread no one can ever notify |
//! | SW027 | error | single-flight liveness: a waiter can wedge on an abandoned leader |
//! | SW028 | error | malformed request trace tree (unclosed span, dangling parent, bad coalesce ref) |
//! | SW029 | error | cluster-served schedule differs from single-node cold compute |
//! | SW030 | error | imported mesh has a non-manifold face (no dependence induced) |
//! | SW031 | warning | imported cell has inverted vertex orientation |
//! | SW032 | warning | imported mesh has hanging nodes (T-junction refinement) |
//! | SW033 | error | imported cell is degenerate (zero volume/area) |

use std::fmt;

/// How bad a diagnostic is. `Error` means the analyzed object violates a
/// hard constraint of the model (§3 feasibility or a proven bound);
/// `Warning` flags quality/robustness hazards; `Info` carries statistics
/// and certifications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Statistics and positive certifications.
    Info,
    /// Quality or robustness hazard; the object is still usable.
    Warning,
    /// Hard model violation; the object must not be used.
    Error,
}

impl Severity {
    /// Lower-case name used in JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }

    /// SARIF `level` string (`note`/`warning`/`error`).
    pub fn sarif_level(self) -> &'static str {
        match self {
            Severity::Info => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// Stable diagnostic codes (the `SW0xx` registry). Append-only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)] // each variant is documented by `title()` below
pub enum Code {
    CyclicDependency,
    PrecedenceViolation,
    ProcessorConflict,
    SplitCellCopies,
    TaskCountMismatch,
    AssignmentMismatch,
    MakespanBelowBound,
    EmptyProcessor,
    LoadImbalance,
    UnreachableCell,
    DegenerateDirection,
    DelayEnvelopeExceeded,
    HighCommBound,
    MessageRace,
    DuplicateExecution,
    TracePrecedenceViolation,
    Stats,
    Certified,
    FaultTraceCertified,
    PoolNondeterminism,
    CacheDivergence,
    LockOrderCycle,
    LostWakeup,
    SingleFlightLiveness,
    TraceTreeMalformed,
    ClusterDivergence,
    NonManifoldFace,
    InvertedOrientation,
    HangingNodes,
    DegenerateCell,
}

impl Code {
    /// The stable identifier, e.g. `"SW001"`.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::CyclicDependency => "SW001",
            Code::PrecedenceViolation => "SW002",
            Code::ProcessorConflict => "SW003",
            Code::SplitCellCopies => "SW004",
            Code::TaskCountMismatch => "SW005",
            Code::AssignmentMismatch => "SW006",
            Code::MakespanBelowBound => "SW007",
            Code::EmptyProcessor => "SW010",
            Code::LoadImbalance => "SW011",
            Code::UnreachableCell => "SW012",
            Code::DegenerateDirection => "SW013",
            Code::DelayEnvelopeExceeded => "SW014",
            Code::HighCommBound => "SW015",
            Code::MessageRace => "SW016",
            Code::DuplicateExecution => "SW017",
            Code::TracePrecedenceViolation => "SW018",
            Code::Stats => "SW020",
            Code::Certified => "SW021",
            Code::FaultTraceCertified => "SW022",
            Code::PoolNondeterminism => "SW023",
            Code::CacheDivergence => "SW024",
            Code::LockOrderCycle => "SW025",
            Code::LostWakeup => "SW026",
            Code::SingleFlightLiveness => "SW027",
            Code::TraceTreeMalformed => "SW028",
            Code::ClusterDivergence => "SW029",
            Code::NonManifoldFace => "SW030",
            Code::InvertedOrientation => "SW031",
            Code::HangingNodes => "SW032",
            Code::DegenerateCell => "SW033",
        }
    }

    /// One-line rule description (used as the SARIF rule short text).
    pub fn title(self) -> &'static str {
        match self {
            Code::CyclicDependency => "direction graph contains a cycle",
            Code::PrecedenceViolation => "schedule violates a precedence constraint",
            Code::ProcessorConflict => "processor executes two tasks in one timestep",
            Code::SplitCellCopies => "copies of a cell are split across processors",
            Code::TaskCountMismatch => "schedule covers the wrong number of tasks",
            Code::AssignmentMismatch => "assignment covers the wrong number of cells",
            Code::MakespanBelowBound => "makespan is below a certified lower bound",
            Code::EmptyProcessor => "processor owns no cells",
            Code::LoadImbalance => "cell load imbalance beyond threshold",
            Code::UnreachableCell => "cell is isolated in every direction",
            Code::DegenerateDirection => "degenerate sweep direction",
            Code::DelayEnvelopeExceeded => "makespan exceeds the random-delay envelope",
            Code::HighCommBound => "pre-scheduling C1 communication bound is high",
            Code::MessageRace => "message race: concurrent sends with tied arrival",
            Code::DuplicateExecution => "trace executes a task more than once",
            Code::TracePrecedenceViolation => "trace violates a precedence or delivers late",
            Code::Stats => "structural statistics",
            Code::Certified => "schedule certified against the paper bounds",
            Code::FaultTraceCertified => {
                "fault-injected trace certified exactly-once and precedence-correct"
            }
            Code::PoolNondeterminism => {
                "parallel execution nondeterministic or pool dropped queued tasks"
            }
            Code::CacheDivergence => "cache-served schedule differs from a cold recomputation",
            Code::LockOrderCycle => {
                "lock-order cycle or deadlocking schedule found by the model checker"
            }
            Code::LostWakeup => "lost wakeup: a schedule parks a thread no one can ever notify",
            Code::SingleFlightLiveness => {
                "single-flight liveness: a waiter can wedge on an abandoned leader"
            }
            Code::TraceTreeMalformed => {
                "malformed request trace tree (unclosed span, dangling parent, bad coalesce ref)"
            }
            Code::ClusterDivergence => {
                "cluster-served schedule differs from single-node cold compute"
            }
            Code::NonManifoldFace => "imported mesh face is shared by more than two cells",
            Code::InvertedOrientation => "imported cell has inverted vertex orientation",
            Code::HangingNodes => "imported mesh has hanging nodes (T-junction refinement)",
            Code::DegenerateCell => "imported cell is degenerate (zero volume or area)",
        }
    }

    /// The default severity for this code.
    pub fn severity(self) -> Severity {
        match self {
            Code::CyclicDependency
            | Code::PrecedenceViolation
            | Code::ProcessorConflict
            | Code::SplitCellCopies
            | Code::TaskCountMismatch
            | Code::AssignmentMismatch
            | Code::MakespanBelowBound
            | Code::DuplicateExecution
            | Code::TracePrecedenceViolation
            | Code::PoolNondeterminism
            | Code::CacheDivergence
            | Code::LockOrderCycle
            | Code::LostWakeup
            | Code::SingleFlightLiveness
            | Code::TraceTreeMalformed
            | Code::ClusterDivergence
            | Code::NonManifoldFace
            | Code::DegenerateCell => Severity::Error,
            Code::EmptyProcessor
            | Code::LoadImbalance
            | Code::UnreachableCell
            | Code::DegenerateDirection
            | Code::DelayEnvelopeExceeded
            | Code::HighCommBound
            | Code::MessageRace
            | Code::InvertedOrientation
            | Code::HangingNodes => Severity::Warning,
            Code::Stats | Code::Certified | Code::FaultTraceCertified => Severity::Info,
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Where a diagnostic points: any subset of cell / direction / timestep /
/// processor. Mesh-level objects (cells) and schedule-level objects
/// (timesteps, processors) share one anchor type so every renderer can
/// treat location uniformly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Anchor {
    /// Offending cell, if cell-specific.
    pub cell: Option<u32>,
    /// Offending direction, if direction-specific.
    pub dir: Option<u32>,
    /// Offending timestep, if time-specific.
    pub timestep: Option<u32>,
    /// Offending processor, if processor-specific.
    pub proc: Option<u32>,
}

impl Anchor {
    /// An anchor with no coordinates (whole-object diagnostics).
    pub fn none() -> Anchor {
        Anchor::default()
    }

    /// Anchors at a cell.
    pub fn cell(cell: u32) -> Anchor {
        Anchor {
            cell: Some(cell),
            ..Anchor::default()
        }
    }

    /// Anchors at a direction.
    pub fn dir(dir: u32) -> Anchor {
        Anchor {
            dir: Some(dir),
            ..Anchor::default()
        }
    }

    /// Anchors at a processor.
    pub fn proc(proc: u32) -> Anchor {
        Anchor {
            proc: Some(proc),
            ..Anchor::default()
        }
    }

    /// Anchors at a task `(cell, dir)`.
    pub fn task(cell: u32, dir: u32) -> Anchor {
        Anchor {
            cell: Some(cell),
            dir: Some(dir),
            ..Anchor::default()
        }
    }

    /// Adds a timestep coordinate.
    pub fn at_time(mut self, t: u32) -> Anchor {
        self.timestep = Some(t);
        self
    }

    /// Adds a processor coordinate.
    pub fn on_proc(mut self, p: u32) -> Anchor {
        self.proc = Some(p);
        self
    }

    /// `true` when no coordinate is set.
    pub fn is_none(&self) -> bool {
        self.cell.is_none() && self.dir.is_none() && self.timestep.is_none() && self.proc.is_none()
    }

    /// Human rendering, e.g. `cell 3, direction 0, t=7, proc 2`.
    fn render(&self) -> String {
        let mut parts = Vec::new();
        if let Some(c) = self.cell {
            parts.push(format!("cell {c}"));
        }
        if let Some(d) = self.dir {
            parts.push(format!("direction {d}"));
        }
        if let Some(t) = self.timestep {
            parts.push(format!("t={t}"));
        }
        if let Some(p) = self.proc {
            parts.push(format!("proc {p}"));
        }
        parts.join(", ")
    }
}

/// One finding: a coded, anchored message with an optional supporting
/// cell trail (e.g. the SW001 witness cycle).
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// The stable code.
    pub code: Code,
    /// Severity (defaults to [`Code::severity`]).
    pub severity: Severity,
    /// Human-readable message.
    pub message: String,
    /// Location.
    pub anchor: Anchor,
    /// Supporting cell path, e.g. a witness cycle `v0 → v1 → … → v0`.
    pub trail: Vec<u32>,
}

impl Diagnostic {
    /// A diagnostic with the code's default severity and no trail.
    pub fn new(code: Code, anchor: Anchor, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.severity(),
            message: message.into(),
            anchor,
            trail: Vec::new(),
        }
    }

    /// Attaches a supporting cell trail.
    pub fn with_trail(mut self, trail: Vec<u32>) -> Diagnostic {
        self.trail = trail;
        self
    }
}

/// A collection of diagnostics about one subject (an instance, an
/// assignment, a schedule, or an execution trace), renderable as text,
/// JSON, or SARIF.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    subject: String,
    diags: Vec<Diagnostic>,
}

impl Report {
    /// An empty report about `subject`.
    pub fn new(subject: impl Into<String>) -> Report {
        Report {
            subject: subject.into(),
            diags: Vec::new(),
        }
    }

    /// The analyzed subject's name.
    pub fn subject(&self) -> &str {
        &self.subject
    }

    /// Adds a diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.diags.push(d);
    }

    /// All diagnostics, in emission order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diags
    }

    /// Number of diagnostics.
    pub fn len(&self) -> usize {
        self.diags.len()
    }

    /// `true` when no diagnostics were emitted.
    pub fn is_empty(&self) -> bool {
        self.diags.is_empty()
    }

    /// `true` when any diagnostic is an [`Severity::Error`].
    pub fn has_errors(&self) -> bool {
        self.diags.iter().any(|d| d.severity == Severity::Error)
    }

    /// Counts diagnostics at `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diags.iter().filter(|d| d.severity == severity).count()
    }

    /// Counts diagnostics with `code`.
    pub fn count_code(&self, code: Code) -> usize {
        self.diags.iter().filter(|d| d.code == code).count()
    }

    /// `true` when at least one diagnostic has `code`.
    pub fn has_code(&self, code: Code) -> bool {
        self.diags.iter().any(|d| d.code == code)
    }

    /// Appends all diagnostics of `other` (subjects joined with `+`).
    pub fn merge(&mut self, other: Report) {
        if !other.subject.is_empty() && self.subject != other.subject {
            if self.subject.is_empty() {
                self.subject = other.subject;
            } else {
                self.subject = format!("{} + {}", self.subject, other.subject);
            }
        }
        self.diags.extend(other.diags);
    }

    // ----- renderers ----------------------------------------------------

    /// rustc-style human rendering:
    ///
    /// ```text
    /// error[SW001]: direction graph contains a cycle
    ///   --> direction 0
    ///   cycle: 0 -> 1 -> 0
    /// ```
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("analyzing {}\n", self.subject));
        for d in &self.diags {
            let sev = match d.severity {
                Severity::Error => "error",
                Severity::Warning => "warning",
                Severity::Info => "info",
            };
            out.push_str(&format!("{sev}[{}]: {}\n", d.code, d.message));
            if !d.anchor.is_none() {
                out.push_str(&format!("  --> {}\n", d.anchor.render()));
            }
            if !d.trail.is_empty() {
                let path: Vec<String> = d.trail.iter().map(|v| v.to_string()).collect();
                out.push_str(&format!("  cycle: {}\n", path.join(" -> ")));
            }
        }
        out.push_str(&format!(
            "{}: {} error(s), {} warning(s), {} info\n",
            self.subject,
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info),
        ));
        out
    }

    /// Machine-readable JSON (single object, stable field names).
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"subject\": {},\n", json_string(&self.subject)));
        out.push_str("  \"diagnostics\": [\n");
        for (i, d) in self.diags.iter().enumerate() {
            out.push_str("    {");
            out.push_str(&format!("\"code\": \"{}\", ", d.code));
            out.push_str(&format!("\"severity\": \"{}\", ", d.severity.as_str()));
            out.push_str(&format!("\"message\": {}", json_string(&d.message)));
            for (key, val) in [
                ("cell", d.anchor.cell),
                ("dir", d.anchor.dir),
                ("timestep", d.anchor.timestep),
                ("proc", d.anchor.proc),
            ] {
                if let Some(v) = val {
                    out.push_str(&format!(", \"{key}\": {v}"));
                }
            }
            if !d.trail.is_empty() {
                let path: Vec<String> = d.trail.iter().map(|v| v.to_string()).collect();
                out.push_str(&format!(", \"trail\": [{}]", path.join(", ")));
            }
            out.push('}');
            out.push_str(if i + 1 < self.diags.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"summary\": {{\"errors\": {}, \"warnings\": {}, \"infos\": {}}}\n",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info),
        ));
        out.push_str("}\n");
        out
    }

    /// SARIF 2.1.0 rendering for CI upload. Every emitted code becomes a
    /// rule in the driver; anchors become logical locations.
    pub fn render_sarif(&self) -> String {
        // Rules: the distinct codes that actually appear, sorted.
        let mut codes: Vec<Code> = self.diags.iter().map(|d| d.code).collect();
        codes.sort_unstable();
        codes.dedup();
        let rules: Vec<String> = codes
            .iter()
            .map(|c| {
                format!(
                    "          {{\"id\": \"{}\", \"shortDescription\": {{\"text\": {}}}, \
                     \"defaultConfiguration\": {{\"level\": \"{}\"}}}}",
                    c,
                    json_string(c.title()),
                    c.severity().sarif_level(),
                )
            })
            .collect();
        let results: Vec<String> = self
            .diags
            .iter()
            .map(|d| {
                let rule_index = codes
                    .iter()
                    .position(|c| *c == d.code)
                    .expect("code collected above");
                let mut r = String::from("      {");
                r.push_str(&format!("\"ruleId\": \"{}\", ", d.code));
                r.push_str(&format!("\"ruleIndex\": {rule_index}, "));
                r.push_str(&format!("\"level\": \"{}\", ", d.severity.sarif_level()));
                let text = if d.trail.is_empty() {
                    d.message.clone()
                } else {
                    let path: Vec<String> = d.trail.iter().map(|v| v.to_string()).collect();
                    format!("{} (cycle: {})", d.message, path.join(" -> "))
                };
                r.push_str(&format!(
                    "\"message\": {{\"text\": {}}}",
                    json_string(&text)
                ));
                if !d.anchor.is_none() {
                    r.push_str(&format!(
                        ", \"locations\": [{{\"logicalLocations\": [{{\"fullyQualifiedName\": {}, \
                         \"kind\": \"member\"}}]}}]",
                        json_string(&format!("{}::{}", self.subject, d.anchor.render())),
                    ));
                }
                r.push('}');
                r
            })
            .collect();
        format!(
            "{{\n  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \
             \"version\": \"2.1.0\",\n  \"runs\": [{{\n    \"tool\": {{\"driver\": {{\n      \
             \"name\": \"sweep-analyze\",\n      \"informationUri\": \
             \"https://github.com/sweep-scheduling\",\n      \"rules\": [\n{}\n      ]\n    \
             }}}},\n    \"results\": [\n{}\n    ]\n  }}]\n}}\n",
            rules.join(",\n"),
            results.join(",\n"),
        )
    }
}

/// Escapes a string as a JSON string literal (with quotes).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::new("unit");
        r.push(
            Diagnostic::new(Code::CyclicDependency, Anchor::dir(0), "cycle of 2 cells")
                .with_trail(vec![0, 1, 0]),
        );
        r.push(Diagnostic::new(
            Code::LoadImbalance,
            Anchor::proc(3),
            "proc 3 owns 9 cells, mean is 2.0",
        ));
        r.push(Diagnostic::new(Code::Stats, Anchor::none(), "n=2 k=1"));
        r
    }

    #[test]
    fn severities_and_counts() {
        let r = sample();
        assert!(r.has_errors());
        assert_eq!(r.len(), 3);
        assert_eq!(r.count(Severity::Error), 1);
        assert_eq!(r.count(Severity::Warning), 1);
        assert_eq!(r.count(Severity::Info), 1);
        assert!(r.has_code(Code::CyclicDependency));
        assert_eq!(Code::CyclicDependency.as_str(), "SW001");
        assert_eq!(Code::Certified.as_str(), "SW021");
    }

    #[test]
    fn text_rendering_mentions_code_and_cycle() {
        let t = sample().render_text();
        assert!(t.contains("error[SW001]"));
        assert!(t.contains("cycle: 0 -> 1 -> 0"));
        assert!(t.contains("--> direction 0"));
        assert!(t.contains("1 error(s), 1 warning(s), 1 info"));
    }

    #[test]
    fn json_rendering_is_wellformed_enough() {
        let j = sample().render_json();
        assert!(j.contains("\"code\": \"SW001\""));
        assert!(j.contains("\"trail\": [0, 1, 0]"));
        assert!(j.contains("\"summary\": {\"errors\": 1, \"warnings\": 1, \"infos\": 1}"));
        // Balanced braces/brackets (cheap well-formedness check; payload
        // strings here contain no braces).
        let opens = j.matches('{').count();
        let closes = j.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn sarif_rendering_has_rules_and_results() {
        let s = sample().render_sarif();
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("\"id\": \"SW001\""));
        assert!(s.contains("\"ruleId\": \"SW001\""));
        assert!(s.contains("\"level\": \"warning\""));
        assert!(s.contains("\"level\": \"note\""));
        assert_eq!(s.matches('{').count(), s.matches('}').count());
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn merge_combines_subjects_and_diags() {
        let mut a = Report::new("inst");
        a.push(Diagnostic::new(Code::Stats, Anchor::none(), "x"));
        let mut b = Report::new("sched");
        b.push(Diagnostic::new(Code::Certified, Anchor::none(), "y"));
        a.merge(b);
        assert_eq!(a.subject(), "inst + sched");
        assert_eq!(a.len(), 2);
    }
}
