//! Cache-identity certification (SW024 / SW021).
//!
//! The serving layer (`sweep-serve`) promises that a schedule answered
//! from its content-addressed cache is **bit-identical** to what a cold
//! recomputation of the same request would produce — caching must be an
//! optimization, never an approximation. This analyzer checks that
//! promise on a concrete pair of schedules: the cache-served artifact
//! and an independently recomputed one.
//!
//! The diff is exhaustive: every task start time, every cell's
//! processor, the makespan, and the winning-trial metadata. Any
//! divergence (a stale entry surviving a content change, digest
//! aliasing, an execution-order-dependent winner) is reported as SW024
//! at error severity; a clean diff — after re-validating the cached
//! schedule's feasibility against the instance — pushes the SW021
//! certification.

use sweep_core::{validate, Schedule};
use sweep_dag::SweepInstance;

use crate::diag::{Anchor, Code, Diagnostic, Report};

/// Trial metadata accompanying the two schedules under comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheIdentityMeta {
    /// The tier-2 content digest the cached artifact was addressed by.
    pub digest: u64,
    /// Winning trial index recorded in the cache.
    pub cached_trial: usize,
    /// Winning trial index of the cold recomputation.
    pub cold_trial: usize,
    /// Winning trial's child seed recorded in the cache.
    pub cached_seed: u64,
    /// Winning trial's child seed of the cold recomputation.
    pub cold_seed: u64,
}

/// Diffs a cache-served schedule against a cold recomputation of the
/// same content-addressed request. See the module docs for what SW024
/// covers.
pub fn analyze_cache_identity(
    instance: &SweepInstance,
    cached: &Schedule,
    cold: &Schedule,
    meta: CacheIdentityMeta,
) -> Report {
    let mut report = Report::new(format!(
        "cache identity for '{}' (digest {:016x})",
        instance.name(),
        meta.digest
    ));
    let mut clean = true;

    if meta.cached_trial != meta.cold_trial || meta.cached_seed != meta.cold_seed {
        clean = false;
        report.push(Diagnostic::new(
            Code::CacheDivergence,
            Anchor::none(),
            format!(
                "winning trial differs: cache holds trial {} (seed {:#x}), cold run picked \
                 trial {} (seed {:#x})",
                meta.cached_trial, meta.cached_seed, meta.cold_trial, meta.cold_seed
            ),
        ));
    }
    if cached.makespan() != cold.makespan() {
        clean = false;
        report.push(Diagnostic::new(
            Code::CacheDivergence,
            Anchor::none(),
            format!(
                "makespan differs: cached {} vs cold {}",
                cached.makespan(),
                cold.makespan()
            ),
        ));
    }
    if cached.starts() != cold.starts() {
        clean = false;
        let witness = cached
            .starts()
            .iter()
            .zip(cold.starts())
            .position(|(a, b)| a != b);
        report.push(Diagnostic::new(
            Code::CacheDivergence,
            Anchor::none(),
            format!(
                "start times differ{}",
                witness.map_or_else(
                    || " in length".to_string(),
                    |t| format!(" (first divergent task index {t})")
                )
            ),
        ));
    }
    let n = instance.num_cells() as u32;
    if let Some(cell) = (0..n).find(|&v| cached.proc_of_cell(v) != cold.proc_of_cell(v)) {
        clean = false;
        report.push(Diagnostic::new(
            Code::CacheDivergence,
            Anchor::cell(cell),
            format!(
                "assignment differs: cached puts cell {cell} on processor {}, cold on {}",
                cached.proc_of_cell(cell),
                cold.proc_of_cell(cell)
            ),
        ));
    }
    if let Err(e) = validate(instance, cached) {
        clean = false;
        report.push(Diagnostic::new(
            Code::CacheDivergence,
            Anchor::none(),
            format!("cached schedule is not even feasible for the instance: {e}"),
        ));
    }

    if clean {
        report.push(Diagnostic::new(
            Code::Certified,
            Anchor::none(),
            format!(
                "cache identity certified: digest {:016x} serves a schedule bit-identical \
                 to a cold recomputation (makespan {}, winning trial {})",
                meta.digest,
                cached.makespan(),
                meta.cached_trial
            ),
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use sweep_core::{Algorithm, Assignment};

    fn pair() -> (SweepInstance, Schedule) {
        let inst = SweepInstance::random_layered(40, 3, 5, 2, 8);
        let a = Assignment::random_cells(40, 4, 2);
        let s = Algorithm::RandomDelayPriorities.run(&inst, a, 77);
        (inst, s)
    }

    fn meta() -> CacheIdentityMeta {
        CacheIdentityMeta {
            digest: 0xfeed,
            cached_trial: 1,
            cold_trial: 1,
            cached_seed: 0xabc,
            cold_seed: 0xabc,
        }
    }

    #[test]
    fn identical_schedules_certify() {
        let (inst, s) = pair();
        let r = analyze_cache_identity(&inst, &s, &s.clone(), meta());
        assert!(!r.has_errors(), "{}", r.render_text());
        assert!(r.has_code(Code::Certified));
        assert!(!r.has_code(Code::CacheDivergence));
    }

    #[test]
    fn divergent_starts_and_metadata_fire_sw024() {
        let (inst, s) = pair();
        let a = Assignment::random_cells(40, 4, 2);
        let other = Algorithm::RandomDelayPriorities.run(&inst, a, 78);
        let mut m = meta();
        m.cold_trial = 2;
        let r = analyze_cache_identity(&inst, &s, &other, m);
        assert!(r.has_errors());
        assert!(r.has_code(Code::CacheDivergence));
        assert!(!r.has_code(Code::Certified));
    }

    #[test]
    fn sw024_registry_entry_is_stable() {
        assert_eq!(Code::CacheDivergence.as_str(), "SW024");
        assert_eq!(
            Code::CacheDivergence.severity(),
            crate::diag::Severity::Error
        );
    }
}
