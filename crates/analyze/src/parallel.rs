//! Parallel-execution determinism certification (SW023 / SW021).
//!
//! The parallel execution layer (`sweep-pool` + the seed-splitting in
//! `sweep_core::trials`) promises that worker count never changes a
//! result. This analyzer *checks* that promise on the user's actual
//! instance instead of assuming it, by running one best-of-`b`
//! certification three times:
//!
//! 1. once on the forced sequential path (`ThreadPool::new(1)`);
//! 2. twice through the multi-worker pool (distinct interleavings).
//!
//! The three runs are then diffed bit-for-bit — winning trial, child
//! seeds, every per-trial makespan, and every task start time of the
//! winning schedule. Any divergence (a data race, an order-dependent
//! reduction, a seed derived from execution order) is reported as SW023
//! at error severity. So is an incomplete trial record: the scoped pool
//! joins every worker before returning, so a short record means queued
//! tasks were dropped at shutdown — the other failure mode SW023 covers.
//! A clean diff pushes the SW021 certification.

use sweep_core::{best_of_trials_with_pool, Algorithm, Assignment, BestOfTrials};
use sweep_dag::SweepInstance;
use sweep_pool::ThreadPool;

use crate::diag::{Anchor, Code, Diagnostic, Report};

/// How many independent trials the certification schedules.
pub const CERT_TRIALS: usize = 8;

/// Re-runs a best-of-[`CERT_TRIALS`] certification of Algorithm 2
/// (random delays as priorities) sequentially and twice through a
/// `threads`-wide pool, and diffs all three results. `master_seed`
/// drives both the assignment draw and the per-trial seed splitting, so
/// the whole check is itself reproducible.
pub fn analyze_parallel_determinism(
    instance: &SweepInstance,
    m: usize,
    threads: usize,
    master_seed: u64,
) -> Report {
    let mut report = Report::new(format!(
        "parallel determinism for '{}' (m = {m}, {threads} threads)",
        instance.name()
    ));
    let n = instance.num_cells();
    if n == 0 {
        report.push(Diagnostic::new(
            Code::Stats,
            Anchor::none(),
            "empty instance: nothing to schedule, determinism holds vacuously",
        ));
        return report;
    }
    let assignment = Assignment::random_cells(n, m.max(1), master_seed);
    let alg = Algorithm::RandomDelayPriorities;

    let run = |pool: &ThreadPool| -> BestOfTrials {
        best_of_trials_with_pool(pool, instance, &assignment, alg, CERT_TRIALS, master_seed)
    };
    let seq = run(&ThreadPool::new(1));
    let pool = ThreadPool::new(threads.max(2));
    let par_a = run(&pool);
    let par_b = run(&pool);

    let mut clean = true;
    for (label, r) in [
        ("sequential", &seq),
        ("parallel #1", &par_a),
        ("parallel #2", &par_b),
    ] {
        if r.outcomes.len() != CERT_TRIALS {
            clean = false;
            report.push(Diagnostic::new(
                Code::PoolNondeterminism,
                Anchor::none(),
                format!(
                    "{label} run completed {} of {CERT_TRIALS} queued trials — the pool \
                     dropped tasks at shutdown",
                    r.outcomes.len()
                ),
            ));
        }
    }
    clean &= diff(&mut report, "parallel #1", &par_a, "parallel #2", &par_b);
    clean &= diff(
        &mut report,
        "parallel #1",
        &par_a,
        "sequential reference",
        &seq,
    );

    if clean {
        report.push(Diagnostic::new(
            Code::Certified,
            Anchor::none(),
            format!(
                "parallel execution certified: {CERT_TRIALS} trials on {} workers \
                 bit-identical across re-runs and vs the sequential reference \
                 (winner trial {}, makespan {})",
                pool.threads(),
                seq.trial,
                seq.schedule.makespan()
            ),
        ));
    }
    report
}

/// Diffs two runs; pushes SW023 diagnostics and returns whether they
/// matched.
fn diff(report: &mut Report, la: &str, a: &BestOfTrials, lb: &str, b: &BestOfTrials) -> bool {
    let mut same = true;
    if a.trial != b.trial || a.seed != b.seed {
        same = false;
        report.push(Diagnostic::new(
            Code::PoolNondeterminism,
            Anchor::none(),
            format!(
                "winner differs: {la} picked trial {} (seed {:#x}), {lb} trial {} (seed {:#x})",
                a.trial, a.seed, b.trial, b.seed
            ),
        ));
    }
    for (oa, ob) in a.outcomes.iter().zip(&b.outcomes) {
        if oa != ob {
            same = false;
            report.push(Diagnostic::new(
                Code::PoolNondeterminism,
                Anchor::none(),
                format!(
                    "trial {} diverges: {la} got makespan {} (seed {:#x}), {lb} got {} (seed {:#x})",
                    oa.trial, oa.makespan, oa.seed, ob.makespan, ob.seed
                ),
            ));
            break; // one witness per pair keeps the report readable
        }
    }
    if a.schedule.starts() != b.schedule.starts() {
        let witness = a
            .schedule
            .starts()
            .iter()
            .zip(b.schedule.starts())
            .position(|(x, y)| x != y);
        same = false;
        report.push(Diagnostic::new(
            Code::PoolNondeterminism,
            Anchor::none(),
            format!(
                "winning schedules differ between {la} and {lb}{}",
                witness.map_or(String::new(), |t| format!(
                    " (first divergent task index {t})"
                ))
            ),
        ));
    }
    same
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_instance_certifies() {
        let inst = SweepInstance::random_layered(50, 3, 5, 2, 7);
        let r = analyze_parallel_determinism(&inst, 4, 4, 2005);
        assert!(!r.has_errors(), "{}", r.render_text());
        assert!(r.has_code(Code::Certified));
        assert!(!r.has_code(Code::PoolNondeterminism));
    }

    #[test]
    fn empty_instance_is_vacuous() {
        use sweep_dag::TaskDag;
        let inst = SweepInstance::new(0, vec![TaskDag::edgeless(0)], "empty");
        let r = analyze_parallel_determinism(&inst, 4, 4, 1);
        assert!(!r.has_errors());
        assert!(r.has_code(Code::Stats));
    }

    #[test]
    fn divergent_runs_are_reported() {
        // Exercise the diff engine directly with two doctored results —
        // the pool itself (correctly) never produces divergence.
        let inst = SweepInstance::random_layered(30, 2, 4, 2, 3);
        let a = Assignment::random_cells(30, 3, 1);
        let good =
            best_of_trials_with_pool(&ThreadPool::new(1), &inst, &a, Algorithm::Greedy, 4, 9);
        let mut bad = good.clone();
        bad.trial = 2;
        bad.seed ^= 1;
        bad.outcomes[1].makespan += 5;
        let mut report = Report::new("doctored");
        assert!(!diff(&mut report, "a", &good, "b", &bad));
        assert!(report.has_code(Code::PoolNondeterminism));
        assert!(report.has_errors());
    }

    #[test]
    fn sw023_registry_entry_is_stable() {
        assert_eq!(Code::PoolNondeterminism.as_str(), "SW023");
        assert_eq!(
            Code::PoolNondeterminism.severity(),
            crate::diag::Severity::Error
        );
    }
}
