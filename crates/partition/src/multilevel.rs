//! The multilevel k-way driver: coarsen → bisect → uncoarsen+refine,
//! applied recursively — a from-scratch stand-in for the METIS v2
//! partitioner the paper uses to form cell blocks.

use crate::bisect::{cut_weight, fm_refine, initial_bisection};
use crate::coarsen::coarsen_to;
use crate::csr::CsrGraph;

/// Tuning options for the partitioner.
#[derive(Debug, Clone)]
pub struct PartitionOptions {
    /// Stop coarsening once the graph is at most this many vertices.
    pub coarsest_size: usize,
    /// Random seeds tried for the initial bisection.
    pub init_tries: usize,
    /// FM passes per uncoarsening level.
    pub refine_passes: usize,
    /// Balance tolerance as a fraction of the (sub)graph weight.
    pub tolerance: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PartitionOptions {
    fn default() -> Self {
        PartitionOptions {
            coarsest_size: 64,
            init_tries: 6,
            refine_passes: 4,
            tolerance: 0.03,
            seed: 0x5eed,
        }
    }
}

/// Multilevel bisection of `g` with side-0 target weight `target0`.
/// Returns the side per vertex.
fn multilevel_bisect(g: &CsrGraph, target0: u64, opts: &PartitionOptions) -> Vec<u8> {
    let total = g.total_vwgt();
    let max_vwgt = g.vwgt.iter().copied().max().unwrap_or(1) as u64;
    let tol = ((total as f64 * opts.tolerance) as u64).max(max_vwgt);

    // hierarchy[i] coarsens graph_i into graph_{i+1}, with graph_0 = g and
    // graph_{i+1} = hierarchy[i].graph.
    let hierarchy = coarsen_to(g, opts.coarsest_size, opts.seed);
    let coarsest: &CsrGraph = hierarchy.last().map(|c| &c.graph).unwrap_or(g);
    let init = initial_bisection(coarsest, target0, tol, opts.init_tries, opts.seed ^ 0x9e37);
    let mut side = init.side;

    // Project back through the hierarchy, refining at every level.
    for i in (0..hierarchy.len()).rev() {
        let map = &hierarchy[i].map;
        let mut fine_side = vec![0u8; map.len()];
        for v in 0..map.len() {
            fine_side[v] = side[map[v] as usize];
        }
        side = fine_side;
        let fine_graph: &CsrGraph = if i == 0 { g } else { &hierarchy[i - 1].graph };
        fm_refine(fine_graph, &mut side, target0, tol, opts.refine_passes);
    }
    if hierarchy.is_empty() {
        fm_refine(g, &mut side, target0, tol, opts.refine_passes);
    }
    side
}

/// Partitions `g` into `nparts` parts of (approximately) equal vertex
/// weight by recursive multilevel bisection. Returns the part id
/// (`0..nparts`) per vertex.
///
/// # Panics
/// Panics when `nparts == 0`.
pub fn partition(g: &CsrGraph, nparts: usize, opts: &PartitionOptions) -> Vec<u32> {
    assert!(nparts > 0, "nparts must be positive");
    let n = g.num_vertices();
    let mut part = vec![0u32; n];
    if nparts == 1 || n == 0 {
        return part;
    }
    if nparts >= n {
        // Degenerate: one vertex per part (extra parts stay empty).
        for (v, p) in part.iter_mut().enumerate() {
            *p = v as u32;
        }
        return part;
    }
    // Work queue of (vertex-subset, part-id range).
    let all: Vec<u32> = (0..n as u32).collect();
    let mut stack: Vec<(Vec<u32>, u32, u32)> = vec![(all, 0, nparts as u32)];
    let mut salt = 0u64;
    while let Some((subset, p_lo, p_hi)) = stack.pop() {
        let kparts = (p_hi - p_lo) as usize;
        if kparts == 1 {
            for &v in &subset {
                part[v as usize] = p_lo;
            }
            continue;
        }
        if subset.len() <= kparts {
            // Fewer vertices than parts (skewed weights can starve a
            // side): one vertex per part, surplus parts stay empty.
            for (idx, &v) in subset.iter().enumerate() {
                part[v as usize] = p_lo + idx as u32;
            }
            continue;
        }
        // Extract the subgraph induced by `subset`.
        let (sub, _back) = induced_subgraph(g, &subset);
        let k0 = kparts.div_ceil(2);
        let target0 = sub.total_vwgt() * k0 as u64 / kparts as u64;
        let mut sub_opts = opts.clone();
        sub_opts.seed = opts.seed.wrapping_add(salt);
        salt = salt.wrapping_add(0x9e3779b97f4a7c15);
        let side = multilevel_bisect(&sub, target0, &sub_opts);
        let mut left = Vec::new();
        let mut right = Vec::new();
        for (local, &v) in subset.iter().enumerate() {
            if side[local] == 0 {
                left.push(v);
            } else {
                right.push(v);
            }
        }
        // Guard against empty sides on adversarial inputs: steal one vertex.
        if left.is_empty() {
            left.push(right.pop().expect("non-empty subset"));
        }
        if right.is_empty() {
            right.push(left.pop().expect("non-empty subset"));
        }
        stack.push((left, p_lo, p_lo + k0 as u32));
        stack.push((right, p_lo + k0 as u32, p_hi));
    }
    // Final direct k-way pass: boundary vertices may hop between any
    // adjacent pair of parts, recovering cut quality recursive bisection
    // leaves on the table.
    crate::kway::kway_refine(g, &mut part, nparts, opts.tolerance.max(0.02) * 2.0, 2);
    part
}

/// Partitions into blocks of roughly `block_size` vertices (the paper's
/// block partitioning, §5.1): `nparts = ⌈n / block_size⌉`.
///
/// ```
/// use sweep_partition::{block_partition, CsrGraph, PartitionOptions, imbalance};
///
/// // A ring of 32 vertices in blocks of 8.
/// let edges: Vec<(u32, u32)> = (0..32u32).map(|v| (v, (v + 1) % 32)).collect();
/// let g = CsrGraph::from_edges(32, &edges);
/// let part = block_partition(&g, 8, &PartitionOptions::default());
/// assert_eq!(part.len(), 32);
/// assert!(imbalance(&g, &part, 4) <= 1.3);
/// ```
pub fn block_partition(g: &CsrGraph, block_size: usize, opts: &PartitionOptions) -> Vec<u32> {
    assert!(block_size > 0, "block size must be positive");
    let nparts = g.num_vertices().div_ceil(block_size).max(1);
    partition(g, nparts, opts)
}

/// The subgraph induced by `subset`; returns it plus the local→global map.
fn induced_subgraph(g: &CsrGraph, subset: &[u32]) -> (CsrGraph, Vec<u32>) {
    let mut local = vec![u32::MAX; g.num_vertices()];
    for (i, &v) in subset.iter().enumerate() {
        local[v as usize] = i as u32;
    }
    let mut edges: Vec<(u32, u32, u32)> = Vec::new();
    for (i, &v) in subset.iter().enumerate() {
        for (u, w) in g.neighbors(v) {
            let lu = local[u as usize];
            if lu != u32::MAX && (i as u32) < lu {
                edges.push((i as u32, lu, w));
            }
        }
    }
    let mut sub = CsrGraph::from_weighted_edges(subset.len(), &edges);
    for (i, &v) in subset.iter().enumerate() {
        sub.vwgt[i] = g.vwgt[v as usize];
    }
    (sub, subset.to_vec())
}

/// Total weight of edges crossing between different parts.
pub fn edge_cut(g: &CsrGraph, part: &[u32]) -> u64 {
    let mut cut = 0u64;
    for v in 0..g.num_vertices() as u32 {
        for (u, w) in g.neighbors(v) {
            if v < u && part[v as usize] != part[u as usize] {
                cut += w as u64;
            }
        }
    }
    cut
}

/// Maximum part weight divided by the ideal (`total/nparts`); 1.0 is
/// perfect balance.
pub fn imbalance(g: &CsrGraph, part: &[u32], nparts: usize) -> f64 {
    assert!(nparts > 0);
    let mut w = vec![0u64; nparts];
    for v in 0..g.num_vertices() {
        w[part[v] as usize] += g.vwgt[v] as u64;
    }
    let total: u64 = w.iter().sum();
    if total == 0 {
        return 1.0;
    }
    let ideal = total as f64 / nparts as f64;
    w.into_iter().max().unwrap_or(0) as f64 / ideal
}

/// Re-exported convenience: cut of a 2-way `side` vector.
pub fn bisection_cut(g: &CsrGraph, side: &[u8]) -> u64 {
    cut_weight(g, side)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A `w × h` grid graph.
    fn grid(w: usize, h: usize) -> CsrGraph {
        let id = |x: usize, y: usize| (y * w + x) as u32;
        let mut edges = Vec::new();
        for y in 0..h {
            for x in 0..w {
                if x + 1 < w {
                    edges.push((id(x, y), id(x + 1, y)));
                }
                if y + 1 < h {
                    edges.push((id(x, y), id(x, y + 1)));
                }
            }
        }
        CsrGraph::from_edges(w * h, &edges)
    }

    #[test]
    fn grid_bisection_is_near_optimal() {
        // 16x16 grid: optimal 2-way cut is 16.
        let g = grid(16, 16);
        let part = partition(&g, 2, &PartitionOptions::default());
        let cut = edge_cut(&g, &part);
        assert!(cut <= 24, "cut {cut} too far above optimal 16");
        assert!(imbalance(&g, &part, 2) <= 1.1);
    }

    #[test]
    fn four_way_grid_partition() {
        let g = grid(16, 16);
        let part = partition(&g, 4, &PartitionOptions::default());
        assert_eq!(*part.iter().max().unwrap(), 3);
        let cut = edge_cut(&g, &part);
        // Optimal 4-way cut of a 16x16 grid is 32 (two straight cuts).
        assert!(cut <= 56, "cut {cut}");
        assert!(
            imbalance(&g, &part, 4) <= 1.15,
            "{}",
            imbalance(&g, &part, 4)
        );
    }

    #[test]
    fn nonpow2_parts_are_balanced() {
        let g = grid(15, 14); // 210 vertices, 7 parts of 30
        let part = partition(&g, 7, &PartitionOptions::default());
        let used: std::collections::HashSet<u32> = part.iter().copied().collect();
        assert_eq!(used.len(), 7);
        assert!(
            imbalance(&g, &part, 7) <= 1.25,
            "{}",
            imbalance(&g, &part, 7)
        );
    }

    #[test]
    fn block_partition_sizes() {
        let g = grid(20, 10); // 200 vertices
        let part = block_partition(&g, 25, &PartitionOptions::default());
        let nparts = 200usize.div_ceil(25);
        let mut sizes = vec![0usize; nparts];
        for &p in &part {
            sizes[p as usize] += 1;
        }
        for (i, s) in sizes.iter().enumerate() {
            assert!(*s > 0, "part {i} empty");
            assert!(*s <= 25 + 13, "part {i} oversized: {s}");
        }
    }

    #[test]
    fn one_part_is_identity() {
        let g = grid(4, 4);
        let part = partition(&g, 1, &PartitionOptions::default());
        assert!(part.iter().all(|&p| p == 0));
        assert_eq!(edge_cut(&g, &part), 0);
    }

    #[test]
    fn nparts_ge_n_gives_singletons() {
        let g = grid(2, 2);
        let part = partition(&g, 10, &PartitionOptions::default());
        let mut sorted = part.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = grid(12, 12);
        let o = PartitionOptions::default();
        assert_eq!(partition(&g, 4, &o), partition(&g, 4, &o));
    }

    #[test]
    fn bigger_blocks_cut_less() {
        // The paper's §5.1 observation: increasing block size decreases C1.
        let g = grid(24, 24);
        let o = PartitionOptions::default();
        let cut_small = edge_cut(&g, &block_partition(&g, 4, &o));
        let cut_big = edge_cut(&g, &block_partition(&g, 64, &o));
        assert!(
            cut_big < cut_small,
            "expected fewer cut edges with bigger blocks: {cut_big} vs {cut_small}"
        );
    }

    #[test]
    fn disconnected_graph_partitions() {
        let g = CsrGraph::from_edges(8, &[(0, 1), (2, 3), (4, 5), (6, 7)]);
        let part = partition(&g, 4, &PartitionOptions::default());
        assert!(imbalance(&g, &part, 4) <= 1.01);
        assert_eq!(edge_cut(&g, &part), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_parts_panics() {
        partition(&grid(2, 2), 0, &PartitionOptions::default());
    }

    #[test]
    fn imbalance_of_perfect_split() {
        let g = grid(4, 2);
        let part = vec![0, 0, 0, 0, 1, 1, 1, 1];
        assert!((imbalance(&g, &part, 2) - 1.0).abs() < 1e-12);
    }
}
