//! Heavy-edge-matching coarsening — the first phase of the multilevel
//! partitioner.
//!
//! Vertices are visited in random order; each unmatched vertex merges with
//! its unmatched neighbour of maximum edge weight (heaviest edge), or stays
//! a singleton. The coarse graph sums vertex weights and merges parallel
//! edges, so the edge cut of any coarse partition equals the cut of its
//! projection to the fine graph — the invariant that makes the multilevel
//! scheme sound.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::csr::CsrGraph;

/// One coarsening step: the coarse graph and the fine→coarse vertex map.
#[derive(Debug, Clone)]
pub struct Coarsening {
    /// The coarser graph.
    pub graph: CsrGraph,
    /// `map[v_fine] = v_coarse`.
    pub map: Vec<u32>,
}

/// Performs one round of heavy-edge matching. Returns `None` when matching
/// can no longer shrink the graph meaningfully (fewer than 10% of vertices
/// matched), which signals the driver to stop coarsening.
pub fn coarsen_step(g: &CsrGraph, seed: u64) -> Option<Coarsening> {
    let n = g.num_vertices();
    if n < 2 {
        return None;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(&mut rng);

    const UNMATCHED: u32 = u32::MAX;
    let mut mate = vec![UNMATCHED; n];
    let mut matched_pairs = 0usize;
    for &v in &order {
        if mate[v as usize] != UNMATCHED {
            continue;
        }
        let mut best: Option<(u32, u32)> = None; // (weight, neighbour)
        for (u, w) in g.neighbors(v) {
            if mate[u as usize] == UNMATCHED && u != v {
                match best {
                    Some((bw, _)) if bw >= w => {}
                    _ => best = Some((w, u)),
                }
            }
        }
        if let Some((_, u)) = best {
            mate[v as usize] = u;
            mate[u as usize] = v;
            matched_pairs += 1;
        } else {
            mate[v as usize] = v; // singleton
        }
    }
    if matched_pairs * 10 < n {
        return None;
    }

    // Assign coarse ids: the smaller endpoint of each pair owns the id.
    let mut map = vec![UNMATCHED; n];
    let mut next = 0u32;
    for v in 0..n as u32 {
        if map[v as usize] != UNMATCHED {
            continue;
        }
        let m = mate[v as usize];
        map[v as usize] = next;
        if m != v {
            map[m as usize] = next;
        }
        next += 1;
    }
    let nc = next as usize;

    // Coarse vertex weights.
    let mut vwgt = vec![0u32; nc];
    for v in 0..n {
        vwgt[map[v] as usize] += g.vwgt[v];
    }
    // Coarse edges (merged by from_weighted_edges).
    let mut edges: Vec<(u32, u32, u32)> = Vec::with_capacity(g.adjncy.len() / 2);
    for v in 0..n as u32 {
        let cv = map[v as usize];
        for (u, w) in g.neighbors(v) {
            let cu = map[u as usize];
            if cv < cu {
                edges.push((cv, cu, w));
            }
        }
    }
    let mut graph = CsrGraph::from_weighted_edges(nc, &edges);
    graph.vwgt = vwgt;
    Some(Coarsening { graph, map })
}

/// Coarsens until at most `target_vertices` remain or matching stalls.
/// Returns the hierarchy from finest (first) to coarsest (last).
pub fn coarsen_to(g: &CsrGraph, target_vertices: usize, seed: u64) -> Vec<Coarsening> {
    let mut levels = Vec::new();
    let mut current = g.clone();
    let mut round = 0u64;
    while current.num_vertices() > target_vertices {
        match coarsen_step(&current, seed.wrapping_add(round)) {
            Some(c) => {
                let next = c.graph.clone();
                levels.push(c);
                current = next;
                round += 1;
            }
            None => break,
        }
    }
    levels
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> CsrGraph {
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|v| (v, v + 1)).collect();
        CsrGraph::from_edges(n, &edges)
    }

    #[test]
    fn one_step_roughly_halves_a_path() {
        let g = path(64);
        let c = coarsen_step(&g, 1).expect("path should match well");
        assert!(c.graph.num_vertices() < 48, "{}", c.graph.num_vertices());
        assert!(c.graph.num_vertices() >= 32);
        // Weight is conserved.
        assert_eq!(c.graph.total_vwgt(), g.total_vwgt());
    }

    #[test]
    fn map_is_consistent() {
        let g = path(32);
        let c = coarsen_step(&g, 3).unwrap();
        let nc = c.graph.num_vertices() as u32;
        assert!(c.map.iter().all(|&m| m < nc));
        // Every coarse vertex has at least one fine vertex.
        let mut seen = vec![false; nc as usize];
        for &m in &c.map {
            seen[m as usize] = true;
        }
        assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn coarse_cut_projects_exactly() {
        // Any coarse bipartition, projected to the fine graph, must have the
        // same cut weight.
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5), (1, 4)]);
        let c = coarsen_step(&g, 7).unwrap();
        let nc = c.graph.num_vertices();
        // Bipartition coarse vertices: even/odd.
        let cpart: Vec<u32> = (0..nc as u32).map(|v| v % 2).collect();
        let fpart: Vec<u32> = c.map.iter().map(|&m| cpart[m as usize]).collect();
        let cut_coarse: u64 = (0..nc as u32)
            .flat_map(|v| c.graph.neighbors(v).map(move |(u, w)| (v, u, w)))
            .filter(|&(v, u, _)| v < u && cpart[v as usize] != cpart[u as usize])
            .map(|(_, _, w)| w as u64)
            .sum();
        let cut_fine: u64 = (0..g.num_vertices() as u32)
            .flat_map(|v| g.neighbors(v).map(move |(u, w)| (v, u, w)))
            .filter(|&(v, u, _)| v < u && fpart[v as usize] != fpart[u as usize])
            .map(|(_, _, w)| w as u64)
            .sum();
        assert_eq!(cut_coarse, cut_fine);
    }

    #[test]
    fn coarsen_to_reaches_target() {
        let g = path(256);
        let levels = coarsen_to(&g, 30, 5);
        assert!(!levels.is_empty());
        assert!(levels.last().unwrap().graph.num_vertices() <= 60);
        // Hierarchy shrinks monotonically.
        let mut prev = g.num_vertices();
        for l in &levels {
            assert!(l.graph.num_vertices() < prev);
            prev = l.graph.num_vertices();
        }
    }

    #[test]
    fn tiny_graphs_stop() {
        let g = path(2);
        // Either one step to a single vertex, or None — but never panic.
        let _ = coarsen_step(&g, 0);
        let g1 = CsrGraph::from_edges(1, &[]);
        assert!(coarsen_step(&g1, 0).is_none());
    }

    #[test]
    fn disconnected_graph_coarsens() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (2, 3), (4, 5)]);
        let c = coarsen_step(&g, 2).unwrap();
        assert_eq!(c.graph.num_vertices(), 3);
        assert_eq!(c.graph.num_edges(), 0);
    }
}
