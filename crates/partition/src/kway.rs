//! Direct k-way boundary refinement.
//!
//! Recursive bisection optimizes each cut in isolation; a final k-way
//! pass lets boundary vertices move between *any* adjacent pair of parts,
//! recovering most of the gap to direct k-way partitioners. The
//! implementation is a greedy positive-gain sweep (no hill climbing):
//! deterministic, monotone in cut weight, and balance-guarded.

use crate::csr::CsrGraph;
use crate::multilevel::edge_cut;

/// Refines `part` in place with up to `passes` sweeps of positive-gain
/// boundary moves. A move is applied when it strictly reduces the cut and
/// keeps every part's weight within `tolerance` of the average. Returns
/// the final cut weight.
///
/// # Panics
/// Panics when `nparts == 0` or `part` contains ids `>= nparts`.
pub fn kway_refine(
    g: &CsrGraph,
    part: &mut [u32],
    nparts: usize,
    tolerance: f64,
    passes: usize,
) -> u64 {
    assert!(nparts > 0, "nparts must be positive");
    assert!(
        part.iter().all(|&p| (p as usize) < nparts),
        "part id out of range"
    );
    let n = g.num_vertices();
    assert_eq!(part.len(), n);

    let total: u64 = g.total_vwgt();
    let avg = total as f64 / nparts as f64;
    let max_w = (avg * (1.0 + tolerance)).ceil() as u64;
    let min_w = (avg * (1.0 - tolerance)).floor() as u64;
    let mut weight = vec![0u64; nparts];
    for v in 0..n {
        weight[part[v] as usize] += g.vwgt[v] as u64;
    }

    // Scratch: connectivity of one vertex to each part (sparse, reset per
    // vertex via touched list).
    let mut conn = vec![0i64; nparts];
    let mut touched: Vec<u32> = Vec::new();

    for _ in 0..passes {
        let mut improved = false;
        for v in 0..n as u32 {
            let home = part[v as usize] as usize;
            touched.clear();
            let mut boundary = false;
            for (u, w) in g.neighbors(v) {
                let pu = part[u as usize] as usize;
                if conn[pu] == 0 {
                    touched.push(pu as u32);
                }
                conn[pu] += w as i64;
                if pu != home {
                    boundary = true;
                }
            }
            if boundary {
                let internal = conn[home];
                let mut best: Option<(i64, usize)> = None;
                for &t in &touched {
                    let t = t as usize;
                    if t == home {
                        continue;
                    }
                    let gain = conn[t] - internal;
                    if gain <= 0 {
                        continue;
                    }
                    // Balance guard.
                    let vw = g.vwgt[v as usize] as u64;
                    if weight[t] + vw > max_w || weight[home] < min_w + vw {
                        continue;
                    }
                    if best.is_none_or(|(bg, _)| gain > bg) {
                        best = Some((gain, t));
                    }
                }
                if let Some((_, t)) = best {
                    let vw = g.vwgt[v as usize] as u64;
                    weight[home] -= vw;
                    weight[t] += vw;
                    part[v as usize] = t as u32;
                    improved = true;
                }
            }
            for &t in &touched {
                conn[t as usize] = 0;
            }
        }
        if !improved {
            break;
        }
    }
    edge_cut(g, part)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multilevel::{imbalance, partition, PartitionOptions};

    fn grid(w: usize, h: usize) -> CsrGraph {
        let id = |x: usize, y: usize| (y * w + x) as u32;
        let mut edges = Vec::new();
        for y in 0..h {
            for x in 0..w {
                if x + 1 < w {
                    edges.push((id(x, y), id(x + 1, y)));
                }
                if y + 1 < h {
                    edges.push((id(x, y), id(x, y + 1)));
                }
            }
        }
        CsrGraph::from_edges(w * h, &edges)
    }

    #[test]
    fn refinement_never_increases_cut() {
        let g = grid(16, 16);
        for nparts in [2usize, 4, 7] {
            let mut part = partition(&g, nparts, &PartitionOptions::default());
            let before = edge_cut(&g, &part);
            let after = kway_refine(&g, &mut part, nparts, 0.05, 4);
            assert!(after <= before, "{nparts} parts: {after} > {before}");
            assert!(imbalance(&g, &part, nparts) <= 1.2);
        }
    }

    #[test]
    fn refinement_fixes_a_scrambled_partition() {
        let g = grid(12, 12);
        // Terrible start: pseudo-random part per vertex. (A *striped*
        // start is a local optimum for positive-gain moves — every
        // vertex has 2 internal and 1+1 external neighbours — so the
        // scramble here is random, which refinement can improve.)
        let mut part: Vec<u32> = (0..144u64)
            .map(|v| ((v.wrapping_mul(6364136223846793005) >> 33) % 4) as u32)
            .collect();
        let before = edge_cut(&g, &part);
        let after = kway_refine(&g, &mut part, 4, 0.15, 12);
        // Positive-gain-only refinement is a *polish* pass, not a global
        // optimizer: expect real but modest improvement from a random
        // start (the multilevel pipeline supplies good starts).
        assert!(after < before, "no improvement: {after} vs {before}");
        assert!(
            imbalance(&g, &part, 4) <= 1.3,
            "{}",
            imbalance(&g, &part, 4)
        );
    }

    #[test]
    fn perfect_partition_untouched() {
        // Two disconnected cliques already split: no move has positive gain.
        let mut edges = Vec::new();
        for a in 0..4u32 {
            for b in (a + 1)..4 {
                edges.push((a, b));
                edges.push((a + 4, b + 4));
            }
        }
        let g = CsrGraph::from_edges(8, &edges);
        let mut part = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let cut = kway_refine(&g, &mut part, 2, 0.1, 4);
        assert_eq!(cut, 0);
        assert_eq!(part, vec![0, 0, 0, 0, 1, 1, 1, 1]);
    }

    #[test]
    fn balance_guard_blocks_collapse() {
        // A star: hub in part 0, leaves in part 1. Moving every leaf to
        // the hub's part would zero the cut but ruin balance; the guard
        // must keep parts near the average.
        let edges: Vec<(u32, u32)> = (1..8u32).map(|v| (0, v)).collect();
        let g = CsrGraph::from_edges(8, &edges);
        let mut part = vec![0u32, 1, 1, 1, 1, 1, 1, 1];
        kway_refine(&g, &mut part, 2, 0.25, 8);
        let w0 = part.iter().filter(|&&p| p == 0).count();
        assert!(w0 <= 5, "balance guard failed: {w0} vertices in part 0");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_part_ids_rejected() {
        let g = grid(2, 2);
        let mut part = vec![0, 0, 9, 0];
        kway_refine(&g, &mut part, 2, 0.1, 1);
    }
}
