//! Graph bisection: greedy region growing followed by Fiduccia–Mattheyses
//! (FM) boundary refinement. Used on the coarsest graph and re-applied
//! during uncoarsening by the multilevel driver.

use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::csr::CsrGraph;

/// Result of a bisection: side (0/1) per vertex and the cut weight.
#[derive(Debug, Clone)]
pub struct Bisection {
    /// 0 or 1 per vertex.
    pub side: Vec<u8>,
    /// Total weight of cut edges.
    pub cut: u64,
}

/// Sum of weights of edges whose endpoints lie on different sides.
pub fn cut_weight(g: &CsrGraph, side: &[u8]) -> u64 {
    let mut cut = 0u64;
    for v in 0..g.num_vertices() as u32 {
        for (u, w) in g.neighbors(v) {
            if v < u && side[v as usize] != side[u as usize] {
                cut += w as u64;
            }
        }
    }
    cut
}

/// Weight on side 0.
fn side0_weight(g: &CsrGraph, side: &[u8]) -> u64 {
    (0..g.num_vertices())
        .filter(|&v| side[v] == 0)
        .map(|v| g.vwgt[v] as u64)
        .sum()
}

/// Grows side 0 from a seed vertex by repeatedly absorbing the boundary
/// vertex with the highest gain until its weight reaches `target0`.
fn grow_from(g: &CsrGraph, seed: u32, target0: u64) -> Vec<u8> {
    let n = g.num_vertices();
    let mut side = vec![1u8; n];
    let mut w0 = 0u64;
    // Max-heap of (gain, vertex); stale entries skipped via `in_region`.
    let mut heap: BinaryHeap<(i64, u32)> = BinaryHeap::new();
    let mut gain = vec![0i64; n];
    let mut queued = vec![false; n];
    heap.push((0, seed));
    queued[seed as usize] = true;
    while w0 < target0 {
        let Some((gpop, v)) = heap.pop() else { break };
        if side[v as usize] == 0 || gpop < gain[v as usize] {
            continue; // stale
        }
        side[v as usize] = 0;
        w0 += g.vwgt[v as usize] as u64;
        for (u, w) in g.neighbors(v) {
            if side[u as usize] == 1 {
                gain[u as usize] += 2 * w as i64;
                heap.push((gain[u as usize], u));
                queued[u as usize] = true;
            }
        }
    }
    // Disconnected graph: heap may run dry early; absorb arbitrary
    // remaining vertices to respect the weight target.
    if w0 < target0 {
        for (v, s) in side.iter_mut().enumerate() {
            if *s == 1 {
                *s = 0;
                w0 += g.vwgt[v] as u64;
                if w0 >= target0 {
                    break;
                }
            }
        }
    }
    side
}

/// Greedy-growing bisection: tries `tries` random seeds and keeps the best
/// cut after one FM pass each.
pub fn initial_bisection(
    g: &CsrGraph,
    target0: u64,
    tol: u64,
    tries: usize,
    seed: u64,
) -> Bisection {
    let n = g.num_vertices();
    assert!(n > 0, "cannot bisect an empty graph");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut best: Option<Bisection> = None;
    for _ in 0..tries.max(1) {
        let s = rng.random_range(0..n as u32);
        let mut side = grow_from(g, s, target0);
        let cut = fm_refine(g, &mut side, target0, tol, 4);
        if best.as_ref().is_none_or(|b| cut < b.cut) {
            best = Some(Bisection { side, cut });
        }
    }
    best.expect("at least one try")
}

/// FM boundary refinement. Moves vertices between sides to reduce the cut
/// while keeping side 0's weight within `tol` of `target0` (moves that
/// strictly improve balance are always allowed). Runs up to `max_passes`
/// passes, each with rollback to its best prefix. Returns the final cut.
pub fn fm_refine(g: &CsrGraph, side: &mut [u8], target0: u64, tol: u64, max_passes: usize) -> u64 {
    let n = g.num_vertices();
    let mut cut = cut_weight(g, side);
    if n < 2 {
        return cut;
    }
    for _ in 0..max_passes {
        let mut w0 = side0_weight(g, side);
        // gain[v]: cut reduction if v switches sides.
        let mut gain = vec![0i64; n];
        for v in 0..n as u32 {
            for (u, w) in g.neighbors(v) {
                if side[v as usize] != side[u as usize] {
                    gain[v as usize] += w as i64;
                } else {
                    gain[v as usize] -= w as i64;
                }
            }
        }
        // One heap per source side, lazily invalidated.
        let mut heaps: [BinaryHeap<(i64, u32)>; 2] = [BinaryHeap::new(), BinaryHeap::new()];
        for v in 0..n as u32 {
            heaps[side[v as usize] as usize].push((gain[v as usize], v));
        }
        let mut locked = vec![false; n];
        let mut moves: Vec<u32> = Vec::new();
        let mut cur_cut = cut as i64;
        let mut best_cut = cut as i64;
        let mut best_len = 0usize;

        let imbalance = |w0: u64| -> u64 { w0.abs_diff(target0) };

        loop {
            // Prefer moving from the side whose weight is too high;
            // otherwise take the higher-gain head of either heap.
            let over0 = w0 > target0 + tol;
            let under0 = w0 + tol < target0;
            let pick_from = |heaps: &mut [BinaryHeap<(i64, u32)>; 2],
                             locked: &[bool],
                             side: &[u8],
                             gain: &[i64],
                             s: usize|
             -> Option<(i64, u32)> {
                while let Some(&(gpop, v)) = heaps[s].peek() {
                    if locked[v as usize]
                        || side[v as usize] as usize != s
                        || gpop != gain[v as usize]
                    {
                        heaps[s].pop();
                        continue;
                    }
                    return heaps[s].pop();
                }
                None
            };
            let choice: Option<(i64, u32)> = if over0 {
                pick_from(&mut heaps, &locked, side, &gain, 0)
            } else if under0 {
                pick_from(&mut heaps, &locked, side, &gain, 1)
            } else {
                // Balanced: take whichever head keeps balance and has the
                // better gain.
                let mut cands: Vec<(i64, u32)> = Vec::new();
                for s in 0..2usize {
                    if let Some(c) = pick_from(&mut heaps, &locked, side, &gain, s) {
                        cands.push(c);
                    }
                }
                match cands.len() {
                    0 => None,
                    1 => {
                        let c = cands[0];
                        // Feasibility checked below; push back is not needed
                        // because a chosen vertex is either moved or locked.
                        Some(c)
                    }
                    _ => {
                        let (a, b) = (cands[0], cands[1]);
                        let (keep, back) = if a.0 >= b.0 { (a, b) } else { (b, a) };
                        heaps[side[back.1 as usize] as usize].push(back);
                        Some(keep)
                    }
                }
            };
            let Some((_, v)) = choice else { break };
            let vs = side[v as usize];
            let vw = g.vwgt[v as usize] as u64;
            let new_w0 = if vs == 0 { w0 - vw } else { w0 + vw };
            // Feasible if within tolerance or strictly improving balance.
            if imbalance(new_w0) > tol && imbalance(new_w0) >= imbalance(w0) {
                locked[v as usize] = true; // cannot move this pass
                continue;
            }
            // Apply the move.
            cur_cut -= gain[v as usize];
            w0 = new_w0;
            side[v as usize] = 1 - vs;
            locked[v as usize] = true;
            moves.push(v);
            for (u, w) in g.neighbors(v) {
                if locked[u as usize] {
                    continue;
                }
                // u's gain changes by ±2w depending on relative sides.
                if side[u as usize] == side[v as usize] {
                    gain[u as usize] -= 2 * w as i64;
                } else {
                    gain[u as usize] += 2 * w as i64;
                }
                heaps[side[u as usize] as usize].push((gain[u as usize], u));
            }
            if cur_cut < best_cut || (cur_cut == best_cut && imbalance(w0) <= tol) {
                best_cut = cur_cut;
                best_len = moves.len();
            }
            if moves.len() >= n {
                break;
            }
        }
        // Roll back moves after the best prefix.
        for &v in &moves[best_len..] {
            side[v as usize] = 1 - side[v as usize];
        }
        let new_cut = best_cut.max(0) as u64;
        debug_assert_eq!(new_cut, cut_weight(g, side));
        if new_cut >= cut {
            cut = new_cut;
            break;
        }
        cut = new_cut;
    }
    cut
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two 4-cliques joined by a single bridge edge: the optimal bisection
    /// cuts exactly that bridge.
    fn two_cliques() -> CsrGraph {
        let mut edges = Vec::new();
        for a in 0..4u32 {
            for b in (a + 1)..4 {
                edges.push((a, b));
                edges.push((a + 4, b + 4));
            }
        }
        edges.push((3, 4)); // bridge
        CsrGraph::from_edges(8, &edges)
    }

    #[test]
    fn bisection_finds_the_bridge() {
        let g = two_cliques();
        let b = initial_bisection(&g, 4, 1, 8, 42);
        assert_eq!(b.cut, 1, "optimal cut is the single bridge edge");
        // Each side holds one clique.
        assert_eq!(side0_weight(&g, &b.side), 4);
        assert_eq!(cut_weight(&g, &b.side), b.cut);
    }

    #[test]
    fn cut_weight_counts_each_edge_once() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let side = vec![0u8, 1, 0, 1];
        assert_eq!(cut_weight(&g, &side), 3);
    }

    #[test]
    fn fm_improves_a_bad_start() {
        let g = two_cliques();
        // Deliberately terrible split: alternating.
        let mut side = vec![0u8, 1, 0, 1, 0, 1, 0, 1];
        let before = cut_weight(&g, &side);
        let after = fm_refine(&g, &mut side, 4, 1, 8);
        assert!(after < before, "{after} !< {before}");
        assert_eq!(after, cut_weight(&g, &side));
        // Balance respected.
        assert!(side0_weight(&g, &side).abs_diff(4) <= 1);
    }

    #[test]
    fn fm_respects_tolerance() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]);
        let mut side = vec![0u8, 0, 0, 1, 1, 1];
        fm_refine(&g, &mut side, 3, 0, 4);
        assert_eq!(side0_weight(&g, &side), 3);
    }

    #[test]
    fn grow_handles_disconnected() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (2, 3)]);
        let b = initial_bisection(&g, 2, 1, 4, 1);
        assert!(side0_weight(&g, &b.side) >= 1);
        assert!(b.cut <= 2);
    }

    #[test]
    fn weighted_vertices_balance_by_weight() {
        let mut g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        g.vwgt = vec![3, 1, 1, 3];
        let b = initial_bisection(&g, 4, 1, 8, 9);
        let w0 = side0_weight(&g, &b.side);
        assert!(w0.abs_diff(4) <= 1, "w0 = {w0}");
    }

    #[test]
    fn singleton_graph() {
        let g = CsrGraph::from_edges(1, &[]);
        let b = initial_bisection(&g, 1, 0, 2, 0);
        assert_eq!(b.cut, 0);
    }
}
