//! Weighted undirected graph in CSR form — the partitioner's working
//! representation (mirrors the METIS input format the paper used).

/// An undirected graph with vertex and edge weights.
///
/// Edges are stored twice (once per endpoint). `ewgt[e]` is the weight of
/// the adjacency entry `adjncy[e]`.
#[derive(Debug, Clone)]
pub struct CsrGraph {
    /// Offsets: neighbours of `v` are `adjncy[xadj[v]..xadj[v+1]]`.
    pub xadj: Vec<u32>,
    /// Flattened adjacency lists.
    pub adjncy: Vec<u32>,
    /// Vertex weights.
    pub vwgt: Vec<u32>,
    /// Edge weights, parallel to `adjncy`.
    pub ewgt: Vec<u32>,
}

impl CsrGraph {
    /// Builds a unit-weight graph from an undirected edge list (each pair
    /// listed once). Duplicate pairs accumulate edge weight.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> CsrGraph {
        let mut weighted: Vec<(u32, u32, u32)> = edges.iter().map(|&(a, b)| (a, b, 1)).collect();
        weighted.retain(|&(a, b, _)| a != b);
        Self::from_weighted_edges(n, &weighted)
    }

    /// Builds from `(u, v, w)` undirected weighted edges (each pair listed
    /// once); parallel edges are merged by summing weights.
    ///
    /// # Panics
    /// Panics on out-of-range endpoints or self-loops.
    pub fn from_weighted_edges(n: usize, edges: &[(u32, u32, u32)]) -> CsrGraph {
        let mut sym: Vec<(u32, u32, u32)> = Vec::with_capacity(edges.len() * 2);
        for &(a, b, w) in edges {
            assert!(
                (a as usize) < n && (b as usize) < n,
                "edge ({a},{b}) out of range"
            );
            assert_ne!(a, b, "self-loop at {a}");
            sym.push((a, b, w));
            sym.push((b, a, w));
        }
        sym.sort_unstable_by_key(|&(a, b, _)| (a, b));
        // Merge parallel edges.
        let mut merged: Vec<(u32, u32, u32)> = Vec::with_capacity(sym.len());
        for (a, b, w) in sym {
            match merged.last_mut() {
                Some(last) if last.0 == a && last.1 == b => last.2 += w,
                _ => merged.push((a, b, w)),
            }
        }
        let mut xadj = vec![0u32; n + 1];
        for &(a, _, _) in &merged {
            xadj[a as usize + 1] += 1;
        }
        for i in 0..n {
            xadj[i + 1] += xadj[i];
        }
        let adjncy: Vec<u32> = merged.iter().map(|&(_, b, _)| b).collect();
        let ewgt: Vec<u32> = merged.iter().map(|&(_, _, w)| w).collect();
        CsrGraph {
            xadj,
            adjncy,
            vwgt: vec![1; n],
            ewgt,
        }
    }

    /// Builds from a CSR adjacency produced by
    /// `sweep_mesh::SweepMesh::adjacency_csr` (unit weights).
    pub fn from_csr_parts(xadj: Vec<u32>, adjncy: Vec<u32>) -> CsrGraph {
        let n = xadj.len() - 1;
        let m = adjncy.len();
        CsrGraph {
            xadj,
            adjncy,
            vwgt: vec![1; n],
            ewgt: vec![1; m],
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.vwgt.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.adjncy.len() / 2
    }

    /// Neighbours of `v` with their edge weights.
    #[inline]
    pub fn neighbors(&self, v: u32) -> impl Iterator<Item = (u32, u32)> + '_ {
        let (s, e) = (
            self.xadj[v as usize] as usize,
            self.xadj[v as usize + 1] as usize,
        );
        self.adjncy[s..e]
            .iter()
            .copied()
            .zip(self.ewgt[s..e].iter().copied())
    }

    /// Total vertex weight.
    #[inline]
    pub fn total_vwgt(&self) -> u64 {
        self.vwgt.iter().map(|&w| w as u64).sum()
    }

    /// Degree of `v` (number of adjacency entries).
    #[inline]
    pub fn degree(&self, v: u32) -> u32 {
        self.xadj[v as usize + 1] - self.xadj[v as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_graph() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(0), 2);
        let nbrs: Vec<_> = g.neighbors(1).collect();
        assert_eq!(nbrs, vec![(0, 1), (2, 1)]);
        assert_eq!(g.total_vwgt(), 3);
    }

    #[test]
    fn parallel_edges_merge() {
        let g = CsrGraph::from_weighted_edges(2, &[(0, 1, 2), (0, 1, 3)]);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.neighbors(0).next(), Some((1, 5)));
    }

    #[test]
    fn self_loops_dropped_by_from_edges() {
        let g = CsrGraph::from_edges(2, &[(0, 0), (0, 1)]);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        CsrGraph::from_edges(2, &[(0, 7)]);
    }

    #[test]
    fn from_csr_parts_round_trip() {
        let a = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let b = CsrGraph::from_csr_parts(a.xadj.clone(), a.adjncy.clone());
        assert_eq!(b.num_edges(), 3);
        assert_eq!(b.vwgt, vec![1; 4]);
    }

    #[test]
    fn empty_graph_ok() {
        let g = CsrGraph::from_edges(0, &[]);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.total_vwgt(), 0);
    }
}
