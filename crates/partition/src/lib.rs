//! # sweep-partition — multilevel graph partitioner (METIS stand-in)
//!
//! The paper lowers communication cost by partitioning the mesh into blocks
//! with METIS and assigning a *processor per block* instead of per cell
//! (§5.1). METIS is proprietary-adjacent and external, so this crate
//! implements the same multilevel scheme from scratch:
//!
//! 1. **coarsening** by heavy-edge matching ([`coarsen`]);
//! 2. **initial bisection** by greedy region growing ([`bisect`]);
//! 3. **uncoarsening** with Fiduccia–Mattheyses boundary refinement;
//! 4. **k-way** partitions by recursive bisection with proportional weight
//!    targets ([`partition`]).
//!
//! ```
//! use sweep_partition::{CsrGraph, PartitionOptions, block_partition, edge_cut, imbalance};
//!
//! // An 8x8 grid graph, cut into blocks of ~16 cells.
//! let id = |x: u32, y: u32| y * 8 + x;
//! let mut edges = Vec::new();
//! for y in 0..8u32 {
//!     for x in 0..8u32 {
//!         if x + 1 < 8 { edges.push((id(x, y), id(x + 1, y))); }
//!         if y + 1 < 8 { edges.push((id(x, y), id(x, y + 1))); }
//!     }
//! }
//! let g = CsrGraph::from_edges(64, &edges);
//! let part = block_partition(&g, 16, &PartitionOptions::default());
//! assert!(imbalance(&g, &part, 4) < 1.2);
//! assert!(edge_cut(&g, &part) < 40);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod bisect;
pub mod coarsen;
pub mod csr;
pub mod kway;
pub mod multilevel;

pub use bisect::{cut_weight, fm_refine, initial_bisection, Bisection};
pub use coarsen::{coarsen_step, coarsen_to, Coarsening};
pub use csr::CsrGraph;
pub use kway::kway_refine;
pub use multilevel::{block_partition, edge_cut, imbalance, partition, PartitionOptions};
