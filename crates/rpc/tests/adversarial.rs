//! Adversarial RPC framing suite over real sockets (mirrors the
//! `peek_counts` adversarial tests): truncated frames, oversized
//! length prefixes, garbage magic, slow-loris partial writes, and
//! handler panics must produce a clean connection close and a counter
//! increment — never a panic or a wedged pool slot.

#![cfg_attr(test, allow(clippy::unwrap_used))]

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use sweep_rpc::{
    Frame, RpcClient, RpcClientConfig, RpcCounters, RpcRequest, RpcResponse, RpcServer,
    RpcServerConfig, RpcShutdownHandle, KIND_PING, MAX_FRAME_BYTES, VERSION,
};

/// A server whose handler pongs pings and echoes schedule bodies back
/// as artifacts; panics on the magic body `"boom"`.
fn spawn_echo_server() -> (
    String,
    Arc<RpcCounters>,
    RpcShutdownHandle,
    std::thread::JoinHandle<()>,
) {
    let handler: Arc<dyn Fn(&Frame) -> Frame + Send + Sync> =
        Arc::new(|frame: &Frame| match RpcRequest::from_frame(frame) {
            Ok(RpcRequest::Ping) => RpcResponse::Pong.to_frame(),
            Ok(RpcRequest::Schedule { body, .. }) => {
                assert_ne!(body, "boom", "poisoned request");
                RpcResponse::Artifact(body.into_bytes()).to_frame()
            }
            Err(e) => RpcResponse::Error(format!("{e}")).to_frame(),
        });
    let config = RpcServerConfig {
        threads: 2,
        read_timeout: Duration::from_millis(500),
        write_timeout: Duration::from_secs(2),
    };
    let server = RpcServer::bind("127.0.0.1:0", config, handler).unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let counters = server.counters();
    let shutdown = server.shutdown_handle().unwrap();
    let join = std::thread::spawn(move || server.run());
    (addr, counters, shutdown, join)
}

fn client_for(addr: &str) -> RpcClient {
    RpcClient::new(
        addr,
        RpcClientConfig {
            connect_timeout: Duration::from_secs(1),
            io_timeout: Duration::from_secs(2),
            attempts: 2,
            retry_base: 0.01,
            pool_cap: 4,
            seed: 7,
        },
    )
}

fn ping_ok(client: &RpcClient) {
    let resp = client.call(&RpcRequest::Ping.to_frame()).unwrap();
    assert_eq!(RpcResponse::from_frame(&resp).unwrap(), RpcResponse::Pong);
}

#[test]
fn well_formed_calls_roundtrip_and_pool_connections() {
    let (addr, counters, shutdown, join) = spawn_echo_server();
    let client = client_for(&addr);

    ping_ok(&client);
    assert_eq!(client.idle_connections(), 1, "connection returned to pool");
    let req = RpcRequest::Schedule {
        origin: 1,
        body: "{\"preset\":\"tetonly\"}".into(),
    };
    let resp = client.call(&req.to_frame()).unwrap();
    assert_eq!(
        RpcResponse::from_frame(&resp).unwrap(),
        RpcResponse::Artifact(b"{\"preset\":\"tetonly\"}".to_vec())
    );
    assert_eq!(client.idle_connections(), 1, "same connection reused");
    assert_eq!(counters.calls.load(Ordering::Relaxed), 2);

    shutdown.shutdown();
    join.join().unwrap();
}

#[test]
fn garbage_magic_closes_cleanly_and_counts() {
    let (addr, counters, shutdown, join) = spawn_echo_server();

    let mut raw = TcpStream::connect(&addr).unwrap();
    raw.write_all(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    let mut buf = Vec::new();
    // The server closes without replying; read drains to EOF.
    raw.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
    let _ = raw.read_to_end(&mut buf);
    assert!(buf.is_empty(), "no bytes for a bad frame, got {buf:?}");

    // The worker slot is free again: a well-formed call still works.
    ping_ok(&client_for(&addr));
    assert_eq!(counters.bad_frames.load(Ordering::Relaxed), 1);

    shutdown.shutdown();
    join.join().unwrap();
}

#[test]
fn oversized_length_prefix_is_rejected_without_allocation() {
    let (addr, counters, shutdown, join) = spawn_echo_server();

    let mut raw = TcpStream::connect(&addr).unwrap();
    let mut evil = Vec::new();
    evil.extend_from_slice(b"SWRP");
    evil.extend_from_slice(&[VERSION, KIND_PING]);
    evil.extend_from_slice(&u64::MAX.to_le_bytes());
    raw.write_all(&evil).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
    let mut buf = Vec::new();
    let _ = raw.read_to_end(&mut buf);
    assert!(buf.is_empty());

    // A length just over the cap is also refused.
    let mut raw = TcpStream::connect(&addr).unwrap();
    let mut evil = Vec::new();
    evil.extend_from_slice(b"SWRP");
    evil.extend_from_slice(&[VERSION, KIND_PING]);
    evil.extend_from_slice(&(MAX_FRAME_BYTES + 1).to_le_bytes());
    raw.write_all(&evil).unwrap();
    let mut buf = Vec::new();
    raw.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
    let _ = raw.read_to_end(&mut buf);
    assert!(buf.is_empty());

    assert_eq!(counters.bad_frames.load(Ordering::Relaxed), 2);
    ping_ok(&client_for(&addr));

    shutdown.shutdown();
    join.join().unwrap();
}

#[test]
fn truncated_frame_closes_cleanly() {
    let (addr, counters, shutdown, join) = spawn_echo_server();

    // Announce a 64-byte body, send 10, close.
    let mut raw = TcpStream::connect(&addr).unwrap();
    let mut partial = Vec::new();
    partial.extend_from_slice(b"SWRP");
    partial.extend_from_slice(&[VERSION, 3]);
    partial.extend_from_slice(&64u64.to_le_bytes());
    partial.extend_from_slice(&[0u8; 10]);
    raw.write_all(&partial).unwrap();
    drop(raw);

    // Truncation is a transport failure, not a framing violation.
    ping_ok(&client_for(&addr));
    assert_eq!(counters.bad_frames.load(Ordering::Relaxed), 0);
    assert_eq!(counters.calls.load(Ordering::Relaxed), 1);

    shutdown.shutdown();
    join.join().unwrap();
}

#[test]
fn slow_loris_partial_write_is_bounded_by_the_read_deadline() {
    let (addr, counters, shutdown, join) = spawn_echo_server();

    // Start a frame, then stall. The server (500ms read deadline)
    // must close the connection rather than pin the worker.
    let mut raw = TcpStream::connect(&addr).unwrap();
    raw.write_all(b"SWRP").unwrap();
    let start = Instant::now();
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut buf = Vec::new();
    let _ = raw.read_to_end(&mut buf); // EOF when the server gives up
    assert!(buf.is_empty());
    assert!(
        start.elapsed() < Duration::from_secs(4),
        "server did not enforce its read deadline: {:?}",
        start.elapsed()
    );

    // Both worker slots still answer.
    let client = client_for(&addr);
    ping_ok(&client);
    ping_ok(&client);
    assert_eq!(counters.panics.load(Ordering::Relaxed), 0);

    shutdown.shutdown();
    join.join().unwrap();
}

#[test]
fn handler_panic_is_answered_with_a_typed_error() {
    let (addr, counters, shutdown, join) = spawn_echo_server();

    let client = client_for(&addr);
    let req = RpcRequest::Schedule {
        origin: 0,
        body: "boom".into(),
    };
    let resp = client.call(&req.to_frame()).unwrap();
    match RpcResponse::from_frame(&resp).unwrap() {
        RpcResponse::Error(msg) => assert!(msg.contains("panicked"), "{msg}"),
        other => panic!("expected Error, got {other:?}"),
    }
    assert_eq!(counters.panics.load(Ordering::Relaxed), 1);

    // The worker survives the unwind.
    ping_ok(&client);

    shutdown.shutdown();
    join.join().unwrap();
}

#[test]
fn unreachable_peer_reports_unavailable_after_retries() {
    // A port nothing listens on: the call must fail fast with
    // Unavailable, not hang.
    let client = RpcClient::new(
        "127.0.0.1:1",
        RpcClientConfig {
            connect_timeout: Duration::from_millis(200),
            attempts: 2,
            retry_base: 0.01,
            ..RpcClientConfig::default()
        },
    );
    match client.call(&RpcRequest::Ping.to_frame()) {
        Err(sweep_rpc::RpcError::Unavailable(_)) => {}
        other => panic!("expected Unavailable, got {other:?}"),
    }
}

#[cfg(feature = "fault-inject")]
#[test]
fn injected_drops_and_partitions_are_deterministic_transport_errors() {
    use sweep_faults::{FaultPlan, LinkPartition};

    let (addr, _counters, shutdown, join) = spawn_echo_server();
    let client = client_for(&addr);

    // A link partition between shards 0 and 1 covering all logical
    // time: every attempt fails without touching the socket.
    let mut plan = FaultPlan::none();
    plan.partitions.push(LinkPartition {
        a: 0,
        b: 1,
        start: 0.0,
        end: 1.0e18,
    });
    client.set_fault_plan(plan, 0, 1);
    match client.call(&RpcRequest::Ping.to_frame()) {
        Err(sweep_rpc::RpcError::Unavailable(msg)) => {
            assert!(msg.contains("injected"), "{msg}")
        }
        other => panic!("expected injected Unavailable, got {other:?}"),
    }

    // drop_rate = 1 drops every attempt deterministically.
    let mut plan = FaultPlan::none();
    plan.drop_rate = 1.0;
    client.set_fault_plan(plan, 0, 1);
    match client.call(&RpcRequest::Ping.to_frame()) {
        Err(sweep_rpc::RpcError::Unavailable(msg)) => {
            assert!(msg.contains("injected"), "{msg}")
        }
        other => panic!("expected injected Unavailable, got {other:?}"),
    }

    // Clearing the plan restores service.
    client.clear_fault_plan();
    ping_ok(&client);

    shutdown.shutdown();
    join.join().unwrap();
}
