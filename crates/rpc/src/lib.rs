//! # sweep-rpc — typed length-prefixed RPC over std TCP
//!
//! The cluster layer of `sweep-serve` needs exactly one thing from its
//! transport: move a schedule request to the digest's home shard and
//! bring the computed artifact back, without ever wedging the caller.
//! This crate is that transport, built on nothing but
//! `std::net::TcpStream` to preserve the workspace's offline-build
//! policy.
//!
//! * [`Frame`] — the wire unit: 4-byte magic `SWRP`, a version byte, a
//!   kind byte, a little-endian `u64` body length (checked against
//!   [`MAX_FRAME_BYTES`] *before* any allocation), then the body.
//!   Garbage magic, unknown versions, and absurd lengths are rejected
//!   as [`FrameError::Bad`] and the connection is closed — a malformed
//!   peer can never panic the process or pin a pool slot.
//! * [`RpcRequest`] / [`RpcResponse`] — the typed layer: `Ping`/`Pong`
//!   for failure-detector probes, `Schedule { origin, body }` carrying
//!   a canonical request JSON to the home shard, `Artifact` carrying
//!   the serialized schedule artifact back, `Error` for typed refusals.
//! * [`RpcClient`] — one per peer: a small idle-connection pool,
//!   connect/read/write deadlines, and bounded retries spaced by
//!   `sweep_faults::backoff::full_jitter` so retry storms against a
//!   recovering shard decorrelate deterministically.
//! * [`RpcServer`] — a bounded accept loop dispatching persistent
//!   connections to a fixed worker pool; handler panics are caught and
//!   answered with a typed error, bad frames increment a counter and
//!   close the connection.
//!
//! Under the test-only `fault-inject` feature the client consults a
//! deterministic [`sweep_faults::FaultPlan`] before every send (link
//! partitions, per-attempt drops, delivery jitter), so degraded-mode
//! behaviour upstack is reproducible and certifiable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

mod client;
mod frame;
mod message;
mod server;

pub use client::{RpcClient, RpcClientConfig, RpcError};
pub use frame::{
    Frame, FrameError, KIND_ARTIFACT, KIND_ERROR, KIND_PING, KIND_PONG, KIND_SCHEDULE,
    MAX_FRAME_BYTES, VERSION,
};
pub use message::{RpcRequest, RpcResponse};
pub use server::{RpcCounters, RpcServer, RpcServerConfig, RpcShutdownHandle};
