//! Per-peer RPC client: pooled connections, deadlines, jittered retries.

use std::io::BufWriter;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use crate::frame::{Frame, FrameError};

#[cfg(feature = "fault-inject")]
use sweep_faults::FaultPlan;

/// Knobs for one peer's client.
#[derive(Debug, Clone)]
pub struct RpcClientConfig {
    /// Dial deadline.
    pub connect_timeout: Duration,
    /// Per-call read and write deadline on the socket.
    pub io_timeout: Duration,
    /// Total attempts per call (first try included); at least 1.
    pub attempts: u32,
    /// Base of the full-jitter retry curve, in seconds.
    pub retry_base: f64,
    /// Idle connections kept for reuse.
    pub pool_cap: usize,
    /// Seed for the deterministic retry jitter.
    pub seed: u64,
}

impl Default for RpcClientConfig {
    fn default() -> Self {
        RpcClientConfig {
            connect_timeout: Duration::from_secs(1),
            io_timeout: Duration::from_secs(2),
            attempts: 2,
            retry_base: 0.05,
            pool_cap: 4,
            seed: 0x5357_5250,
        }
    }
}

/// Why a call failed after exhausting its attempts.
#[derive(Debug)]
pub enum RpcError {
    /// Transport-level failure: dial refused, deadline expired,
    /// connection reset, or an injected fault. The peer may be down.
    Unavailable(String),
    /// The peer answered with bytes that violate the protocol.
    Bad(String),
}

impl std::fmt::Display for RpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RpcError::Unavailable(msg) => write!(f, "peer unavailable: {msg}"),
            RpcError::Bad(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

#[cfg(feature = "fault-inject")]
struct FaultHook {
    plan: FaultPlan,
    self_id: u64,
    peer_id: u64,
}

/// A client for one peer address.
///
/// Connections are pooled: a call checks out an idle connection (or
/// dials a fresh one), writes exactly one request frame, reads exactly
/// one response frame, and returns the connection to the pool. Any
/// failure drops the connection — a stream that missed a frame boundary
/// can never be reused — and the call retries on a fresh dial after a
/// deterministic full-jitter delay.
pub struct RpcClient {
    addr: Mutex<String>,
    config: RpcClientConfig,
    idle: Mutex<Vec<TcpStream>>,
    calls: AtomicU64,
    #[cfg(feature = "fault-inject")]
    faults: Mutex<Option<FaultHook>>,
}

impl RpcClient {
    /// A client that will dial `addr` (a `host:port` string).
    pub fn new(addr: &str, config: RpcClientConfig) -> RpcClient {
        RpcClient {
            addr: Mutex::new(addr.to_string()),
            config,
            idle: Mutex::new(Vec::new()),
            calls: AtomicU64::new(0),
            #[cfg(feature = "fault-inject")]
            faults: Mutex::new(None),
        }
    }

    /// The current peer address.
    pub fn addr(&self) -> String {
        match self.addr.lock() {
            Ok(a) => a.clone(),
            Err(p) => p.into_inner().clone(),
        }
    }

    /// Re-point the client (tests bind peers on ephemeral ports after
    /// construction). Pooled connections to the old address are dropped.
    pub fn set_addr(&self, addr: &str) {
        match self.addr.lock() {
            Ok(mut a) => *a = addr.to_string(),
            Err(p) => *p.into_inner() = addr.to_string(),
        }
        if let Ok(mut idle) = self.idle.lock() {
            idle.clear();
        }
    }

    /// Install a deterministic fault plan consulted before every send:
    /// partitions and per-attempt drops become transport errors, jitter
    /// becomes a real (bounded) delay. Logical time is the call counter.
    #[cfg(feature = "fault-inject")]
    pub fn set_fault_plan(&self, plan: FaultPlan, self_id: u64, peer_id: u64) {
        if let Ok(mut hook) = self.faults.lock() {
            *hook = Some(FaultHook {
                plan,
                self_id,
                peer_id,
            });
        }
    }

    /// Clear an installed fault plan.
    #[cfg(feature = "fault-inject")]
    pub fn clear_fault_plan(&self) {
        if let Ok(mut hook) = self.faults.lock() {
            *hook = None;
        }
    }

    #[cfg(feature = "fault-inject")]
    fn injected_failure(&self, call: u64, attempt: u32) -> Option<String> {
        let hook = match self.faults.lock() {
            Ok(h) => h,
            Err(p) => p.into_inner(),
        };
        let hook = hook.as_ref()?;
        let t = call as f64;
        if hook
            .plan
            .partitioned(hook.self_id as u32, hook.peer_id as u32, t)
        {
            return Some("injected: link partitioned".into());
        }
        if hook.plan.drops_attempt(hook.self_id, hook.peer_id, attempt) {
            return Some("injected: message dropped".into());
        }
        let jitter = hook.plan.jitter_of(hook.self_id, hook.peer_id, attempt);
        if jitter > 0.0 {
            std::thread::sleep(Duration::from_secs_f64(jitter.min(0.2)));
        }
        None
    }

    #[cfg(not(feature = "fault-inject"))]
    #[inline]
    fn injected_failure(&self, _call: u64, _attempt: u32) -> Option<String> {
        None
    }

    fn checkout(&self) -> Option<TcpStream> {
        match self.idle.lock() {
            Ok(mut idle) => idle.pop(),
            Err(p) => p.into_inner().pop(),
        }
    }

    fn checkin(&self, stream: TcpStream) {
        if let Ok(mut idle) = self.idle.lock() {
            if idle.len() < self.config.pool_cap {
                idle.push(stream);
            }
        }
    }

    fn dial(&self) -> Result<TcpStream, String> {
        let addr_str = self.addr();
        let addrs = addr_str
            .to_socket_addrs()
            .map_err(|e| format!("resolve {addr_str}: {e}"))?;
        let mut last = format!("no addresses for {addr_str}");
        for a in addrs {
            match TcpStream::connect_timeout(&a, self.config.connect_timeout) {
                Ok(s) => {
                    let _ = s.set_read_timeout(Some(self.config.io_timeout));
                    let _ = s.set_write_timeout(Some(self.config.io_timeout));
                    let _ = s.set_nodelay(true);
                    return Ok(s);
                }
                Err(e) => last = format!("connect {a}: {e}"),
            }
        }
        Err(last)
    }

    /// One request/response exchange on one connection.
    fn exchange(&self, stream: &mut TcpStream, request: &Frame) -> Result<Frame, String> {
        {
            let mut w = BufWriter::new(&mut *stream);
            request
                .write_to(&mut w)
                .map_err(|e| format!("write: {e}"))?;
        }
        match Frame::read_from(stream) {
            Ok(frame) => Ok(frame),
            Err(FrameError::Bad(msg)) => Err(format!("bad response frame: {msg}")),
            Err(FrameError::Io(e)) => Err(format!("read: {e}")),
        }
    }

    /// Send `request`, return the peer's response frame.
    ///
    /// Transport failures retry up to `config.attempts` times total,
    /// sleeping `full_jitter(retry_base, attempt, seed ^ call)` between
    /// attempts; a decoded response frame — even `KIND_ERROR` — is a
    /// definitive answer and is returned as `Ok`.
    pub fn call(&self, request: &Frame) -> Result<Frame, RpcError> {
        let call = self.calls.fetch_add(1, Ordering::Relaxed);
        let attempts = self.config.attempts.max(1);
        let mut last = String::new();
        for attempt in 0..attempts {
            if attempt > 0 {
                let delay = sweep_faults::backoff::full_jitter(
                    self.config.retry_base,
                    attempt - 1,
                    self.config.seed ^ call,
                );
                if delay > 0.0 {
                    std::thread::sleep(Duration::from_secs_f64(delay));
                }
            }
            if let Some(msg) = self.injected_failure(call, attempt) {
                last = msg;
                continue;
            }
            let mut stream = match self.checkout() {
                Some(s) => s,
                None => match self.dial() {
                    Ok(s) => s,
                    Err(e) => {
                        last = e;
                        continue;
                    }
                },
            };
            match self.exchange(&mut stream, request) {
                Ok(frame) => {
                    self.checkin(stream);
                    return Ok(frame);
                }
                Err(e) => {
                    // The stream may be mid-frame: never reuse it.
                    drop(stream);
                    last = e;
                }
            }
        }
        Err(RpcError::Unavailable(last))
    }

    /// Number of idle pooled connections (test observability).
    pub fn idle_connections(&self) -> usize {
        match self.idle.lock() {
            Ok(idle) => idle.len(),
            Err(p) => p.into_inner().len(),
        }
    }
}
