//! The RPC accept loop: persistent connections, a fixed worker pool,
//! and hardening against malformed or stalling peers.

use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

use crate::frame::{Frame, FrameError, KIND_ERROR};

/// Knobs for the server side.
#[derive(Debug, Clone)]
pub struct RpcServerConfig {
    /// Worker threads handling connections.
    pub threads: usize,
    /// Deadline for reading one frame once its first byte has arrived —
    /// the slow-loris bound.
    pub read_timeout: Duration,
    /// Deadline for writing one response frame.
    pub write_timeout: Duration,
}

impl Default for RpcServerConfig {
    fn default() -> Self {
        RpcServerConfig {
            threads: 2,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
        }
    }
}

/// Live counters exposed through the owning server's `/debug/vars`.
#[derive(Debug, Default)]
pub struct RpcCounters {
    /// Frames handled.
    pub calls: AtomicU64,
    /// Connections closed on a framing violation (bad magic, oversized
    /// length, unknown kind/version).
    pub bad_frames: AtomicU64,
    /// Handler panics caught and answered with a typed error.
    pub panics: AtomicU64,
}

/// Flips the shutdown flag and wakes the blocked accept loop.
#[derive(Debug, Clone)]
pub struct RpcShutdownHandle {
    flag: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl RpcShutdownHandle {
    /// Ask the server to stop; `run` returns once in-flight frames are
    /// answered.
    pub fn shutdown(&self) {
        self.flag.store(true, Ordering::SeqCst);
        // Wake the accept loop with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
    }
}

/// A framed RPC server bound to one address.
///
/// Connections are persistent: each carries any number of strict
/// request→response exchanges. Between frames the worker polls with a
/// short `peek` so shutdown is never pinned behind a peer's idle pooled
/// connection; once a frame's first byte arrives the full
/// `read_timeout` applies, which bounds slow-loris writers. A framing
/// violation closes the connection (the stream is no longer
/// frame-aligned) and increments `bad_frames`; a handler panic is
/// caught, answered with `KIND_ERROR`, and the connection closed — a
/// poisoned request can neither kill a worker nor wedge a pool slot.
pub struct RpcServer {
    listener: TcpListener,
    config: RpcServerConfig,
    handler: Arc<dyn Fn(&Frame) -> Frame + Send + Sync>,
    flag: Arc<AtomicBool>,
    counters: Arc<RpcCounters>,
}

impl RpcServer {
    /// Bind to `addr` (use port 0 for an ephemeral port) with the given
    /// handler. The handler runs on worker threads, one frame at a time
    /// per connection.
    pub fn bind(
        addr: &str,
        config: RpcServerConfig,
        handler: Arc<dyn Fn(&Frame) -> Frame + Send + Sync>,
    ) -> io::Result<RpcServer> {
        let listener = TcpListener::bind(addr)?;
        Ok(RpcServer {
            listener,
            config,
            handler,
            flag: Arc::new(AtomicBool::new(false)),
            counters: Arc::new(RpcCounters::default()),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that stops `run` from another thread.
    pub fn shutdown_handle(&self) -> io::Result<RpcShutdownHandle> {
        Ok(RpcShutdownHandle {
            flag: Arc::clone(&self.flag),
            addr: self.local_addr()?,
        })
    }

    /// The live counters (shared; read at any time).
    pub fn counters(&self) -> Arc<RpcCounters> {
        Arc::clone(&self.counters)
    }

    /// Accept and serve until the shutdown handle fires.
    pub fn run(&self) {
        std::thread::scope(|scope| {
            let (tx, rx) = mpsc::channel::<TcpStream>();
            let rx = Arc::new(Mutex::new(rx));
            for _ in 0..self.config.threads.max(1) {
                let rx = Arc::clone(&rx);
                let handler = Arc::clone(&self.handler);
                let counters = Arc::clone(&self.counters);
                let flag = Arc::clone(&self.flag);
                let config = self.config.clone();
                scope.spawn(move || loop {
                    let stream = {
                        let guard = match rx.lock() {
                            Ok(g) => g,
                            Err(p) => p.into_inner(),
                        };
                        guard.recv()
                    };
                    match stream {
                        Ok(s) => handle_connection(s, &config, &handler, &counters, &flag),
                        Err(_) => break, // accept loop gone: drain done
                    }
                });
            }
            for stream in self.listener.incoming() {
                if self.flag.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok(stream) = stream {
                    let _ = tx.send(stream);
                }
            }
            drop(tx);
        });
    }
}

fn handle_connection(
    stream: TcpStream,
    config: &RpcServerConfig,
    handler: &Arc<dyn Fn(&Frame) -> Frame + Send + Sync>,
    counters: &RpcCounters,
    flag: &AtomicBool,
) {
    let mut stream = stream;
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    let _ = stream.set_nodelay(true);
    loop {
        // Idle wait: poll for the first byte in short slices so a
        // shutdown is observed promptly even under a peer's kept-alive
        // pooled connection.
        let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
        let mut first = [0u8; 1];
        match stream.peek(&mut first) {
            Ok(0) => return, // peer closed
            Ok(_) => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if flag.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        }
        // A frame has started: the full deadline bounds slow writers.
        let _ = stream.set_read_timeout(Some(config.read_timeout));
        let frame = match Frame::read_from(&mut stream) {
            Ok(f) => f,
            Err(FrameError::Bad(_)) => {
                counters.bad_frames.fetch_add(1, Ordering::Relaxed);
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
            Err(FrameError::Io(_)) => return,
        };
        counters.calls.fetch_add(1, Ordering::Relaxed);
        let response = catch_unwind(AssertUnwindSafe(|| handler(&frame)));
        match response {
            Ok(response) => {
                if response.write_to(&mut stream).is_err() {
                    return;
                }
            }
            Err(_) => {
                counters.panics.fetch_add(1, Ordering::Relaxed);
                let err = Frame::new(KIND_ERROR, b"internal: rpc handler panicked".to_vec());
                let _ = err.write_to(&mut stream);
                return;
            }
        }
    }
}
