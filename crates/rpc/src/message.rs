//! The typed layer over [`Frame`]: what the cluster actually says.
//!
//! The schedule payloads stay opaque bytes here — the request body is
//! the same canonical JSON the HTTP endpoint accepts, and the artifact
//! body is `sweep-serve`'s own serialization — so this crate needs no
//! knowledge of meshes or schedules and the workspace dependency graph
//! stays a clean layer cake.

use crate::frame::{
    Frame, FrameError, KIND_ARTIFACT, KIND_ERROR, KIND_PING, KIND_PONG, KIND_SCHEDULE,
};

/// A request frame, decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpcRequest {
    /// Failure-detector probe.
    Ping,
    /// A schedule request forwarded from shard `origin`; `body` is the
    /// canonical request JSON the HTTP endpoint would accept.
    Schedule {
        /// Shard id of the forwarding peer (for logs and loop checks).
        origin: u64,
        /// Canonical request JSON.
        body: String,
    },
}

impl RpcRequest {
    /// Encode into a wire frame.
    pub fn to_frame(&self) -> Frame {
        match self {
            RpcRequest::Ping => Frame::new(KIND_PING, Vec::new()),
            RpcRequest::Schedule { origin, body } => {
                let mut buf = Vec::with_capacity(8 + body.len());
                buf.extend_from_slice(&origin.to_le_bytes());
                buf.extend_from_slice(body.as_bytes());
                Frame::new(KIND_SCHEDULE, buf)
            }
        }
    }

    /// Decode a request frame; response kinds are a protocol violation.
    pub fn from_frame(frame: &Frame) -> Result<RpcRequest, FrameError> {
        match frame.kind {
            KIND_PING => Ok(RpcRequest::Ping),
            KIND_SCHEDULE => {
                if frame.body.len() < 8 {
                    return Err(FrameError::Bad(
                        "schedule frame shorter than origin id".into(),
                    ));
                }
                let mut id = [0u8; 8];
                id.copy_from_slice(&frame.body[..8]);
                let body = String::from_utf8(frame.body[8..].to_vec())
                    .map_err(|_| FrameError::Bad("schedule body is not UTF-8".into()))?;
                Ok(RpcRequest::Schedule {
                    origin: u64::from_le_bytes(id),
                    body,
                })
            }
            k => Err(FrameError::Bad(format!("kind {k} is not a request"))),
        }
    }
}

/// A response frame, decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpcResponse {
    /// Probe answer.
    Pong,
    /// A serialized `ScheduleArtifact` (opaque to this crate).
    Artifact(Vec<u8>),
    /// A typed refusal; the caller falls back to local compute.
    Error(String),
}

impl RpcResponse {
    /// Encode into a wire frame.
    pub fn to_frame(&self) -> Frame {
        match self {
            RpcResponse::Pong => Frame::new(KIND_PONG, Vec::new()),
            RpcResponse::Artifact(bytes) => Frame::new(KIND_ARTIFACT, bytes.clone()),
            RpcResponse::Error(msg) => Frame::new(KIND_ERROR, msg.as_bytes().to_vec()),
        }
    }

    /// Decode a response frame; request kinds are a protocol violation.
    pub fn from_frame(frame: &Frame) -> Result<RpcResponse, FrameError> {
        match frame.kind {
            KIND_PONG => Ok(RpcResponse::Pong),
            KIND_ARTIFACT => Ok(RpcResponse::Artifact(frame.body.clone())),
            KIND_ERROR => Ok(RpcResponse::Error(
                String::from_utf8_lossy(&frame.body).into_owned(),
            )),
            k => Err(FrameError::Bad(format!("kind {k} is not a response"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_roundtrip() {
        for req in [
            RpcRequest::Ping,
            RpcRequest::Schedule {
                origin: 3,
                body: "{\"preset\":\"tetonly\"}".into(),
            },
        ] {
            assert_eq!(RpcRequest::from_frame(&req.to_frame()).unwrap(), req);
        }
    }

    #[test]
    fn responses_roundtrip() {
        for resp in [
            RpcResponse::Pong,
            RpcResponse::Artifact(vec![1, 2, 3]),
            RpcResponse::Error("busy".into()),
        ] {
            assert_eq!(RpcResponse::from_frame(&resp.to_frame()).unwrap(), resp);
        }
    }

    #[test]
    fn short_schedule_body_is_rejected() {
        let frame = Frame::new(KIND_SCHEDULE, vec![0; 4]);
        assert!(matches!(
            RpcRequest::from_frame(&frame),
            Err(FrameError::Bad(_))
        ));
    }

    #[test]
    fn kind_confusion_is_rejected() {
        assert!(RpcRequest::from_frame(&RpcResponse::Pong.to_frame()).is_err());
        assert!(RpcResponse::from_frame(&RpcRequest::Ping.to_frame()).is_err());
    }
}
