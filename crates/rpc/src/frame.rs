//! The wire unit: a length-prefixed frame with a magic/version header.
//!
//! Layout, in order, all little-endian:
//!
//! ```text
//! [4] magic  b"SWRP"
//! [1] version (currently 1)
//! [1] kind   (KIND_* constants)
//! [8] body length in bytes (u64 LE, <= MAX_FRAME_BYTES)
//! [n] body
//! ```
//!
//! The length is validated *before* any allocation so a hostile peer
//! announcing `u64::MAX` costs nothing; magic and version are checked
//! first so a stray HTTP client (or noise) is rejected after 6 bytes.

use std::io::{self, Read, Write};

/// Frame magic: the first four bytes of every sweep-rpc frame.
pub const MAGIC: [u8; 4] = *b"SWRP";

/// Protocol version carried in every frame header.
pub const VERSION: u8 = 1;

/// Largest accepted frame body. Sized for a serialized
/// `ScheduleArtifact` of the biggest in-budget instance (8M tasks at
/// ~4 bytes per start) with comfortable slack.
pub const MAX_FRAME_BYTES: u64 = 64 << 20;

/// Failure-detector probe; empty body.
pub const KIND_PING: u8 = 1;
/// Probe answer; empty body.
pub const KIND_PONG: u8 = 2;
/// Forwarded schedule request: 8-byte LE origin shard id + request JSON.
pub const KIND_SCHEDULE: u8 = 3;
/// Schedule answer: an opaque serialized artifact.
pub const KIND_ARTIFACT: u8 = 4;
/// Typed refusal: UTF-8 message body.
pub const KIND_ERROR: u8 = 5;

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The peer violated the protocol (bad magic, unknown version or
    /// kind, oversized length). The connection must be closed — the
    /// stream can no longer be trusted to be frame-aligned.
    Bad(String),
    /// The underlying transport failed (timeout, reset, truncation).
    Io(io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Bad(msg) => write!(f, "bad frame: {msg}"),
            FrameError::Io(e) => write!(f, "io: {e}"),
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// One request or response on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// One of the `KIND_*` constants.
    pub kind: u8,
    /// The payload; interpretation depends on `kind`.
    pub body: Vec<u8>,
}

impl Frame {
    /// A frame with the given kind and body.
    pub fn new(kind: u8, body: Vec<u8>) -> Frame {
        Frame { kind, body }
    }

    /// Serialize onto `w`. One `write_all` per field keeps the codec
    /// obvious; callers wrap the stream in a `BufWriter` when the body
    /// is small.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(&MAGIC)?;
        w.write_all(&[VERSION, self.kind])?;
        w.write_all(&(self.body.len() as u64).to_le_bytes())?;
        w.write_all(&self.body)?;
        w.flush()
    }

    /// Read and validate one frame from `r`.
    ///
    /// Returns [`FrameError::Bad`] on any header violation — the caller
    /// must close the connection, because after a framing error the
    /// byte stream is unparseable. Truncation mid-frame surfaces as
    /// [`FrameError::Io`] (`UnexpectedEof` or a read timeout).
    pub fn read_from<R: Read>(r: &mut R) -> Result<Frame, FrameError> {
        let mut header = [0u8; 6];
        r.read_exact(&mut header)?;
        if header[..4] != MAGIC {
            return Err(FrameError::Bad(format!(
                "bad magic {:02x}{:02x}{:02x}{:02x}",
                header[0], header[1], header[2], header[3]
            )));
        }
        if header[4] != VERSION {
            return Err(FrameError::Bad(format!("unknown version {}", header[4])));
        }
        let kind = header[5];
        if !(KIND_PING..=KIND_ERROR).contains(&kind) {
            return Err(FrameError::Bad(format!("unknown frame kind {kind}")));
        }
        let mut len_bytes = [0u8; 8];
        r.read_exact(&mut len_bytes)?;
        let len = u64::from_le_bytes(len_bytes);
        if len > MAX_FRAME_BYTES {
            return Err(FrameError::Bad(format!(
                "frame length {len} exceeds cap {MAX_FRAME_BYTES}"
            )));
        }
        let mut body = vec![0u8; len as usize];
        r.read_exact(&mut body)?;
        Ok(Frame { kind, body })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_through_a_buffer() {
        let f = Frame::new(KIND_SCHEDULE, b"hello".to_vec());
        let mut buf = Vec::new();
        f.write_to(&mut buf).unwrap();
        let back = Frame::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn rejects_garbage_magic() {
        let buf = b"GET / HTTP/1.1\r\n\r\n".to_vec();
        match Frame::read_from(&mut buf.as_slice()) {
            Err(FrameError::Bad(msg)) => assert!(msg.contains("bad magic"), "{msg}"),
            other => panic!("expected Bad, got {other:?}"),
        }
    }

    #[test]
    fn rejects_oversized_length_before_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&[VERSION, KIND_PING]);
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        match Frame::read_from(&mut buf.as_slice()) {
            Err(FrameError::Bad(msg)) => assert!(msg.contains("exceeds cap"), "{msg}"),
            other => panic!("expected Bad, got {other:?}"),
        }
    }

    #[test]
    fn truncated_frame_is_an_io_error() {
        let f = Frame::new(KIND_ARTIFACT, vec![7; 32]);
        let mut buf = Vec::new();
        f.write_to(&mut buf).unwrap();
        for cut in 0..buf.len() {
            match Frame::read_from(&mut &buf[..cut]) {
                Err(FrameError::Io(e)) => {
                    assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof)
                }
                other => panic!("cut {cut}: expected Io(UnexpectedEof), got {other:?}"),
            }
        }
    }

    #[test]
    fn rejects_unknown_version_and_kind() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&[9, KIND_PING]);
        buf.extend_from_slice(&0u64.to_le_bytes());
        assert!(matches!(
            Frame::read_from(&mut buf.as_slice()),
            Err(FrameError::Bad(_))
        ));

        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&[VERSION, 200]);
        buf.extend_from_slice(&0u64.to_le_bytes());
        assert!(matches!(
            Frame::read_from(&mut buf.as_slice()),
            Err(FrameError::Bad(_))
        ));
    }
}
