//! Implementation of the `sweep` command-line tool.
//!
//! Subcommands (see [`HELP`]):
//!
//! * `mesh` — generate a preset mesh, report statistics/quality, export VTK;
//! * `stats` — per-direction DAG statistics of an instance;
//! * `schedule` — run any algorithm, report makespan/bounds/C1/C2,
//!   optionally export the schedule CSV, a Gantt chart, or a VTK file;
//! * `transport` — run the toy S_n transport solver;
//! * `optimal` — exact optimum for tiny synthetic instances;
//! * `analyze` — static analysis (SW0xx diagnostics) of an instance and
//!   optionally an assignment/schedule/async trace, as text, JSON, or
//!   SARIF; exits nonzero when any error-level diagnostic fires.
//! * `trace` — run the full pipeline (mesh → DAGs → schedule → simulators)
//!   with telemetry recording and export the collected spans/metrics.
//! * `faults` — run the fault-injected distributed simulator
//!   (`sweep-faults` plan: crashes, message loss, duplicates, stragglers,
//!   partitions), certify the recovered trace with the SW017/SW018/SW022
//!   analyzers, and report the degraded makespan as text or JSON;
//!   optionally export a `makespan(fault_rate)` degradation curve CSV.
//! * `serve` — run the HTTP scheduling service (`sweep-serve`): a
//!   content-addressed two-tier schedule cache behind `POST
//!   /v1/schedule`, plus `/v1/presets`, `/metrics`, `/debug/vars`,
//!   `/debug/trace`, and `/healthz`, with request-scoped tracing
//!   (`X-Sweep-Request-Id`, `Server-Timing`) and a JSON access log on
//!   stderr. Blocks until killed; see API.md for the wire protocol.
//! * `top` — poll a running `serve` instance's `/metrics` +
//!   `/debug/vars` and render a refreshing terminal dashboard (rps,
//!   per-stage p50/p99, cache residency and hit rate, in-flight depth).
//! * `check` — deterministic concurrency model checking (`sweep-check`):
//!   explores interleavings of the pool's lock-free range splitting and the
//!   server's single-flight cache protocol under a controllable
//!   scheduler, reporting deadlocks, lock-order cycles, lost wakeups,
//!   and non-linearizable outcomes as SW023/SW025–SW027 diagnostics
//!   (text/JSON/SARIF, exit 2 on findings). Requires building with
//!   `--features model-check`; `--fixtures` runs the intentionally
//!   buggy models instead, where a *clean* result is the failure.
//!
//! Every subcommand additionally understands the global `--telemetry
//! <chrome|prom|text>` / `--telemetry-out <path>` flags: telemetry is
//! enabled around the command and the collected spans/metrics are exported
//! afterwards (appended to the report, or written to the given file).
//! The global `--threads N` flag sizes the process-wide worker pool used
//! by parallel DAG induction, multi-trial scheduling, and the bench
//! grids (`--threads 1` forces the sequential path, `--threads 0` or
//! omitting it uses the host's available parallelism).
//!
//! Everything returns its report as a `String` so the logic is unit
//! testable; `main.rs` only prints.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

use std::collections::HashMap;
use std::fmt::Write as _;

use sweep_core::{
    c1_interprocessor_edges, c2_comm_delay, lower_bounds, render_gantt, validate, Algorithm,
    Assignment,
};
use sweep_dag::{instance_stats, SweepInstance};
use sweep_mesh::{quality_report, MeshPreset, SweepMesh, TetMesh};
use sweep_partition::{block_partition, CsrGraph, PartitionOptions};
use sweep_quadrature::QuadratureSet;
use sweep_telemetry as telemetry;

/// Usage text.
pub const HELP: &str = "\
sweep — parallel sweep scheduling on unstructured meshes (IPPS 2005)

USAGE:
  sweep <COMMAND> [--key value]...

COMMANDS:
  mesh       --preset <tetonly|well_logging|long|prismtet> [--scale F]
             [--vtk FILE] [--quality]
  mesh import <file> [--format auto|obj|msh] [--sn N] [--out FILE]
             [--raw-out FILE] [--svg FILE]
             (.obj / Gmsh .msh v4 ASCII; SW030-SW033 validation;
              see MESHES.md; exits 2 on error-level diagnostics)
  stats      --preset P [--scale F] [--sn N]
  instance   --preset P [--scale F] [--sn N] --out FILE   (export v1 text)
  schedule   (--preset P | --instance FILE) [--scale F] [--sn N] --m M
             [--algorithm rdp|rd|improved|greedy|level|descendant|dfds]
             [--delays] [--block B] [--seed S] [--csv FILE] [--gantt]
             [--vtk FILE]
  transport  --preset P [--scale F] [--sn N] [--sigma-t X] [--sigma-s X]
             [--source X] [--tol X] [--max-iters N]
  optimal    --n N --k K --m M [--seed S]      (tiny instances only)
  analyze    (--preset P | --instance FILE | --demo-cycle) [--scale F]
             [--sn N] [--m M] [--algorithm A] [--seed S] [--async]
             [--par-check] [--latency F] [--format text|json|sarif]
             [--out FILE] [--imbalance F] [--comm-fraction F]
             [--envelope F]
  trace      <preset> [--scale F] [--sn N] [--m M] [--algorithm A]
             [--seed S] [--latency F]     (full pipeline with telemetry)
  faults     <preset> [--scale F] [--sn N] [--m M] [--algorithm A]
             [--seed S] [--latency F] [--crash-rate F] [--drop-rate F]
             [--dup-rate F] [--jitter F] [--straggler-rate F]
             [--straggler-factor F] [--partition-rate F] [--min-rto F]
             [--format text|json] [--out FILE] [--curve FILE]
  serve      [--addr HOST:PORT] [--threads N] [--cache-mb MB]
             [--max-inflight N] [--trace-sample N] [--log-sample N]
             [--cluster FILE --self-id N]
             (HTTP scheduling service; see API.md)
  top        [--url http://HOST:PORT] [--interval SECS] [--count N]
             [--plain]    (live dashboard over a running `sweep serve`)
  check      [--fixtures] [--schedules N] [--max-executions N]
             [--max-steps N] [--seed S] [--format text|json|sarif]
             [--out FILE]    (needs a `--features model-check` build)
  help

GLOBAL FLAGS (any command):
  --telemetry chrome|prom|text   record spans/metrics and export them
                                 (Chrome trace_event JSON / Prometheus
                                 text exposition / plain-text tree)
  --telemetry-out FILE           write the export to FILE instead of
                                 appending it to the report
  --threads N                    size of the process-wide worker pool
                                 (parallel DAG induction, best-of-b
                                 trials, bench grids); 1 forces the
                                 sequential path, 0 or unset uses the
                                 host's available parallelism

Defaults: --scale 0.02, --sn 4 (24 directions), --seed 2005.

`analyze` emits SW0xx diagnostics (SW001 cycle witness, SW002-SW007
feasibility/bound errors, SW010-SW016 warnings, SW020/SW021 info) and
exits with status 2 when any error-level diagnostic fires. With --m it
also builds an assignment + schedule and certifies them; with --async it
additionally runs the happens-before message-race detector; with
--par-check it re-runs a best-of-8 certification sequentially and twice
through the worker pool and diffs all three bit-for-bit (SW023 on any
divergence or dropped trial).

`faults` runs the async simulator under a seed-deterministic fault plan
(crashes with whole-cell work reassignment, lossy retried messaging,
duplicates, stragglers, link partitions), certifies the recovered trace
(SW017 duplicate execution / SW018 precedence or delivery violation /
SW022 certified), and exits 2 if certification fails. --curve FILE also
writes a makespan(fault_rate) degradation CSV.

`serve` answers POST /v1/schedule (preset or inline instance + m +
algorithm) from a content-addressed cache — identical requests after the
first are served without recomputation, bit-identical (certified by the
SW024 analyzer). It sheds load with 429 + Retry-After past
--max-inflight, and blocks until the process is killed. With --cluster
FILE (one `<id> <http_addr> <rpc_addr>` line per shard) and --self-id N
it joins a static sharded cluster: schedule requests are routed over a
consistent-hash ring of content digests and forwarded to their home
shard's cache, falling back to bit-identical local compute when a peer
is down (certified by the SW029 analyzer). The wire protocol and the
membership format are documented in API.md.

`check` model-checks the workspace's concurrent kernels — the pool's
lock-free range splitting and the server's single-flight schedule cache
(including the leader-panic unwind path) — by bounded-exhaustive
exploration with sleep-set partial-order reduction plus --schedules
seeded random interleavings. Deadlocks and lock-order cycles report as
SW025, lost wakeups as SW026, single-flight liveness violations as
SW027, non-linearizable outcomes as SW023; any finding exits 2 with a
witness schedule. The subcommand is compiled for real only under
`cargo build --features model-check` (a plain build answers with a
rebuild hint so production binaries pay zero instrumentation cost).
";

/// Parses `--key value` pairs after the subcommand.
fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut map = HashMap::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let Some(key) = flag.strip_prefix("--") else {
            return Err(format!("expected --flag, got '{flag}'"));
        };
        // Boolean flags.
        if matches!(
            key,
            "quality"
                | "gantt"
                | "delays"
                | "demo-cycle"
                | "async"
                | "par-check"
                | "fixtures"
                | "plain"
        ) {
            map.insert(key.to_string(), "true".to_string());
            continue;
        }
        let Some(value) = it.next() else {
            return Err(format!("missing value for --{key}"));
        };
        map.insert(key.to_string(), value.clone());
    }
    Ok(map)
}

fn get<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|e| format!("--{key}: {e}")),
    }
}

fn require<'a>(flags: &'a HashMap<String, String>, key: &str) -> Result<&'a str, String> {
    flags
        .get(key)
        .map(String::as_str)
        .ok_or_else(|| format!("missing required --{key}"))
}

fn build_mesh(flags: &HashMap<String, String>) -> Result<(MeshPreset, TetMesh), String> {
    let name = require(flags, "preset")?;
    let preset = MeshPreset::from_name(name).ok_or_else(|| format!("unknown preset '{name}'"))?;
    let scale: f64 = get(flags, "scale", 0.02)?;
    let mesh = preset.build_scaled(scale).map_err(|e| e.to_string())?;
    Ok((preset, mesh))
}

fn build_instance(
    flags: &HashMap<String, String>,
) -> Result<(MeshPreset, TetMesh, SweepInstance), String> {
    let (preset, mesh) = build_mesh(flags)?;
    let sn: usize = get(flags, "sn", 4)?;
    let quad = QuadratureSet::level_symmetric(sn).map_err(|e| e.to_string())?;
    let (inst, _) = SweepInstance::from_mesh(&mesh, &quad, preset.name());
    Ok((preset, mesh, inst))
}

/// `schedule`/`stats` accept either `--preset` (geometric pipeline) or
/// `--instance FILE` (a serialized non-geometric instance).
fn build_instance_or_file(
    flags: &HashMap<String, String>,
) -> Result<(String, Option<TetMesh>, SweepInstance), String> {
    if let Some(path) = flags.get("instance") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let inst = sweep_dag::from_text(&text)?;
        Ok((inst.name().to_string(), None, inst))
    } else {
        let (preset, mesh, inst) = build_instance(flags)?;
        Ok((preset.name().to_string(), Some(mesh), inst))
    }
}

/// Entry point: dispatches `args` (without the binary name) and returns
/// the report to print. Equivalent to [`run_with_status`] with the exit
/// code dropped.
pub fn run(args: &[String]) -> Result<String, String> {
    run_with_status(args).map(|(out, _)| out)
}

/// [`run`] plus the process exit code: 0 for success, 2 when `analyze`
/// found error-level diagnostics (usage errors surface as `Err` and the
/// binary exits 1).
pub fn run_with_status(args: &[String]) -> Result<(String, i32), String> {
    let Some(command) = args.first() else {
        return Ok((HELP.to_string(), 0));
    };
    // `trace` and `faults` take their preset positionally:
    // `sweep trace tetonly …`, `sweep faults tetonly …`.
    let mut rest: Vec<String> = args[1..].to_vec();
    let mut command = command.as_str();
    if command == "trace" || command == "faults" {
        if let Some(first) = rest.first() {
            if !first.starts_with("--") {
                let preset = rest.remove(0);
                rest.push("--preset".to_string());
                rest.push(preset);
            }
        }
    }
    // `mesh import` takes the file positionally:
    // `sweep mesh import cube.msh --format msh`.
    if command == "mesh" && rest.first().map(String::as_str) == Some("import") {
        command = "mesh-import";
        rest.remove(0);
        if let Some(first) = rest.first() {
            if !first.starts_with("--") {
                let file = rest.remove(0);
                rest.push("--file".to_string());
                rest.push(file);
            }
        }
    }
    let mut flags = parse_flags(&rest)?;

    // Global worker-pool sizing, valid on every subcommand. 0 (or the
    // flag's absence) leaves the pool at the host's available
    // parallelism; 1 forces the sequential path.
    // (`get`, not `remove`: `serve` reuses the same flag to size its
    // HTTP worker pool.)
    if let Some(t) = flags.get("threads") {
        let threads: usize = t.parse().map_err(|e| format!("--threads: {e}"))?;
        sweep_pool::set_global_threads(threads);
    }

    // Global telemetry flags, valid on every subcommand; `trace` records
    // by default (text report when no --telemetry is given).
    let telemetry_format = match flags.remove("telemetry") {
        Some(f) => {
            if !matches!(f.as_str(), "chrome" | "prom" | "text") {
                return Err(format!("unknown telemetry format '{f}' (chrome|prom|text)"));
            }
            Some(f)
        }
        None if command == "trace" => Some("text".to_string()),
        None => None,
    };
    let telemetry_out = flags.remove("telemetry-out");
    if telemetry_format.is_some() {
        telemetry::reset();
        telemetry::set_enabled(true);
    }

    let plain = |r: Result<String, String>| r.map(|out| (out, 0));
    let result = match command {
        "help" | "--help" | "-h" => Ok((HELP.to_string(), 0)),
        "mesh" => plain(cmd_mesh(&flags)),
        "mesh-import" => cmd_mesh_import(&flags),
        "instance" => plain(cmd_instance(&flags)),
        "stats" => plain(cmd_stats(&flags)),
        "schedule" => plain(cmd_schedule(&flags)),
        "transport" => plain(cmd_transport(&flags)),
        "optimal" => plain(cmd_optimal(&flags)),
        "analyze" => cmd_analyze(&flags),
        "trace" => plain(cmd_trace(&flags)),
        "faults" => cmd_faults(&flags),
        "serve" => plain(cmd_serve(&flags)),
        "top" => plain(cmd_top(&flags)),
        "check" => cmd_check(&flags),
        other => Err(format!("unknown command '{other}' (try `sweep help`)")),
    };

    // Snapshot and disable even when the command failed, so an error exit
    // never leaves the global collector recording.
    let snapshot = telemetry_format.as_ref().map(|_| {
        let snap = telemetry::snapshot();
        telemetry::set_enabled(false);
        snap
    });
    let (mut out, status) = result?;
    if let (Some(format), Some(snap)) = (telemetry_format, snapshot) {
        let rendered = match format.as_str() {
            "chrome" => {
                let text = telemetry::to_chrome_trace(&snap);
                // Self-check: an empty or malformed trace is a bug, not a
                // user error — CI relies on this failing loudly.
                telemetry::validate_chrome_trace(&text)
                    .map_err(|e| format!("internal: invalid chrome trace: {e}"))?;
                text
            }
            "prom" => {
                let text = telemetry::to_prometheus(&snap);
                telemetry::validate_prometheus(&text)
                    .map_err(|e| format!("internal: invalid prometheus exposition: {e}"))?;
                text
            }
            _ => telemetry::to_text_report(&snap),
        };
        match telemetry_out {
            Some(path) => {
                std::fs::write(&path, &rendered).map_err(|e| format!("writing {path}: {e}"))?;
                let _ = writeln!(
                    out,
                    "wrote telemetry ({format}) to {path}: {} spans, {} categories ({})",
                    snap.spans.len(),
                    snap.categories().len(),
                    snap.categories().join(", "),
                );
            }
            None => {
                out.push_str("\n-- telemetry --\n");
                out.push_str(&rendered);
            }
        }
    }
    Ok((out, status))
}

/// `trace` — runs the full pipeline (mesh build, DAG induction, scheduling,
/// synchronous and asynchronous simulation) under telemetry so the export
/// covers every span category. The schedule's start times serve as the
/// async priorities, mirroring how a distributed run would replay an
/// offline schedule.
fn cmd_trace(flags: &HashMap<String, String>) -> Result<String, String> {
    let (name, _mesh, inst) = build_instance_or_file(flags)?;
    let m: usize = get(flags, "m", 8)?;
    if m == 0 {
        return Err("--m must be positive".into());
    }
    let seed: u64 = get(flags, "seed", 2005)?;
    let latency: f64 = get(flags, "latency", 1.0)?;
    if latency < 0.0 {
        return Err("--latency must be non-negative".into());
    }
    let alg = parse_algorithm(
        flags.get("algorithm").map(String::as_str).unwrap_or("rdp"),
        flags.contains_key("delays"),
    )?;
    let assignment = Assignment::random_cells(inst.num_cells(), m, seed);
    let schedule = alg.run(&inst, assignment.clone(), seed ^ 0xabcd);
    validate(&inst, &schedule).map_err(|e| format!("internal: infeasible schedule: {e}"))?;
    let sim = sweep_sim::simulate(&inst, &schedule, &sweep_sim::SimConfig::default());
    let prio: Vec<i64> = schedule.starts().iter().map(|&t| t as i64).collect();
    let (async_report, trace) =
        sweep_sim::async_makespan_traced(&inst, &assignment, &prio, None, latency);
    sweep_sim::publish_trace(&trace);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace {} with {} ({} tasks, m = {m}): makespan {}, sync C2 time {:.1}, \
         async makespan {:.1} (latency {latency}, {} messages)",
        name,
        alg.name(),
        inst.num_tasks(),
        schedule.makespan(),
        sim.total_time,
        async_report.makespan,
        async_report.messages,
    );
    Ok(out)
}

/// `sweep faults <preset> …`: fault-injected execution + recovery,
/// trace certification, optional degradation curve.
fn cmd_faults(flags: &HashMap<String, String>) -> Result<(String, i32), String> {
    use sweep_faults::{FaultConfig, FaultPlan};

    let (name, _mesh, inst) = build_instance_or_file(flags)?;
    let m: usize = get(flags, "m", 8)?;
    if m == 0 {
        return Err("--m must be positive".into());
    }
    let seed: u64 = get(flags, "seed", 2005)?;
    let latency: f64 = get(flags, "latency", 1.0)?;
    if latency < 0.0 {
        return Err("--latency must be non-negative".into());
    }
    let cfg = FaultConfig {
        crash_rate: get(flags, "crash-rate", 0.1)?,
        drop_rate: get(flags, "drop-rate", 0.05)?,
        dup_rate: get(flags, "dup-rate", 0.02)?,
        jitter: get(flags, "jitter", 0.0)?,
        straggler_rate: get(flags, "straggler-rate", 0.0)?,
        straggler_factor: get(flags, "straggler-factor", 4.0)?,
        partition_rate: get(flags, "partition-rate", 0.0)?,
        min_rto: get(flags, "min-rto", 1.0)?,
    };
    cfg.validate()?;
    let alg = parse_algorithm(
        flags.get("algorithm").map(String::as_str).unwrap_or("rdp"),
        flags.contains_key("delays"),
    )?;
    let assignment = Assignment::random_cells(inst.num_cells(), m, seed);
    let schedule = alg.run(&inst, assignment.clone(), seed ^ 0xabcd);
    validate(&inst, &schedule).map_err(|e| format!("internal: infeasible schedule: {e}"))?;
    let prio: Vec<i64> = schedule.starts().iter().map(|&t| t as i64).collect();

    // Fault-free baseline: the degradation denominator and the horizon
    // the plan's fault times are sampled over.
    let base = sweep_sim::async_makespan(&inst, &assignment, &prio, None, latency);
    let horizon = base.makespan.max(1.0);
    let plan = FaultPlan::random(m, horizon, &cfg, seed);
    let (mut report, trace) =
        sweep_sim::async_makespan_faulty(&inst, &assignment, &prio, None, latency, &plan);
    report.fault_free_makespan = base.makespan;
    sweep_sim::publish_fault_report(&plan, &report);

    // Always certify the recovered trace: exactly-once + precedences +
    // delivery (SW017/SW018/SW022).
    let integrity = sweep_analyze::analyze_trace_integrity(&inst, &trace);
    let status = if integrity.has_errors() { 2 } else { 0 };

    let rendered = match flags.get("format").map(String::as_str).unwrap_or("text") {
        "json" => report.render_json(),
        "text" => {
            let mut out = String::new();
            let _ = writeln!(
                out,
                "faults {} with {} ({} tasks, m = {m}, seed {seed}): \
                 {} crash(es), {} slowdown window(s), {} partition(s) planned",
                name,
                alg.name(),
                inst.num_tasks(),
                plan.crashes.len(),
                plan.slowdowns.len(),
                plan.partitions.len(),
            );
            out.push_str(&report.render_text());
            let _ = writeln!(
                out,
                "integrity: {}",
                if status == 0 {
                    "certified (SW022: exactly-once, precedence-correct, delivery-backed)"
                } else {
                    "FAILED"
                }
            );
            if status != 0 {
                out.push_str(&integrity.render_text());
            }
            out
        }
        other => return Err(format!("unknown format '{other}' (text|json)")),
    };

    if let Some(path) = flags.get("curve") {
        let rates = [0.0, 0.05, 0.1, 0.2, 0.4];
        let points = sweep_sim::degradation_curve(
            &inst,
            &assignment,
            &prio,
            None,
            latency,
            &cfg,
            &rates,
            seed,
        );
        let csv = sweep_sim::degradation_csv(&points);
        std::fs::write(path, &csv).map_err(|e| format!("writing {path}: {e}"))?;
    }

    if let Some(path) = flags.get("out") {
        std::fs::write(path, &rendered).map_err(|e| format!("writing {path}: {e}"))?;
        Ok((
            format!(
                "wrote {path} ({} bytes); degraded makespan {:.3} ({:.3} fault-free)\n",
                rendered.len(),
                report.makespan,
                report.fault_free_makespan,
            ),
            status,
        ))
    } else {
        Ok((rendered, status))
    }
}

/// `serve` — binds the HTTP scheduling service and blocks in its accept
/// loop until the process is killed. The listen address is printed
/// immediately (before blocking) so scripts can wait on it.
fn cmd_serve(flags: &HashMap<String, String>) -> Result<String, String> {
    let addr: String = get(flags, "addr", "127.0.0.1:7469".to_string())?;
    let threads: usize = get(flags, "threads", 0)?;
    let cache_mb: usize = get(flags, "cache-mb", 64)?;
    let max_inflight: usize = get(flags, "max-inflight", 32)?;
    let trace_sample: u64 = get(flags, "trace-sample", 1)?;
    let log_sample: u64 = get(flags, "log-sample", 1)?;
    let cluster = match (flags.get("cluster"), flags.get("self-id")) {
        (None, None) => None,
        (Some(_), None) => return Err("--cluster needs --self-id".into()),
        (None, Some(_)) => return Err("--self-id needs --cluster".into()),
        (Some(path), Some(id)) => {
            let self_id: u64 = id.parse().map_err(|e| format!("--self-id: {e}"))?;
            let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            let members = sweep_serve::parse_members(&text)?;
            Some(sweep_serve::ClusterConfig::new(self_id, members))
        }
    };
    let config = sweep_serve::ServerConfig {
        addr,
        threads: if threads == 0 {
            std::thread::available_parallelism().map_or(4, usize::from)
        } else {
            threads
        },
        cache_bytes: cache_mb.max(1) * 1024 * 1024,
        max_inflight: max_inflight.max(1),
        trace_sample_every: trace_sample,
        log_sample_every: log_sample,
        cluster,
        ..sweep_serve::ServerConfig::default()
    };
    let server = sweep_serve::Server::bind(config).map_err(|e| format!("bind: {e}"))?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    println!(
        "sweep-serve listening on http://{addr} \
         (POST /v1/schedule, GET /v1/presets, GET /metrics, GET /debug/vars, \
         GET /debug/trace, GET /healthz; access log on stderr)"
    );
    if let (Some(cluster), Some(rpc)) = (server.cluster(), server.rpc_addr()) {
        println!(
            "cluster shard {} of {} (peer rpc on {rpc}, ring {} points)",
            cluster.self_id(),
            cluster.members().len(),
            cluster.ring().len_points(),
        );
    }
    server.run().map_err(|e| e.to_string())?;
    Ok(format!("sweep-serve on {addr} shut down cleanly\n"))
}

/// One blocking HTTP/1.1 GET against `hostport` (no client library —
/// the same std-only wire subset the server speaks).
fn http_get(hostport: &str, path: &str) -> Result<String, String> {
    use std::io::{Read as _, Write as _};
    let mut stream =
        std::net::TcpStream::connect(hostport).map_err(|e| format!("connect {hostport}: {e}"))?;
    let timeout = Some(std::time::Duration::from_secs(5));
    let _ = stream.set_read_timeout(timeout);
    let _ = stream.set_write_timeout(timeout);
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {hostport}\r\nConnection: close\r\n\r\n"
    )
    .map_err(|e| e.to_string())?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw).map_err(|e| e.to_string())?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("malformed response for GET {path}"))?;
    if !head.starts_with("HTTP/1.1 200") {
        return Err(format!(
            "GET {path}: {}",
            head.lines().next().unwrap_or("no status line")
        ));
    }
    Ok(body.to_string())
}

/// Reads one sample value out of a Prometheus text exposition.
fn prom_value(text: &str, name: &str) -> Option<f64> {
    text.lines().filter(|l| !l.starts_with('#')).find_map(|l| {
        let (n, v) = l.rsplit_once(' ')?;
        (n == name).then(|| v.parse().ok())?
    })
}

/// Renders one `sweep top` dashboard frame from a `/debug/vars`
/// document, the `/metrics` exposition, and the rps estimate.
fn render_top(
    hostport: &str,
    doc: &telemetry::json::Value,
    metrics: &str,
    rps: Option<f64>,
) -> String {
    let u = |path: &[&str]| -> u64 {
        let mut v = Some(doc);
        for key in path {
            v = v.and_then(|v| v.get(key));
        }
        v.and_then(|v| v.as_u64()).unwrap_or(0)
    };
    let mut out = String::new();
    let _ = writeln!(out, "sweep top — {hostport}");
    let _ = writeln!(
        out,
        "requests {:>8}   rps {:>7}   inflight {:>3}   sheds {:>5}   panics {:>3}",
        u(&["requests"]),
        rps.map_or_else(|| "-".to_string(), |r| format!("{r:.1}")),
        u(&["inflight"]),
        u(&["sheds"]),
        prom_value(metrics, "serve_http_panics_total").unwrap_or(0.0) as u64,
    );
    let (hits, misses) = (u(&["cache", "hits"]), u(&["cache", "misses"]));
    let _ = writeln!(
        out,
        "cache    hit rate {:>5.1}%   coalesced {:>5}   evictions {:>5}",
        100.0 * hits as f64 / (hits + misses).max(1) as f64,
        u(&["cache", "coalesced"]),
        u(&["cache", "evictions"]),
    );
    let _ = writeln!(
        out,
        "  tier1  {:>5} entries  {:>10} bytes    tier2  {:>5} entries  {:>10} bytes",
        u(&["cache", "tier1", "entries"]),
        u(&["cache", "tier1", "bytes"]),
        u(&["cache", "tier2", "entries"]),
        u(&["cache", "tier2", "bytes"]),
    );
    let _ = writeln!(
        out,
        "pool     tasks {:>8}   steals {:>8}   attempts {:>8}   failed cas {:>5}   parked {:>6}",
        u(&["pool", "tasks"]),
        u(&["pool", "steals"]),
        u(&["pool", "steal_attempts"]),
        u(&["pool", "steal_failures"]),
        u(&["pool", "parked"]),
    );
    let _ = writeln!(out, "traces   slow {:>4}", u(&["slow_traces"]));
    if let Some(cluster) = doc.get("cluster") {
        let peers = cluster
            .get("peers")
            .and_then(|p| p.as_array())
            .map(|peers| {
                peers
                    .iter()
                    .map(|p| {
                        format!(
                            "{}:{}",
                            p.get("id").and_then(|v| v.as_u64()).unwrap_or(0),
                            p.get("status").and_then(|v| v.as_str()).unwrap_or("?")
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .unwrap_or_default();
        let _ = writeln!(
            out,
            "cluster  shard {:>3}{}   forwards {:>6}   fallbacks {:>5}   rpc serves {:>6}   peers [{}]",
            u(&["cluster", "self_id"]),
            if cluster
                .get("degraded")
                .and_then(|v| v.as_bool())
                .unwrap_or(false)
            {
                " (degraded)"
            } else {
                ""
            },
            u(&["cluster", "forwards"]),
            u(&["cluster", "fallbacks"]),
            u(&["cluster", "rpc_serves"]),
            peers,
        );
    }
    let _ = writeln!(out, "stage        p50 µs      p99 µs     samples");
    for stage in telemetry::STAGES {
        let s = doc.get("stages_us").and_then(|s| s.get(stage));
        let f = |key: &str| s.and_then(|s| s.get(key)).and_then(|v| v.as_f64());
        let _ = writeln!(
            out,
            "{stage:<9} {:>9.1}   {:>9.1}   {:>9}",
            f("p50").unwrap_or(0.0),
            f("p99").unwrap_or(0.0),
            f("count").unwrap_or(0.0) as u64,
        );
    }
    out
}

/// `top` — polls a running server's `/metrics` + `/debug/vars` and
/// renders a refreshing terminal dashboard. `--count N` stops after N
/// frames (0 = until killed); `--plain` suppresses the ANSI
/// clear-screen between frames. The final frame is also the command's
/// return value, so scripts and tests can capture it.
fn cmd_top(flags: &HashMap<String, String>) -> Result<String, String> {
    let url: String = get(flags, "url", "http://127.0.0.1:7469".to_string())?;
    let interval: f64 = get(flags, "interval", 1.0)?;
    let count: u64 = get(flags, "count", 0)?;
    let plain = flags.contains_key("plain");
    let hostport = url
        .strip_prefix("http://")
        .unwrap_or(&url)
        .trim_end_matches('/')
        .to_string();

    let mut last_requests: Option<u64> = None;
    let mut frame;
    let mut polls = 0u64;
    loop {
        let vars = http_get(&hostport, "/debug/vars")?;
        let metrics = http_get(&hostport, "/metrics")?;
        let doc = telemetry::json::parse(&vars).map_err(|e| format!("parsing /debug/vars: {e}"))?;
        let requests = doc.get("requests").and_then(|v| v.as_u64()).unwrap_or(0);
        let rps =
            last_requests.map(|prev| requests.saturating_sub(prev) as f64 / interval.max(1e-9));
        last_requests = Some(requests);
        frame = render_top(&hostport, &doc, &metrics, rps);
        polls += 1;
        if count != 0 && polls >= count {
            // The final frame is returned (main prints it) instead of
            // being printed here, so it is not shown twice.
            break;
        }
        if !plain {
            print!("\x1b[2J\x1b[H");
        }
        println!("{frame}");
        std::thread::sleep(std::time::Duration::from_secs_f64(
            interval.clamp(0.05, 60.0),
        ));
    }
    Ok(frame)
}

fn cmd_mesh(flags: &HashMap<String, String>) -> Result<String, String> {
    let (preset, mesh) = build_mesh(flags)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "mesh {}: {} cells, {} interior faces, {} boundary faces, connected = {}",
        preset.name(),
        mesh.num_cells(),
        mesh.interior_faces().len(),
        mesh.boundary_faces().len(),
        mesh.connected_component_size() == mesh.num_cells(),
    );
    if flags.contains_key("quality") {
        let q = quality_report(&mesh);
        let _ = writeln!(
            out,
            "quality: min/mean element {:.3}/{:.3}, volume grading {:.1}, max neighbors {}",
            q.min_radius_ratio, q.mean_radius_ratio, q.volume_ratio, q.max_neighbors
        );
    }
    if let Some(path) = flags.get("vtk") {
        let vtk = sweep_mesh::to_vtk(&mesh, &[])?;
        std::fs::write(path, &vtk).map_err(|e| format!("writing {path}: {e}"))?;
        let _ = writeln!(out, "wrote {path} ({} bytes)", vtk.len());
    }
    Ok(out)
}

/// `sweep mesh import <file>` — parse a real mesh file (Wavefront
/// `.obj` or Gmsh `.msh` v4 ASCII, see MESHES.md), validate it
/// (SW030–SW033), induce the per-direction DAGs against `--sn`, and
/// report deterministic stats (no timings, so the output golden-diffs).
/// Exports: `--out` the schedulable instance (v1 text, cycles already
/// broken), `--raw-out` the *pre-repair* edges (possibly cyclic; feed to
/// `sweep analyze --instance` for SW001 cycle witnesses), `--svg` a
/// per-cell sweep-level rendering (surface imports only). Exits 2 when
/// any error-level diagnostic fires.
fn cmd_mesh_import(flags: &HashMap<String, String>) -> Result<(String, i32), String> {
    use sweep_dag::{induce_raw, TaskDag};
    use sweep_mesh::import::ImportFormat;

    let path = require(flags, "file")?;
    let fmt_name = flags.get("format").map(String::as_str).unwrap_or("auto");
    let fmt = ImportFormat::from_name(fmt_name)
        .ok_or_else(|| format!("unknown format '{fmt_name}' (auto|obj|msh)"))?;
    let bytes = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
    let got =
        sweep_mesh::import_bytes(&bytes, fmt).map_err(|e| format!("importing {path}: {e}"))?;
    let report = sweep_analyze::analyze_import(&got.report, path);

    let name = std::path::Path::new(path)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "imported".to_string());
    let sn: usize = get(flags, "sn", 4)?;
    let quad = QuadratureSet::level_symmetric(sn).map_err(|e| e.to_string())?;
    let (inst, induce) = SweepInstance::from_mesh(&got.mesh, &quad, name.as_str());

    let mut out = report.render_text();
    let raw_edges: usize = induce.iter().map(|s| s.raw_edges).sum();
    let dropped: usize = induce.iter().map(|s| s.dropped_edges).sum();
    let cyclic_dirs = induce.iter().filter(|s| s.nontrivial_sccs > 0).count();
    let _ = writeln!(
        out,
        "induced {} directions (sn {sn}): {raw_edges} raw edges, {dropped} dropped by \
         cycle breaking, {cyclic_dirs} cyclic directions",
        quad.len(),
    );
    let st = instance_stats(&inst);
    let _ = writeln!(
        out,
        "instance: {} tasks ({} cells × {} directions), {} edges, D = {}",
        st.total_tasks,
        inst.num_cells(),
        inst.num_directions(),
        st.total_edges,
        st.max_depth,
    );

    if let Some(p) = flags.get("out") {
        let text = sweep_dag::to_text(&inst);
        std::fs::write(p, &text).map_err(|e| format!("writing {p}: {e}"))?;
        let _ = writeln!(out, "wrote instance to {p} ({} bytes)", text.len());
    }
    if let Some(p) = flags.get("raw-out") {
        let dags: Vec<TaskDag> = quad
            .iter()
            .map(|(_, omega)| TaskDag::from_edges(inst.num_cells(), &induce_raw(&got.mesh, omega)))
            .collect();
        let raw = SweepInstance::new_unchecked(inst.num_cells(), dags, format!("{name}-raw"));
        let text = sweep_dag::to_text(&raw);
        std::fs::write(p, &text).map_err(|e| format!("writing {p}: {e}"))?;
        let _ = writeln!(
            out,
            "wrote raw (pre-repair) instance to {p} ({} bytes)",
            text.len()
        );
    }
    if let Some(p) = flags.get("svg") {
        let level_of = sweep_dag::levels(&inst.dags()[0]).level_of;
        let values: Vec<f64> = level_of.iter().map(|&l| l as f64).collect();
        let svg = sweep_mesh::poly_to_svg(&got.mesh, &values, sweep_mesh::ColorMap::BlueRed, 640)
            .map_err(|e| {
            format!("--svg: {e} (volumetric .msh imports have no render surface)")
        })?;
        std::fs::write(p, &svg).map_err(|e| format!("writing {p}: {e}"))?;
        let _ = writeln!(out, "wrote sweep-level SVG (direction 0) to {p}");
    }
    Ok((out, if report.has_errors() { 2 } else { 0 }))
}

fn cmd_instance(flags: &HashMap<String, String>) -> Result<String, String> {
    let (_, _, inst) = build_instance(flags)?;
    let path = require(flags, "out")?;
    let text = sweep_dag::to_text(&inst);
    std::fs::write(path, &text).map_err(|e| format!("writing {path}: {e}"))?;
    Ok(format!(
        "wrote {} tasks ({} cells × {} directions) to {path}\n",
        inst.num_tasks(),
        inst.num_cells(),
        inst.num_directions()
    ))
}

fn cmd_stats(flags: &HashMap<String, String>) -> Result<String, String> {
    let (name, _mesh, inst) = build_instance_or_file(flags)?;
    let st = instance_stats(&inst);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "instance {}: {} tasks ({} cells × {} directions), {} edges, D = {}",
        name,
        st.total_tasks,
        inst.num_cells(),
        inst.num_directions(),
        st.total_edges,
        st.max_depth,
    );
    let _ = writeln!(out, "dir  depth  width(max)  sources  sinks  edges");
    for (i, d) in st.per_direction.iter().enumerate() {
        let _ = writeln!(
            out,
            "{i:>3}  {:>5}  {:>10}  {:>7}  {:>5}  {:>5}",
            d.depth, d.max_width, d.sources, d.sinks, d.edges
        );
    }
    Ok(out)
}

fn parse_algorithm(name: &str, delays: bool) -> Result<Algorithm, String> {
    Ok(match name {
        "rdp" => Algorithm::RandomDelayPriorities,
        "rd" => Algorithm::RandomDelay,
        "improved" => Algorithm::ImprovedRandomDelay,
        "greedy" => Algorithm::Greedy,
        "level" => Algorithm::LevelPriority { delays },
        "descendant" => Algorithm::DescendantPriority { delays },
        "dfds" => Algorithm::Dfds { delays },
        other => return Err(format!("unknown algorithm '{other}'")),
    })
}

fn cmd_schedule(flags: &HashMap<String, String>) -> Result<String, String> {
    let (name, mesh, inst) = build_instance_or_file(flags)?;
    let m: usize = require(flags, "m")?
        .parse()
        .map_err(|e| format!("--m: {e}"))?;
    if m == 0 {
        return Err("--m must be positive".into());
    }
    let seed: u64 = get(flags, "seed", 2005)?;
    let alg = parse_algorithm(
        flags.get("algorithm").map(String::as_str).unwrap_or("rdp"),
        flags.contains_key("delays"),
    )?;
    let assignment = match flags.get("block") {
        None => Assignment::random_cells(inst.num_cells(), m, seed),
        Some(b) => {
            let block: usize = b.parse().map_err(|e| format!("--block: {e}"))?;
            if block == 0 {
                return Err("--block must be positive".into());
            }
            let Some(mesh) = mesh.as_ref() else {
                return Err("--block needs a mesh (use --preset, not --instance)".into());
            };
            let (xadj, adjncy) = mesh.adjacency_csr();
            let graph = CsrGraph::from_csr_parts(xadj, adjncy);
            let blocks = block_partition(&graph, block, &PartitionOptions::default());
            Assignment::random_blocks(&blocks, m, seed)
        }
    };
    let schedule = alg.run(&inst, assignment, seed ^ 0xabcd);
    validate(&inst, &schedule).map_err(|e| format!("internal: infeasible schedule: {e}"))?;
    let lb = lower_bounds(&inst, m);
    let c1 = c1_interprocessor_edges(&inst, schedule.assignment());
    let c2 = c2_comm_delay(&inst, &schedule);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} on {} ({} tasks, m = {m}): makespan {}  lower-bound {}  ratio {:.3}",
        alg.name(),
        name,
        inst.num_tasks(),
        schedule.makespan(),
        lb.best(),
        schedule.makespan() as f64 / lb.best() as f64,
    );
    let _ = writeln!(
        out,
        "communication: C1 = {c1} ({:.1}% of edges), C2 = {c2}; utilization {:.1}%",
        100.0 * c1 as f64 / inst.total_edges().max(1) as f64,
        100.0 * schedule.utilization(),
    );
    if let Some(path) = flags.get("csv") {
        let csv = sweep_core::to_csv(&inst, &schedule);
        std::fs::write(path, &csv).map_err(|e| format!("writing {path}: {e}"))?;
        let _ = writeln!(out, "wrote schedule CSV to {path}");
    }
    if flags.contains_key("gantt") {
        out.push_str(&render_gantt(&inst, &schedule, 100));
    }
    if let Some(path) = flags.get("vtk") {
        let Some(mesh) = mesh.as_ref() else {
            return Err("--vtk needs a mesh (use --preset, not --instance)".into());
        };
        let n = inst.num_cells();
        let proc_field: Vec<f64> = (0..n as u32)
            .map(|v| schedule.proc_of_cell(v) as f64)
            .collect();
        let start_field: Vec<f64> = (0..n as u32)
            .map(|v| schedule.start_of(sweep_dag::TaskId::pack(v, 0, n)) as f64)
            .collect();
        let vtk = sweep_mesh::to_vtk(
            mesh,
            &[("processor", &proc_field), ("start_dir0", &start_field)],
        )?;
        std::fs::write(path, &vtk).map_err(|e| format!("writing {path}: {e}"))?;
        let _ = writeln!(out, "wrote {path}");
    }
    Ok(out)
}

fn cmd_transport(flags: &HashMap<String, String>) -> Result<String, String> {
    let (preset, mesh) = build_mesh(flags)?;
    let sn: usize = get(flags, "sn", 4)?;
    let quad = QuadratureSet::level_symmetric(sn).map_err(|e| e.to_string())?;
    let material = sweep_sim::Material {
        sigma_t: get(flags, "sigma-t", 1.0)?,
        sigma_s: get(flags, "sigma-s", 0.5)?,
        source: get(flags, "source", 1.0)?,
    };
    let tol: f64 = get(flags, "tol", 1e-8)?;
    let max_iters: usize = get(flags, "max-iters", 500)?;
    let solver = sweep_sim::TransportSolver::new(&mesh, &quad, material)?;
    let r = solver.solve(max_iters, tol);
    let mean = r.phi.iter().sum::<f64>() / r.phi.len().max(1) as f64;
    let max = r.phi.iter().fold(0.0f64, |a, &b| a.max(b));
    Ok(format!(
        "transport on {} ({} cells, {} directions): {} iterations, residual {:.2e}, \
         converged = {}\nscalar flux: mean {:.4}, max {:.4}\n",
        preset.name(),
        mesh.num_cells(),
        quad.len(),
        r.iterations,
        r.residual,
        r.converged,
        mean,
        max,
    ))
}

fn cmd_optimal(flags: &HashMap<String, String>) -> Result<String, String> {
    let n: usize = require(flags, "n")?
        .parse()
        .map_err(|e| format!("--n: {e}"))?;
    let k: usize = require(flags, "k")?
        .parse()
        .map_err(|e| format!("--k: {e}"))?;
    let m: usize = require(flags, "m")?
        .parse()
        .map_err(|e| format!("--m: {e}"))?;
    let seed: u64 = get(flags, "seed", 2005)?;
    if n == 0 || k == 0 || m == 0 {
        return Err("--n, --k, --m must be positive".into());
    }
    if n * k > sweep_core::opt::MAX_TASKS || n > 12 {
        return Err(format!(
            "exact search limited to n ≤ 12 and n·k ≤ {}",
            sweep_core::opt::MAX_TASKS
        ));
    }
    let inst = SweepInstance::random_layered(n, k, (n / 2).max(1), 2, seed);
    let opt = sweep_core::optimal_sweep_makespan(&inst, m);
    let lb = lower_bounds(&inst, m);
    let a = Assignment::random_cells(n, m, seed);
    let s = Algorithm::RandomDelayPriorities.run(&inst, a, seed);
    Ok(format!(
        "random instance (n={n}, k={k}, seed={seed}) on m={m}: OPT = {opt}, \
         proxy lower bound = {}, Algorithm 2 = {} ({:.2}x OPT)\n",
        lb.best(),
        s.makespan(),
        s.makespan() as f64 / opt as f64,
    ))
}

/// A built-in cyclic fixture for demos and CI smoke tests: direction 0
/// re-enters cells 1 → 2 → 3 → 1 (the shape a hanging-node or warped
/// face produces after DAG induction goes wrong), direction 1 is a
/// clean chain.
fn demo_cycle_instance() -> SweepInstance {
    let d0 = sweep_dag::TaskDag::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 1)]);
    let d1 = sweep_dag::TaskDag::from_edges(4, &[(3, 2), (2, 1), (1, 0)]);
    SweepInstance::new_unchecked(4, vec![d0, d1], "demo-cycle")
}

fn cmd_analyze(flags: &HashMap<String, String>) -> Result<(String, i32), String> {
    use sweep_analyze::{
        analyze_assignment_with, analyze_async, analyze_instance, analyze_quadrature,
        analyze_schedule_with, AnalyzeOptions, Code,
    };
    let opts = AnalyzeOptions {
        imbalance_factor: get(flags, "imbalance", 2.0)?,
        comm_fraction: get(flags, "comm-fraction", 0.9)?,
        envelope_factor: get(flags, "envelope", 2.0)?,
    };
    let seed: u64 = get(flags, "seed", 2005)?;

    // Build the instance. File inputs use the *unchecked* parser so that
    // cyclic archives reach the analyzer (which reports SW001 with a
    // witness) instead of dying in the loader.
    let mut report;
    let inst = if flags.contains_key("demo-cycle") {
        let inst = demo_cycle_instance();
        report = analyze_instance(&inst);
        inst
    } else if let Some(path) = flags.get("instance") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let inst = sweep_dag::from_text_unchecked(&text)?;
        report = analyze_instance(&inst);
        inst
    } else {
        let (_, _, inst) = build_instance(flags)?;
        report = analyze_instance(&inst);
        let sn: usize = get(flags, "sn", 4)?;
        let quad = QuadratureSet::level_symmetric(sn).map_err(|e| e.to_string())?;
        report.merge(analyze_quadrature(&quad));
        inst
    };

    // With --m: analyze an assignment and a schedule built on it —
    // unless the instance is cyclic, in which case no scheduler can run
    // and the SW001 error already fails the command.
    let cyclic = report.has_code(Code::CyclicDependency);
    if let Some(m_flag) = flags.get("m") {
        let m: usize = m_flag.parse().map_err(|e| format!("--m: {e}"))?;
        if m == 0 {
            return Err("--m must be positive".into());
        }
        if !cyclic {
            let assignment = Assignment::random_cells(inst.num_cells(), m, seed);
            report.merge(analyze_assignment_with(&inst, &assignment, &opts));
            let alg = parse_algorithm(
                flags.get("algorithm").map(String::as_str).unwrap_or("rdp"),
                flags.contains_key("delays"),
            )?;
            let schedule = alg.run(&inst, assignment.clone(), seed ^ 0xabcd);
            report.merge(analyze_schedule_with(&inst, &schedule, &opts));
            if flags.contains_key("async") {
                let latency: f64 = get(flags, "latency", 1.0)?;
                let prio = vec![0i64; inst.num_tasks()];
                report.merge(analyze_async(&inst, &assignment, &prio, latency));
            }
            if flags.contains_key("par-check") {
                report.merge(sweep_analyze::analyze_parallel_determinism(
                    &inst,
                    m,
                    sweep_pool::global_threads(),
                    seed,
                ));
            }
        }
    } else if flags.contains_key("async") {
        return Err("--async needs --m (it analyzes a distributed execution)".into());
    } else if flags.contains_key("par-check") {
        return Err("--par-check needs --m (it certifies a best-of-b schedule)".into());
    }

    let rendered = match flags.get("format").map(String::as_str).unwrap_or("text") {
        "text" => report.render_text(),
        "json" => report.render_json(),
        "sarif" => report.render_sarif(),
        other => return Err(format!("unknown format '{other}' (text|json|sarif)")),
    };
    let status = if report.has_errors() { 2 } else { 0 };
    if let Some(path) = flags.get("out") {
        std::fs::write(path, &rendered).map_err(|e| format!("writing {path}: {e}"))?;
        Ok((
            format!(
                "wrote {path} ({} bytes); {} diagnostic(s), {} error(s)\n",
                rendered.len(),
                report.len(),
                report.count(sweep_analyze::Severity::Error),
            ),
            status,
        ))
    } else {
        Ok((rendered, status))
    }
}

/// `check` — model-checks the pool's lock-free range splitting and the
/// server's single-flight cache under `sweep-check`'s controllable
/// scheduler and renders the results on the SW0xx registry (exit 2 on
/// any finding). With `--fixtures` it runs the intentionally buggy
/// reference models instead: there a finding per fixture is the
/// *expected* outcome (still exit 2 — the witness traces are the
/// point), and a clean fixture is a hard error because it means the
/// checker lost the ability to catch its own seeded bugs.
#[cfg(feature = "model-check")]
fn cmd_check(flags: &HashMap<String, String>) -> Result<(String, i32), String> {
    use sweep_analyze::{ConcurrencyFinding, ConcurrencyFindingKind, ModelCheckRun};
    use sweep_check::{explore, Config, ExploreReport, FindingKind};

    /// Flattens an exploration into the analyzer's plain-data shape:
    /// the schedule finding (if any) plus one finding per lock-order
    /// cycle. Lost wakeups in single-flight models are the protocol's
    /// liveness violation (SW027 rather than SW026); replay divergence
    /// is model nondeterminism, the same defect class as SW023.
    fn to_run(r: &ExploreReport) -> ModelCheckRun {
        let single_flight = r.model.contains("single-flight");
        let mut findings = Vec::new();
        if let Some(f) = &r.finding {
            let kind = match f.kind {
                FindingKind::Deadlock => ConcurrencyFindingKind::Deadlock,
                FindingKind::DoubleLock => ConcurrencyFindingKind::DoubleLock,
                FindingKind::LostWakeup if single_flight => {
                    ConcurrencyFindingKind::SingleFlightStall
                }
                FindingKind::LostWakeup => ConcurrencyFindingKind::LostWakeup,
                FindingKind::LockOrderCycle => ConcurrencyFindingKind::LockOrderCycle,
                FindingKind::ModelPanic | FindingKind::ReplayDivergence => {
                    ConcurrencyFindingKind::NonLinearizable
                }
                FindingKind::StepBound => ConcurrencyFindingKind::StepBound,
            };
            // The engine's message already names the finding class
            // (`FindingKind::as_str` is for programmatic consumers).
            findings.push(ConcurrencyFinding {
                kind,
                message: f.message.clone(),
                witness: f.witness.clone(),
            });
        }
        for cycle in &r.lock_cycles {
            findings.push(ConcurrencyFinding {
                kind: ConcurrencyFindingKind::LockOrderCycle,
                message: format!("lock-order cycle: {}", cycle.classes.join(" -> ")),
                witness: cycle.witnesses.clone(),
            });
        }
        ModelCheckRun {
            model: r.model.clone(),
            executions: r.executions,
            steps: r.steps,
            complete: r.complete,
            findings,
        }
    }

    let defaults = Config::default();
    let cfg = Config {
        max_executions: get(flags, "max-executions", defaults.max_executions)?,
        max_steps: get(flags, "max-steps", defaults.max_steps)?,
        random_schedules: get(flags, "schedules", 64)?,
        seed: get(flags, "seed", defaults.seed)?,
    };

    let fixtures = flags.contains_key("fixtures");
    let explorations: Vec<ExploreReport> = if fixtures {
        sweep_check::fixtures::FIXTURES
            .iter()
            .map(|f| explore(f.name, &cfg, f.body))
            .collect()
    } else {
        // The production kernels, run exactly as shipped — the models
        // in `sweep_pool::model` / `sweep_serve::model` call the same
        // range-splitting and single-flight code the pool and server
        // use.
        let models: [(&str, fn()); 5] = [
            ("pool.range.drain", sweep_pool::model::drain_exactly_once),
            (
                "pool.range.contended",
                sweep_pool::model::contended_single_task,
            ),
            ("pool.range.steal-race", sweep_pool::model::contended_steal),
            (
                "serve.single-flight.coalesce",
                sweep_serve::model::single_flight_coalesce,
            ),
            (
                "serve.single-flight.leader-panic",
                sweep_serve::model::single_flight_leader_panic,
            ),
        ];
        models
            .into_iter()
            .map(|(name, body)| explore(name, &cfg, body))
            .collect()
    };

    if fixtures {
        if let Some(clean) = explorations.iter().find(|r| !r.has_finding()) {
            return Err(format!(
                "fixture '{}' came back clean after {} execution(s) — the checker \
                 failed to catch its own seeded bug",
                clean.model, clean.executions,
            ));
        }
    }

    let runs: Vec<ModelCheckRun> = explorations.iter().map(to_run).collect();
    let report = sweep_analyze::analyze_model_checks(&runs);
    let rendered = match flags.get("format").map(String::as_str).unwrap_or("text") {
        "text" => report.render_text(),
        "json" => report.render_json(),
        "sarif" => report.render_sarif(),
        other => return Err(format!("unknown format '{other}' (text|json|sarif)")),
    };
    let status = if report.has_errors() { 2 } else { 0 };
    if let Some(path) = flags.get("out") {
        std::fs::write(path, &rendered).map_err(|e| format!("writing {path}: {e}"))?;
        Ok((
            format!(
                "wrote {path} ({} bytes); {} diagnostic(s), {} error(s)\n",
                rendered.len(),
                report.len(),
                report.count(sweep_analyze::Severity::Error),
            ),
            status,
        ))
    } else {
        Ok((rendered, status))
    }
}

/// Without the `model-check` feature there is nothing to drive — the
/// sync shim compiles straight to `std::sync` re-exports — so the
/// subcommand only explains how to get the instrumented build.
#[cfg(not(feature = "model-check"))]
fn cmd_check(flags: &HashMap<String, String>) -> Result<(String, i32), String> {
    let _ = flags;
    Err("`sweep check` needs the instrumented build: rerun as \
         `cargo run -p sweep-cli --features model-check -- check` \
         (plain builds compile the sync shim straight to std::sync, \
         so there is no scheduler to drive)"
        .to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests that enable the global telemetry collector must not overlap
    /// (cargo's test harness is multithreaded and the collector is
    /// process-wide); they also tolerate spans recorded by unrelated
    /// concurrent tests by asserting lower bounds / membership only.
    static TELEMETRY_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn help_on_empty_and_help_command() {
        assert!(run(&[]).unwrap().contains("USAGE"));
        assert!(run(&args(&["help"])).unwrap().contains("COMMANDS"));
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run(&args(&["frobnicate"]))
            .unwrap_err()
            .contains("unknown command"));
    }

    #[test]
    fn serve_is_in_help_and_rejects_a_bad_bind_address() {
        assert!(HELP.contains("serve"));
        assert!(run(&args(&["serve", "--addr", "not-an-address"]))
            .unwrap_err()
            .contains("bind"));
    }

    #[test]
    fn serve_cluster_flags_come_as_a_pair() {
        assert!(HELP.contains("--cluster FILE --self-id N"));
        assert!(run(&args(&["serve", "--cluster", "members.txt"]))
            .unwrap_err()
            .contains("--self-id"));
        assert!(run(&args(&["serve", "--self-id", "0"]))
            .unwrap_err()
            .contains("--cluster"));
        assert!(run(&args(&[
            "serve",
            "--cluster",
            "/no/such/file",
            "--self-id",
            "0"
        ]))
        .unwrap_err()
        .contains("/no/such/file"));
    }

    #[test]
    fn top_renders_the_per_shard_cluster_row() {
        let members = vec![sweep_serve::Member {
            id: 0,
            http_addr: "127.0.0.1:0".to_string(),
            rpc_addr: "127.0.0.1:0".to_string(),
        }];
        let server = sweep_serve::Server::bind(sweep_serve::ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 2,
            access_log: sweep_serve::AccessLogSink::Null,
            cluster: Some(sweep_serve::ClusterConfig::new(0, members)),
            ..sweep_serve::ServerConfig::default()
        })
        .unwrap();
        let addr = server.local_addr().unwrap();
        let handle = server.shutdown_handle().unwrap();
        let join = std::thread::spawn(move || server.run());

        let frame = run(&args(&[
            "top",
            "--url",
            &format!("http://{addr}"),
            "--count",
            "1",
            "--plain",
        ]))
        .unwrap();
        handle.shutdown();
        join.join().unwrap().unwrap();
        assert!(frame.contains("cluster  shard   0"), "{frame}");
        assert!(frame.contains("forwards"), "{frame}");
        assert!(frame.contains("fallbacks"), "{frame}");
    }

    #[test]
    fn top_renders_a_dashboard_frame_against_a_live_server() {
        assert!(HELP.contains("top"));
        let server = sweep_serve::Server::bind(sweep_serve::ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 2,
            access_log: sweep_serve::AccessLogSink::Null,
            ..sweep_serve::ServerConfig::default()
        })
        .unwrap();
        let addr = server.local_addr().unwrap();
        let handle = server.shutdown_handle().unwrap();
        let join = std::thread::spawn(move || server.run());

        // Generate one traced request so the stage table has data.
        http_get(&addr.to_string(), "/healthz").unwrap();
        let frame = run(&args(&[
            "top",
            "--url",
            &format!("http://{addr}"),
            "--count",
            "1",
            "--plain",
        ]))
        .unwrap();
        handle.shutdown();
        join.join().unwrap().unwrap();
        assert!(frame.contains("sweep top"), "{frame}");
        assert!(frame.contains("hit rate"), "{frame}");
        assert!(frame.contains("tier1"), "{frame}");
        for stage in telemetry::STAGES {
            assert!(frame.contains(stage), "{frame}");
        }
        // `top` against a dead port is a clean error, not a hang.
        let err = run(&args(&[
            "top",
            "--url",
            "http://127.0.0.1:1",
            "--count",
            "1",
        ]))
        .unwrap_err();
        assert!(err.contains("connect"), "{err}");
    }

    #[test]
    fn check_is_in_help() {
        assert!(HELP.contains("check      [--fixtures]"));
        assert!(HELP.contains("--features model-check"));
    }

    #[cfg(not(feature = "model-check"))]
    #[test]
    fn check_without_the_feature_explains_the_rebuild() {
        let err = run(&args(&["check"])).unwrap_err();
        assert!(err.contains("--features model-check"), "{err}");
    }

    #[cfg(feature = "model-check")]
    mod check_cmd {
        use super::*;

        #[test]
        fn check_passes_on_the_production_kernels() {
            let (out, status) = run_with_status(&args(&[
                "check",
                "--schedules",
                "8",
                "--max-executions",
                "50000",
            ]))
            .unwrap();
            assert_eq!(status, 0, "{out}");
            for model in [
                "pool.range.drain",
                "pool.range.contended",
                "pool.range.steal-race",
                "serve.single-flight.coalesce",
                "serve.single-flight.leader-panic",
            ] {
                assert!(out.contains(model), "missing {model} in:\n{out}");
            }
            assert!(out.contains("clean"), "{out}");
            assert!(out.contains("state space exhausted"), "{out}");
        }

        #[test]
        fn check_fixtures_hit_every_registry_code_and_exit_2() {
            let (out, status) =
                run_with_status(&args(&["check", "--fixtures", "--schedules", "0"])).unwrap();
            assert_eq!(status, 2, "{out}");
            // One seeded bug per code: deadlock (SW025), lost wakeup
            // (SW026), single-flight stall (SW027), non-linearizable
            // deque (SW023) — each with its witness schedule.
            for code in ["SW025", "SW026", "SW027", "SW023"] {
                assert!(out.contains(code), "missing {code} in:\n{out}");
            }
            assert!(out.contains("witness:"), "{out}");
            assert!(out.contains("lock-order cycle:"), "{out}");
        }

        #[test]
        fn check_renders_sarif_and_json() {
            let (sarif, status) = run_with_status(&args(&[
                "check",
                "--fixtures",
                "--schedules",
                "0",
                "--format",
                "sarif",
            ]))
            .unwrap();
            assert_eq!(status, 2);
            assert!(sarif.contains("SW027"), "{sarif}");
            let (json, status) = run_with_status(&args(&[
                "check",
                "--fixtures",
                "--schedules",
                "0",
                "--format",
                "json",
            ]))
            .unwrap();
            assert_eq!(status, 2);
            assert!(json.contains("SW026"), "{json}");
        }
    }

    #[test]
    fn mesh_command_reports() {
        let out = run(&args(&[
            "mesh",
            "--preset",
            "tetonly",
            "--scale",
            "0.01",
            "--quality",
        ]))
        .unwrap();
        assert!(out.contains("315 cells"), "{out}");
        assert!(out.contains("quality:"));
        assert!(out.contains("connected = true"));
    }

    #[test]
    fn mesh_rejects_unknown_preset() {
        let err = run(&args(&["mesh", "--preset", "nope"])).unwrap_err();
        assert!(err.contains("unknown preset"));
    }

    #[test]
    fn stats_command_lists_directions() {
        let out = run(&args(&[
            "stats", "--preset", "tetonly", "--scale", "0.01", "--sn", "2",
        ]))
        .unwrap();
        assert!(out.contains("8 directions"), "{out}");
        assert_eq!(out.lines().count(), 2 + 8);
    }

    #[test]
    fn schedule_command_all_algorithms() {
        for alg in [
            "rdp",
            "rd",
            "improved",
            "greedy",
            "level",
            "descendant",
            "dfds",
        ] {
            let out = run(&args(&[
                "schedule",
                "--preset",
                "tetonly",
                "--scale",
                "0.01",
                "--sn",
                "2",
                "--m",
                "8",
                "--algorithm",
                alg,
            ]))
            .unwrap_or_else(|e| panic!("{alg}: {e}"));
            assert!(out.contains("makespan"), "{alg}: {out}");
            assert!(out.contains("C1 ="));
        }
    }

    #[test]
    fn schedule_with_blocks_and_gantt() {
        let out = run(&args(&[
            "schedule", "--preset", "tetonly", "--scale", "0.01", "--sn", "2", "--m", "4",
            "--block", "8", "--gantt",
        ]))
        .unwrap();
        assert!(out.contains("p0"), "gantt rows expected: {out}");
    }

    #[test]
    fn schedule_csv_round_trip() {
        let dir = std::env::temp_dir().join("sweep-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sched.csv");
        let out = run(&args(&[
            "schedule",
            "--preset",
            "tetonly",
            "--scale",
            "0.01",
            "--sn",
            "2",
            "--m",
            "4",
            "--csv",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("wrote schedule CSV"));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("cell,direction,processor,start"));
    }

    #[test]
    fn schedule_requires_m() {
        let err = run(&args(&[
            "schedule", "--preset", "tetonly", "--scale", "0.01",
        ]))
        .unwrap_err();
        assert!(err.contains("--m"));
    }

    #[test]
    fn transport_command_converges() {
        let out = run(&args(&[
            "transport",
            "--preset",
            "tetonly",
            "--scale",
            "0.01",
            "--sn",
            "2",
            "--sigma-s",
            "0.3",
        ]))
        .unwrap();
        assert!(out.contains("converged = true"), "{out}");
    }

    #[test]
    fn transport_rejects_bad_material() {
        let err = run(&args(&[
            "transport",
            "--preset",
            "tetonly",
            "--scale",
            "0.01",
            "--sigma-s",
            "2.0",
        ]))
        .unwrap_err();
        assert!(err.contains("scattering"));
    }

    #[test]
    fn optimal_command_runs() {
        let out = run(&args(&["optimal", "--n", "6", "--k", "2", "--m", "3"])).unwrap();
        assert!(out.contains("OPT ="), "{out}");
    }

    fn example_mesh(name: &str) -> String {
        format!(
            "{}/../../examples/meshes/{name}",
            env!("CARGO_MANIFEST_DIR")
        )
    }

    #[test]
    fn mesh_import_round_trips_example_meshes() {
        let dir = std::env::temp_dir().join("sweep-cli-import-test");
        std::fs::create_dir_all(&dir).unwrap();
        // Clean .msh tets: no warnings, schedulable instance out.
        let inst = dir.join("cube.inst");
        let (out, status) = run_with_status(&args(&[
            "mesh",
            "import",
            &example_mesh("cube.msh"),
            "--sn",
            "2",
            "--out",
            inst.to_str().unwrap(),
        ]))
        .unwrap();
        assert_eq!(status, 0, "{out}");
        assert!(out.contains("format msh: 8 vertices, 6 cells"), "{out}");
        assert!(out.contains("0 error(s), 0 warning(s)"), "{out}");
        assert!(out.contains("0 cyclic directions"), "{out}");
        let sched = run(&args(&[
            "schedule",
            "--instance",
            inst.to_str().unwrap(),
            "--m",
            "2",
            "--algorithm",
            "greedy",
        ]))
        .unwrap();
        assert!(sched.contains("makespan"), "{sched}");
        // .obj surface: explicit format, SVG export works.
        let svg = dir.join("plate.svg");
        let (out, status) = run_with_status(&args(&[
            "mesh",
            "import",
            &example_mesh("plate.obj"),
            "--format",
            "obj",
            "--sn",
            "2",
            "--svg",
            svg.to_str().unwrap(),
        ]))
        .unwrap();
        assert_eq!(status, 0, "{out}");
        assert!(out.contains("format obj: 9 vertices, 8 cells"), "{out}");
        let svg_text = std::fs::read_to_string(&svg).unwrap();
        assert_eq!(svg_text.matches("<polygon").count(), 8);
    }

    #[test]
    fn mesh_import_warped_finds_cycles_in_every_direction() {
        let dir = std::env::temp_dir().join("sweep-cli-warped-test");
        std::fs::create_dir_all(&dir).unwrap();
        let raw = dir.join("warped-raw.inst");
        let (out, status) = run_with_status(&args(&[
            "mesh",
            "import",
            &example_mesh("warped.msh"),
            "--sn",
            "2",
            "--raw-out",
            raw.to_str().unwrap(),
        ]))
        .unwrap();
        // Hanging nodes warn (SW032) but do not fail the import.
        assert_eq!(status, 0, "{out}");
        assert!(out.contains("SW032"), "{out}");
        assert!(out.contains("8 cyclic directions"), "{out}");
        // The raw (pre-repair) instance carries SW001 cycle witnesses.
        let (report, status) =
            run_with_status(&args(&["analyze", "--instance", raw.to_str().unwrap()])).unwrap();
        assert_eq!(status, 2, "{report}");
        assert!(report.contains("SW001"), "{report}");
    }

    #[test]
    fn mesh_import_rejects_bad_inputs() {
        let dir = std::env::temp_dir().join("sweep-cli-import-bad-test");
        std::fs::create_dir_all(&dir).unwrap();
        // Missing file.
        let err = run(&args(&["mesh", "import", "/nonexistent.msh"])).unwrap_err();
        assert!(err.contains("reading"), "{err}");
        // Unknown --format value.
        let err = run(&args(&[
            "mesh",
            "import",
            &example_mesh("cube.msh"),
            "--format",
            "stl",
        ]))
        .unwrap_err();
        assert!(err.contains("unknown format"), "{err}");
        // Malformed content is a typed import error, not a panic.
        let bad = dir.join("bad.msh");
        std::fs::write(&bad, "$MeshFormat\n4.1 0 8\n").unwrap();
        let err = run(&args(&["mesh", "import", bad.to_str().unwrap()])).unwrap_err();
        assert!(err.contains("importing"), "{err}");
        // Error-level diagnostics (non-manifold) exit 2.
        let nm = dir.join("nm.obj");
        std::fs::write(
            &nm,
            "v 0 0 0\nv 1 0 0\nv 0 1 0\nv 0 -1 0\nv 1 1 1\nf 1 2 3\nf 1 2 4\nf 1 2 5\n",
        )
        .unwrap();
        let (out, status) =
            run_with_status(&args(&["mesh", "import", nm.to_str().unwrap()])).unwrap();
        assert_eq!(status, 2, "{out}");
        assert!(out.contains("SW030"), "{out}");
    }

    #[test]
    fn optimal_rejects_large() {
        let err = run(&args(&["optimal", "--n", "50", "--k", "4", "--m", "3"])).unwrap_err();
        assert!(err.contains("limited"));
    }

    #[test]
    fn instance_export_and_reimport() {
        let dir = std::env::temp_dir().join("sweep-cli-inst-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("inst.txt");
        let out = run(&args(&[
            "instance",
            "--preset",
            "tetonly",
            "--scale",
            "0.01",
            "--sn",
            "2",
            "--out",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("wrote"), "{out}");
        let stats = run(&args(&["stats", "--instance", path.to_str().unwrap()])).unwrap();
        assert!(stats.contains("8 directions"), "{stats}");
        let sched = run(&args(&[
            "schedule",
            "--instance",
            path.to_str().unwrap(),
            "--m",
            "4",
        ]))
        .unwrap();
        assert!(sched.contains("makespan"));
        // --block requires a mesh.
        let err = run(&args(&[
            "schedule",
            "--instance",
            path.to_str().unwrap(),
            "--m",
            "4",
            "--block",
            "8",
        ]))
        .unwrap_err();
        assert!(err.contains("needs a mesh"));
    }

    #[test]
    fn flag_parser_rejects_malformed() {
        assert!(run(&args(&["mesh", "preset", "tetonly"])).is_err());
        assert!(run(&args(&["mesh", "--preset"])).is_err());
    }

    #[test]
    fn analyze_demo_cycle_errors_in_all_formats() {
        for format in ["text", "json", "sarif"] {
            let (out, status) =
                run_with_status(&args(&["analyze", "--demo-cycle", "--format", format]))
                    .unwrap_or_else(|e| panic!("{format}: {e}"));
            assert_eq!(status, 2, "{format}: cyclic demo must fail the command");
            assert!(out.contains("SW001"), "{format}: {out}");
        }
        // The text rendering carries the witness cycle.
        let (out, _) = run_with_status(&args(&["analyze", "--demo-cycle"])).unwrap();
        assert!(out.contains("cycle: 1 -> 2 -> 3 -> 1"), "{out}");
    }

    #[test]
    fn analyze_preset_is_clean_and_exits_zero() {
        let (out, status) = run_with_status(&args(&[
            "analyze", "--preset", "tetonly", "--scale", "0.01", "--sn", "2", "--m", "4",
        ]))
        .unwrap();
        assert_eq!(status, 0, "{out}");
        assert!(out.contains("SW021"), "schedule should certify: {out}");
        assert!(out.contains("0 error(s)"), "{out}");
    }

    #[test]
    fn analyze_async_reports_trace_stats() {
        let (out, status) = run_with_status(&args(&[
            "analyze",
            "--preset",
            "tetonly",
            "--scale",
            "0.01",
            "--sn",
            "2",
            "--m",
            "4",
            "--async",
            "--latency",
            "0.5",
        ]))
        .unwrap();
        assert_eq!(status, 0, "{out}");
        assert!(out.contains("async trace"), "{out}");
    }

    #[test]
    fn analyze_par_check_certifies_determinism() {
        let (out, status) = run_with_status(&args(&[
            "analyze",
            "--preset",
            "tetonly",
            "--scale",
            "0.01",
            "--sn",
            "2",
            "--m",
            "4",
            "--par-check",
            "--threads",
            "4",
        ]))
        .unwrap();
        assert_eq!(status, 0, "{out}");
        assert!(out.contains("parallel execution certified"), "{out}");
        assert!(!out.contains("SW023"), "{out}");
        // Don't leak the 4-thread setting into other tests in this
        // process.
        sweep_pool::set_global_threads(0);
    }

    #[test]
    fn threads_flag_is_global_and_validated() {
        let (out, status) = run_with_status(&args(&[
            "schedule",
            "--preset",
            "tetonly",
            "--scale",
            "0.01",
            "--sn",
            "2",
            "--m",
            "4",
            "--threads",
            "1",
        ]))
        .unwrap();
        assert_eq!(status, 0, "{out}");
        assert!(out.contains("makespan"), "{out}");
        let err = run(&args(&[
            "stats",
            "--preset",
            "tetonly",
            "--threads",
            "lots",
        ]))
        .unwrap_err();
        assert!(err.contains("--threads"), "{err}");
        sweep_pool::set_global_threads(0);
    }

    #[test]
    fn analyze_cyclic_instance_file_from_unchecked_parser() {
        let dir = std::env::temp_dir().join("sweep-cli-analyze-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cyclic.txt");
        std::fs::write(
            &path,
            "sweep-instance v1\nname cyc\ncells 3\ndirections 1\n\
             dag 0 edges 3\n0 1\n1 2\n2 0\nend\n",
        )
        .unwrap();
        let (out, status) = run_with_status(&args(&[
            "analyze",
            "--instance",
            path.to_str().unwrap(),
            "--format",
            "json",
        ]))
        .unwrap();
        assert_eq!(status, 2);
        assert!(out.contains("\"trail\": [0, 1, 2, 0]"), "{out}");
        // The strict loader (schedule command) refuses the same file.
        let err = run(&args(&[
            "schedule",
            "--instance",
            path.to_str().unwrap(),
            "--m",
            "2",
        ]))
        .unwrap_err();
        assert!(err.contains("cyclic"));
    }

    #[test]
    fn analyze_out_file_and_sarif_shape() {
        let dir = std::env::temp_dir().join("sweep-cli-sarif-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("report.sarif");
        let (out, status) = run_with_status(&args(&[
            "analyze",
            "--preset",
            "tetonly",
            "--scale",
            "0.01",
            "--sn",
            "2",
            "--m",
            "4",
            "--format",
            "sarif",
            "--out",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        assert_eq!(status, 0, "{out}");
        assert!(out.contains("wrote"));
        let sarif = std::fs::read_to_string(&path).unwrap();
        assert!(sarif.contains("\"version\": \"2.1.0\""));
        assert!(sarif.contains("sweep-analyze"));
    }

    #[test]
    fn trace_default_text_report_covers_pipeline() {
        let _guard = TELEMETRY_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let out = run(&args(&["trace", "tetonly", "--scale", "0.01", "--sn", "2"])).unwrap();
        assert!(out.contains("trace tetonly"), "{out}");
        assert!(out.contains("-- telemetry --"), "{out}");
        for needle in ["mesh.build", "dag.induce", "sched.", "sim."] {
            assert!(out.contains(needle), "missing {needle}: {out}");
        }
    }

    #[test]
    fn trace_chrome_export_is_valid_and_multi_category() {
        let _guard = TELEMETRY_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let dir = std::env::temp_dir().join("sweep-cli-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        let out = run(&args(&[
            "trace",
            "tetonly",
            "--scale",
            "0.01",
            "--sn",
            "2",
            "--telemetry",
            "chrome",
            "--telemetry-out",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("wrote telemetry (chrome)"), "{out}");
        let text = std::fs::read_to_string(&path).unwrap();
        let info = telemetry::validate_chrome_trace(&text).unwrap();
        assert!(info.spans >= 4, "expected a real trace, got {}", info.spans);
        for cat in ["mesh", "dag", "sched", "sim"] {
            assert!(
                info.categories.iter().any(|c| c == cat),
                "missing category {cat}: {:?}",
                info.categories
            );
        }
    }

    #[test]
    fn trace_prometheus_export_has_counters_and_histograms() {
        let _guard = TELEMETRY_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let out = run(&args(&[
            "trace",
            "tetonly",
            "--scale",
            "0.01",
            "--sn",
            "2",
            "--telemetry",
            "prom",
        ]))
        .unwrap();
        telemetry::validate_prometheus(out.split("-- telemetry --\n").nth(1).unwrap()).unwrap();
        assert!(out.contains("sweep_sched_tasks_scheduled_total"), "{out}");
        assert!(out.contains("sweep_sim_async_msg_latency_count"), "{out}");
        assert!(out.contains("_bucket{le="), "{out}");
    }

    #[test]
    fn telemetry_flag_works_on_other_subcommands() {
        let _guard = TELEMETRY_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let out = run(&args(&[
            "schedule",
            "--preset",
            "tetonly",
            "--scale",
            "0.01",
            "--sn",
            "2",
            "--m",
            "4",
            "--telemetry",
            "text",
        ]))
        .unwrap();
        assert!(out.contains("makespan"), "{out}");
        assert!(out.contains("-- telemetry --"), "{out}");
        assert!(out.contains("mesh.build"), "{out}");
    }

    #[test]
    fn telemetry_rejects_unknown_format() {
        let err = run(&args(&["trace", "tetonly", "--telemetry", "yaml"])).unwrap_err();
        assert!(err.contains("unknown telemetry format"), "{err}");
    }

    #[test]
    fn trace_requires_a_preset() {
        // Locked: even a failing `trace` resets the global collector.
        let _guard = TELEMETRY_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let err = run(&args(&["trace"])).unwrap_err();
        assert!(err.contains("--preset"), "{err}");
    }

    #[test]
    fn analyze_rejects_bad_format_and_lone_async() {
        assert!(run(&args(&["analyze", "--demo-cycle", "--format", "xml"]))
            .unwrap_err()
            .contains("unknown format"));
        assert!(run(&args(&["analyze", "--demo-cycle", "--async"]))
            .unwrap_err()
            .contains("--async needs --m"));
        assert!(run(&args(&["analyze", "--demo-cycle", "--par-check"]))
            .unwrap_err()
            .contains("--par-check needs --m"));
    }

    #[test]
    fn faults_text_report_certifies_and_exits_zero() {
        let (out, status) = run_with_status(&args(&[
            "faults",
            "tetonly",
            "--scale",
            "0.01",
            "--sn",
            "2",
            "--m",
            "4",
            "--seed",
            "7",
            "--crash-rate",
            "0.3",
            "--drop-rate",
            "0.1",
        ]))
        .unwrap();
        assert_eq!(status, 0, "{out}");
        assert!(out.contains("faults tetonly"), "{out}");
        assert!(out.contains("degraded makespan"), "{out}");
        assert!(out.contains("certified (SW022"), "{out}");
    }

    #[test]
    fn faults_json_is_deterministic_and_degraded() {
        let cmd = [
            "faults",
            "tetonly",
            "--scale",
            "0.01",
            "--sn",
            "2",
            "--m",
            "4",
            "--seed",
            "7",
            "--crash-rate",
            "0.3",
            "--drop-rate",
            "0.1",
            "--format",
            "json",
        ];
        let (a, status) = run_with_status(&args(&cmd)).unwrap();
        let (b, _) = run_with_status(&args(&cmd)).unwrap();
        assert_eq!(status, 0);
        assert_eq!(a, b, "same seed must reproduce the same FaultReport");
        assert!(a.contains("\"makespan\":"), "{a}");
        assert!(a.contains("\"fault_free_makespan\":"), "{a}");
        assert!(a.contains("\"recovered_tasks\":"), "{a}");
    }

    #[test]
    fn faults_zero_rates_match_fault_free_baseline() {
        let (out, status) = run_with_status(&args(&[
            "faults",
            "tetonly",
            "--scale",
            "0.01",
            "--sn",
            "2",
            "--m",
            "4",
            "--seed",
            "3",
            "--crash-rate",
            "0",
            "--drop-rate",
            "0",
            "--dup-rate",
            "0",
            "--format",
            "json",
        ]))
        .unwrap();
        assert_eq!(status, 0);
        // With an empty plan the degraded makespan equals the baseline:
        // the JSON carries the identical value for both keys.
        let grab = |key: &str| -> String {
            let tail = out.split(key).nth(1).unwrap();
            tail[1..tail.find(',').unwrap()].trim().to_string()
        };
        assert_eq!(
            grab("\"makespan\":"),
            grab("\"fault_free_makespan\":"),
            "{out}"
        );
        assert!(out.contains("\"crashed_procs\": []"), "{out}");
    }

    #[test]
    fn faults_curve_and_out_files() {
        let dir = std::env::temp_dir().join("sweep-cli-faults-test");
        std::fs::create_dir_all(&dir).unwrap();
        let json = dir.join("report.json");
        let curve = dir.join("curve.csv");
        let (out, status) = run_with_status(&args(&[
            "faults",
            "tetonly",
            "--scale",
            "0.01",
            "--sn",
            "2",
            "--m",
            "4",
            "--seed",
            "7",
            "--format",
            "json",
            "--out",
            json.to_str().unwrap(),
            "--curve",
            curve.to_str().unwrap(),
        ]))
        .unwrap();
        assert_eq!(status, 0, "{out}");
        assert!(out.contains("wrote"), "{out}");
        let report = std::fs::read_to_string(&json).unwrap();
        assert!(report.contains("\"timeline\""), "{report}");
        let csv = std::fs::read_to_string(&curve).unwrap();
        assert!(csv.starts_with("rate,makespan"), "{csv}");
        assert_eq!(csv.lines().count(), 6, "5 rates + header: {csv}");
    }

    #[test]
    fn faults_rejects_bad_rates_and_format() {
        assert!(run(&args(&[
            "faults",
            "tetonly",
            "--scale",
            "0.01",
            "--sn",
            "2",
            "--crash-rate",
            "1.5",
        ]))
        .unwrap_err()
        .contains("crash_rate"));
        assert!(run(&args(&[
            "faults", "tetonly", "--scale", "0.01", "--sn", "2", "--format", "yaml",
        ]))
        .unwrap_err()
        .contains("unknown format"));
    }
}
