//! Thin entry point for the `sweep` CLI; all logic lives in the library.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match sweep_cli::run_with_status(&args) {
        Ok((report, status)) => {
            print!("{report}");
            if status != 0 {
                std::process::exit(status);
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
