//! Thin entry point for the `sweep` CLI; all logic lives in the library.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match sweep_cli::run(&args) {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
