//! # sweep-quadrature — angular quadrature (sweep direction) sets
//!
//! Sweep scheduling takes a set of `k` directions; in S_n transport codes
//! these come from a *level-symmetric* angular quadrature, which is what
//! gives the paper's direction counts (S4 ⇒ 24 directions, the `k = 24`
//! used in Figure 2). This crate constructs:
//!
//! * [`QuadratureSet::level_symmetric`] — LQ_n-style ordinate sets with
//!   `n(n+2)` directions spread symmetrically over the eight octants;
//! * [`QuadratureSet::random_unit`] — asymmetric random direction sets (the
//!   paper notes its algorithms need *no* symmetry between directions);
//! * [`QuadratureSet::uniform_2d`] — planar direction fans for 2-D meshes.
//!
//! Only the direction *vectors* matter for scheduling; the quadrature
//! weights are carried along for the toy transport solver in `sweep-sim`.
//! We use equal weights per ordinate (exact for S2/S4-style single-class
//! sets, a documented simplification for higher orders — see DESIGN.md §5).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sweep_mesh::Vec3;

/// One quadrature ordinate: a unit direction and its quadrature weight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ordinate {
    /// Unit direction vector.
    pub dir: Vec3,
    /// Quadrature weight; a full set's weights sum to `4π` in 3-D and `2π`
    /// in 2-D.
    pub weight: f64,
}

/// Identifier of a sweep direction within a [`QuadratureSet`]
/// (`0..QuadratureSet::len`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DirectionId(pub u32);

impl DirectionId {
    /// The direction's dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Errors from quadrature construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuadratureError {
    /// Level-symmetric order must be even and in `2..=24`.
    BadOrder(usize),
    /// Requested an empty direction set.
    Empty,
}

impl std::fmt::Display for QuadratureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuadratureError::BadOrder(n) => {
                write!(f, "level-symmetric order {n} must be even, in 2..=24")
            }
            QuadratureError::Empty => write!(f, "direction set must be non-empty"),
        }
    }
}

impl std::error::Error for QuadratureError {}

/// A set of sweep directions.
#[derive(Debug, Clone)]
pub struct QuadratureSet {
    ordinates: Vec<Ordinate>,
    name: String,
}

impl QuadratureSet {
    /// Builds a level-symmetric-like S_n set with `n(n+2)` ordinates.
    ///
    /// Per octant there are `n(n+2)/8` ordinates with direction cosines
    /// `(±μ_i, ±μ_j, ±μ_k)` where `i + j + k = n/2 + 2`. The μ-values
    /// follow the standard LQ_n recursion `μ_i² = μ_1² + (i−1)·δ` with
    /// `δ = 2(1 − 3μ_1²)/(n − 2)` (and `μ_1 = 1/√3` for S2).
    pub fn level_symmetric(n: usize) -> Result<QuadratureSet, QuadratureError> {
        if !(2..=24).contains(&n) || !n.is_multiple_of(2) {
            return Err(QuadratureError::BadOrder(n));
        }
        // First direction cosine; standard textbook values for low orders,
        // a smooth interpolation elsewhere (direction *placement* is all the
        // scheduler observes).
        let mu1: f64 = match n {
            2 => 0.577_350_2,
            4 => 0.350_021_2,
            6 => 0.266_635_5,
            8 => 0.218_217_8,
            12 => 0.167_212_6,
            16 => 0.138_956_8,
            _ => (1.0 / (3.0 * (n as f64 - 1.0))).sqrt().max(0.08),
        };
        let half = n / 2;
        let mut mu = vec![0.0f64; half + 1]; // 1-based
        mu[1] = mu1;
        if n > 2 {
            let delta = 2.0 * (1.0 - 3.0 * mu1 * mu1) / (n as f64 - 2.0);
            for (i, slot) in mu.iter_mut().enumerate().take(half + 1).skip(2) {
                *slot = (mu1 * mu1 + (i as f64 - 1.0) * delta).sqrt();
            }
        }

        // Enumerate index triples i+j+k = half + 2 within one octant, then
        // reflect into all eight octants.
        let mut ordinates = Vec::with_capacity(n * (n + 2));
        let per_octant = half * (half + 1) / 2;
        let weight = 4.0 * std::f64::consts::PI / (8 * per_octant) as f64;
        for i in 1..=half {
            for j in 1..=(half + 1 - i) {
                let k = half + 2 - i - j;
                debug_assert!(k >= 1 && k <= half);
                let v = Vec3::new(mu[i], mu[j], mu[k]);
                // Re-normalize: the recursion guarantees unit norm only
                // approximately for interpolated μ1 values.
                let v = v.normalized();
                for sx in [1.0, -1.0] {
                    for sy in [1.0, -1.0] {
                        for sz in [1.0, -1.0] {
                            ordinates.push(Ordinate {
                                dir: Vec3::new(v.x * sx, v.y * sy, v.z * sz),
                                weight,
                            });
                        }
                    }
                }
            }
        }
        debug_assert_eq!(ordinates.len(), n * (n + 2));
        Ok(QuadratureSet {
            ordinates,
            name: format!("S{n}"),
        })
    }

    /// Product quadrature: `n_polar` Gauss–Legendre polar levels ×
    /// `n_azimuthal` equally spaced azimuthal angles — the other standard
    /// ordinate family in S_n transport codes, with `n_polar · n_azimuthal`
    /// directions. Gauss–Legendre nodes/weights are computed by Newton
    /// iteration on the Legendre recurrence.
    pub fn product(n_polar: usize, n_azimuthal: usize) -> Result<QuadratureSet, QuadratureError> {
        if n_polar == 0 || n_azimuthal == 0 {
            return Err(QuadratureError::Empty);
        }
        let (nodes, gl_weights) = gauss_legendre(n_polar);
        let mut ordinates = Vec::with_capacity(n_polar * n_azimuthal);
        let dphi = 2.0 * std::f64::consts::PI / n_azimuthal as f64;
        for (mu, wi) in nodes.iter().zip(&gl_weights) {
            let sin_theta = (1.0 - mu * mu).max(0.0).sqrt();
            for j in 0..n_azimuthal {
                let phi = (j as f64 + 0.5) * dphi;
                ordinates.push(Ordinate {
                    dir: Vec3::new(sin_theta * phi.cos(), sin_theta * phi.sin(), *mu),
                    // GL weights integrate dμ over [-1,1] (total 2);
                    // azimuthal slice is dφ: total 2 · 2π = 4π. ✓
                    weight: wi * dphi,
                });
            }
        }
        Ok(QuadratureSet {
            ordinates,
            name: format!("product{n_polar}x{n_azimuthal}"),
        })
    }

    /// `k` directions drawn uniformly at random on the unit sphere
    /// (Marsaglia's method). Models the paper's non-symmetric scenarios.
    pub fn random_unit(k: usize, seed: u64) -> Result<QuadratureSet, QuadratureError> {
        if k == 0 {
            return Err(QuadratureError::Empty);
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let weight = 4.0 * std::f64::consts::PI / k as f64;
        let mut ordinates = Vec::with_capacity(k);
        while ordinates.len() < k {
            let a: f64 = rng.random_range(-1.0..1.0);
            let b: f64 = rng.random_range(-1.0..1.0);
            let s = a * a + b * b;
            if !(1e-12..1.0).contains(&s) {
                continue;
            }
            let t = 2.0 * (1.0 - s).sqrt();
            ordinates.push(Ordinate {
                dir: Vec3::new(a * t, b * t, 1.0 - 2.0 * s),
                weight,
            });
        }
        Ok(QuadratureSet {
            ordinates,
            name: format!("random{k}"),
        })
    }

    /// `k` directions uniformly spaced on the unit circle (for 2-D meshes),
    /// offset by half a step so no direction is exactly axis-aligned.
    pub fn uniform_2d(k: usize) -> Result<QuadratureSet, QuadratureError> {
        if k == 0 {
            return Err(QuadratureError::Empty);
        }
        let weight = 2.0 * std::f64::consts::PI / k as f64;
        let ordinates = (0..k)
            .map(|i| {
                let th = (i as f64 + 0.5) / k as f64 * 2.0 * std::f64::consts::PI;
                Ordinate {
                    dir: Vec3::new(th.cos(), th.sin(), 0.0),
                    weight,
                }
            })
            .collect();
        Ok(QuadratureSet {
            ordinates,
            name: format!("fan{k}"),
        })
    }

    /// Builds a set from explicit directions (normalized internally) with
    /// equal weights.
    pub fn from_directions(dirs: &[Vec3]) -> Result<QuadratureSet, QuadratureError> {
        if dirs.is_empty() {
            return Err(QuadratureError::Empty);
        }
        let weight = 4.0 * std::f64::consts::PI / dirs.len() as f64;
        Ok(QuadratureSet {
            ordinates: dirs
                .iter()
                .map(|d| Ordinate {
                    dir: d.normalized(),
                    weight,
                })
                .collect(),
            name: format!("explicit{}", dirs.len()),
        })
    }

    /// Number of directions `k`.
    pub fn len(&self) -> usize {
        self.ordinates.len()
    }

    /// True when the set is empty (cannot happen for constructed sets).
    pub fn is_empty(&self) -> bool {
        self.ordinates.is_empty()
    }

    /// All ordinates.
    pub fn ordinates(&self) -> &[Ordinate] {
        &self.ordinates
    }

    /// The `i`-th direction vector.
    pub fn direction(&self, i: DirectionId) -> Vec3 {
        self.ordinates[i.index()].dir
    }

    /// Human-readable set name (`"S4"`, `"random32"`, ...).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Iterator over `(DirectionId, direction vector)`.
    pub fn iter(&self) -> impl Iterator<Item = (DirectionId, Vec3)> + '_ {
        self.ordinates
            .iter()
            .enumerate()
            .map(|(i, o)| (DirectionId(i as u32), o.dir))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    #[test]
    fn s2_has_8_directions() {
        let q = QuadratureSet::level_symmetric(2).unwrap();
        assert_eq!(q.len(), 8);
        assert_eq!(q.name(), "S2");
        // S2 directions are the (±1,±1,±1)/√3 corners.
        for o in q.ordinates() {
            for c in [o.dir.x, o.dir.y, o.dir.z] {
                assert!((c.abs() - 1.0 / 3f64.sqrt()).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn s4_has_24_directions_like_the_paper() {
        let q = QuadratureSet::level_symmetric(4).unwrap();
        assert_eq!(q.len(), 24, "S4 must give the paper's 24 directions");
    }

    #[test]
    fn sn_counts_follow_n_times_n_plus_2() {
        for n in [2usize, 4, 6, 8, 12, 16] {
            let q = QuadratureSet::level_symmetric(n).unwrap();
            assert_eq!(q.len(), n * (n + 2), "S{n}");
        }
    }

    #[test]
    fn all_directions_are_unit() {
        for n in [2usize, 4, 6, 8] {
            for o in QuadratureSet::level_symmetric(n).unwrap().ordinates() {
                assert!((o.dir.norm() - 1.0).abs() < EPS);
            }
        }
    }

    #[test]
    fn level_symmetric_is_octant_symmetric() {
        let q = QuadratureSet::level_symmetric(4).unwrap();
        // For every ordinate, its reflection through the origin is present.
        for o in q.ordinates() {
            let neg = -o.dir;
            assert!(
                q.ordinates().iter().any(|p| (p.dir - neg).norm() < 1e-9),
                "missing opposite of {:?}",
                o.dir
            );
        }
    }

    #[test]
    fn weights_sum_to_4pi() {
        for n in [2usize, 4, 8] {
            let q = QuadratureSet::level_symmetric(n).unwrap();
            let s: f64 = q.ordinates().iter().map(|o| o.weight).sum();
            assert!((s - 4.0 * std::f64::consts::PI).abs() < 1e-9);
        }
    }

    #[test]
    fn bad_orders_rejected() {
        for n in [0usize, 1, 3, 5, 26, 100] {
            assert!(
                QuadratureSet::level_symmetric(n).is_err(),
                "S{n} should fail"
            );
        }
    }

    #[test]
    fn random_unit_directions_are_unit_and_deterministic() {
        let a = QuadratureSet::random_unit(32, 7).unwrap();
        let b = QuadratureSet::random_unit(32, 7).unwrap();
        assert_eq!(a.len(), 32);
        for (x, y) in a.ordinates().iter().zip(b.ordinates()) {
            assert_eq!(x.dir, y.dir);
            assert!((x.dir.norm() - 1.0).abs() < EPS);
        }
        let c = QuadratureSet::random_unit(32, 8).unwrap();
        assert!(a
            .ordinates()
            .iter()
            .zip(c.ordinates())
            .any(|(x, y)| x.dir != y.dir));
    }

    #[test]
    fn random_unit_is_roughly_balanced_over_hemispheres() {
        let q = QuadratureSet::random_unit(4096, 3).unwrap();
        let up = q.ordinates().iter().filter(|o| o.dir.z > 0.0).count();
        // Chernoff: 4096 coin flips stay within ±10% of half w.h.p.
        assert!((up as f64 - 2048.0).abs() < 410.0, "up = {up}");
    }

    #[test]
    fn uniform_2d_fans_are_planar_and_distinct() {
        let q = QuadratureSet::uniform_2d(8).unwrap();
        assert_eq!(q.len(), 8);
        for o in q.ordinates() {
            assert_eq!(o.dir.z, 0.0);
            assert!((o.dir.norm() - 1.0).abs() < EPS);
        }
        // No axis-aligned direction thanks to the half-step offset.
        for o in q.ordinates() {
            assert!(o.dir.x.abs() > 1e-9 && o.dir.y.abs() > 1e-9);
        }
        let s: f64 = q.ordinates().iter().map(|o| o.weight).sum();
        assert!((s - 2.0 * std::f64::consts::PI).abs() < 1e-9);
    }

    #[test]
    fn empty_sets_rejected() {
        assert_eq!(
            QuadratureSet::random_unit(0, 0).unwrap_err(),
            QuadratureError::Empty
        );
        assert_eq!(
            QuadratureSet::uniform_2d(0).unwrap_err(),
            QuadratureError::Empty
        );
        assert_eq!(
            QuadratureSet::from_directions(&[]).unwrap_err(),
            QuadratureError::Empty
        );
    }

    #[test]
    fn from_directions_normalizes() {
        let q = QuadratureSet::from_directions(&[Vec3::new(2.0, 0.0, 0.0)]).unwrap();
        assert!((q.direction(DirectionId(0)).x - 1.0).abs() < EPS);
    }

    #[test]
    fn iter_yields_ids_in_order() {
        let q = QuadratureSet::uniform_2d(4).unwrap();
        let ids: Vec<u32> = q.iter().map(|(d, _)| d.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }
}

/// Gauss–Legendre nodes and weights on `[-1, 1]` (Newton iteration on the
/// three-term Legendre recurrence; converges quadratically from the
/// Chebyshev-angle initial guess).
fn gauss_legendre(n: usize) -> (Vec<f64>, Vec<f64>) {
    assert!(n > 0);
    let mut nodes = vec![0.0f64; n];
    let mut weights = vec![0.0f64; n];
    for i in 0..n {
        // Initial guess: Chebyshev angles.
        let mut x = (std::f64::consts::PI * (i as f64 + 0.75) / (n as f64 + 0.5)).cos();
        for _ in 0..64 {
            // Evaluate P_n(x) and P'_n(x) via the recurrence.
            let (mut p0, mut p1) = (1.0f64, x);
            for j in 2..=n {
                let p2 = ((2 * j - 1) as f64 * x * p1 - (j - 1) as f64 * p0) / j as f64;
                p0 = p1;
                p1 = p2;
            }
            let pn = if n == 1 { x } else { p1 };
            let pn_prev = if n == 1 { 1.0 } else { p0 };
            let dpn = n as f64 * (x * pn - pn_prev) / (x * x - 1.0);
            let dx = pn / dpn;
            x -= dx;
            if dx.abs() < 1e-15 {
                break;
            }
        }
        nodes[i] = x;
        // Recompute P'_n at the converged node for the weight.
        let (mut p0, mut p1) = (1.0f64, x);
        for j in 2..=n {
            let p2 = ((2 * j - 1) as f64 * x * p1 - (j - 1) as f64 * p0) / j as f64;
            p0 = p1;
            p1 = p2;
        }
        let pn_prev = if n == 1 { 1.0 } else { p0 };
        let pn = if n == 1 { x } else { p1 };
        let dpn = n as f64 * (x * pn - pn_prev) / (x * x - 1.0);
        weights[i] = 2.0 / ((1.0 - x * x) * dpn * dpn);
    }
    // Sort ascending for determinism.
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| nodes[a].partial_cmp(&nodes[b]).expect("finite"));
    (
        idx.iter().map(|&i| nodes[i]).collect(),
        idx.iter().map(|&i| weights[i]).collect(),
    )
}

#[cfg(test)]
mod product_tests {
    use super::*;

    #[test]
    fn gauss_legendre_known_nodes() {
        let (n1, w1) = gauss_legendre(1);
        assert!((n1[0]).abs() < 1e-14);
        assert!((w1[0] - 2.0).abs() < 1e-14);
        let (n2, _) = gauss_legendre(2);
        let r = 1.0 / 3f64.sqrt();
        assert!((n2[0] + r).abs() < 1e-12 && (n2[1] - r).abs() < 1e-12);
        let (n3, w3) = gauss_legendre(3);
        assert!(n3[1].abs() < 1e-12);
        assert!((n3[2] - (0.6f64).sqrt()).abs() < 1e-12);
        assert!((w3[1] - 8.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn gauss_legendre_integrates_polynomials_exactly() {
        // n-point GL is exact through degree 2n-1: check x^4 with n = 3.
        let (nodes, weights) = gauss_legendre(3);
        let integral: f64 = nodes.iter().zip(&weights).map(|(x, w)| w * x.powi(4)).sum();
        assert!((integral - 2.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn product_counts_and_weights() {
        let q = QuadratureSet::product(4, 8).unwrap();
        assert_eq!(q.len(), 32);
        assert_eq!(q.name(), "product4x8");
        let total: f64 = q.ordinates().iter().map(|o| o.weight).sum();
        assert!((total - 4.0 * std::f64::consts::PI).abs() < 1e-9);
        for o in q.ordinates() {
            assert!((o.dir.norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn product_is_octant_symmetric_for_even_inputs() {
        let q = QuadratureSet::product(2, 4).unwrap();
        for o in q.ordinates() {
            let neg = -o.dir;
            assert!(
                q.ordinates().iter().any(|p| (p.dir - neg).norm() < 1e-9),
                "missing opposite of {:?}",
                o.dir
            );
        }
    }

    #[test]
    fn product_rejects_empty() {
        assert!(QuadratureSet::product(0, 4).is_err());
        assert!(QuadratureSet::product(4, 0).is_err());
    }
}
