//! Lock-free work distribution by atomic range splitting.
//!
//! The pool parallelizes *index spaces* (`0..n`), which admits a far
//! cheaper discipline than a general task deque: each worker's pending
//! work is always one contiguous range `[lo, hi)`, packed into a single
//! `AtomicU64` (`lo` in the high 32 bits, `hi` in the low 32). Because
//! the whole per-worker state fits in one word, every transition is a
//! single atomic instruction and the protocol needs no `unsafe` and no
//! Chase–Lev ring buffer:
//!
//! * **Owner claim (front).** The owner bumps `lo` with one *relaxed
//!   `fetch_add`* — no CAS loop, no lock. If the previous value had
//!   `lo < hi`, the owner won index `lo`; otherwise the range was empty
//!   (the overshoot leaves `lo = hi + 1`, which every reader already
//!   treats as empty, and is bounded by one per steal sweep).
//! * **Thief steal (back half).** A thief scans all other slots, picks
//!   the victim with the *largest* remaining range, and CAS-splits it:
//!   `(lo, hi) → (lo, mid)` with `mid = lo + (hi − lo)/2`, taking
//!   `[mid, hi)` for itself. On success it executes `mid` immediately
//!   and banks `[mid+1, hi)` in its own (empty) slot; on failure
//!   (owner claimed or another thief split first) it rescans.
//!
//! **Linearizability.** The packed word *fully describes* the slot's
//! pending set, so the compare in the steal CAS revalidates everything
//! the thief computed from its read — a successful CAS is correct even
//! against an arbitrarily stale read, and ABA cannot arise because a
//! range over already-claimed indices can never be re-installed (every
//! index is seeded into exactly one slot and ranges only ever
//! partition). Claims linearize at the `fetch_add`, steals at the CAS;
//! both either atomically transfer disjoint indices or fail harmlessly.
//! Every index is therefore claimed exactly once — the postcondition
//! `sweep check` verifies exhaustively over the model bodies in
//! `crate::model` (compiled under the `model-check` feature).
//!
//! The atomics come from `sweep_check::sync::atomic`: plain std
//! re-exports in normal builds, scheduler yield points under the
//! `model-check` feature, so the checker explores this exact code.

use sweep_check::sync::atomic::{AtomicU64, Ordering};

/// Packs an index range: `lo` high, `hi` low, so the owner's
/// `fetch_add(1 << 32)` bumps `lo` without carrying into `hi`.
#[inline]
const fn pack(lo: u32, hi: u32) -> u64 {
    ((lo as u64) << 32) | hi as u64
}

/// Unpacks `(lo, hi)`.
#[inline]
const fn unpack(word: u64) -> (u32, u32) {
    ((word >> 32) as u32, word as u32)
}

/// Owner claim increment: `+1` on the packed `lo` field.
const LO_ONE: u64 = 1 << 32;

/// Per-worker steal bookkeeping, aggregated into the
/// `pool.steal_attempts` / `pool.steal_failures` telemetry counters.
#[derive(Debug, Default, Clone, Copy)]
pub struct StealStats {
    /// CAS steals attempted (successful or not).
    pub attempts: u64,
    /// CAS steals that lost the race and had to rescan.
    pub failures: u64,
}

/// One packed `[lo, hi)` range per worker over a shared index space.
pub struct RangeQueues {
    slots: Vec<AtomicU64>,
}

impl RangeQueues {
    /// Ranges for `workers` workers (at least 1), seeded with contiguous
    /// chunks of `0..n` so owners sweep cache-adjacent work and thieves
    /// split from the far end of somebody else's chunk.
    ///
    /// # Panics
    /// Panics when `n` exceeds `u32::MAX` (indices are packed in 32
    /// bits; the pool fans out DAG inductions and scheduling trials,
    /// which are many orders of magnitude below that).
    pub fn chunked(n: usize, workers: usize) -> RangeQueues {
        assert!(u32::try_from(n).is_ok(), "index space exceeds u32");
        let workers = workers.max(1);
        RangeQueues {
            slots: (0..workers)
                .map(|w| {
                    AtomicU64::new(pack(
                        (w * n / workers) as u32,
                        ((w + 1) * n / workers) as u32,
                    ))
                })
                .collect(),
        }
    }

    /// All of `0..n` seeded into worker 0's slot, every other slot
    /// empty — the adversarial shape where every other worker must
    /// steal. Used by the model-check bodies and the steal-storm
    /// stress tests to force CAS contention.
    pub fn front_loaded(n: usize, workers: usize) -> RangeQueues {
        assert!(u32::try_from(n).is_ok(), "index space exceeds u32");
        let workers = workers.max(1);
        RangeQueues {
            slots: (0..workers)
                .map(|w| {
                    AtomicU64::new(if w == 0 {
                        pack(0, n as u32)
                    } else {
                        pack(0, 0)
                    })
                })
                .collect(),
        }
    }

    /// The number of worker slots.
    pub fn workers(&self) -> usize {
        self.slots.len()
    }

    /// Sum of the remaining range lengths at the moment of the scan
    /// (a racy snapshot — exact only when no worker is active).
    pub fn remaining(&self) -> usize {
        self.slots
            .iter()
            .map(|s| {
                let (lo, hi) = unpack(s.load(Ordering::Relaxed));
                hi.saturating_sub(lo) as usize
            })
            .sum()
    }

    /// The next index for worker `me`: the front of its own range
    /// (relaxed `fetch_add`), or — once that is empty — the back half
    /// of the largest victim range (CAS split, retried on contention).
    /// Returns the index and whether it was stolen. `None` means every
    /// slot was empty at the moment it was inspected; a range mid-steal
    /// is invisible for one transition, so `None` ends this worker's
    /// sweep early at worst — it never loses an index (the thief that
    /// holds it executes it).
    pub fn next_task(&self, me: usize, stats: &mut StealStats) -> Option<(usize, bool)> {
        // Fast path: claim the front of our own range. The pre-load
        // avoids a pointless overshoot `fetch_add` on an empty slot;
        // the `fetch_add` itself is the linearization point.
        let (lo, hi) = unpack(self.slots[me].load(Ordering::Relaxed));
        if lo < hi {
            let (lo, hi) = unpack(self.slots[me].fetch_add(LO_ONE, Ordering::Relaxed));
            if lo < hi {
                return Some((lo as usize, false));
            }
        }
        self.steal(me, stats)
    }

    /// Steal sweep: scan all other slots, CAS-split the largest.
    fn steal(&self, me: usize, stats: &mut StealStats) -> Option<(usize, bool)> {
        let workers = self.slots.len();
        loop {
            // Victim selection: the largest observed remaining range
            // (stealing half of the biggest pile amortizes the number
            // of steals to O(log n) per worker). The scan starts at
            // `me + 1` so equal-sized victims spread across thieves.
            let mut best: Option<(usize, u64, u32, u32)> = None;
            for hop in 1..workers {
                let v = (me + hop) % workers;
                let word = self.slots[v].load(Ordering::Relaxed);
                let (lo, hi) = unpack(word);
                if lo < hi && best.is_none_or(|(_, _, blo, bhi)| hi - lo > bhi - blo) {
                    best = Some((v, word, lo, hi));
                }
            }
            let (victim, word, lo, hi) = best?;
            stats.attempts += 1;
            // Split point: the owner keeps the front half `[lo, mid)`,
            // we take the back half `[mid, hi)` (the whole range when
            // only one index remains).
            let mid = lo + (hi - lo) / 2;
            match self.slots[victim].compare_exchange(
                word,
                pack(lo, mid),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    // `[mid, hi)` is ours alone: execute `mid` now and
                    // bank the rest in our own slot (empty, and nobody
                    // CAS-targets an empty slot, so a plain store is
                    // race-free).
                    self.slots[me].store(pack(mid + 1, hi), Ordering::Relaxed);
                    return Some((mid as usize, true));
                }
                Err(_) => {
                    // Lost the race — someone else made progress
                    // (owner claim or competing steal), so the rescan
                    // terminates: the protocol is lock-free, not
                    // merely obstruction-free.
                    stats.failures += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_all(q: &RangeQueues, me: usize) -> (Vec<usize>, StealStats) {
        let mut stats = StealStats::default();
        let mut got = Vec::new();
        while let Some((i, _)) = q.next_task(me, &mut stats) {
            got.push(i);
        }
        (got, stats)
    }

    #[test]
    fn single_worker_drains_in_order() {
        let q = RangeQueues::chunked(10, 1);
        let (got, stats) = drain_all(&q, 0);
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        assert_eq!(stats.attempts, 0);
        assert_eq!(q.remaining(), 0);
    }

    #[test]
    fn chunked_partitions_the_space() {
        for n in [0usize, 1, 5, 64, 257] {
            for workers in [1usize, 2, 3, 7] {
                let q = RangeQueues::chunked(n, workers);
                assert_eq!(q.workers(), workers);
                assert_eq!(q.remaining(), n, "n={n} w={workers}");
            }
        }
    }

    #[test]
    fn sequential_two_worker_drain_covers_everything_once() {
        // Worker 1 exhausts its own chunk, then steals the back half of
        // worker 0's — all deterministic single-threaded here.
        let q = RangeQueues::front_loaded(8, 2);
        let mut stats = StealStats::default();
        let (i, stolen) = q.next_task(1, &mut stats).unwrap();
        assert!(stolen, "worker 1 starts empty and must steal");
        assert_eq!(i, 4, "back half of [0,8) starts at 4");
        assert_eq!(stats.attempts, 1);
        assert_eq!(stats.failures, 0);
        let mut seen = vec![i];
        while let Some((i, _)) = q.next_task(1, &mut stats) {
            seen.push(i);
        }
        let (rest, _) = drain_all(&q, 0);
        seen.extend(rest);
        seen.sort_unstable();
        assert_eq!(seen, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn empty_space_returns_none_immediately() {
        let q = RangeQueues::chunked(0, 4);
        let mut stats = StealStats::default();
        for me in 0..4 {
            assert_eq!(q.next_task(me, &mut stats), None);
        }
        assert_eq!(stats.attempts, 0, "no steal attempts on an empty space");
    }

    #[test]
    fn overshoot_does_not_corrupt_empty_state() {
        // Claiming from a drained slot repeatedly must stay `None` and
        // keep `remaining` at zero (the documented `lo = hi + 1` state).
        let q = RangeQueues::chunked(2, 1);
        let mut stats = StealStats::default();
        assert!(q.next_task(0, &mut stats).is_some());
        assert!(q.next_task(0, &mut stats).is_some());
        for _ in 0..5 {
            assert_eq!(q.next_task(0, &mut stats), None);
            assert_eq!(q.remaining(), 0);
        }
    }
}
