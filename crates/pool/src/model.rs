//! Model-check bodies for the pool's lock-free range splitting
//! (compiled only under the `model-check` feature; run by `sweep check`
//! and the `sweep-check` test suite).
//!
//! Each body is one deterministic scenario for
//! [`explore`](https://docs.rs/sweep-check): it builds a small
//! [`RangeQueues`], drains it from instrumented threads, and asserts
//! the linearizability postcondition (every index executed exactly
//! once). The atomics inside `RangeQueues` come from the
//! `sweep_check::sync::atomic` shim, so the checker's scheduler
//! preempts at every load/`fetch_add`/CAS — the exact transitions the
//! protocol's correctness argument (DESIGN §12) is about. A clean,
//! *complete* exploration of these bodies is the evidence the SW023
//! bit-identical-output gate rests on.

use std::sync::Arc;

use crate::range::{RangeQueues, StealStats};

/// Oracle mutex: deliberately plain `std::sync`, NOT the instrumented
/// shim — the tally is the test's bookkeeping, not part of the model
/// under check, and keeping it off the scheduler keeps the explored
/// state space small.
type Tally = std::sync::Mutex<Vec<u32>>;

fn drain(me: usize, queues: &RangeQueues, executed: &Tally) {
    let mut stats = StealStats::default();
    while let Some((i, _stolen)) = queues.next_task(me, &mut stats) {
        executed.lock().unwrap_or_else(|p| p.into_inner())[i] += 1;
    }
}

fn assert_each_once(executed: &Tally, what: &str) {
    let counts = executed.lock().unwrap_or_else(|p| p.into_inner());
    for (i, &c) in counts.iter().enumerate() {
        assert_eq!(c, 1, "pool model ({what}): index {i} executed {c} times");
    }
}

/// Two workers drain a three-index space (one owner-heavy chunk, so
/// the second worker must steal): every index executes exactly once
/// under every interleaving of the owner's `fetch_add` claims against
/// the thief's CAS splits.
pub fn drain_exactly_once() {
    const N: usize = 3;
    let queues = Arc::new(RangeQueues::chunked(N, 2));
    let executed = Arc::new(std::sync::Mutex::new(vec![0u32; N]));
    let (q2, e2) = (Arc::clone(&queues), Arc::clone(&executed));
    let thief = sweep_check::thread::spawn(move || drain(1, &q2, &e2));
    drain(0, &queues, &executed);
    let _ = thief.join();
    assert_each_once(&executed, "drain");
}

/// Owner and thief race for a single-index range: exactly one of them
/// gets the index (the `fetch_add` claim or the whole-range CAS steal
/// wins, never both), and the loser's sweep must terminate.
pub fn contended_single_task() {
    let queues = Arc::new(RangeQueues::chunked(1, 2));
    let executed = Arc::new(std::sync::Mutex::new(vec![0u32; 1]));
    let (q2, e2) = (Arc::clone(&queues), Arc::clone(&executed));
    let thief = sweep_check::thread::spawn(move || drain(1, &q2, &e2));
    drain(0, &queues, &executed);
    let _ = thief.join();
    assert_each_once(&executed, "contended");
}

/// Two thieves race to CAS-split the *same* victim word (worker 0's
/// slot holds all the work and worker 0 never runs): the losing CAS
/// must observe the split, rescan, and split the remainder — thief vs
/// thief contention, the case the drain body cannot reach.
pub fn contended_steal() {
    const N: usize = 2;
    let queues = Arc::new(RangeQueues::front_loaded(N, 3));
    let executed = Arc::new(std::sync::Mutex::new(vec![0u32; N]));
    let (qa, ea) = (Arc::clone(&queues), Arc::clone(&executed));
    let thief_a = sweep_check::thread::spawn(move || drain(1, &qa, &ea));
    drain(2, &queues, &executed);
    let _ = thief_a.join();
    assert_each_once(&executed, "steal-race");
}

#[cfg(test)]
mod tests {
    /// The production range queues come back clean and *complete* (the
    /// DFS exhausted the reduced schedule tree, not just a sample).
    #[test]
    fn pool_models_explore_clean_and_complete() {
        let cfg = sweep_check::Config {
            max_executions: 20_000,
            random_schedules: 16,
            ..sweep_check::Config::default()
        };
        let scenarios: [(&str, fn()); 3] = [
            ("pool.range.drain", super::drain_exactly_once),
            ("pool.range.contended", super::contended_single_task),
            ("pool.range.steal-race", super::contended_steal),
        ];
        for (name, body) in scenarios {
            let report = sweep_check::explore(name, &cfg, body);
            assert!(report.finding.is_none(), "{name}: {:?}", report.finding);
            assert!(report.lock_cycles.is_empty(), "{name} cycled");
            assert!(report.complete, "{name} did not exhaust: {report:?}");
        }
    }
}
