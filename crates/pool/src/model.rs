//! Model-check bodies for the pool's stealing deques (compiled only
//! under the `model-check` feature; run by `sweep check` and the
//! `sweep-check` test suite).
//!
//! Each body is one deterministic scenario for
//! [`explore`](https://docs.rs/sweep-check): it builds a small
//! [`StealDeques`], drains it from instrumented threads, and asserts
//! the linearizability postcondition (every index executed exactly
//! once). A clean, *complete* exploration of these bodies is the
//! evidence the SW023 bit-identical-output gate rests on.

use std::sync::Arc;

use crate::deque::StealDeques;

/// Oracle mutex: deliberately plain `std::sync`, NOT the instrumented
/// shim — the tally is the test's bookkeeping, not part of the model
/// under check, and keeping it off the scheduler keeps the explored
/// state space small.
type Tally = std::sync::Mutex<Vec<u32>>;

fn drain(me: usize, deques: &StealDeques, executed: &Tally) {
    while let Some((i, _stolen)) = deques.next_task(me) {
        executed.lock().unwrap_or_else(|p| p.into_inner())[i] += 1;
    }
}

/// Two workers drain a three-index space (one owner-heavy chunk, so
/// the second worker must steal): every index executes exactly once
/// under every interleaving.
pub fn drain_exactly_once() {
    const N: usize = 3;
    let deques = Arc::new(StealDeques::chunked(N, 2));
    let executed = Arc::new(std::sync::Mutex::new(vec![0u32; N]));
    let (d2, e2) = (Arc::clone(&deques), Arc::clone(&executed));
    let thief = sweep_check::thread::spawn(move || drain(1, &d2, &e2));
    drain(0, &deques, &executed);
    let _ = thief.join();
    let counts = executed.lock().unwrap_or_else(|p| p.into_inner());
    for (i, &c) in counts.iter().enumerate() {
        assert_eq!(c, 1, "pool model: index {i} executed {c} times");
    }
}

/// Both workers start empty-handed on a single-index space: exactly
/// one of them gets the task, the other's steal sweep must terminate.
pub fn contended_single_task() {
    let deques = Arc::new(StealDeques::chunked(1, 2));
    let executed = Arc::new(std::sync::Mutex::new(vec![0u32; 1]));
    let (d2, e2) = (Arc::clone(&deques), Arc::clone(&executed));
    let thief = sweep_check::thread::spawn(move || drain(1, &d2, &e2));
    drain(0, &deques, &executed);
    let _ = thief.join();
    let counts = executed.lock().unwrap_or_else(|p| p.into_inner());
    assert_eq!(
        counts[0], 1,
        "pool model: task executed {} times",
        counts[0]
    );
}

#[cfg(test)]
mod tests {
    /// The production deques come back clean and *complete* (the DFS
    /// exhausted the reduced schedule tree, not just a sample of it).
    #[test]
    fn pool_models_explore_clean_and_complete() {
        let cfg = sweep_check::Config {
            max_executions: 20_000,
            random_schedules: 16,
            ..sweep_check::Config::default()
        };
        let scenarios: [(&str, fn()); 2] = [
            ("pool.deque.drain", super::drain_exactly_once),
            ("pool.deque.contended", super::contended_single_task),
        ];
        for (name, body) in scenarios {
            let report = sweep_check::explore(name, &cfg, body);
            assert!(report.finding.is_none(), "{name}: {:?}", report.finding);
            assert!(report.lock_cycles.is_empty(), "{name} cycled");
            assert!(report.complete, "{name} did not exhaust: {report:?}");
        }
    }
}
