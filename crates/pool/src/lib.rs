//! # sweep-pool
//!
//! A dependency-free, `unsafe`-free lock-free thread pool for the
//! sweep-scheduling workspace.
//!
//! The pool parallelizes *index spaces*: [`ThreadPool::par_map`] splits
//! `0..n` into one contiguous range per worker, each worker claims the
//! front of its own range with a relaxed `fetch_add`, and idle workers
//! CAS-steal the **back half** of the largest remaining victim range —
//! work-stealing with a single packed `AtomicU64` per worker instead of
//! a lock or a Chase–Lev ring buffer (see [`range::RangeQueues`] for
//! the protocol and its linearization argument). No mutex is taken on
//! any task path: the common case is one uncontended `fetch_add` per
//! task.
//!
//! Workers run under [`std::thread::scope`], so closures may borrow the
//! caller's stack (no `'static` bound, no `Arc` plumbing), every task
//! is joined before `par_map` returns (a pool can never shut down with
//! queued tasks still pending), and a panicking task propagates to the
//! caller instead of being lost.
//!
//! ## Determinism
//!
//! Results are returned **ordered by input index**, regardless of which
//! worker executed which index or in what interleaving. As long as the
//! task closure is a pure function of its index (the per-trial
//! seed-splitting in `sweep-core` guarantees this for RNG-bearing
//! work), the output of `par_map` is bit-identical at every worker
//! count, including the sequential `threads == 1` path.
//!
//! ## Per-worker scratch
//!
//! [`ThreadPool::par_map_scratch`] additionally threads one mutable
//! scratch value per worker through every task that worker executes —
//! the hook `sweep-core` uses to reuse trial arenas across trials so
//! steady state allocates nothing per trial. Determinism is unaffected:
//! scratch is an allocation cache, never data flow between indices.
//!
//! ```
//! let pool = sweep_pool::ThreadPool::new(4);
//! let squares = pool.par_map(&[1u64, 2, 3, 4], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

use std::sync::mpsc;
use std::thread;

use sweep_check::sync::atomic::{AtomicUsize, Ordering};
use sweep_telemetry as telemetry;

#[cfg(feature = "model-check")]
pub mod model;
pub mod range;

pub use range::{RangeQueues, StealStats};

/// Requested global worker count; `0` means "not set, use the machine".
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Number of hardware threads reported by the OS (at least 1).
pub fn available_threads() -> usize {
    thread::available_parallelism().map_or(1, |n| n.get())
}

/// Sets the process-wide default worker count used by [`global`].
///
/// `1` forces every pool consumer onto the inline sequential path;
/// `0` resets to [`available_threads`]. The CLI's `--threads N` flag
/// and the bench harness both route through here.
pub fn set_global_threads(threads: usize) {
    GLOBAL_THREADS.store(threads, Ordering::Relaxed);
}

/// The process-wide default worker count: the last
/// [`set_global_threads`] value, or [`available_threads`] if unset.
pub fn global_threads() -> usize {
    match GLOBAL_THREADS.load(Ordering::Relaxed) {
        0 => available_threads(),
        n => n,
    }
}

/// A pool sized by the process-wide default (see [`set_global_threads`]).
pub fn global() -> ThreadPool {
    ThreadPool::new(global_threads())
}

/// A handle describing how many workers to fan scoped parallel calls
/// across.
///
/// The handle itself owns no threads: each [`par_map`](Self::par_map)
/// call spawns its workers under [`std::thread::scope`] and joins them
/// before returning. That is what makes borrowing task closures legal
/// under `unsafe_code = "deny"`, and it bounds the cost of the design:
/// one thread-spawn per worker per call, irrelevant for the
/// millisecond-scale tasks this workspace feeds it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// A pool with exactly `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> ThreadPool {
        ThreadPool {
            threads: threads.max(1),
        }
    }

    /// A pool sized to [`available_threads`].
    pub fn auto() -> ThreadPool {
        ThreadPool::new(available_threads())
    }

    /// The worker count this pool fans out to.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// True when this pool runs everything inline on the caller thread.
    pub fn is_sequential(&self) -> bool {
        self.threads == 1
    }

    /// Maps `f` over `items`, returning results ordered by input index.
    ///
    /// `f` receives `(index, &item)` and may borrow from the caller's
    /// stack. Execution order across workers is nondeterministic; the
    /// returned `Vec` is not — element `i` is always `f(i, &items[i])`.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.run(items.len(), &|| (), &|i, _: &mut ()| f(i, &items[i]))
    }

    /// Maps `f` over the index range `0..n`, ordered by index.
    pub fn par_map_range<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        self.run(n, &|| (), &|i, _: &mut ()| f(i))
    }

    /// Runs `f` for every item; results (if any) are discarded.
    pub fn par_for_each<T, F>(&self, items: &[T], f: F)
    where
        T: Sync,
        F: Fn(usize, &T) + Sync,
    {
        self.run(items.len(), &|| (), &|i, _: &mut ()| f(i, &items[i]));
    }

    /// Maps `f` over `0..n` with one reusable scratch value per worker.
    ///
    /// `init` builds a fresh scratch for each worker (and once for the
    /// sequential path); `f(i, &mut scratch)` may fill and reuse it
    /// freely across the indices that worker happens to execute. The
    /// result for index `i` must remain a pure function of `i` — the
    /// scratch is an allocation cache, not a communication channel —
    /// and then the output is bit-identical at every worker count.
    pub fn par_map_scratch<S, R, FI, F>(&self, n: usize, init: FI, f: F) -> Vec<R>
    where
        R: Send,
        FI: Fn() -> S + Sync,
        F: Fn(usize, &mut S) -> R + Sync,
    {
        self.run(n, &init, &f)
    }

    fn run<S, R, FI, F>(&self, n: usize, init: &FI, f: &F) -> Vec<R>
    where
        R: Send,
        FI: Fn() -> S + Sync,
        F: Fn(usize, &mut S) -> R + Sync,
    {
        let workers = self.threads.min(n);
        if workers <= 1 {
            // Sequential reference path: same closure, same order. The
            // parallel path must be bit-identical to this one.
            let mut scratch = init();
            return (0..n).map(|i| f(i, &mut scratch)).collect();
        }

        // One packed range per worker, seeded with a contiguous chunk
        // of the index space (see `range::RangeQueues` for the lock-free
        // discipline — and for how the model checker explores it).
        let queues = RangeQueues::chunked(n, workers);

        let (tx, rx) = mpsc::channel::<Batch<R>>();
        thread::scope(|scope| {
            for w in 1..workers {
                let tx = tx.clone();
                let queues = &queues;
                scope.spawn(move || {
                    let _ = tx.send(drain_ranges(w, queues, init, f));
                });
            }
            // The caller thread is worker 0 — it participates instead
            // of blocking, so `threads == 2` really means two workers.
            let _ = tx.send(drain_ranges(0, &queues, init, f));
            drop(tx);
        });

        // `thread::scope` has joined every worker and re-raised any
        // task panic by this point; the channel is fully drained below.
        let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(n).collect();
        for batch in rx {
            for (i, r) in batch.results {
                debug_assert!(slots[i].is_none(), "pool executed index {i} twice");
                slots[i] = Some(r);
            }
        }
        slots
            .into_iter()
            .enumerate()
            .map(|(i, r)| r.unwrap_or_else(|| unreachable!("pool lost index {i}")))
            .collect()
    }
}

impl Default for ThreadPool {
    /// Equivalent to [`global`]: sized by the process-wide setting.
    fn default() -> ThreadPool {
        global()
    }
}

struct Batch<R> {
    results: Vec<(usize, R)>,
}

/// Worker loop: claim the front of our own range, then CAS-steal the
/// back half of the largest victim range (see
/// [`RangeQueues::next_task`]). Exits when every range is empty — no
/// task spawns further tasks, so an empty sweep means the index space
/// is exhausted. On exit the worker records its counters and parks at
/// the scope join:
///
/// * `pool.tasks` — indices executed by this worker;
/// * `pool.steals` — successful back-half steals;
/// * `pool.steal_attempts` / `pool.steal_failures` — CAS splits tried
///   and CAS splits lost to a race (a failure is not wasted work: it
///   means somebody else made progress);
/// * `pool.parked` — workers that finished their sweep (one per worker
///   per parallel call; `parked / tasks` ≫ 0 means tasks are too small
///   to be worth fanning out).
fn drain_ranges<S, R, FI, F>(me: usize, queues: &RangeQueues, init: &FI, f: &F) -> Batch<R>
where
    FI: Fn() -> S,
    F: Fn(usize, &mut S) -> R,
{
    let mut scratch = init();
    let mut results = Vec::new();
    let mut steals = 0u64;
    let mut stats = StealStats::default();
    while let Some((i, stolen)) = queues.next_task(me, &mut stats) {
        steals += u64::from(stolen);
        results.push((i, f(i, &mut scratch)));
    }
    telemetry::counter_add("pool.tasks", results.len() as u64);
    if steals > 0 {
        telemetry::counter_add("pool.steals", steals);
    }
    if stats.attempts > 0 {
        telemetry::counter_add("pool.steal_attempts", stats.attempts);
    }
    if stats.failures > 0 {
        telemetry::counter_add("pool.steal_failures", stats.failures);
    }
    telemetry::counter_add("pool.parked", 1);
    Batch { results }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn mix(i: usize) -> u64 {
        // SplitMix64 finalizer: cheap, but unpredictable enough that a
        // lost or duplicated index would change the checksum.
        let mut z = (i as u64).wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    #[test]
    fn par_map_matches_sequential_at_every_width() {
        for n in [0usize, 1, 2, 7, 64, 257, 1000] {
            let items: Vec<u64> = (0..n as u64).collect();
            let expect: Vec<u64> = items.iter().enumerate().map(|(i, &x)| mix(i) ^ x).collect();
            for threads in [1usize, 2, 3, 4, 8] {
                let got = ThreadPool::new(threads).par_map(&items, |i, &x| mix(i) ^ x);
                assert_eq!(got, expect, "n={n} threads={threads}");
            }
        }
    }

    #[test]
    fn par_map_range_is_index_ordered() {
        let got = ThreadPool::new(4).par_map_range(100, |i| i * 2);
        assert_eq!(got, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_for_each_visits_every_index_once() {
        let items: Vec<u32> = (0..500).collect();
        let sum = AtomicU64::new(0);
        ThreadPool::new(4).par_for_each(&items, |i, &x| {
            sum.fetch_add(mix(i).wrapping_add(x as u64), Ordering::Relaxed);
        });
        let expect: u64 = items.iter().enumerate().fold(0u64, |a, (i, &x)| {
            a.wrapping_add(mix(i).wrapping_add(x as u64))
        });
        assert_eq!(sum.load(Ordering::Relaxed), expect);
    }

    #[test]
    fn borrows_caller_stack() {
        let base = [10u64, 20, 30];
        let pool = ThreadPool::new(2);
        let got = pool.par_map_range(3, |i| base[i] + 1);
        assert_eq!(got, vec![11, 21, 31]);
    }

    #[test]
    fn par_map_scratch_matches_sequential_and_reuses_buffers() {
        // Scratch carries a buffer across tasks; the result for each
        // index must still be a pure function of the index, and the
        // scratch must visibly persist within a worker (its capacity
        // only grows).
        for threads in [1usize, 2, 4, 8] {
            let got = ThreadPool::new(threads).par_map_scratch(
                300,
                Vec::<u64>::new,
                |i, buf: &mut Vec<u64>| {
                    buf.clear();
                    buf.extend((0..=i as u64).map(|x| mix(x as usize)));
                    buf.iter().fold(0u64, |a, &x| a.wrapping_add(x))
                },
            );
            let expect: Vec<u64> = (0..300)
                .map(|i| (0..=i).fold(0u64, |a, x| a.wrapping_add(mix(x))))
                .collect();
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn stress_pool_100_rounds() {
        // The loom-free CI smoke: hammer the pool with uneven task
        // sizes so stealing actually happens, and checksum every round.
        let pool = ThreadPool::new(4);
        for round in 0..100usize {
            let n = 1 + (round * 37) % 211;
            let got = pool.par_map_range(n, |i| {
                // Skew task cost so early workers finish first and steal.
                let spin = (mix(i) % 64) as u32;
                let mut acc = mix(i ^ round);
                for _ in 0..spin {
                    acc = acc.rotate_left(7) ^ mix(acc as usize & 0xffff);
                }
                acc
            });
            let expect: Vec<u64> = (0..n)
                .map(|i| {
                    let spin = (mix(i) % 64) as u32;
                    let mut acc = mix(i ^ round);
                    for _ in 0..spin {
                        acc = acc.rotate_left(7) ^ mix(acc as usize & 0xffff);
                    }
                    acc
                })
                .collect();
            assert_eq!(got, expect, "round {round} n={n}");
        }
    }

    #[test]
    fn steal_storm_front_loaded_100_rounds() {
        // Adversarial steal pressure: every index starts in worker 0's
        // range, so workers 1..w can make progress only by CAS-stealing.
        // Checksummed against the sequential oracle every round.
        for round in 0..100usize {
            let n = 1 + (round * 53) % 181;
            let workers = 2 + round % 7;
            let queues = RangeQueues::front_loaded(n, workers);
            let (tx, rx) = mpsc::channel::<Vec<(usize, u64)>>();
            thread::scope(|scope| {
                for w in 0..workers {
                    let tx = tx.clone();
                    let queues = &queues;
                    scope.spawn(move || {
                        let mut stats = StealStats::default();
                        let mut got = Vec::new();
                        while let Some((i, _)) = queues.next_task(w, &mut stats) {
                            got.push((i, mix(i ^ round)));
                        }
                        let _ = tx.send(got);
                    });
                }
                drop(tx);
            });
            let mut seen = vec![0u32; n];
            for batch in rx {
                for (i, v) in batch {
                    assert_eq!(v, mix(i ^ round), "round {round} index {i}");
                    seen[i] += 1;
                }
            }
            assert!(
                seen.iter().all(|&c| c == 1),
                "round {round}: indices executed other than once: {seen:?}"
            );
        }
    }

    // Depending on which worker ends up executing index 13, the caller
    // sees either the original payload or the scope's generic
    // "a scoped thread panicked" — the guarantee is propagation, not
    // the payload, so no `expected` substring here.
    #[test]
    #[should_panic]
    fn task_panic_propagates() {
        ThreadPool::new(4).par_map_range(64, |i| {
            if i == 13 {
                panic!("task 13 exploded");
            }
            i
        });
    }

    #[test]
    fn global_threads_roundtrip() {
        // Other tests use explicit pools, so toggling the global here
        // is safe; restore the auto default before returning.
        set_global_threads(3);
        assert_eq!(global_threads(), 3);
        assert_eq!(global().threads(), 3);
        set_global_threads(0);
        assert_eq!(global_threads(), available_threads());
        assert!(available_threads() >= 1);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = ThreadPool::new(0);
        assert!(pool.is_sequential());
        assert_eq!(pool.par_map_range(4, |i| i), vec![0, 1, 2, 3]);
    }
}
