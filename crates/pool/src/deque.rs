//! The pool's work-stealing deques, extracted as a standalone type so
//! the model checker (`sweep-check`) can explore their interleavings
//! directly.
//!
//! The synchronization primitives come from `sweep_check::sync`: in
//! normal builds that is a literal re-export of `std::sync` (zero
//! cost), while under the `model-check` feature every lock/unlock is a
//! scheduler yield point. The stealing discipline is unchanged from
//! the original inline implementation: owners pop their own deque from
//! the **front**, thieves pop a victim's from the **back**, so the two
//! only contend when a deque is nearly empty.

use std::collections::VecDeque;

use sweep_check::sync::Mutex;

/// One `Mutex<VecDeque<usize>>` per worker over a chunked index space.
pub struct StealDeques {
    deques: Vec<Mutex<VecDeque<usize>>>,
}

impl StealDeques {
    /// Deques for `workers` workers (at least 1), seeded with
    /// contiguous chunks of `0..n` so owners sweep cache-adjacent work
    /// and thieves take from the far end of somebody else's chunk.
    pub fn chunked(n: usize, workers: usize) -> StealDeques {
        let workers = workers.max(1);
        StealDeques {
            deques: (0..workers)
                .map(|w| Mutex::new((w * n / workers..(w + 1) * n / workers).collect()))
                .collect(),
        }
    }

    /// The number of worker deques.
    pub fn workers(&self) -> usize {
        self.deques.len()
    }

    /// The next index for worker `me`: its own deque's front, or —
    /// once that is empty — the back of another worker's deque,
    /// round-robin starting at the next worker. Returns the index and
    /// whether it was stolen; `None` means every deque was empty at
    /// the moment it was inspected (no task spawns further tasks, so
    /// an empty sweep means the index space is exhausted).
    pub fn next_task(&self, me: usize) -> Option<(usize, bool)> {
        if let Some(i) = with_deque(&self.deques[me], VecDeque::pop_front) {
            return Some((i, false));
        }
        let workers = self.deques.len();
        (1..workers).find_map(|hop| {
            with_deque(&self.deques[(me + hop) % workers], VecDeque::pop_back).map(|i| (i, true))
        })
    }
}

/// Locks a deque, riding through poison: a panicked worker can leave
/// the mutex poisoned, but a `VecDeque<usize>` has no invariant a
/// panic could break, and the panic itself is re-raised by the scope.
fn with_deque<R>(m: &Mutex<VecDeque<usize>>, f: impl FnOnce(&mut VecDeque<usize>) -> R) -> R {
    let mut guard = match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    f(&mut guard)
}
