//! The thread-safe span/metric collector and its RAII span guard.

use std::borrow::Cow;
use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

use crate::metrics::{Histogram, HistogramSnapshot};

/// Which clock a span's timestamps live on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Clock {
    /// Real monotonic time, microseconds since the collector's epoch.
    Wall,
    /// Simulated time (e.g. the async executor's event clock), scaled to
    /// microseconds so trace viewers render it alongside wall time.
    Virtual,
}

/// One closed span: a named interval on a track.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Dotted taxonomy name, e.g. `sched.random_delay.delay_draw`.
    pub name: Cow<'static, str>,
    /// Lane: the recording thread (wall clock) or simulated processor
    /// (virtual clock).
    pub track: u32,
    /// Clock the timestamps are on.
    pub clock: Clock,
    /// Start, microseconds since epoch (wall) or since t=0 (virtual).
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Nesting depth at open time (0 = top level). Virtual spans are
    /// always depth 0.
    pub depth: u32,
}

impl SpanEvent {
    /// The taxonomy category: the segment before the first `.`
    /// (`sched.random_delay` → `sched`).
    pub fn category(&self) -> &str {
        self.name.split('.').next().unwrap_or("")
    }
}

/// Point-in-time copy of a collector's contents, consumed by the
/// exporters in [`crate::export`].
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// All closed spans, in close order.
    pub spans: Vec<SpanEvent>,
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram contents by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

/// Aggregate over all closed spans sharing one name.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanSummary {
    /// The shared span name.
    pub name: String,
    /// Number of spans with this name.
    pub count: usize,
    /// Total duration, microseconds.
    pub total_us: u64,
    /// Median duration, microseconds.
    pub p50_us: u64,
    /// 99th-percentile duration, microseconds.
    pub p99_us: u64,
}

impl Snapshot {
    /// Distinct span categories present, sorted.
    pub fn categories(&self) -> Vec<String> {
        let mut cats: Vec<String> = self
            .spans
            .iter()
            .map(|s| s.category().to_string())
            .collect();
        cats.sort();
        cats.dedup();
        cats
    }

    /// Per-name span aggregates (count, total, p50, p99), sorted by name.
    /// This is the "per-phase" summary the bench harness persists.
    pub fn span_summaries(&self) -> Vec<SpanSummary> {
        let mut by_name: BTreeMap<&str, Vec<u64>> = BTreeMap::new();
        for s in &self.spans {
            by_name.entry(&s.name).or_default().push(s.dur_us);
        }
        by_name
            .into_iter()
            .map(|(name, mut durs)| {
                durs.sort_unstable();
                let count = durs.len();
                let q = |p: f64| durs[((p * (count - 1) as f64).round() as usize).min(count - 1)];
                SpanSummary {
                    name: name.to_string(),
                    count,
                    total_us: durs.iter().sum(),
                    p50_us: q(0.50),
                    p99_us: q(0.99),
                }
            })
            .collect()
    }
}

#[derive(Default)]
struct Inner {
    spans: Vec<SpanEvent>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// A thread-safe telemetry sink. Most code uses the process-global
/// instance through [`crate::global`] and the free functions / the
/// [`crate::span!`] macro; tests may build private collectors.
pub struct Collector {
    enabled: AtomicBool,
    epoch: Instant,
    inner: Mutex<Inner>,
}

impl Default for Collector {
    fn default() -> Self {
        Collector::new()
    }
}

/// Counter that tallies histogram samples rejected for being
/// non-finite (see [`Collector::histogram_record`]).
pub const DROPPED_SAMPLES: &str = "telemetry.dropped_samples";

/// Distinct wall-clock track ids, one per recording thread.
static NEXT_TRACK: AtomicU32 = AtomicU32::new(0);

thread_local! {
    static TRACK: Cell<Option<u32>> = const { Cell::new(None) };
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

fn thread_track() -> u32 {
    TRACK.with(|t| match t.get() {
        Some(id) => id,
        None => {
            let id = NEXT_TRACK.fetch_add(1, Ordering::Relaxed);
            t.set(Some(id));
            id
        }
    })
}

impl Collector {
    /// An empty, *disabled* collector whose epoch is "now".
    pub fn new() -> Collector {
        Collector {
            enabled: AtomicBool::new(false),
            epoch: Instant::now(),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Turns recording on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether the collector is recording. One relaxed atomic load — this
    /// is the entire disabled-path cost of every instrumentation point.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Microseconds elapsed since the collector's epoch.
    #[inline]
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        // A panic while holding the lock poisons it; the data is plain
        // values, so recovering the guard is always safe here.
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Opens a wall-clock span; it records when the guard drops. When the
    /// collector is disabled this returns an inert guard without touching
    /// any shared state.
    #[inline]
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        if !self.is_enabled() {
            return SpanGuard {
                collector: None,
                name,
                start_us: 0,
                track: 0,
                depth: 0,
            };
        }
        let depth = DEPTH.with(|d| {
            let v = d.get();
            d.set(v + 1);
            v
        });
        SpanGuard {
            collector: Some(self),
            name,
            start_us: self.now_us(),
            track: thread_track(),
            depth,
        }
    }

    fn record_span(&self, ev: SpanEvent) {
        // Auto-aggregate wall-span durations so Prometheus output always
        // carries latency histograms wherever spans fire.
        if ev.clock == Clock::Wall {
            let key = format!("span.{}", ev.name);
            let secs = ev.dur_us as f64 / 1e6;
            let mut inner = self.lock();
            inner.histograms.entry(key).or_default().record(secs);
            inner.spans.push(ev);
        } else {
            self.lock().spans.push(ev);
        }
    }

    /// Records a closed span on the simulated clock (`start_s`/`dur_s`
    /// in simulated seconds, `track` = simulated processor).
    pub fn virtual_span(
        &self,
        name: impl Into<Cow<'static, str>>,
        track: u32,
        start_s: f64,
        dur_s: f64,
    ) {
        if !self.is_enabled() {
            return;
        }
        self.record_span(SpanEvent {
            name: name.into(),
            track,
            clock: Clock::Virtual,
            start_us: (start_s * 1e6).round().max(0.0) as u64,
            dur_us: (dur_s * 1e6).round().max(0.0) as u64,
            depth: 0,
        });
    }

    /// Adds `delta` to the named counter.
    #[inline]
    pub fn counter_add(&self, name: &str, delta: u64) {
        if !self.is_enabled() {
            return;
        }
        let mut inner = self.lock();
        match inner.counters.get_mut(name) {
            Some(v) => *v += delta,
            None => {
                inner.counters.insert(name.to_string(), delta);
            }
        }
    }

    /// Sets the named gauge.
    #[inline]
    pub fn gauge_set(&self, name: &str, value: f64) {
        if !self.is_enabled() {
            return;
        }
        let mut inner = self.lock();
        match inner.gauges.get_mut(name) {
            Some(v) => *v = value,
            None => {
                inner.gauges.insert(name.to_string(), value);
            }
        }
    }

    /// Raises the named gauge to `value` if larger — peak tracking
    /// (e.g. maximum ready-queue depth).
    #[inline]
    pub fn gauge_max(&self, name: &str, value: f64) {
        if !self.is_enabled() {
            return;
        }
        let mut inner = self.lock();
        match inner.gauges.get_mut(name) {
            Some(v) => *v = v.max(value),
            None => {
                inner.gauges.insert(name.to_string(), value);
            }
        }
    }

    /// Records one sample into the named histogram. Non-finite samples
    /// (NaN, ±inf — typically from a zero-duration division upstream)
    /// are **dropped** rather than recorded, and tallied in the
    /// `telemetry.dropped_samples` counter so the loss is visible.
    #[inline]
    pub fn histogram_record(&self, name: &str, value: f64) {
        if !self.is_enabled() {
            return;
        }
        let mut inner = self.lock();
        if !value.is_finite() {
            match inner.counters.get_mut(DROPPED_SAMPLES) {
                Some(v) => *v += 1,
                None => {
                    inner.counters.insert(DROPPED_SAMPLES.to_string(), 1);
                }
            }
            return;
        }
        match inner.histograms.get_mut(name) {
            Some(h) => h.record(value),
            None => {
                let mut h = Histogram::default();
                h.record(value);
                inner.histograms.insert(name.to_string(), h);
            }
        }
    }

    /// Reads the current value of a counter (0 if it has never been
    /// incremented). Used for cheap before/after attribution — e.g.
    /// charging `pool.tasks` deltas to a request.
    pub fn counter_value(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Clones the current contents of one histogram, if present.
    pub fn histogram_value(&self, name: &str) -> Option<HistogramSnapshot> {
        self.lock().histograms.get(name).map(Histogram::snapshot)
    }

    /// Clones the current contents.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.lock();
        Snapshot {
            spans: inner.spans.clone(),
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
        }
    }

    /// Clears everything recorded so far; the enabled flag is unchanged.
    pub fn reset(&self) {
        let mut inner = self.lock();
        *inner = Inner::default();
    }
}

/// RAII wall-clock span handle returned by [`Collector::span`]; records
/// the interval when dropped. Inert (and allocation-free) when the
/// collector was disabled at open time.
pub struct SpanGuard<'a> {
    collector: Option<&'a Collector>,
    name: &'static str,
    start_us: u64,
    track: u32,
    depth: u32,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let Some(c) = self.collector else {
            return;
        };
        DEPTH.with(|d| d.set(self.depth));
        let end = c.now_us();
        c.record_span(SpanEvent {
            name: Cow::Borrowed(self.name),
            track: self.track,
            clock: Clock::Wall,
            start_us: self.start_us,
            dur_us: end.saturating_sub(self.start_us),
            depth: self.depth,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_collector_spans_nest_and_time() {
        let c = Collector::new();
        c.set_enabled(true);
        {
            let _a = c.span("a.outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _b = c.span("a.outer.inner");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        let snap = c.snapshot();
        assert_eq!(snap.spans.len(), 2);
        // Inner closes first.
        let inner = &snap.spans[0];
        let outer = &snap.spans[1];
        assert_eq!(inner.name, "a.outer.inner");
        assert_eq!(inner.depth, 1);
        assert_eq!(outer.depth, 0);
        assert!(outer.dur_us >= inner.dur_us);
        assert!(inner.start_us >= outer.start_us);
        assert_eq!(inner.track, outer.track);
        assert_eq!(outer.category(), "a");
    }

    #[test]
    fn disabled_collector_is_inert() {
        let c = Collector::new();
        {
            let _s = c.span("x.y");
            c.counter_add("c", 1);
            c.gauge_max("g", 2.0);
            c.histogram_record("h", 3.0);
            c.virtual_span("v", 0, 0.0, 1.0);
        }
        let snap = c.snapshot();
        assert!(snap.spans.is_empty());
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
    }

    #[test]
    fn counters_gauges_histograms_accumulate() {
        let c = Collector::new();
        c.set_enabled(true);
        c.counter_add("c", 1);
        c.counter_add("c", 4);
        c.gauge_set("g", 7.0);
        c.gauge_set("g", 3.0);
        c.gauge_max("p", 1.0);
        c.gauge_max("p", 9.0);
        c.gauge_max("p", 2.0);
        for v in [1.0, 2.0, 3.0] {
            c.histogram_record("h", v);
        }
        let snap = c.snapshot();
        assert_eq!(snap.counters["c"], 5);
        assert_eq!(snap.gauges["g"], 3.0);
        assert_eq!(snap.gauges["p"], 9.0);
        assert_eq!(snap.histograms["h"].count(), 3);
    }

    #[test]
    fn virtual_spans_scale_to_microseconds() {
        let c = Collector::new();
        c.set_enabled(true);
        c.virtual_span("sim.task", 3, 1.5, 0.25);
        let snap = c.snapshot();
        assert_eq!(snap.spans.len(), 1);
        let s = &snap.spans[0];
        assert_eq!(s.clock, Clock::Virtual);
        assert_eq!(s.track, 3);
        assert_eq!(s.start_us, 1_500_000);
        assert_eq!(s.dur_us, 250_000);
    }

    #[test]
    fn non_finite_histogram_samples_are_dropped_and_counted() {
        let c = Collector::new();
        c.set_enabled(true);
        c.histogram_record("h", 1.0);
        c.histogram_record("h", f64::NAN);
        c.histogram_record("h", f64::INFINITY);
        c.histogram_record("h", f64::NEG_INFINITY);
        c.histogram_record("h", 2.0);
        let snap = c.snapshot();
        // Only the two finite samples landed; bucket math stays honest.
        assert_eq!(snap.histograms["h"].count(), 2);
        assert_eq!(snap.counters[DROPPED_SAMPLES], 3);
        assert_eq!(c.counter_value(DROPPED_SAMPLES), 3);
    }

    #[test]
    fn counter_and_histogram_value_accessors() {
        let c = Collector::new();
        c.set_enabled(true);
        assert_eq!(c.counter_value("absent"), 0);
        c.counter_add("c", 7);
        assert_eq!(c.counter_value("c"), 7);
        assert!(c.histogram_value("absent").is_none());
        c.histogram_record("h", 0.5);
        assert_eq!(c.histogram_value("h").map(|h| h.count()), Some(1));
    }

    #[test]
    fn reset_clears_but_keeps_enabled() {
        let c = Collector::new();
        c.set_enabled(true);
        c.counter_add("c", 1);
        c.reset();
        assert!(c.is_enabled());
        assert!(c.snapshot().counters.is_empty());
    }

    #[test]
    fn span_summaries_aggregate_by_name() {
        let c = Collector::new();
        c.set_enabled(true);
        for i in 0..5 {
            c.virtual_span("sim.step", 0, i as f64, 1.0 + i as f64);
        }
        let snap = c.snapshot();
        let sums = snap.span_summaries();
        assert_eq!(sums.len(), 1);
        assert_eq!(sums[0].name, "sim.step");
        assert_eq!(sums[0].count, 5);
        assert_eq!(
            sums[0].total_us,
            (1.0f64 + 2.0 + 3.0 + 4.0 + 5.0) as u64 * 1_000_000
        );
        assert_eq!(sums[0].p50_us, 3_000_000);
        assert_eq!(sums[0].p99_us, 5_000_000);
    }
}
