//! Exporters: Chrome `trace_event` JSON, Prometheus text exposition,
//! and a human-readable text tree — plus validators used by tests and
//! the CI trace job.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::collector::{Clock, Snapshot};
use crate::json::{self, Value};

/// Wall-clock events' Chrome trace process id.
const PID_WALL: u32 = 1;
/// Virtual-clock (simulated time) events' process id.
const PID_VIRTUAL: u32 = 2;

/// Renders the snapshot as Chrome `trace_event` JSON (the "JSON object
/// format"), loadable in `chrome://tracing` and Perfetto. Wall-clock
/// spans appear under process 1 ("wall clock", one thread lane per
/// recording thread); virtual spans under process 2 ("simulated time",
/// one lane per simulated processor).
pub fn to_chrome_trace(snapshot: &Snapshot) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    let mut push = |line: String, out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push_str(",\n");
        }
        out.push_str(&line);
    };
    for (pid, label) in [(PID_WALL, "wall clock"), (PID_VIRTUAL, "simulated time")] {
        push(
            format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":\"{label}\"}}}}"
            ),
            &mut out,
        );
    }
    for s in &snapshot.spans {
        let pid = match s.clock {
            Clock::Wall => PID_WALL,
            Clock::Virtual => PID_VIRTUAL,
        };
        push(
            format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":{pid},\
                 \"tid\":{},\"ts\":{},\"dur\":{}}}",
                json::escape(&s.name),
                json::escape(s.category()),
                s.track,
                s.start_us,
                s.dur_us,
            ),
            &mut out,
        );
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Shape summary returned by [`validate_chrome_trace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChromeTraceInfo {
    /// Number of complete (`ph == "X"`) span events.
    pub spans: usize,
    /// Distinct `cat` values among span events, sorted.
    pub categories: Vec<String>,
}

/// Parses a Chrome trace document and checks its shape: a `traceEvents`
/// array whose `"X"` events all carry `name`, `ts`, and `dur`. Errors on
/// malformed JSON or an event-free trace.
pub fn validate_chrome_trace(text: &str) -> Result<ChromeTraceInfo, String> {
    let doc = json::parse(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .ok_or("missing traceEvents array")?;
    let mut spans = 0usize;
    let mut categories = BTreeSet::new();
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        if ph != "X" {
            continue;
        }
        ev.get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing name"))?;
        for field in ["ts", "dur"] {
            ev.get(field)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("event {i}: missing numeric {field}"))?;
        }
        if let Some(cat) = ev.get("cat").and_then(Value::as_str) {
            categories.insert(cat.to_string());
        }
        spans += 1;
    }
    if spans == 0 {
        return Err("trace contains no span events".to_string());
    }
    Ok(ChromeTraceInfo {
        spans,
        categories: categories.into_iter().collect(),
    })
}

/// Maps a dotted telemetry name onto the Prometheus metric-name grammar
/// (`sweep_` prefix, `[a-zA-Z0-9_]` body).
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 6);
    out.push_str("sweep_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Renders counters, gauges, and histograms in the Prometheus text
/// exposition format (version 0.0.4). Counter names get a `_total`
/// suffix; histogram bucket lines are emitted cumulatively at the
/// boundaries where counts change, plus the mandatory `+Inf`.
pub fn to_prometheus(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let mut p = prom_name(name);
        if !p.ends_with("_total") {
            p.push_str("_total");
        }
        let _ = writeln!(out, "# TYPE {p} counter");
        let _ = writeln!(out, "{p} {value}");
    }
    for (name, value) in &snapshot.gauges {
        let p = prom_name(name);
        let _ = writeln!(out, "# TYPE {p} gauge");
        let _ = writeln!(out, "{p} {value}");
    }
    for (name, h) in &snapshot.histograms {
        let p = prom_name(name);
        let _ = writeln!(out, "# TYPE {p} histogram");
        for (bound, cum) in h.cumulative_buckets() {
            let _ = writeln!(out, "{p}_bucket{{le=\"{bound}\"}} {cum}");
        }
        let _ = writeln!(out, "{p}_bucket{{le=\"+Inf\"}} {}", h.count());
        let _ = writeln!(out, "{p}_sum {}", h.sum());
        let _ = writeln!(out, "{p}_count {}", h.count());
    }
    out
}

/// Checks `text` against the Prometheus text exposition grammar: every
/// line is a comment (`# TYPE` / `# HELP` / `#` note), blank, or a
/// `name[{labels}] value` sample with a parseable float value.
pub fn validate_prometheus(text: &str) -> Result<(), String> {
    fn is_name(s: &str) -> bool {
        !s.is_empty()
            && s.chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
            && s.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }
    for (i, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // Split off an optional {labels} block.
        let (name_part, rest) = match line.find('{') {
            Some(open) => {
                let close = line[open..]
                    .find('}')
                    .map(|c| open + c)
                    .ok_or_else(|| format!("line {}: unclosed label block", i + 1))?;
                let labels = &line[open + 1..close];
                for pair in labels.split(',').filter(|p| !p.is_empty()) {
                    let (k, v) = pair
                        .split_once('=')
                        .ok_or_else(|| format!("line {}: bad label '{pair}'", i + 1))?;
                    if !is_name(k) || !v.starts_with('"') || !v.ends_with('"') || v.len() < 2 {
                        return Err(format!("line {}: bad label '{pair}'", i + 1));
                    }
                }
                (&line[..open], &line[close + 1..])
            }
            None => match line.split_once(' ') {
                Some((n, r)) => (n, r),
                None => return Err(format!("line {}: missing value", i + 1)),
            },
        };
        if !is_name(name_part) {
            return Err(format!("line {}: bad metric name '{name_part}'", i + 1));
        }
        let value = rest.trim();
        if value.parse::<f64>().is_err() && !matches!(value, "+Inf" | "-Inf" | "NaN") {
            return Err(format!("line {}: bad value '{value}'", i + 1));
        }
    }
    Ok(())
}

fn fmt_us(us: u64) -> String {
    if us < 1_000 {
        format!("{us} µs")
    } else if us < 1_000_000 {
        format!("{:.1} ms", us as f64 / 1e3)
    } else {
        format!("{:.3} s", us as f64 / 1e6)
    }
}

/// Renders a plain-text report: per-track span trees (indented by
/// nesting depth, in start order), then counters, gauges, and histogram
/// summaries.
pub fn to_text_report(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    for (clock, heading) in [
        (Clock::Wall, "wall clock"),
        (Clock::Virtual, "simulated time"),
    ] {
        let mut spans: Vec<_> = snapshot.spans.iter().filter(|s| s.clock == clock).collect();
        if spans.is_empty() {
            continue;
        }
        let _ = writeln!(out, "spans ({heading}):");
        spans.sort_by_key(|s| (s.track, s.start_us, s.depth));
        let tracks: BTreeSet<u32> = spans.iter().map(|s| s.track).collect();
        for track in tracks {
            let _ = writeln!(out, "  track {track}:");
            for s in spans.iter().filter(|s| s.track == track) {
                let _ = writeln!(
                    out,
                    "    {:indent$}{:<44} {:>10}",
                    "",
                    s.name,
                    fmt_us(s.dur_us),
                    indent = 2 * s.depth as usize
                );
            }
        }
    }
    if !snapshot.counters.is_empty() {
        let _ = writeln!(out, "counters:");
        for (name, v) in &snapshot.counters {
            let _ = writeln!(out, "  {name:<46} {v:>10}");
        }
    }
    if !snapshot.gauges.is_empty() {
        let _ = writeln!(out, "gauges:");
        for (name, v) in &snapshot.gauges {
            let _ = writeln!(out, "  {name:<46} {v:>10}");
        }
    }
    if !snapshot.histograms.is_empty() {
        let _ = writeln!(
            out,
            "histograms:\n  {:<38} {:>8} {:>10} {:>10} {:>10} {:>10}",
            "name", "count", "p50", "p90", "p99", "max"
        );
        for (name, h) in &snapshot.histograms {
            let _ = writeln!(
                out,
                "  {:<38} {:>8} {:>10.4} {:>10.4} {:>10.4} {:>10.4}",
                name,
                h.count(),
                h.p50(),
                h.p90(),
                h.p99(),
                h.max()
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::Collector;

    fn sample_snapshot() -> Snapshot {
        let c = Collector::new();
        c.set_enabled(true);
        {
            let _a = c.span("mesh.build");
            let _b = c.span("mesh.build.generate");
        }
        c.virtual_span("sim.async.task", 2, 0.5, 1.0);
        c.counter_add("sim.async.messages", 42);
        c.gauge_max("sim.async.ready_peak", 7.0);
        c.histogram_record("sched.layer_span", 3.0);
        c.snapshot()
    }

    #[test]
    fn chrome_trace_is_valid_and_carries_categories() {
        let text = to_chrome_trace(&sample_snapshot());
        let info = validate_chrome_trace(&text).unwrap();
        assert_eq!(info.spans, 3);
        assert_eq!(info.categories, vec!["mesh".to_string(), "sim".to_string()]);
    }

    #[test]
    fn chrome_validator_rejects_empty_and_garbage() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[]}").is_err());
        assert!(validate_chrome_trace("{\"other\": 1}").is_err());
        // Metadata-only traces count as empty.
        let meta = "{\"traceEvents\":[{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1}]}";
        assert!(validate_chrome_trace(meta).is_err());
    }

    #[test]
    fn prometheus_output_matches_grammar() {
        let text = to_prometheus(&sample_snapshot());
        validate_prometheus(&text).unwrap();
        assert!(text.contains("# TYPE sweep_sim_async_messages_total counter"));
        assert!(text.contains("sweep_sim_async_messages_total 42"));
        assert!(text.contains("# TYPE sweep_sim_async_ready_peak gauge"));
        assert!(text.contains("# TYPE sweep_sched_layer_span histogram"));
        assert!(text.contains("sweep_sched_layer_span_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("sweep_sched_layer_span_count 1"));
        // Wall spans auto-export duration histograms.
        assert!(text.contains("sweep_span_mesh_build_count 1"));
    }

    #[test]
    fn prometheus_validator_rejects_bad_lines() {
        assert!(validate_prometheus("9metric 1").is_err());
        assert!(validate_prometheus("name{le=\"0.1\" 3").is_err());
        assert!(validate_prometheus("name notanumber").is_err());
        assert!(validate_prometheus("name{k=unquoted} 1").is_err());
        validate_prometheus("ok_name{le=\"+Inf\"} 12\n# comment\n\nplain 1.5").unwrap();
    }

    #[test]
    fn text_report_nests_and_lists_metrics() {
        let text = to_text_report(&sample_snapshot());
        assert!(text.contains("spans (wall clock):"));
        assert!(text.contains("spans (simulated time):"));
        assert!(text.contains("mesh.build.generate"));
        assert!(text.contains("counters:"));
        assert!(text.contains("sim.async.messages"));
        assert!(text.contains("histograms:"));
        // The inner span is indented deeper than the outer.
        let outer_col = text
            .lines()
            .find(|l| l.trim_start().starts_with("mesh.build "))
            .map(|l| l.len() - l.trim_start().len())
            .expect("outer span line");
        let inner_col = text
            .lines()
            .find(|l| l.trim_start().starts_with("mesh.build.generate"))
            .map(|l| l.len() - l.trim_start().len())
            .expect("inner span line");
        assert!(inner_col > outer_col);
    }

    #[test]
    fn prom_name_sanitizes() {
        assert_eq!(prom_name("sim.async.step"), "sweep_sim_async_step");
        assert_eq!(prom_name("weird-name/1"), "sweep_weird_name_1");
    }
}
