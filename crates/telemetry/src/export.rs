//! Exporters: Chrome `trace_event` JSON, Prometheus text exposition,
//! and a human-readable text tree — plus validators used by tests and
//! the CI trace job.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::collector::{Clock, Snapshot};
use crate::json::{self, Value};

/// Wall-clock events' Chrome trace process id.
const PID_WALL: u32 = 1;
/// Virtual-clock (simulated time) events' process id.
const PID_VIRTUAL: u32 = 2;

/// Renders the snapshot as Chrome `trace_event` JSON (the "JSON object
/// format"), loadable in `chrome://tracing` and Perfetto. Wall-clock
/// spans appear under process 1 ("wall clock", one thread lane per
/// recording thread); virtual spans under process 2 ("simulated time",
/// one lane per simulated processor).
pub fn to_chrome_trace(snapshot: &Snapshot) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    let mut push = |line: String, out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push_str(",\n");
        }
        out.push_str(&line);
    };
    for (pid, label) in [(PID_WALL, "wall clock"), (PID_VIRTUAL, "simulated time")] {
        push(
            format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":\"{label}\"}}}}"
            ),
            &mut out,
        );
    }
    for s in &snapshot.spans {
        let pid = match s.clock {
            Clock::Wall => PID_WALL,
            Clock::Virtual => PID_VIRTUAL,
        };
        push(
            format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":{pid},\
                 \"tid\":{},\"ts\":{},\"dur\":{}}}",
                json::escape(&s.name),
                json::escape(s.category()),
                s.track,
                s.start_us,
                s.dur_us,
            ),
            &mut out,
        );
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Shape summary returned by [`validate_chrome_trace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChromeTraceInfo {
    /// Number of complete (`ph == "X"`) span events.
    pub spans: usize,
    /// Distinct `cat` values among span events, sorted.
    pub categories: Vec<String>,
}

/// Parses a Chrome trace document and checks its shape: a `traceEvents`
/// array whose `"X"` events all carry `name`, `ts`, and `dur`. Errors on
/// malformed JSON or an event-free trace.
pub fn validate_chrome_trace(text: &str) -> Result<ChromeTraceInfo, String> {
    let doc = json::parse(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .ok_or("missing traceEvents array")?;
    let mut spans = 0usize;
    let mut categories = BTreeSet::new();
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        if ph != "X" {
            continue;
        }
        ev.get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing name"))?;
        for field in ["ts", "dur"] {
            ev.get(field)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("event {i}: missing numeric {field}"))?;
        }
        if let Some(cat) = ev.get("cat").and_then(Value::as_str) {
            categories.insert(cat.to_string());
        }
        spans += 1;
    }
    if spans == 0 {
        return Err("trace contains no span events".to_string());
    }
    Ok(ChromeTraceInfo {
        spans,
        categories: categories.into_iter().collect(),
    })
}

/// Maps a dotted telemetry name onto the Prometheus metric-name grammar
/// (`sweep_` prefix, `[a-zA-Z0-9_]` body).
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 6);
    out.push_str("sweep_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escapes a Prometheus **label value** per the text exposition format:
/// backslash, double-quote, and newline must be backslash-escaped.
pub fn escape_label_value(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escapes Prometheus **`# HELP` text**: backslash and newline must be
/// backslash-escaped (quotes are legal in help text).
pub fn escape_help(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Builds the canonical storage key for a **labeled** metric:
/// `name{k="v",…}` with label values escaped for the exposition format.
/// Record samples under this key (`counter_add(&labeled(...), 1)`) and
/// [`to_prometheus`] renders the label block on the sample line while
/// grouping `# TYPE` by the base name.
pub fn labeled(name: &str, labels: &[(&str, &str)]) -> String {
    let mut out = String::with_capacity(name.len() + 16 * labels.len());
    out.push_str(name);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&escape_label_value(v));
        out.push('"');
    }
    out.push('}');
    out
}

/// Splits a storage key into its base name and optional `{…}` label
/// block (braces included).
fn split_labels(key: &str) -> (&str, Option<&str>) {
    match key.find('{') {
        Some(open) => (&key[..open], Some(&key[open..])),
        None => (key, None),
    }
}

/// Renders counters, gauges, and histograms in the Prometheus text
/// exposition format (version 0.0.4). Counter names get a `_total`
/// suffix; histogram bucket lines are emitted cumulatively at the
/// boundaries where counts change, plus the mandatory `+Inf`. Metrics
/// stored under [`labeled`] keys render their label block on the sample
/// line, with one `# TYPE` (and `# HELP`, when provided) line per base
/// family.
pub fn to_prometheus(snapshot: &Snapshot) -> String {
    to_prometheus_with_help(snapshot, &[])
}

/// [`to_prometheus`] with `# HELP` lines: `help` maps telemetry base
/// names (pre-`prom_name`, label block excluded) to help text, which is
/// escaped per the exposition format.
pub fn to_prometheus_with_help(snapshot: &Snapshot, help: &[(&str, &str)]) -> String {
    let help_for = |base: &str| {
        help.iter()
            .find(|(n, _)| *n == base)
            .map(|(_, h)| escape_help(h))
    };
    let mut out = String::new();
    // BTreeMap order keeps every `base{…}` variant adjacent to its bare
    // `base` ('{' sorts after the name characters we emit), so one pass
    // with a "family already typed" marker suffices.
    let mut typed: Option<String> = None;
    for (name, value) in &snapshot.counters {
        let (base, labels) = split_labels(name);
        let mut p = prom_name(base);
        if !p.ends_with("_total") {
            p.push_str("_total");
        }
        if typed.as_deref() != Some(p.as_str()) {
            if let Some(h) = help_for(base) {
                let _ = writeln!(out, "# HELP {p} {h}");
            }
            let _ = writeln!(out, "# TYPE {p} counter");
            typed = Some(p.clone());
        }
        let _ = writeln!(out, "{p}{} {value}", labels.unwrap_or(""));
    }
    typed = None;
    for (name, value) in &snapshot.gauges {
        let (base, labels) = split_labels(name);
        let p = prom_name(base);
        if typed.as_deref() != Some(p.as_str()) {
            if let Some(h) = help_for(base) {
                let _ = writeln!(out, "# HELP {p} {h}");
            }
            let _ = writeln!(out, "# TYPE {p} gauge");
            typed = Some(p.clone());
        }
        let _ = writeln!(out, "{p}{} {value}", labels.unwrap_or(""));
    }
    for (name, h) in &snapshot.histograms {
        // Histogram families are unlabeled today; a label block in the
        // key would collide with the `le` label, so it is dropped.
        let (base, _) = split_labels(name);
        let p = prom_name(base);
        if let Some(help_text) = help_for(base) {
            let _ = writeln!(out, "# HELP {p} {help_text}");
        }
        let _ = writeln!(out, "# TYPE {p} histogram");
        for (bound, cum) in h.cumulative_buckets() {
            let _ = writeln!(out, "{p}_bucket{{le=\"{bound}\"}} {cum}");
        }
        let _ = writeln!(out, "{p}_bucket{{le=\"+Inf\"}} {}", h.count());
        let _ = writeln!(out, "{p}_sum {}", h.sum());
        let _ = writeln!(out, "{p}_count {}", h.count());
    }
    out
}

/// Checks `text` against the Prometheus text exposition grammar: every
/// line is a comment (`# TYPE` / `# HELP` / `#` note), blank, or a
/// `name[{labels}] value` sample with a parseable float value.
pub fn validate_prometheus(text: &str) -> Result<(), String> {
    fn is_name(s: &str) -> bool {
        !s.is_empty()
            && s.chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
            && s.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }
    for (i, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // Split off an optional {labels} block, scanning quote- and
        // escape-aware so values containing `,`, `}`, or `\"` parse.
        let (name_part, rest) = match line.find('{') {
            Some(open) => {
                let labels = &line[open + 1..];
                let mut chars = labels.char_indices().peekable();
                let mut close = None;
                'block: loop {
                    // Either the end of the block or one k="v" pair.
                    match chars.peek() {
                        Some(&(j, '}')) => {
                            close = Some(open + 1 + j);
                            break 'block;
                        }
                        Some(_) => {}
                        None => break 'block,
                    }
                    // Label name up to '='.
                    let mut key = String::new();
                    for (_, c) in chars.by_ref() {
                        if c == '=' {
                            break;
                        }
                        key.push(c);
                    }
                    if !is_name(&key) {
                        return Err(format!("line {}: bad label name '{key}'", i + 1));
                    }
                    // Quoted value with backslash escapes.
                    if !matches!(chars.next(), Some((_, '"'))) {
                        return Err(format!("line {}: unquoted label value", i + 1));
                    }
                    let mut closed = false;
                    while let Some((_, c)) = chars.next() {
                        match c {
                            '\\' => {
                                chars.next(); // escaped char, any
                            }
                            '"' => {
                                closed = true;
                                break;
                            }
                            _ => {}
                        }
                    }
                    if !closed {
                        return Err(format!("line {}: unterminated label value", i + 1));
                    }
                    // Separator or end-of-block.
                    if let Some(&(_, ',')) = chars.peek() {
                        chars.next();
                    }
                }
                let close = close.ok_or_else(|| format!("line {}: unclosed label block", i + 1))?;
                (&line[..open], &line[close + 1..])
            }
            None => match line.split_once(' ') {
                Some((n, r)) => (n, r),
                None => return Err(format!("line {}: missing value", i + 1)),
            },
        };
        if !is_name(name_part) {
            return Err(format!("line {}: bad metric name '{name_part}'", i + 1));
        }
        let value = rest.trim();
        if value.parse::<f64>().is_err() && !matches!(value, "+Inf" | "-Inf" | "NaN") {
            return Err(format!("line {}: bad value '{value}'", i + 1));
        }
    }
    Ok(())
}

fn fmt_us(us: u64) -> String {
    if us < 1_000 {
        format!("{us} µs")
    } else if us < 1_000_000 {
        format!("{:.1} ms", us as f64 / 1e3)
    } else {
        format!("{:.3} s", us as f64 / 1e6)
    }
}

/// Renders a plain-text report: per-track span trees (indented by
/// nesting depth, in start order), then counters, gauges, and histogram
/// summaries.
pub fn to_text_report(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    for (clock, heading) in [
        (Clock::Wall, "wall clock"),
        (Clock::Virtual, "simulated time"),
    ] {
        let mut spans: Vec<_> = snapshot.spans.iter().filter(|s| s.clock == clock).collect();
        if spans.is_empty() {
            continue;
        }
        let _ = writeln!(out, "spans ({heading}):");
        spans.sort_by_key(|s| (s.track, s.start_us, s.depth));
        let tracks: BTreeSet<u32> = spans.iter().map(|s| s.track).collect();
        for track in tracks {
            let _ = writeln!(out, "  track {track}:");
            for s in spans.iter().filter(|s| s.track == track) {
                let _ = writeln!(
                    out,
                    "    {:indent$}{:<44} {:>10}",
                    "",
                    s.name,
                    fmt_us(s.dur_us),
                    indent = 2 * s.depth as usize
                );
            }
        }
    }
    if !snapshot.counters.is_empty() {
        let _ = writeln!(out, "counters:");
        for (name, v) in &snapshot.counters {
            let _ = writeln!(out, "  {name:<46} {v:>10}");
        }
    }
    if !snapshot.gauges.is_empty() {
        let _ = writeln!(out, "gauges:");
        for (name, v) in &snapshot.gauges {
            let _ = writeln!(out, "  {name:<46} {v:>10}");
        }
    }
    if !snapshot.histograms.is_empty() {
        let _ = writeln!(
            out,
            "histograms:\n  {:<38} {:>8} {:>10} {:>10} {:>10} {:>10}",
            "name", "count", "p50", "p90", "p99", "max"
        );
        for (name, h) in &snapshot.histograms {
            let _ = writeln!(
                out,
                "  {:<38} {:>8} {:>10.4} {:>10.4} {:>10.4} {:>10.4}",
                name,
                h.count(),
                h.p50(),
                h.p90(),
                h.p99(),
                h.max()
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::Collector;

    fn sample_snapshot() -> Snapshot {
        let c = Collector::new();
        c.set_enabled(true);
        {
            let _a = c.span("mesh.build");
            let _b = c.span("mesh.build.generate");
        }
        c.virtual_span("sim.async.task", 2, 0.5, 1.0);
        c.counter_add("sim.async.messages", 42);
        c.gauge_max("sim.async.ready_peak", 7.0);
        c.histogram_record("sched.layer_span", 3.0);
        c.snapshot()
    }

    #[test]
    fn chrome_trace_is_valid_and_carries_categories() {
        let text = to_chrome_trace(&sample_snapshot());
        let info = validate_chrome_trace(&text).unwrap();
        assert_eq!(info.spans, 3);
        assert_eq!(info.categories, vec!["mesh".to_string(), "sim".to_string()]);
    }

    #[test]
    fn chrome_validator_rejects_empty_and_garbage() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[]}").is_err());
        assert!(validate_chrome_trace("{\"other\": 1}").is_err());
        // Metadata-only traces count as empty.
        let meta = "{\"traceEvents\":[{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1}]}";
        assert!(validate_chrome_trace(meta).is_err());
    }

    #[test]
    fn prometheus_output_matches_grammar() {
        let text = to_prometheus(&sample_snapshot());
        validate_prometheus(&text).unwrap();
        assert!(text.contains("# TYPE sweep_sim_async_messages_total counter"));
        assert!(text.contains("sweep_sim_async_messages_total 42"));
        assert!(text.contains("# TYPE sweep_sim_async_ready_peak gauge"));
        assert!(text.contains("# TYPE sweep_sched_layer_span histogram"));
        assert!(text.contains("sweep_sched_layer_span_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("sweep_sched_layer_span_count 1"));
        // Wall spans auto-export duration histograms.
        assert!(text.contains("sweep_span_mesh_build_count 1"));
    }

    #[test]
    fn prometheus_validator_rejects_bad_lines() {
        assert!(validate_prometheus("9metric 1").is_err());
        assert!(validate_prometheus("name{le=\"0.1\" 3").is_err());
        assert!(validate_prometheus("name notanumber").is_err());
        assert!(validate_prometheus("name{k=unquoted} 1").is_err());
        validate_prometheus("ok_name{le=\"+Inf\"} 12\n# comment\n\nplain 1.5").unwrap();
    }

    #[test]
    fn text_report_nests_and_lists_metrics() {
        let text = to_text_report(&sample_snapshot());
        assert!(text.contains("spans (wall clock):"));
        assert!(text.contains("spans (simulated time):"));
        assert!(text.contains("mesh.build.generate"));
        assert!(text.contains("counters:"));
        assert!(text.contains("sim.async.messages"));
        assert!(text.contains("histograms:"));
        // The inner span is indented deeper than the outer.
        let outer_col = text
            .lines()
            .find(|l| l.trim_start().starts_with("mesh.build "))
            .map(|l| l.len() - l.trim_start().len())
            .expect("outer span line");
        let inner_col = text
            .lines()
            .find(|l| l.trim_start().starts_with("mesh.build.generate"))
            .map(|l| l.len() - l.trim_start().len())
            .expect("inner span line");
        assert!(inner_col > outer_col);
    }

    #[test]
    fn prom_name_sanitizes() {
        assert_eq!(prom_name("sim.async.step"), "sweep_sim_async_step");
        assert_eq!(prom_name("weird-name/1"), "sweep_weird_name_1");
    }

    #[test]
    fn label_values_escape_adversarial_content() {
        assert_eq!(escape_label_value(r"plain"), "plain");
        assert_eq!(escape_label_value("a\"b"), "a\\\"b");
        assert_eq!(escape_label_value(r"a\b"), r"a\\b");
        assert_eq!(escape_label_value("a\nb"), r"a\nb");
        // Composed: quote+backslash+newline survive a label round trip.
        let key = labeled("serve.http.requests_by_route", &[("route", "a\"\\\n,}b")]);
        assert_eq!(
            key,
            "serve.http.requests_by_route{route=\"a\\\"\\\\\\n,}b\"}"
        );
    }

    #[test]
    fn help_text_escapes_backslash_and_newline() {
        assert_eq!(escape_help("plain \"quoted\""), "plain \"quoted\""); // quotes legal
        assert_eq!(escape_help("line1\nline2"), r"line1\nline2");
        assert_eq!(escape_help(r"back\slash"), r"back\\slash");
    }

    #[test]
    fn labeled_counters_export_and_validate() {
        let c = Collector::new();
        c.set_enabled(true);
        c.counter_add("serve.http.requests_by_route", 1); // bare family member
        c.counter_add(
            &labeled(
                "serve.http.requests_by_route",
                &[("route", "/v1/schedule"), ("status", "2xx")],
            ),
            5,
        );
        c.counter_add(
            &labeled(
                "serve.http.requests_by_route",
                &[("route", "adver\"sarial\\route\n"), ("status", "4xx")],
            ),
            2,
        );
        let text = to_prometheus_with_help(
            &c.snapshot(),
            &[(
                "serve.http.requests_by_route",
                "requests per route\nand status \\ class",
            )],
        );
        validate_prometheus(&text).unwrap();
        // One TYPE (and HELP) line for the whole family despite three keys.
        let base = "sweep_serve_http_requests_by_route_total";
        assert_eq!(
            text.matches(&format!("# TYPE {base} counter")).count(),
            1,
            "{text}"
        );
        assert_eq!(text.matches(&format!("# HELP {base} ")).count(), 1);
        assert!(text.contains(r"requests per route\nand status \\ class"));
        assert!(text.contains(&format!(
            "{base}{{route=\"/v1/schedule\",status=\"2xx\"}} 5"
        )));
        assert!(text.contains("route=\"adver\\\"sarial\\\\route\\n\""));
        assert!(!text.contains("route=\"adver\"sarial")); // raw quote never leaks
    }

    #[test]
    fn validator_handles_escaped_and_tricky_label_values() {
        validate_prometheus("m{k=\"a\\\"b\"} 1").unwrap();
        validate_prometheus("m{k=\"a,b\",l=\"c}d\"} 2").unwrap();
        validate_prometheus("m{k=\"a\\\\\"} 3").unwrap();
        assert!(validate_prometheus("m{k=\"unterminated} 1").is_err());
        assert!(validate_prometheus("m{k=\"v\"").is_err());
        assert!(validate_prometheus("m{9bad=\"v\"} 1").is_err());
    }

    #[test]
    fn labeled_gauges_group_under_one_type_line() {
        let c = Collector::new();
        c.set_enabled(true);
        c.gauge_set(
            &labeled("serve.cache.bytes_by_tier", &[("tier", "1")]),
            10.0,
        );
        c.gauge_set(
            &labeled("serve.cache.bytes_by_tier", &[("tier", "2")]),
            20.0,
        );
        let text = to_prometheus(&c.snapshot());
        validate_prometheus(&text).unwrap();
        assert_eq!(
            text.matches("# TYPE sweep_serve_cache_bytes_by_tier gauge")
                .count(),
            1
        );
        assert!(text.contains("sweep_serve_cache_bytes_by_tier{tier=\"1\"} 10"));
        assert!(text.contains("sweep_serve_cache_bytes_by_tier{tier=\"2\"} 20"));
    }
}
