//! Fixed-bucket log-scale histograms with quantile summaries.
//!
//! Buckets are fixed at construction — 5 per decade from `1e-7` to
//! `1e7`, plus one overflow bucket — so recording is O(1), memory is
//! constant, and merging snapshots is trivial. Quantiles are read off
//! the cumulative bucket counts (upper-bound estimate, clamped to the
//! observed min/max), which is accurate to one bucket width (~58%
//! relative) — plenty for p50/p90/p99 *summaries* of durations and
//! queue depths.

/// Log-bucket layout shared by every histogram.
const BUCKETS_PER_DECADE: i32 = 5;
const MIN_EXP: i32 = -7;
const MAX_EXP: i32 = 7;
/// Number of finite bucket upper bounds.
const NUM_BOUNDS: usize = ((MAX_EXP - MIN_EXP) * BUCKETS_PER_DECADE) as usize;

/// Upper bound of finite bucket `i` (`0 ≤ i < NUM_BOUNDS`).
fn bound(i: usize) -> f64 {
    10f64.powf(MIN_EXP as f64 + (i as f64 + 1.0) / BUCKETS_PER_DECADE as f64)
}

/// Bucket index for a sample (the last slot is the +Inf overflow).
fn bucket_of(value: f64) -> usize {
    if value.is_nan() || value <= 1e-7 {
        // Zero, negative, NaN, and tiny values all land in bucket 0.
        return 0;
    }
    let idx = ((value.log10() - MIN_EXP as f64) * BUCKETS_PER_DECADE as f64).floor() as isize;
    idx.clamp(0, NUM_BOUNDS as isize) as usize
}

/// A mutable fixed-bucket histogram (see the module docs for layout).
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: vec![0; NUM_BOUNDS + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl Histogram {
    /// Records one sample. Non-finite values (NaN, ±inf) are ignored —
    /// they would poison `sum`/`min`/`max` for every later reader; the
    /// collector layer counts such drops in `telemetry.dropped_samples`.
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.counts[bucket_of(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Immutable copy for export.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: self.counts.clone(),
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0.0 } else { self.min },
            max: if self.count == 0 { 0.0 } else { self.max },
        }
    }
}

/// Frozen histogram contents, as stored in a
/// [`crate::Snapshot`](crate::collector::Snapshot).
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl HistogramSnapshot {
    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Mean sample (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Quantile estimate for `q ∈ [0, 1]`: the upper bound of the bucket
    /// holding the `⌈q·count⌉`-th sample, clamped to `[min, max]`.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                let ub = if i < NUM_BOUNDS { bound(i) } else { self.max };
                return ub.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> f64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Cumulative `(upper_bound, count ≤ bound)` pairs at the bucket
    /// boundaries where the cumulative count changes, ready for
    /// Prometheus `_bucket{le=…}` lines (the `+Inf` bucket is the
    /// caller's `count()`).
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (i, &c) in self.counts[..NUM_BOUNDS].iter().enumerate() {
            if c > 0 {
                cum += c;
                out.push((bound(i), cum));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zero() {
        let s = Histogram::default().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.p50(), 0.0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert!(s.cumulative_buckets().is_empty());
    }

    #[test]
    fn quantiles_bracket_the_data() {
        let mut h = Histogram::default();
        for i in 1..=100 {
            h.record(i as f64 / 1000.0); // 1ms .. 100ms
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 100);
        assert!((s.mean() - 0.0505).abs() < 1e-9);
        // Upper-bound estimates: within one log-bucket of the truth and
        // never outside [min, max].
        assert!(s.p50() >= 0.05 && s.p50() <= 0.1, "p50 {}", s.p50());
        assert!(s.p99() >= 0.09 && s.p99() <= 0.1, "p99 {}", s.p99());
        assert!(s.quantile(0.0) >= s.min() && s.quantile(1.0) <= s.max());
    }

    #[test]
    fn extreme_and_degenerate_values_are_absorbed() {
        let mut h = Histogram::default();
        h.record(0.0);
        h.record(-5.0);
        h.record(1e12);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        let s = h.snapshot();
        // Finite degenerates are absorbed; non-finite samples are
        // dropped so sum/min/max stay honest.
        assert_eq!(s.count(), 3);
        assert!(s.sum().is_finite());
        assert!(s.min().is_finite() && s.max().is_finite());
        assert_eq!(s.cumulative_buckets().len(), 1); // the tiny bucket
    }

    #[test]
    fn cumulative_buckets_are_monotone() {
        let mut h = Histogram::default();
        for v in [0.001, 0.001, 0.5, 2.0, 900.0] {
            h.record(v);
        }
        let s = h.snapshot();
        let b = s.cumulative_buckets();
        assert!(b.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 <= w[1].1));
        assert_eq!(b.last().map(|x| x.1), Some(5));
    }

    #[test]
    fn single_value_quantiles_collapse() {
        let mut h = Histogram::default();
        h.record(0.25);
        let s = h.snapshot();
        assert_eq!(s.p50(), 0.25);
        assert_eq!(s.p99(), 0.25);
    }
}
