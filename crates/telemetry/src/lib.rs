//! # sweep-telemetry — dependency-free spans and metrics
//!
//! A self-contained observability layer for the sweep-scheduling
//! workspace, mirroring the offline-build approach of `sweep-rng`: no
//! `tracing`, no `metrics`, no serde — just the standard library.
//!
//! Three ingredients:
//!
//! * **Spans** — RAII guards ([`span()`](span())/[`span!`]) with monotonic wall-clock
//!   timing, per-thread tracks, and nesting depth. Simulated executions
//!   (e.g. `sweep-sim`'s `AsyncTrace`) inject *virtual-clock* spans through
//!   [`virtual_span`], so one exporter serves both wall-clock and
//!   simulated time.
//! * **Metrics** — a registry of counters, gauges (with a `max` mode for
//!   peaks), and fixed-bucket log-scale histograms with p50/p90/p99
//!   summaries.
//! * **Exporters** — Chrome `trace_event` JSON (loadable in
//!   `chrome://tracing` / Perfetto), Prometheus text exposition format,
//!   and a plain-text tree report.
//!
//! Collection is **off by default**: every entry point first checks one
//! relaxed atomic, so instrumented hot paths pay only that load (plus a
//! guard construction) when telemetry is disabled. Enable it with
//! [`set_enabled`]; spans record on guard drop into a global
//! [`Collector`] (local collectors are available for tests and embedded
//! use).
//!
//! ```
//! sweep_telemetry::set_enabled(true);
//! {
//!     let _s = sweep_telemetry::span!("demo.outer");
//!     sweep_telemetry::counter_add("demo.widgets", 3);
//!     sweep_telemetry::histogram_record("demo.latency_seconds", 0.002);
//! }
//! let snap = sweep_telemetry::snapshot();
//! assert!(snap.spans.iter().any(|s| s.name == "demo.outer"));
//! sweep_telemetry::set_enabled(false);
//! sweep_telemetry::reset();
//! ```
//!
//! Span names form a dotted taxonomy (`mesh.build`, `dag.induce`,
//! `sched.random_delay`, `sim.async.step`, …); the segment before the
//! first dot is the span's *category*, which exporters surface (Chrome
//! `cat` field, Prometheus metric prefixes). See DESIGN.md for the full
//! taxonomy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod collector;
pub mod export;
pub mod metrics;
pub mod trace;

/// The shared mini-JSON codec, re-exported so existing
/// `sweep_telemetry::json::…` paths keep working now that the
/// implementation lives in the `sweep-json` crate.
pub use sweep_json as json;

pub use collector::{Clock, Collector, Snapshot, SpanEvent, SpanGuard, SpanSummary};
pub use export::{
    escape_help, escape_label_value, labeled, to_chrome_trace, to_prometheus,
    to_prometheus_with_help, to_text_report, validate_chrome_trace, validate_prometheus,
    ChromeTraceInfo,
};
pub use metrics::{Histogram, HistogramSnapshot};
pub use trace::{
    request_id_from_counter, traces_to_chrome, RequestTrace, TraceCtx, TraceSpan, TraceSpanGuard,
    STAGES,
};

use std::sync::OnceLock;

static GLOBAL: OnceLock<Collector> = OnceLock::new();

/// The process-wide collector used by the free functions below and by
/// all in-tree instrumentation.
pub fn global() -> &'static Collector {
    GLOBAL.get_or_init(Collector::new)
}

/// Turns global collection on or off. Off (the default) makes every
/// instrumentation point a near-no-op.
pub fn set_enabled(on: bool) {
    global().set_enabled(on);
}

/// Whether the global collector is currently recording.
#[inline]
pub fn enabled() -> bool {
    global().is_enabled()
}

/// Opens a wall-clock span on the global collector; the span closes (and
/// records) when the returned guard drops.
#[inline]
pub fn span(name: &'static str) -> SpanGuard<'static> {
    global().span(name)
}

/// Adds `delta` to a global counter (created at zero on first use).
#[inline]
pub fn counter_add(name: &str, delta: u64) {
    global().counter_add(name, delta);
}

/// Sets a global gauge to `value`.
#[inline]
pub fn gauge_set(name: &str, value: f64) {
    global().gauge_set(name, value);
}

/// Raises a global gauge to `value` if larger (peak tracking).
#[inline]
pub fn gauge_max(name: &str, value: f64) {
    global().gauge_max(name, value);
}

/// Records one sample into a global fixed-bucket histogram.
#[inline]
pub fn histogram_record(name: &str, value: f64) {
    global().histogram_record(name, value);
}

/// Records a closed span on the *virtual* (simulated-time) clock, e.g.
/// one task execution out of an async-simulator trace. Times are in
/// simulated seconds; `track` is the simulated processor lane.
#[inline]
pub fn virtual_span(
    name: impl Into<std::borrow::Cow<'static, str>>,
    track: u32,
    start_s: f64,
    dur_s: f64,
) {
    global().virtual_span(name, track, start_s, dur_s);
}

/// Reads a global counter's current value (0 when absent). Cheap
/// before/after reads support attribution (e.g. `pool.tasks` deltas
/// charged to one request).
pub fn counter_value(name: &str) -> u64 {
    global().counter_value(name)
}

/// Clones one global histogram's contents, if present.
pub fn histogram_value(name: &str) -> Option<HistogramSnapshot> {
    global().histogram_value(name)
}

/// Clones the global collector's current contents.
pub fn snapshot() -> Snapshot {
    global().snapshot()
}

/// Clears all recorded spans and metrics on the global collector
/// (the enabled flag is left unchanged).
pub fn reset() {
    global().reset();
}

/// Opens a wall-clock span guard on the global collector:
/// `let _s = span!("sched.random_delay");`. The name must be a `'static`
/// dotted taxonomy path; the guard records on drop.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Tests touching the *global* collector serialize on this lock so
    /// `cargo test`'s threaded runner cannot interleave them.
    pub(crate) static GLOBAL_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_by_default_records_nothing() {
        let _g = GLOBAL_LOCK.lock().unwrap();
        set_enabled(false);
        reset();
        {
            let _s = span!("test.nothing");
            counter_add("test.c", 1);
            histogram_record("test.h", 1.0);
        }
        let snap = snapshot();
        assert!(snap.spans.is_empty());
        assert!(snap.counters.is_empty());
        assert!(snap.histograms.is_empty());
    }

    #[test]
    fn global_round_trip_records_spans_and_metrics() {
        let _g = GLOBAL_LOCK.lock().unwrap();
        set_enabled(true);
        reset();
        {
            let _outer = span!("test.outer");
            let _inner = span!("test.outer.inner");
            counter_add("test.count", 2);
            gauge_max("test.peak", 5.0);
            gauge_max("test.peak", 3.0);
            virtual_span("test.virtual", 0, 1.0, 0.5);
        }
        let snap = snapshot();
        set_enabled(false);
        reset();
        assert!(snap.spans.iter().any(|s| s.name == "test.outer"));
        assert!(snap
            .spans
            .iter()
            .any(|s| s.name == "test.virtual" && s.clock == Clock::Virtual));
        assert_eq!(snap.counters["test.count"], 2);
        assert_eq!(snap.gauges["test.peak"], 5.0);
        // Closed wall spans auto-record duration histograms.
        assert!(snap.histograms.contains_key("span.test.outer"));
    }
}
