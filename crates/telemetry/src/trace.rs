//! Request-scoped tracing: cheap per-request span trees that ride
//! *alongside* the global [`Collector`](crate::Collector) without
//! touching its hot path.
//!
//! A [`TraceCtx`] is created once per request (by the serving layer)
//! from a monotone **connection counter**, so request ids are
//! deterministic across runs — tests can predict the id of the N-th
//! connection. The context is then threaded through the request's
//! compute path; every stage opens a [`TraceSpanGuard`] that records a
//! closed [`TraceSpan`] into the request's private tree on drop. When
//! the response is written, [`TraceCtx::finish`] freezes the tree into
//! a [`RequestTrace`] — the unit the access log, the `Server-Timing`
//! header, the slow-request exemplar buffer, and the SW028
//! well-formedness analyzer all consume.
//!
//! Cost model: an **untraced** context ([`TraceCtx::untraced`]) carries
//! only the request id — every `span()`/`note()` call on it is a branch
//! on an `Option` and returns immediately, so head-based sampling keeps
//! the disabled path allocation-free, mirroring the global collector's
//! disabled-fast-path guarantee. A traced context allocates one `Arc`
//! per request and one `Vec` slot per span.

use std::borrow::Cow;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::json;

/// The stage names the serving layer reports in `Server-Timing`
/// headers and access-log lines, in pipeline order. Other span names
/// are legal (they show up in the Chrome export and the SW028 check);
/// these five are the ones with an operational meaning.
pub const STAGES: [&str; 5] = ["parse", "cache", "induce", "schedule", "serialize"];

/// SplitMix64 finalizer — the same mixer `sweep-rng` uses for seed
/// splitting, inlined here so the telemetry crate stays dependency-free.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives the 64-bit request id for the `counter`-th connection.
/// Deterministic (tests can predict ids) but well-mixed, so ids from
/// one server don't collide trivially with another's. Never zero —
/// zero is the "no request" sentinel in coalescing records.
pub fn request_id_from_counter(counter: u64) -> u64 {
    splitmix64(counter).max(1)
}

/// One closed span in a request's tree.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpan {
    /// Span id, unique within the request (allocated from 1 upward;
    /// the root span a server opens is almost always id 1).
    pub id: u64,
    /// Parent span id; 0 means "root of this request".
    pub parent: u64,
    /// Span name. Stage spans use the bare stage name (`cache`) or a
    /// dotted refinement (`cache.wait`); the first dot-segment is the
    /// stage the time is attributed to.
    pub name: Cow<'static, str>,
    /// Start, microseconds since the request began.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
}

/// Shared per-request state behind a [`TraceCtx`].
struct TraceInner {
    request_id: u64,
    epoch: Instant,
    next_id: AtomicU64,
    opened: AtomicU64,
    /// Request id of the single-flight leader this request coalesced
    /// onto (0 = none).
    coalesced_onto: AtomicU64,
    spans: Mutex<Vec<TraceSpan>>,
    notes: Mutex<Vec<(String, String)>>,
}

/// A request-scoped tracing context: a request id plus (when tracing is
/// sampled in) a shared span tree. Clone-cheap; clones share the tree.
#[derive(Clone)]
pub struct TraceCtx {
    request_id: u64,
    parent: u64,
    inner: Option<Arc<TraceInner>>,
}

impl std::fmt::Debug for TraceCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceCtx")
            .field("request_id", &self.request_id)
            .field("parent", &self.parent)
            .field("traced", &self.inner.is_some())
            .finish()
    }
}

impl TraceCtx {
    /// A traced root context for `request_id` (epoch = now).
    pub fn root(request_id: u64) -> TraceCtx {
        TraceCtx {
            request_id,
            parent: 0,
            inner: Some(Arc::new(TraceInner {
                request_id,
                epoch: Instant::now(),
                next_id: AtomicU64::new(1),
                opened: AtomicU64::new(0),
                coalesced_onto: AtomicU64::new(0),
                spans: Mutex::new(Vec::new()),
                notes: Mutex::new(Vec::new()),
            })),
        }
    }

    /// A context that keeps the request id (for headers/logs) but
    /// records nothing — the sampled-out / tracing-disabled path.
    pub fn untraced(request_id: u64) -> TraceCtx {
        TraceCtx {
            request_id,
            parent: 0,
            inner: None,
        }
    }

    /// A fully inert context (id 0, no recording) for callers outside
    /// any request — e.g. direct library use of the service.
    pub fn disabled() -> TraceCtx {
        TraceCtx::untraced(0)
    }

    /// Whether spans recorded on this context are kept.
    #[inline]
    pub fn is_traced(&self) -> bool {
        self.inner.is_some()
    }

    /// The 64-bit request id (0 for [`TraceCtx::disabled`]).
    #[inline]
    pub fn request_id(&self) -> u64 {
        self.request_id
    }

    /// The request id as the 16-hex-digit wire form used by
    /// `X-Sweep-Request-Id`.
    pub fn request_id_hex(&self) -> String {
        format!("{:016x}", self.request_id)
    }

    /// Opens a child span; it records into the request tree when the
    /// returned guard drops. On an untraced context this is a no-op
    /// guard (no allocation, no clock read).
    #[inline]
    pub fn span(&self, name: impl Into<Cow<'static, str>>) -> TraceSpanGuard {
        let Some(inner) = &self.inner else {
            return TraceSpanGuard {
                ctx: TraceCtx::untraced(self.request_id),
                name: Cow::Borrowed(""),
                start_us: 0,
                id: 0,
                parent: 0,
            };
        };
        let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
        inner.opened.fetch_add(1, Ordering::Relaxed);
        TraceSpanGuard {
            ctx: TraceCtx {
                request_id: self.request_id,
                parent: id,
                inner: Some(Arc::clone(inner)),
            },
            name: name.into(),
            start_us: inner.epoch.elapsed().as_micros() as u64,
            id,
            parent: self.parent,
        }
    }

    /// Records that this request coalesced onto `leader`'s single-flight
    /// computation instead of running its own.
    pub fn set_coalesced_onto(&self, leader: u64) {
        if let Some(inner) = &self.inner {
            inner.coalesced_onto.store(leader, Ordering::Relaxed);
        }
    }

    /// Attaches a key/value annotation to the request (cache
    /// disposition, pool task attribution, …); surfaced in the access
    /// log and the Chrome export.
    pub fn note(&self, key: &str, value: impl std::fmt::Display) {
        if let Some(inner) = &self.inner {
            let mut notes = inner.notes.lock().unwrap_or_else(|p| p.into_inner());
            notes.push((key.to_string(), value.to_string()));
        }
    }

    /// Freezes the tree into a [`RequestTrace`]. Returns `None` on an
    /// untraced context. Call after every guard has dropped; spans
    /// still open at this point are reported (not silently lost)
    /// through [`RequestTrace::opened`] ≠ `spans.len()`, which SW028
    /// flags.
    pub fn finish(&self) -> Option<RequestTrace> {
        let inner = self.inner.as_ref()?;
        let spans = inner
            .spans
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone();
        let notes = inner
            .notes
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone();
        let total_us = spans
            .iter()
            .map(|s| s.start_us + s.dur_us)
            .max()
            .unwrap_or(0);
        Some(RequestTrace {
            request_id: inner.request_id,
            coalesced_onto: match inner.coalesced_onto.load(Ordering::Relaxed) {
                0 => None,
                l => Some(l),
            },
            opened: inner.opened.load(Ordering::Relaxed),
            total_us,
            spans,
            notes,
        })
    }
}

/// RAII guard for one request-tree span; records on drop. Obtain a
/// context parented at this span with [`TraceSpanGuard::ctx`] to nest
/// further spans under it.
pub struct TraceSpanGuard {
    ctx: TraceCtx,
    name: Cow<'static, str>,
    start_us: u64,
    id: u64,
    parent: u64,
}

impl TraceSpanGuard {
    /// A context whose spans become children of this span.
    pub fn ctx(&self) -> &TraceCtx {
        &self.ctx
    }
}

impl Drop for TraceSpanGuard {
    fn drop(&mut self) {
        let Some(inner) = &self.ctx.inner else {
            return;
        };
        let end = inner.epoch.elapsed().as_micros() as u64;
        let span = TraceSpan {
            id: self.id,
            parent: self.parent,
            name: std::mem::replace(&mut self.name, Cow::Borrowed("")),
            start_us: self.start_us,
            dur_us: end.saturating_sub(self.start_us),
        };
        inner
            .spans
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(span);
    }
}

/// A frozen request trace: the span tree plus coalescing/annotation
/// metadata, ready for the access log, `Server-Timing`, the exemplar
/// buffer, and SW028.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestTrace {
    /// The request's 64-bit id.
    pub request_id: u64,
    /// Single-flight leader this request coalesced onto, if any.
    pub coalesced_onto: Option<u64>,
    /// Number of spans ever opened; equals `spans.len()` iff every span
    /// closed before [`TraceCtx::finish`].
    pub opened: u64,
    /// End of the latest span, microseconds since the request began.
    pub total_us: u64,
    /// All closed spans, in close order (children before parents).
    pub spans: Vec<TraceSpan>,
    /// Key/value annotations recorded via [`TraceCtx::note`].
    pub notes: Vec<(String, String)>,
}

impl RequestTrace {
    /// The value of the first note with `key`, if any.
    pub fn note(&self, key: &str) -> Option<&str> {
        self.notes
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Microseconds attributed to `stage`: the **self time** (duration
    /// minus direct children's durations) summed over every span whose
    /// name is `stage` or starts with `stage.`. Self-time attribution
    /// means nested stages never double-count — the `induce` span
    /// inside a `cache` span bills its time to `induce`, not both — so
    /// the per-stage values sum to at most the request total.
    pub fn stage_us(&self, stage: &str) -> u64 {
        let mut total = 0u64;
        for s in &self.spans {
            let seg = s.name.split('.').next().unwrap_or("");
            if seg != stage {
                continue;
            }
            let children: u64 = self
                .spans
                .iter()
                .filter(|c| c.parent == s.id)
                .map(|c| c.dur_us)
                .sum();
            total += s.dur_us.saturating_sub(children.min(s.dur_us));
        }
        total
    }

    /// The `Server-Timing` header value: every standard stage (all five
    /// of [`STAGES`], zero-valued stages included so clients can rely
    /// on their presence), durations in milliseconds per the spec.
    pub fn server_timing(&self) -> String {
        STAGES
            .iter()
            .map(|stage| format!("{stage};dur={:.3}", self.stage_us(stage) as f64 / 1e3))
            .collect::<Vec<_>>()
            .join(", ")
    }
}

/// Renders a set of request traces as Chrome `trace_event` JSON —
/// the `GET /debug/trace` body. Each request gets its own thread lane
/// (`tid` = an index, labelled with the request id); spans nest by
/// ts/dur as usual. Validates against
/// [`validate_chrome_trace`](crate::validate_chrome_trace).
pub fn traces_to_chrome(traces: &[RequestTrace]) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    let mut push = |line: String, out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push_str(",\n");
        }
        out.push_str(&line);
    };
    push(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":3,\"tid\":0,\
         \"args\":{\"name\":\"slow requests\"}}"
            .to_string(),
        &mut out,
    );
    for (lane, t) in traces.iter().enumerate() {
        push(
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":3,\"tid\":{lane},\
                 \"args\":{{\"name\":\"request {:016x}\"}}}}",
                t.request_id
            ),
            &mut out,
        );
        for s in &t.spans {
            let mut args = format!("\"span_id\":{},\"parent\":{}", s.id, s.parent);
            if s.parent == 0 {
                // Root spans carry the request-level metadata.
                args.push_str(&format!(",\"request_id\":\"{:016x}\"", t.request_id));
                if let Some(leader) = t.coalesced_onto {
                    args.push_str(&format!(",\"coalesced_onto\":\"{leader:016x}\""));
                }
                for (k, v) in &t.notes {
                    args.push_str(&format!(",\"{}\":\"{}\"", json::escape(k), json::escape(v)));
                }
            }
            push(
                format!(
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":3,\
                     \"tid\":{lane},\"ts\":{},\"dur\":{},\"args\":{{{args}}}}}",
                    json::escape(&s.name),
                    json::escape(s.name.split('.').next().unwrap_or("")),
                    s.start_us,
                    s.dur_us,
                ),
                &mut out,
            );
        }
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_ids_are_deterministic_and_nonzero() {
        assert_eq!(request_id_from_counter(1), request_id_from_counter(1));
        assert_ne!(request_id_from_counter(1), request_id_from_counter(2));
        for c in 0..1000 {
            assert_ne!(request_id_from_counter(c), 0);
        }
    }

    #[test]
    fn untraced_ctx_records_nothing_but_keeps_the_id() {
        let ctx = TraceCtx::untraced(77);
        assert_eq!(ctx.request_id(), 77);
        assert!(!ctx.is_traced());
        {
            let g = ctx.span("parse");
            let _inner = g.ctx().span("parse.header");
            ctx.note("k", "v");
            ctx.set_coalesced_onto(5);
        }
        assert!(ctx.finish().is_none());
    }

    #[test]
    fn spans_nest_and_finish_builds_the_tree() {
        let ctx = TraceCtx::root(42);
        {
            let root = ctx.span("request");
            {
                let cache = root.ctx().span("cache");
                let _induce = cache.ctx().span("induce");
            }
            let _ser = root.ctx().span("serialize");
        }
        ctx.note("cache", "miss");
        let t = ctx.finish().unwrap();
        assert_eq!(t.request_id, 42);
        assert_eq!(t.opened, 4);
        assert_eq!(t.spans.len(), 4);
        assert_eq!(t.note("cache"), Some("miss"));
        // Children close before parents; the root closes last.
        let root = t.spans.iter().find(|s| s.name == "request").unwrap();
        let cache = t.spans.iter().find(|s| s.name == "cache").unwrap();
        let induce = t.spans.iter().find(|s| s.name == "induce").unwrap();
        assert_eq!(root.parent, 0);
        assert_eq!(cache.parent, root.id);
        assert_eq!(induce.parent, cache.id);
        assert!(cache.start_us >= root.start_us);
        // Self-time attribution: the cache stage excludes the induce
        // child, so stages can never double-count.
        assert!(t.stage_us("cache") <= cache.dur_us);
        assert_eq!(t.stage_us("induce"), induce.dur_us);
    }

    #[test]
    fn server_timing_lists_all_stages() {
        let ctx = TraceCtx::root(1);
        {
            let _p = ctx.span("parse");
        }
        let header = ctx.finish().unwrap().server_timing();
        for stage in STAGES {
            assert!(header.contains(&format!("{stage};dur=")), "{header}");
        }
    }

    #[test]
    fn dotted_refinements_attribute_to_their_stage() {
        let ctx = TraceCtx::root(9);
        {
            let c = ctx.span("cache");
            let _w = c.ctx().span("cache.wait");
        }
        let t = ctx.finish().unwrap();
        let parent = t.spans.iter().find(|s| s.name == "cache").unwrap();
        // Parent self time + child time == the stage total == parent dur.
        assert_eq!(t.stage_us("cache"), parent.dur_us);
    }

    #[test]
    fn chrome_export_of_traces_validates() {
        let ctx = TraceCtx::root(3);
        {
            let r = ctx.span("request");
            let _s = r.ctx().span("schedule");
        }
        ctx.set_coalesced_onto(11);
        ctx.note("pool_tasks", 4u64);
        let t = ctx.finish().unwrap();
        let text = traces_to_chrome(&[t]);
        let info = crate::validate_chrome_trace(&text).unwrap();
        assert_eq!(info.spans, 2);
        assert!(text.contains("coalesced_onto"));
        assert!(text.contains("pool_tasks"));
    }

    #[test]
    fn unclosed_spans_are_visible_in_opened_count() {
        let ctx = TraceCtx::root(8);
        let guard = ctx.span("request");
        let t = ctx.finish().unwrap();
        assert_eq!(t.opened, 1);
        assert!(t.spans.is_empty());
        drop(guard);
    }
}
