//! Exporter round-trip and concurrency tests (ISSUE 2 satellite):
//! Chrome traces must parse back and nest correctly, Prometheus output
//! must match the exposition grammar, and spans recorded from many
//! threads must all survive.

#![allow(clippy::unwrap_used)]

use sweep_telemetry::{
    json, to_chrome_trace, to_prometheus, to_text_report, validate_chrome_trace,
    validate_prometheus, Clock, Collector,
};

#[test]
fn chrome_trace_round_trip_preserves_nesting() {
    let c = Collector::new();
    c.set_enabled(true);
    {
        let _outer = c.span("sched.random_delay");
        std::thread::sleep(std::time::Duration::from_millis(1));
        {
            let _inner = c.span("sched.random_delay.delay_draw");
        }
        {
            let _inner2 = c.span("sched.random_delay.layering");
        }
    }
    let snap = c.snapshot();
    let text = to_chrome_trace(&snap);
    let info = validate_chrome_trace(&text).expect("trace must parse");
    assert_eq!(info.spans, 3);
    assert_eq!(info.categories, vec!["sched".to_string()]);

    // Re-parse and check interval containment: both children lie inside
    // the parent span on the same tid.
    let doc = json::parse(&text).unwrap();
    let events: Vec<_> = doc
        .get("traceEvents")
        .and_then(json::Value::as_array)
        .unwrap()
        .iter()
        .filter(|e| e.get("ph").and_then(json::Value::as_str) == Some("X"))
        .collect();
    let interval = |name: &str| {
        let e = events
            .iter()
            .find(|e| e.get("name").and_then(json::Value::as_str) == Some(name))
            .unwrap_or_else(|| panic!("missing event {name}"));
        let ts = e.get("ts").and_then(json::Value::as_f64).unwrap();
        let dur = e.get("dur").and_then(json::Value::as_f64).unwrap();
        let tid = e.get("tid").and_then(json::Value::as_f64).unwrap();
        (ts, ts + dur, tid)
    };
    let (p0, p1, ptid) = interval("sched.random_delay");
    for child in [
        "sched.random_delay.delay_draw",
        "sched.random_delay.layering",
    ] {
        let (c0, c1, ctid) = interval(child);
        assert_eq!(ctid, ptid, "{child} shares the parent's track");
        assert!(
            c0 >= p0 && c1 <= p1,
            "{child} [{c0},{c1}] inside [{p0},{p1}]"
        );
    }
}

#[test]
fn virtual_and_wall_spans_export_under_separate_pids() {
    let c = Collector::new();
    c.set_enabled(true);
    {
        let _w = c.span("sched.list_schedule");
    }
    c.virtual_span("sim.async.task", 0, 0.0, 2.0);
    let text = to_chrome_trace(&c.snapshot());
    let doc = json::parse(&text).unwrap();
    let events = doc
        .get("traceEvents")
        .and_then(json::Value::as_array)
        .unwrap();
    let pid_of = |name: &str| {
        events
            .iter()
            .find(|e| e.get("name").and_then(json::Value::as_str) == Some(name))
            .and_then(|e| e.get("pid"))
            .and_then(json::Value::as_f64)
            .unwrap_or_else(|| panic!("missing {name}"))
    };
    assert_eq!(pid_of("sched.list_schedule"), 1.0);
    assert_eq!(pid_of("sim.async.task"), 2.0);
}

#[test]
fn prometheus_round_trip_carries_counters_and_histograms() {
    let c = Collector::new();
    c.set_enabled(true);
    c.counter_add("sim.sync.messages", 17);
    for v in [0.5, 1.5, 2.5, 120.0] {
        c.histogram_record("sim.sync.step_comm_units", v);
    }
    let text = to_prometheus(&c.snapshot());
    validate_prometheus(&text).expect("exposition grammar");
    assert!(text.contains("sweep_sim_sync_messages_total 17"));
    assert!(text.contains("sweep_sim_sync_step_comm_units_count 4"));
    assert!(text.contains("sweep_sim_sync_step_comm_units_sum 124.5"));
    // Bucket lines are cumulative and end at +Inf.
    let buckets: Vec<u64> = text
        .lines()
        .filter(|l| l.starts_with("sweep_sim_sync_step_comm_units_bucket"))
        .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
        .collect();
    assert!(buckets.windows(2).all(|w| w[0] <= w[1]));
    assert_eq!(buckets.last(), Some(&4));
}

#[test]
fn concurrent_spans_from_many_threads_interleave_without_loss() {
    const THREADS: usize = 8;
    const SPANS_PER_THREAD: usize = 100;
    // A leaked collector gives the 'static lifetime the guards of
    // spawned threads need; one allocation in a test is fine.
    let c: &'static Collector = Box::leak(Box::new(Collector::new()));
    c.set_enabled(true);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            scope.spawn(move || {
                for _ in 0..SPANS_PER_THREAD {
                    let _outer = c.span("load.outer");
                    let _inner = c.span("load.outer.inner");
                    c.counter_add("load.count", 1);
                }
                let _ = t;
            });
        }
    });
    let snap = c.snapshot();
    assert_eq!(
        snap.spans.len(),
        THREADS * SPANS_PER_THREAD * 2,
        "no spans lost"
    );
    assert_eq!(
        snap.counters["load.count"],
        (THREADS * SPANS_PER_THREAD) as u64
    );
    // Every thread got its own track, and nesting depth is consistent.
    let tracks: std::collections::BTreeSet<u32> = snap.spans.iter().map(|s| s.track).collect();
    assert_eq!(tracks.len(), THREADS);
    for s in &snap.spans {
        match s.name.as_ref() {
            "load.outer" => assert_eq!(s.depth, 0),
            _ => assert_eq!(s.depth, 1),
        }
    }
    // The whole pile still exports to valid artifacts.
    let info = validate_chrome_trace(&to_chrome_trace(&snap)).unwrap();
    assert_eq!(info.spans, THREADS * SPANS_PER_THREAD * 2);
    validate_prometheus(&to_prometheus(&snap)).unwrap();
    assert!(!to_text_report(&snap).is_empty());
}

#[test]
fn snapshot_is_stable_while_recording_continues() {
    let c = Collector::new();
    c.set_enabled(true);
    c.counter_add("x", 1);
    let before = c.snapshot();
    c.counter_add("x", 1);
    assert_eq!(before.counters["x"], 1);
    assert_eq!(c.snapshot().counters["x"], 2);
}

#[test]
fn span_events_expose_clock_and_category() {
    let c = Collector::new();
    c.set_enabled(true);
    c.virtual_span("sim.async.step", 4, 1.0, 1.0);
    let snap = c.snapshot();
    assert_eq!(snap.spans[0].clock, Clock::Virtual);
    assert_eq!(snap.spans[0].category(), "sim");
    assert_eq!(snap.categories(), vec!["sim".to_string()]);
}
