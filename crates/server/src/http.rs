//! A deliberately small HTTP/1.1 subset — just enough wire protocol for
//! the four endpoints, on std only.
//!
//! One request per connection (`Connection: close` is always returned):
//! the service's unit of work is a whole scheduling request, so
//! keep-alive would buy latency only for `/healthz` pollers while
//! complicating the drain logic. Requests are parsed from a buffered
//! reader with hard limits on request-line, header, and body sizes;
//! anything outside the subset — including `Transfer-Encoding`, which
//! is refused with `501` because bodies are Content-Length-only — gets
//! a clean error response instead of a hang.

use std::collections::HashMap;
use std::io::{BufRead, Write};

/// Longest accepted request line (method + target + version).
pub const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Most header bytes accepted per request.
pub const MAX_HEADER_BYTES: usize = 16 * 1024;
/// Largest accepted request body (inline instances can be sizable).
pub const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// A parsed request: method, path (query string stripped and kept
/// separately), lower-cased headers, raw body bytes.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-case method, e.g. `GET`.
    pub method: String,
    /// Decoded path, e.g. `/v1/schedule`.
    pub path: String,
    /// The raw query string after `?`, if any (unparsed; no endpoint
    /// takes query parameters today).
    pub query: Option<String>,
    /// Header map with lower-cased names; values are trimmed.
    pub headers: HashMap<String, String>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

/// How reading a request failed: either a protocol error (answer 4xx)
/// or an I/O error/timeout (drop the connection).
#[derive(Debug)]
pub enum ReadError {
    /// The bytes violate the accepted HTTP subset; respond with the
    /// given status and message.
    Bad(u16, String),
    /// The connection died or timed out mid-request.
    Io(std::io::Error),
}

impl Request {
    /// Reads one request from `reader`. `Err(ReadError::Bad)` means the
    /// caller should answer with that status; `Io` means hang up.
    pub fn read_from(reader: &mut impl BufRead) -> Result<Request, ReadError> {
        let line = read_line_limited(reader, MAX_REQUEST_LINE)?;
        let mut parts = line.split_whitespace();
        let (Some(method), Some(target), Some(version)) =
            (parts.next(), parts.next(), parts.next())
        else {
            return Err(ReadError::Bad(
                400,
                format!("malformed request line '{line}'"),
            ));
        };
        if !version.starts_with("HTTP/1.") {
            return Err(ReadError::Bad(
                505,
                format!("unsupported version '{version}'"),
            ));
        }
        let (path, query) = match target.split_once('?') {
            Some((p, q)) => (p.to_string(), Some(q.to_string())),
            None => (target.to_string(), None),
        };

        let mut headers = HashMap::new();
        let mut header_bytes = 0usize;
        loop {
            let line = read_line_limited(reader, MAX_HEADER_BYTES)?;
            if line.is_empty() {
                break;
            }
            header_bytes += line.len();
            if header_bytes > MAX_HEADER_BYTES {
                return Err(ReadError::Bad(431, "header section too large".to_string()));
            }
            let Some((name, value)) = line.split_once(':') else {
                return Err(ReadError::Bad(400, format!("malformed header '{line}'")));
            };
            headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
        }

        // The subset is Content-Length-only. A chunked body would be
        // silently treated as empty and left unread on the socket, and
        // closing with unread bytes makes the kernel RST the response
        // away — so refuse the encoding loudly instead.
        if headers.contains_key("transfer-encoding") {
            return Err(ReadError::Bad(
                501,
                "Transfer-Encoding is not supported; send a Content-Length body".to_string(),
            ));
        }
        let body = match headers.get("content-length") {
            None => Vec::new(),
            Some(v) => {
                let len: usize = v
                    .parse()
                    .map_err(|_| ReadError::Bad(400, format!("bad Content-Length '{v}'")))?;
                if len > MAX_BODY_BYTES {
                    return Err(ReadError::Bad(
                        413,
                        format!("body of {len} bytes exceeds the {MAX_BODY_BYTES} limit"),
                    ));
                }
                let mut body = vec![0u8; len];
                reader.read_exact(&mut body).map_err(ReadError::Io)?;
                body
            }
        };
        Ok(Request {
            method: method.to_ascii_uppercase(),
            path,
            query,
            headers,
            body,
        })
    }

    /// The body as UTF-8, or a 400-shaped error.
    pub fn body_utf8(&self) -> Result<&str, ReadError> {
        std::str::from_utf8(&self.body)
            .map_err(|_| ReadError::Bad(400, "body is not valid UTF-8".to_string()))
    }
}

/// Reads one CRLF- (or LF-) terminated line, rejecting lines past `max`.
fn read_line_limited(reader: &mut impl BufRead, max: usize) -> Result<String, ReadError> {
    let mut buf = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match reader.read(&mut byte) {
            Ok(0) => {
                if buf.is_empty() {
                    return Err(ReadError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "connection closed before a request",
                    )));
                }
                break;
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    break;
                }
                buf.push(byte[0]);
                if buf.len() > max {
                    return Err(ReadError::Bad(431, "line too long".to_string()));
                }
            }
            Err(e) => return Err(ReadError::Io(e)),
        }
    }
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    String::from_utf8(buf).map_err(|_| ReadError::Bad(400, "non-UTF-8 header bytes".to_string()))
}

/// An outgoing response; [`Response::write_to`] serializes it.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` of the body.
    pub content_type: &'static str,
    /// Extra headers, e.g. `Retry-After`.
    pub extra_headers: Vec<(String, String)>,
    /// Response body.
    pub body: String,
}

impl Response {
    /// A 200 response with a JSON body.
    pub fn json(body: String) -> Response {
        Response {
            status: 200,
            content_type: "application/json",
            extra_headers: Vec::new(),
            body,
        }
    }

    /// A 200 response with a plain-text body.
    pub fn text(body: String) -> Response {
        Response {
            status: 200,
            content_type: "text/plain; charset=utf-8",
            extra_headers: Vec::new(),
            body,
        }
    }

    /// An error response carrying `{"error": …}` JSON.
    pub fn error(status: u16, message: &str) -> Response {
        Response {
            status,
            content_type: "application/json",
            extra_headers: Vec::new(),
            body: format!("{{\"error\": \"{}\"}}\n", sweep_json::escape(message)),
        }
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: String) -> Response {
        self.extra_headers.push((name.to_string(), value));
        self
    }

    /// The standard reason phrase for this status.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Payload Too Large",
            422 => "Unprocessable Entity",
            429 => "Too Many Requests",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            501 => "Not Implemented",
            503 => "Service Unavailable",
            505 => "HTTP Version Not Supported",
            _ => "Unknown",
        }
    }

    /// Serializes status line, headers, and body to `w`.
    pub fn write_to(&self, w: &mut impl Write) -> std::io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len()
        )?;
        for (name, value) in &self.extra_headers {
            write!(w, "{name}: {value}\r\n")?;
        }
        write!(w, "\r\n")?;
        w.write_all(self.body.as_bytes())?;
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, ReadError> {
        Request::read_from(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_post_with_body_and_query() {
        let req = parse(
            "POST /v1/schedule?x=1 HTTP/1.1\r\nHost: localhost\r\nContent-Length: 4\r\n\r\nbody",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/schedule");
        assert_eq!(req.query.as_deref(), Some("x=1"));
        assert_eq!(req.headers["host"], "localhost");
        assert_eq!(req.body, b"body");
    }

    #[test]
    fn rejects_malformed_and_oversized() {
        assert!(matches!(
            parse("NONSENSE\r\n\r\n"),
            Err(ReadError::Bad(400, _))
        ));
        assert!(matches!(
            parse("GET / SPDY/3\r\n\r\n"),
            Err(ReadError::Bad(505, _))
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nbadheader\r\n\r\n"),
            Err(ReadError::Bad(400, _))
        ));
        let huge = format!("GET / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", usize::MAX);
        assert!(matches!(parse(&huge), Err(ReadError::Bad(413, _))));
    }

    #[test]
    fn transfer_encoding_is_refused_not_ignored() {
        let res = parse(
            "POST /v1/schedule HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n4\r\nbody\r\n0\r\n\r\n",
        );
        assert!(matches!(res, Err(ReadError::Bad(501, _))), "{res:?}");
    }

    #[test]
    fn truncated_body_is_an_io_error() {
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"),
            Err(ReadError::Io(_))
        ));
    }

    #[test]
    fn response_serializes_with_extra_headers() {
        let mut out = Vec::new();
        Response::error(429, "busy")
            .with_header("Retry-After", "2".to_string())
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Retry-After: 2\r\n"));
        assert!(text.contains("Connection: close"));
        assert!(text.ends_with("{\"error\": \"busy\"}\n"));
    }
}
