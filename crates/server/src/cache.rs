//! The content-addressed two-tier cache.
//!
//! * **Tier 1** — induced [`SweepInstance`]s, keyed by
//!   [`instance_digest`](crate::digest::instance_digest) (mesh bytes +
//!   quadrature order). Induction walks every face of every direction,
//!   so a hit here saves the dominant cost of a cold request.
//! * **Tier 2** — winning best-of-`b` schedules
//!   ([`ScheduleArtifact`]), keyed by
//!   [`schedule_digest`](crate::digest::schedule_digest) (tier-1 key +
//!   `m`, algorithm, seed, `b`). A hit here answers the request without
//!   touching the pool at all.
//!
//! Both tiers are LRU-bounded by an approximate **byte** budget rather
//! than an entry count, so one prismtet-scale instance can't silently
//! evict dozens of small ones while "respecting" the limit. Hits,
//! misses, evictions, and coalesced waits are surfaced through
//! `sweep-telemetry` (`serve.cache.*` counters + a `serve.cache.bytes`
//! gauge), which `GET /metrics` exports.
//!
//! **Single-flight coalescing:** when N identical requests race on a
//! cold key, the first becomes the *leader* and computes; the other
//! N−1 block on a condvar and receive the leader's `Arc` — one
//! computation, N responses. Leader failure is propagated to every
//! waiter and the flight is cleared so a later request can retry —
//! including failure by *panic*: a drop guard publishes the error
//! during the unwind, so waiters never wedge on a dead leader.

use std::collections::HashMap;
use std::sync::Arc;

// In normal builds these ARE `std::sync::{Condvar, Mutex}` (zero-cost
// re-exports); under the `model-check` feature every lock/wait/notify
// becomes a scheduler yield point, which is how `crate::model` explores
// the single-flight protocol's interleavings.
use sweep_check::sync::{Condvar, Mutex};
use sweep_core::Schedule;
use sweep_dag::SweepInstance;
use sweep_telemetry as telemetry;
use sweep_telemetry::TraceCtx;

/// The tier-2 value: a winning schedule plus the trial record a
/// response needs, sized for the LRU accounting.
#[derive(Debug, Clone)]
pub struct ScheduleArtifact {
    /// The winning (minimum-makespan) schedule.
    pub schedule: Schedule,
    /// Index of the winning trial in `0..b`.
    pub trial: usize,
    /// Child seed the winning trial ran with.
    pub trial_seed: u64,
    /// Every trial's makespan, in trial order.
    pub trial_makespans: Vec<u32>,
    /// The tier-2 content digest this artifact is addressed by.
    pub digest: u64,
}

/// Per-tier residency: entry count and approximate bytes, exported as
/// `serve.cache.tier{1,2}.{entries,bytes}` gauges and via `/debug/vars`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierStats {
    /// Resident entries in the tier.
    pub entries: usize,
    /// Approximate resident bytes in the tier.
    pub bytes: usize,
}

/// Point-in-time cache counters (also exported via `/metrics`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests answered from a tier (tier-1 and tier-2 combined).
    pub hits: u64,
    /// Requests that had to compute.
    pub misses: u64,
    /// Entries dropped to respect the byte budget.
    pub evictions: u64,
    /// Requests that piggybacked on another request's computation.
    pub coalesced: u64,
    /// Approximate resident bytes across both tiers.
    pub bytes: usize,
}

/// One LRU tier: digest → (value, approx bytes, last-use stamp).
struct Lru<V> {
    map: HashMap<u64, (V, usize, u64)>,
    clock: u64,
    bytes: usize,
    budget: usize,
}

impl<V> Lru<V> {
    fn new(budget: usize) -> Lru<V> {
        Lru {
            map: HashMap::new(),
            clock: 0,
            bytes: 0,
            budget,
        }
    }

    fn get(&mut self, key: u64) -> Option<&V> {
        self.clock += 1;
        let clock = self.clock;
        self.map.get_mut(&key).map(|e| {
            e.2 = clock;
            &e.0
        })
    }

    /// Inserts and evicts least-recently-used entries until the budget
    /// holds (the new entry itself is never evicted, so a single value
    /// larger than the whole budget still caches — and is evicted by
    /// the next insert). Returns the number of evictions.
    fn insert(&mut self, key: u64, value: V, approx_bytes: usize) -> u64 {
        self.clock += 1;
        if let Some((_, old, _)) = self.map.insert(key, (value, approx_bytes, self.clock)) {
            self.bytes -= old;
        }
        self.bytes += approx_bytes;
        let mut evicted = 0;
        while self.bytes > self.budget && self.map.len() > 1 {
            let Some((&victim, _)) = self
                .map
                .iter()
                .filter(|(&k, _)| k != key)
                .min_by_key(|(_, e)| e.2)
            else {
                break;
            };
            if let Some((_, b, _)) = self.map.remove(&victim) {
                self.bytes -= b;
                evicted += 1;
            }
        }
        evicted
    }
}

/// A single-flight slot: the leader computes, waiters block on the
/// condvar until `done` holds the shared result. The slot remembers
/// the **leader's request id** so waiters can record which request
/// they coalesced onto (surfaced in access logs and trace trees).
pub(crate) struct Flight<V> {
    done: Mutex<Option<Result<V, String>>>,
    cv: Condvar,
    leader_req: u64,
}

impl<V> Flight<V> {
    /// Request id of the leader that opened this flight.
    pub(crate) fn leader_req(&self) -> u64 {
        self.leader_req
    }
}

/// Outcome of claiming a flight: either this caller leads, or it waits.
pub(crate) enum Claim<V> {
    /// This caller computes and publishes.
    Leader(Arc<Flight<V>>),
    /// Another caller is computing; wait for its result.
    Follower(Arc<Flight<V>>),
}

/// Keyed single-flight table (crate-visible so `crate::model` can run
/// the protocol under the model checker).
pub(crate) struct SingleFlight<V> {
    inflight: Mutex<HashMap<u64, Arc<Flight<V>>>>,
}

impl<V: Clone> SingleFlight<V> {
    pub(crate) fn new() -> SingleFlight<V> {
        SingleFlight {
            inflight: Mutex::new(HashMap::new()),
        }
    }

    /// Claims the flight for `key`; `req_id` is the claimant's request
    /// id, recorded on the slot if it becomes the leader (0 when the
    /// caller is outside any request).
    pub(crate) fn claim(&self, key: u64, req_id: u64) -> Claim<V> {
        let mut map = self.inflight.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(f) = map.get(&key) {
            Claim::Follower(Arc::clone(f))
        } else {
            let f = Arc::new(Flight {
                done: Mutex::new(None),
                cv: Condvar::new(),
                leader_req: req_id,
            });
            map.insert(key, Arc::clone(&f));
            Claim::Leader(f)
        }
    }

    pub(crate) fn publish(&self, key: u64, flight: &Arc<Flight<V>>, result: Result<V, String>) {
        {
            let mut done = flight.done.lock().unwrap_or_else(|p| p.into_inner());
            *done = Some(result);
        }
        flight.cv.notify_all();
        self.inflight
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .remove(&key);
    }

    /// Runs the leader's computation and publishes its result — with
    /// unwind protection: if `compute` panics, a drop guard publishes
    /// an `Err` and clears the flight *during* the unwind, so every
    /// current and future waiter unblocks instead of wedging forever
    /// on a result that will never arrive.
    pub(crate) fn lead(
        &self,
        key: u64,
        flight: &Arc<Flight<V>>,
        compute: impl FnOnce() -> Result<V, String>,
    ) -> Result<V, String> {
        struct Abort<'a, V: Clone> {
            flights: &'a SingleFlight<V>,
            key: u64,
            flight: &'a Arc<Flight<V>>,
        }
        impl<V: Clone> Drop for Abort<'_, V> {
            fn drop(&mut self) {
                self.flights.publish(
                    self.key,
                    self.flight,
                    Err("internal: cache leader panicked mid-computation".to_string()),
                );
            }
        }
        let abort = Abort {
            flights: self,
            key,
            flight,
        };
        let result = compute();
        std::mem::forget(abort); // defuse: the normal publish below runs instead
        self.publish(key, flight, result.clone());
        result
    }

    pub(crate) fn wait(&self, flight: &Arc<Flight<V>>) -> Result<V, String> {
        let mut done = flight.done.lock().unwrap_or_else(|p| p.into_inner());
        while done.is_none() {
            done = flight.cv.wait(done).unwrap_or_else(|p| p.into_inner());
        }
        match done.as_ref() {
            Some(r) => r.clone(),
            None => Err("single-flight slot emptied while waiting".to_string()),
        }
    }
}

/// The two-tier content-addressed cache with single-flight coalescing.
pub struct ScheduleCache {
    instances: Mutex<Lru<Arc<SweepInstance>>>,
    schedules: Mutex<Lru<Arc<ScheduleArtifact>>>,
    instance_flights: SingleFlight<Arc<SweepInstance>>,
    schedule_flights: SingleFlight<Arc<ScheduleArtifact>>,
    stats: Mutex<CacheStats>,
}

/// Rough resident size of an induced instance: CSR edges dominate
/// (two u32 ends per edge, forward + reverse adjacency), plus the
/// offset arrays.
fn instance_bytes(inst: &SweepInstance) -> usize {
    let edges = inst.total_edges();
    let tasks = inst.num_tasks();
    16 * edges + 8 * tasks + 256
}

/// Rough resident size of a schedule artifact: one u32 start per task
/// plus one u32 processor per cell plus the trial record.
fn artifact_bytes(a: &ScheduleArtifact) -> usize {
    4 * a.schedule.starts().len() + 4 * a.trial_makespans.len() + 256
}

impl ScheduleCache {
    /// A cache with `budget_bytes` *per tier* (half each would starve
    /// tier 1: instances are an order of magnitude bigger than
    /// schedules at equal request rates).
    pub fn new(budget_bytes: usize) -> ScheduleCache {
        ScheduleCache {
            instances: Mutex::new(Lru::new(budget_bytes)),
            schedules: Mutex::new(Lru::new(budget_bytes)),
            instance_flights: SingleFlight::new(),
            schedule_flights: SingleFlight::new(),
            stats: Mutex::new(CacheStats::default()),
        }
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let mut s = *self.stats.lock().unwrap_or_else(|p| p.into_inner());
        s.bytes = self
            .instances
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .bytes
            + self
                .schedules
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .bytes;
        s
    }

    /// Per-tier residency (tier 1 = instances, tier 2 = schedules).
    pub fn tier_stats(&self) -> (TierStats, TierStats) {
        let t1 = {
            let lru = self.instances.lock().unwrap_or_else(|p| p.into_inner());
            TierStats {
                entries: lru.map.len(),
                bytes: lru.bytes,
            }
        };
        let t2 = {
            let lru = self.schedules.lock().unwrap_or_else(|p| p.into_inner());
            TierStats {
                entries: lru.map.len(),
                bytes: lru.bytes,
            }
        };
        (t1, t2)
    }

    fn bump(&self, f: impl FnOnce(&mut CacheStats)) {
        let mut s = self.stats.lock().unwrap_or_else(|p| p.into_inner());
        f(&mut s);
    }

    /// Tier-1 lookup-or-induce with single-flight coalescing. Returns
    /// the instance and whether it was served from cache (a coalesced
    /// wait counts as a hit: no second induction ran). `ctx` records
    /// the tier disposition and, for coalesced waiters, the leader's
    /// request id.
    pub fn instance(
        &self,
        key: u64,
        ctx: &TraceCtx,
        induce: impl FnOnce() -> Result<SweepInstance, String>,
    ) -> Result<(Arc<SweepInstance>, bool), String> {
        if let Some(found) = self
            .instances
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get(key)
            .cloned()
        {
            self.bump(|s| s.hits += 1);
            telemetry::counter_add("serve.cache.hits", 1);
            ctx.note("tier1", "hit");
            return Ok((found, true));
        }
        match self.instance_flights.claim(key, ctx.request_id()) {
            Claim::Follower(f) => {
                self.bump(|s| {
                    s.hits += 1;
                    s.coalesced += 1;
                });
                telemetry::counter_add("serve.cache.hits", 1);
                telemetry::counter_add("serve.cache.coalesced", 1);
                ctx.note("tier1", "coalesced");
                ctx.set_coalesced_onto(f.leader_req());
                let _wait = ctx.span("cache.wait");
                Ok((self.instance_flights.wait(&f)?, true))
            }
            Claim::Leader(f) => {
                self.bump(|s| s.misses += 1);
                telemetry::counter_add("serve.cache.misses", 1);
                ctx.note("tier1", "miss");
                let result = self.instance_flights.lead(key, &f, || {
                    let inst = Arc::new(induce()?);
                    let evicted = self
                        .instances
                        .lock()
                        .unwrap_or_else(|p| p.into_inner())
                        .insert(key, Arc::clone(&inst), instance_bytes(&inst));
                    self.note_evictions(evicted);
                    Ok(inst)
                });
                self.update_residency_gauges();
                result.map(|inst| (inst, false))
            }
        }
    }

    /// Tier-2 lookup-or-compute with single-flight coalescing; same
    /// contract as [`ScheduleCache::instance`].
    pub fn schedule(
        &self,
        key: u64,
        ctx: &TraceCtx,
        compute: impl FnOnce() -> Result<ScheduleArtifact, String>,
    ) -> Result<(Arc<ScheduleArtifact>, bool), String> {
        if let Some(found) = self
            .schedules
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get(key)
            .cloned()
        {
            self.bump(|s| s.hits += 1);
            telemetry::counter_add("serve.cache.hits", 1);
            ctx.note("tier2", "hit");
            return Ok((found, true));
        }
        match self.schedule_flights.claim(key, ctx.request_id()) {
            Claim::Follower(f) => {
                self.bump(|s| {
                    s.hits += 1;
                    s.coalesced += 1;
                });
                telemetry::counter_add("serve.cache.hits", 1);
                telemetry::counter_add("serve.cache.coalesced", 1);
                ctx.note("tier2", "coalesced");
                ctx.set_coalesced_onto(f.leader_req());
                let _wait = ctx.span("cache.wait");
                Ok((self.schedule_flights.wait(&f)?, true))
            }
            Claim::Leader(f) => {
                self.bump(|s| s.misses += 1);
                telemetry::counter_add("serve.cache.misses", 1);
                ctx.note("tier2", "miss");
                let result = self.schedule_flights.lead(key, &f, || {
                    let art = Arc::new(compute()?);
                    let evicted = self
                        .schedules
                        .lock()
                        .unwrap_or_else(|p| p.into_inner())
                        .insert(key, Arc::clone(&art), artifact_bytes(&art));
                    self.note_evictions(evicted);
                    Ok(art)
                });
                self.update_residency_gauges();
                result.map(|art| (art, false))
            }
        }
    }

    fn note_evictions(&self, n: u64) {
        if n > 0 {
            self.bump(|s| s.evictions += n);
            telemetry::counter_add("serve.cache.evictions", n);
        }
    }

    fn update_residency_gauges(&self) {
        let (t1, t2) = self.tier_stats();
        telemetry::gauge_set("serve.cache.bytes", (t1.bytes + t2.bytes) as f64);
        telemetry::gauge_set("serve.cache.tier1.bytes", t1.bytes as f64);
        telemetry::gauge_set("serve.cache.tier1.entries", t1.entries as f64);
        telemetry::gauge_set("serve.cache.tier2.bytes", t2.bytes as f64);
        telemetry::gauge_set("serve.cache.tier2.entries", t2.entries as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sweep_dag::TaskDag;

    fn tiny(name: &str) -> SweepInstance {
        let d = TaskDag::from_edges(3, &[(0, 1), (1, 2)]);
        SweepInstance::new(3, vec![d], name)
    }

    #[test]
    fn second_lookup_is_a_hit() {
        let cache = ScheduleCache::new(1 << 20);
        let (a, hit_a) = cache
            .instance(7, &TraceCtx::disabled(), || Ok(tiny("a")))
            .unwrap();
        let (b, hit_b) = cache
            .instance(7, &TraceCtx::disabled(), || panic!("must not re-induce"))
            .unwrap();
        assert!(!hit_a && hit_b);
        assert!(Arc::ptr_eq(&a, &b));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert!(s.bytes > 0);
    }

    #[test]
    fn lru_evicts_oldest_under_byte_pressure() {
        // Budget fits roughly one tiny instance (fixed overhead is 256
        // per entry plus edges); three inserts must evict.
        let cache = ScheduleCache::new(400);
        for key in 0..3u64 {
            cache
                .instance(key, &TraceCtx::disabled(), || Ok(tiny("x")))
                .unwrap();
        }
        let s = cache.stats();
        assert!(s.evictions >= 1, "{s:?}");
        // Most recent key must still be resident.
        let (_, hit) = cache
            .instance(2, &TraceCtx::disabled(), || panic!("key 2 was evicted"))
            .unwrap();
        assert!(hit);
    }

    #[test]
    fn leader_failure_propagates_and_clears_the_flight() {
        let cache = ScheduleCache::new(1 << 20);
        let err = cache
            .instance(9, &TraceCtx::disabled(), || Err("broken mesh".to_string()))
            .unwrap_err();
        assert!(err.contains("broken mesh"));
        // The flight is cleared: a retry runs a fresh computation.
        let (_, hit) = cache
            .instance(9, &TraceCtx::disabled(), || Ok(tiny("retry")))
            .unwrap();
        assert!(!hit);
    }

    #[test]
    fn leader_panic_unblocks_followers_and_clears_the_flight() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let cache = ScheduleCache::new(1 << 20);
        let leading = AtomicBool::new(false);
        std::thread::scope(|s| {
            let leader = s.spawn(|| {
                cache.instance(5, &TraceCtx::disabled(), || {
                    leading.store(true, Ordering::SeqCst);
                    // Keep the flight open long enough for the main
                    // thread to pile on as a follower.
                    std::thread::sleep(std::time::Duration::from_millis(30));
                    panic!("poisoned request")
                })
            });
            while !leading.load(Ordering::SeqCst) {
                std::thread::yield_now();
            }
            // We are now guaranteed to be a follower on the same key;
            // without the unwind guard this wait would never return.
            let err = cache
                .instance(5, &TraceCtx::disabled(), || Ok(tiny("follower")))
                .unwrap_err();
            assert!(err.contains("panicked"), "{err}");
            assert!(leader.join().is_err(), "leader must have panicked");
        });
        // The flight is cleared: a retry computes fresh instead of
        // blocking on the dead leader.
        let (_, hit) = cache
            .instance(5, &TraceCtx::disabled(), || Ok(tiny("retry")))
            .unwrap();
        assert!(!hit);
    }

    #[test]
    fn concurrent_identical_requests_coalesce_to_one_computation() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let cache = ScheduleCache::new(1 << 20);
        let computations = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let (inst, _) = cache
                        .instance(42, &TraceCtx::disabled(), || {
                            computations.fetch_add(1, Ordering::SeqCst);
                            // Give followers time to pile onto the flight.
                            std::thread::sleep(std::time::Duration::from_millis(30));
                            Ok(tiny("shared"))
                        })
                        .unwrap();
                    assert_eq!(inst.num_cells(), 3);
                });
            }
        });
        assert_eq!(computations.load(Ordering::SeqCst), 1);
        let s = cache.stats();
        assert_eq!(s.hits + s.misses, 8);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn coalesced_follower_records_the_leaders_request_id() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let cache = ScheduleCache::new(1 << 20);
        let leading = AtomicBool::new(false);
        std::thread::scope(|s| {
            s.spawn(|| {
                let leader_ctx = TraceCtx::root(0xabc);
                cache
                    .instance(3, &leader_ctx, || {
                        leading.store(true, Ordering::SeqCst);
                        std::thread::sleep(std::time::Duration::from_millis(30));
                        Ok(tiny("lead"))
                    })
                    .unwrap();
            });
            while !leading.load(Ordering::SeqCst) {
                std::thread::yield_now();
            }
            let follower_ctx = TraceCtx::root(0xdef);
            cache
                .instance(3, &follower_ctx, || Ok(tiny("never runs")))
                .unwrap();
            let trace = follower_ctx.finish().unwrap();
            assert_eq!(trace.coalesced_onto, Some(0xabc));
            assert_eq!(trace.note("tier1"), Some("coalesced"));
            // The wait shows up as a cache-stage span.
            assert!(trace.spans.iter().any(|sp| sp.name == "cache.wait"));
        });
        // Residency introspection: one entry in tier 1, none in tier 2.
        let (t1, t2) = cache.tier_stats();
        assert_eq!(t1.entries, 1);
        assert!(t1.bytes > 0);
        assert_eq!(t2, TierStats::default());
    }
}
