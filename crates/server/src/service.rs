//! The socket-free service core: request model, JSON wire codec,
//! routing, and the cached compute path.
//!
//! Everything here takes plain values and returns plain values, so the
//! whole service — including cache-hit behaviour and error mapping — is
//! unit-testable without opening a port. [`server`](crate::server) is
//! only the accept loop around [`SweepService::route`].

use std::fmt::Write as _;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use sweep_core::{
    best_of_trials_with_pool, c1_interprocessor_edges, c2_comm_delay, lower_bounds, validate,
    Algorithm, Assignment,
};
use sweep_dag::SweepInstance;
use sweep_json::Value;
use sweep_mesh::import::ImportFormat;
use sweep_mesh::MeshPreset;
use sweep_quadrature::QuadratureSet;
use sweep_rpc::{Frame, RpcRequest, RpcResponse};
use sweep_telemetry as telemetry;
use sweep_telemetry::TraceCtx;

use crate::cache::{ScheduleArtifact, ScheduleCache};
use crate::cluster::{encode_artifact, ClusterState, Route};
use crate::digest::{instance_digest, schedule_digest};
use crate::http::{Request, Response};
use crate::ops::{access_log_line, OpsState};

/// Where a request's mesh comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum MeshSource {
    /// One of the paper's presets, built at `scale`.
    Preset {
        /// Preset name (`tetonly`, `well_logging`, `long`, `prismtet`).
        name: String,
        /// Mesh scale in `(0, 1]`.
        scale: f64,
    },
    /// An inline `sweep-instance v1` document (as produced by
    /// `sweep instance --out`); `sn` is ignored for inline instances
    /// because the direction set is part of the document.
    Inline {
        /// The serialized instance text.
        text: String,
    },
    /// An uploaded mesh file body (Wavefront `.obj` or Gmsh `.msh`),
    /// imported through `sweep_mesh::import` and induced against the
    /// request's `sn` quadrature. See MESHES.md for the accepted
    /// grammar subsets and limits.
    Mesh {
        /// Declared format: `auto`, `obj`, or `msh`.
        format: String,
        /// The raw mesh file text.
        text: String,
    },
}

/// A parsed `POST /v1/schedule` request.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleRequest {
    /// Mesh source (preset or inline instance).
    pub mesh: MeshSource,
    /// S_n quadrature order (preset meshes only).
    pub sn: usize,
    /// Processor count.
    pub m: usize,
    /// Algorithm name (the CLI's `--algorithm` vocabulary).
    pub algorithm: String,
    /// Compose random delays onto the priority heuristics.
    pub delays: bool,
    /// Master seed for the assignment draw and trial splitting.
    pub seed: u64,
    /// Best-of-`b` trial count.
    pub b: usize,
}

/// Largest accepted processor count. The assignment draw stores
/// processor ids as `u32` and the schedulers allocate per-processor
/// state (`O(m)` heaps/queues), so an unbounded `m` from the network
/// is both a truncation hazard and a memory-exhaustion vector; 2^20
/// processors is far past any machine the paper contemplates.
pub const MAX_M: usize = 1 << 20;

/// Checks a processor count against the service bounds — used both at
/// parse time and defensively in the compute paths, so a
/// programmatically-built [`ScheduleRequest`] gets the same guard as a
/// network one.
fn check_m(m: usize) -> Result<(), String> {
    if m == 0 {
        return Err("'m' must be a positive integer".to_string());
    }
    if m > MAX_M {
        return Err(format!(
            "'m' = {m} exceeds the service limit of {MAX_M} processors"
        ));
    }
    Ok(())
}

/// Rejects an instance whose `cells × directions` product exceeds the
/// admission budget — called on the *predicted* size, before any mesh
/// generation, edge-list parsing, or induction has run, so an
/// oversized request is refused at header cost.
fn check_task_budget(cells: usize, directions: usize, max_tasks: usize) -> Result<(), String> {
    let tasks = cells.saturating_mul(directions);
    if tasks > max_tasks {
        return Err(format!(
            "instance would have {cells} cells × {directions} directions = {tasks} tasks, \
             over the service limit of {max_tasks}"
        ));
    }
    Ok(())
}

/// Imports an uploaded mesh body and induces the request's instance.
/// Every import failure is prefixed `mesh:` so the router maps it to
/// 400 — a malformed upload is a bad request, not an unprocessable
/// reference.
fn import_mesh_instance(
    format: &str,
    text: &str,
    sn: usize,
    max_tasks: usize,
) -> Result<SweepInstance, String> {
    let fmt = ImportFormat::from_name(format)
        .ok_or_else(|| format!("mesh: unknown format '{format}' (use auto, obj, or msh)"))?;
    let quad = QuadratureSet::level_symmetric(sn).map_err(|e| e.to_string())?;
    // Admission: bound the predicted task count from declared counts
    // alone, before assembly allocates anything proportional to them.
    let (_, cells) =
        sweep_mesh::import::peek_counts(text.as_bytes(), fmt).map_err(|e| format!("mesh: {e}"))?;
    check_task_budget(cells, quad.len(), max_tasks)?;
    let got = sweep_mesh::import_bytes(text.as_bytes(), fmt).map_err(|e| format!("mesh: {e}"))?;
    if got.report.has_errors() {
        return Err(format!(
            "mesh: validation failed: {} non-manifold faces, {} degenerate cells \
             (run `sweep mesh import` locally for the full SW03x report)",
            got.report.non_manifold.len(),
            got.report.degenerate_cells.len()
        ));
    }
    let name = format!(
        "imported-{}",
        got.report.format.map(|f| f.name()).unwrap_or("mesh")
    );
    Ok(SweepInstance::from_mesh(&got.mesh, &quad, &name).0)
}

impl ScheduleRequest {
    /// A preset-mesh request with the service defaults
    /// (`algorithm = "rdp"`, `seed = 2005`, `b = 8`).
    pub fn preset(name: &str, scale: f64, sn: usize, m: usize) -> ScheduleRequest {
        ScheduleRequest {
            mesh: MeshSource::Preset {
                name: name.to_string(),
                scale,
            },
            sn,
            m,
            algorithm: "rdp".to_string(),
            delays: false,
            seed: 2005,
            b: 8,
        }
    }

    /// Parses the JSON body of `POST /v1/schedule`. See API.md for the
    /// schema; unknown fields are rejected so typos fail loudly.
    pub fn from_json(body: &str) -> Result<ScheduleRequest, String> {
        let doc = sweep_json::parse(body).map_err(|e| format!("invalid JSON: {e}"))?;
        let Value::Obj(members) = &doc else {
            return Err("request body must be a JSON object".to_string());
        };
        const KNOWN: [&str; 10] = [
            "preset",
            "scale",
            "instance",
            "mesh",
            "mesh_format",
            "sn",
            "m",
            "algorithm",
            "delays",
            "seed",
        ];
        for (key, _) in members {
            if !KNOWN.contains(&key.as_str()) && key != "b" {
                return Err(format!("unknown field '{key}'"));
            }
        }
        let num = |key: &str, default: f64| -> Result<f64, String> {
            match doc.get(key) {
                None => Ok(default),
                Some(v) => v
                    .as_f64()
                    .ok_or_else(|| format!("'{key}' must be a number")),
            }
        };
        let int = |key: &str, default: u64| -> Result<u64, String> {
            match doc.get(key) {
                None => Ok(default),
                Some(v) => v
                    .as_u64()
                    .ok_or_else(|| format!("'{key}' must be a non-negative integer")),
            }
        };
        let sources = [
            doc.get("preset").is_some(),
            doc.get("instance").is_some(),
            doc.get("mesh").is_some(),
        ];
        let mesh = match sources.iter().filter(|&&s| s).count() {
            0 => return Err("missing mesh: give 'preset', 'instance', or 'mesh'".to_string()),
            1 => {
                if let Some(p) = doc.get("preset") {
                    MeshSource::Preset {
                        name: p
                            .as_str()
                            .ok_or_else(|| "'preset' must be a string".to_string())?
                            .to_string(),
                        scale: num("scale", 0.02)?,
                    }
                } else if let Some(i) = doc.get("instance") {
                    MeshSource::Inline {
                        text: i
                            .as_str()
                            .ok_or_else(|| "'instance' must be a string".to_string())?
                            .to_string(),
                    }
                } else {
                    let text = doc
                        .get("mesh")
                        .and_then(|v| v.as_str())
                        .ok_or_else(|| "'mesh' must be a string".to_string())?
                        .to_string();
                    let format = match doc.get("mesh_format") {
                        None => "auto".to_string(),
                        Some(v) => {
                            let name = v
                                .as_str()
                                .ok_or_else(|| "'mesh_format' must be a string".to_string())?;
                            if ImportFormat::from_name(name).is_none() {
                                return Err(format!(
                                    "'mesh_format' must be auto, obj, or msh (got '{name}')"
                                ));
                            }
                            name.to_string()
                        }
                    };
                    MeshSource::Mesh { format, text }
                }
            }
            _ => {
                return Err(
                    "give exactly one of 'preset', 'instance', or 'mesh', not several".to_string(),
                )
            }
        };
        if doc.get("mesh_format").is_some() && doc.get("mesh").is_none() {
            return Err("'mesh_format' is only valid together with 'mesh'".to_string());
        }
        let m64 = int("m", 0)?;
        if m64 > MAX_M as u64 {
            return Err(format!(
                "'m' = {m64} exceeds the service limit of {MAX_M} processors"
            ));
        }
        let m = m64 as usize;
        check_m(m)?;
        let b = (int("b", 8)? as usize).clamp(1, 64);
        let delays = match doc.get("delays") {
            None => false,
            Some(v) => v
                .as_bool()
                .ok_or_else(|| "'delays' must be a boolean".to_string())?,
        };
        Ok(ScheduleRequest {
            mesh,
            sn: int("sn", 4)? as usize,
            m,
            algorithm: match doc.get("algorithm") {
                None => "rdp".to_string(),
                Some(v) => v
                    .as_str()
                    .ok_or_else(|| "'algorithm' must be a string".to_string())?
                    .to_string(),
            },
            delays,
            seed: int("seed", 2005)?,
            b,
        })
    }

    /// The canonical content bytes of the mesh part of this request —
    /// what tier-1 digests hash.
    pub fn mesh_bytes(&self) -> Vec<u8> {
        match &self.mesh {
            MeshSource::Preset { name, scale } => {
                format!("preset:{name}:{:016x}", scale.to_bits()).into_bytes()
            }
            MeshSource::Inline { text } => text.clone().into_bytes(),
            MeshSource::Mesh { format, text } => {
                // The declared format is part of the content identity:
                // the same bytes parsed as a different format would be a
                // different mesh.
                let mut bytes = format!("mesh:{format}:").into_bytes();
                bytes.extend_from_slice(text.as_bytes());
                bytes
            }
        }
    }

    /// Serializes this request back to a JSON body that
    /// [`ScheduleRequest::from_json`] parses to an equal value — the
    /// payload a forward RPC carries to the digest's home shard. Every
    /// field is explicit (no defaults on the wire), and `scale` uses
    /// Rust's shortest round-trip float form, so the home shard derives
    /// the identical digest.
    pub fn to_canonical_json(&self) -> String {
        let mut out = String::from("{");
        match &self.mesh {
            MeshSource::Preset { name, scale } => {
                let _ = write!(
                    out,
                    "\"preset\": \"{}\", \"scale\": {scale:?}, ",
                    sweep_json::escape(name)
                );
            }
            MeshSource::Inline { text } => {
                let _ = write!(out, "\"instance\": \"{}\", ", sweep_json::escape(text));
            }
            MeshSource::Mesh { format, text } => {
                let _ = write!(
                    out,
                    "\"mesh\": \"{}\", \"mesh_format\": \"{}\", ",
                    sweep_json::escape(text),
                    sweep_json::escape(format)
                );
            }
        }
        let _ = write!(
            out,
            "\"sn\": {}, \"m\": {}, \"algorithm\": \"{}\", \"delays\": {}, \
             \"seed\": {}, \"b\": {}}}",
            self.sn,
            self.m,
            sweep_json::escape(&self.algorithm),
            self.delays,
            self.seed,
            self.b
        );
        out
    }
}

/// Maps the CLI's algorithm vocabulary onto [`Algorithm`].
pub fn algorithm_from_name(name: &str, delays: bool) -> Result<Algorithm, String> {
    Ok(match name {
        "rdp" => Algorithm::RandomDelayPriorities,
        "rd" => Algorithm::RandomDelay,
        "improved" => Algorithm::ImprovedRandomDelay,
        "greedy" => Algorithm::Greedy,
        "level" => Algorithm::LevelPriority { delays },
        "descendant" => Algorithm::DescendantPriority { delays },
        "dfds" => Algorithm::Dfds { delays },
        other => return Err(format!("unknown algorithm '{other}'")),
    })
}

/// A computed (or cache-served) schedule summary, ready to serialize.
#[derive(Debug, Clone)]
pub struct ScheduleResponse {
    /// Instance name (preset name or the inline instance's own name).
    pub name: String,
    /// Cells, directions, tasks of the instance.
    pub cells: usize,
    /// Number of sweep directions.
    pub directions: usize,
    /// Total task count (`cells × directions`).
    pub tasks: usize,
    /// Processor count the schedule targets.
    pub m: usize,
    /// Algorithm name as requested.
    pub algorithm: String,
    /// Makespan of the winning trial.
    pub makespan: u32,
    /// Certified lower bound `max{nk/m, k, D}`.
    pub lower_bound: u64,
    /// C1: interprocessor DAG edges under the assignment.
    pub c1: u64,
    /// C2: communication-delay cost of the schedule.
    pub c2: u64,
    /// Winning trial index in `0..b`.
    pub trial: usize,
    /// Trial count the request ran.
    pub b: usize,
    /// Whether the schedule came out of the tier-2 cache.
    pub cache_hit: bool,
    /// Whether the induced instance came out of the tier-1 cache.
    pub instance_cache_hit: bool,
    /// Tier-2 content digest (hex; the cache address of this result).
    pub digest: u64,
    /// How the cluster layer satisfied this request (`None` outside
    /// cluster mode, and for local homes and cache hits). Reported as
    /// response *headers*, never in the JSON body, so bodies stay
    /// bit-identical across serving paths.
    pub cluster: Option<ClusterDisposition>,
}

/// How a clustered request's artifact was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterDisposition {
    /// The artifact came from the digest's home shard over RPC.
    Forwarded {
        /// The home shard's id.
        home: u64,
    },
    /// The home shard was unreachable (or the forward failed); this
    /// shard degraded gracefully to local compute. The answer is
    /// bit-identical either way.
    Fallback {
        /// The home shard's id.
        home: u64,
    },
}

impl ScheduleResponse {
    /// Serializes the response body (stable field order).
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"name\": \"{}\",", sweep_json::escape(&self.name));
        let _ = writeln!(out, "  \"cells\": {},", self.cells);
        let _ = writeln!(out, "  \"directions\": {},", self.directions);
        let _ = writeln!(out, "  \"tasks\": {},", self.tasks);
        let _ = writeln!(out, "  \"m\": {},", self.m);
        let _ = writeln!(
            out,
            "  \"algorithm\": \"{}\",",
            sweep_json::escape(&self.algorithm)
        );
        let _ = writeln!(out, "  \"makespan\": {},", self.makespan);
        let _ = writeln!(out, "  \"lower_bound\": {},", self.lower_bound);
        let _ = writeln!(
            out,
            "  \"ratio\": {:.4},",
            self.makespan as f64 / self.lower_bound.max(1) as f64
        );
        let _ = writeln!(out, "  \"c1\": {},", self.c1);
        let _ = writeln!(out, "  \"c2\": {},", self.c2);
        let _ = writeln!(out, "  \"trial\": {},", self.trial);
        let _ = writeln!(out, "  \"b\": {},", self.b);
        let _ = writeln!(
            out,
            "  \"cache\": \"{}\",",
            if self.cache_hit { "hit" } else { "miss" }
        );
        let _ = writeln!(
            out,
            "  \"instance_cache\": \"{}\",",
            if self.instance_cache_hit {
                "hit"
            } else {
                "miss"
            }
        );
        let _ = writeln!(out, "  \"digest\": \"{:016x}\"", self.digest);
        out.push_str("}\n");
        out
    }
}

/// Service-level configuration (the server adds socket concerns on top).
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Byte budget per cache tier.
    pub cache_bytes: usize,
    /// Largest accepted `cells × directions` product, so one request
    /// can't wedge every worker (the paper-size prismtet at S4 is
    /// ~2.8M tasks; the default admits it with headroom).
    pub max_tasks: usize,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            cache_bytes: 64 * 1024 * 1024,
            max_tasks: 8_000_000,
        }
    }
}

/// Everything [`SweepService::artifact_with`] learns about one request.
struct ArtifactOutcome {
    inst: Arc<SweepInstance>,
    inst_hit: bool,
    key: u64,
    artifact: Arc<ScheduleArtifact>,
    hit: bool,
    cluster: Option<ClusterDisposition>,
}

/// The scheduling service: config + the two-tier cache + the shared
/// operational state behind `/debug/vars` and the access log.
pub struct SweepService {
    config: ServiceConfig,
    cache: ScheduleCache,
    ops: Arc<OpsState>,
    cluster: OnceLock<Arc<ClusterState>>,
}

impl SweepService {
    /// A service with a fresh, empty cache.
    pub fn new(config: ServiceConfig) -> SweepService {
        let cache = ScheduleCache::new(config.cache_bytes);
        SweepService {
            config,
            cache,
            ops: Arc::new(OpsState::default()),
            cluster: OnceLock::new(),
        }
    }

    /// The underlying cache (stats introspection).
    pub fn cache(&self) -> &ScheduleCache {
        &self.cache
    }

    /// Attaches cluster state (once, at server bind). Before this the
    /// service behaves exactly as a single node.
    pub fn set_cluster(&self, cluster: Arc<ClusterState>) {
        let _ = self.cluster.set(cluster);
    }

    /// The attached cluster state, if the server runs in cluster mode.
    pub fn cluster(&self) -> Option<&Arc<ClusterState>> {
        self.cluster.get()
    }

    /// The shared operational state (request ids, sampling, slow-trace
    /// buffer, access-log sink).
    pub fn ops(&self) -> &Arc<OpsState> {
        &self.ops
    }

    /// Builds (or fetches) the induced instance for a request.
    fn instance_for(
        &self,
        req: &ScheduleRequest,
        ctx: &TraceCtx,
    ) -> Result<(Arc<SweepInstance>, bool, u64), String> {
        let key = instance_digest(&req.mesh_bytes(), req.sn);
        let max_tasks = self.config.max_tasks;
        let cache_span = ctx.span("cache");
        let cctx = cache_span.ctx().clone();
        let (inst, hit) = self.cache.instance(key, &cctx, || {
            let _span = telemetry::span!("serve.induce");
            let _stage = cctx.span("induce");
            let inst = match &req.mesh {
                MeshSource::Preset { name, scale } => {
                    let preset = MeshPreset::from_name(name)
                        .ok_or_else(|| format!("unknown preset '{name}'"))?;
                    let quad = QuadratureSet::level_symmetric(req.sn).map_err(|e| e.to_string())?;
                    // Admission check before the mesh is even built:
                    // `build_scaled` targets `ceil(paper_cells × scale)`
                    // cells (min 16), so the task count is known up front.
                    let cells = ((preset.paper_cells() as f64 * scale).ceil() as usize).max(16);
                    check_task_budget(cells, quad.len(), max_tasks)?;
                    let mesh = preset.build_scaled(*scale).map_err(|e| e.to_string())?;
                    let (inst, _) = SweepInstance::from_mesh(&mesh, &quad, preset.name());
                    inst
                }
                MeshSource::Inline { text } => {
                    let (cells, directions) = sweep_dag::peek_counts(text)?;
                    check_task_budget(cells, directions, max_tasks)?;
                    sweep_dag::from_text(text)?
                }
                MeshSource::Mesh { format, text } => {
                    import_mesh_instance(format, text, req.sn, max_tasks)?
                }
            };
            // Backstop: the mesh generator may overshoot its target.
            if inst.num_tasks() > max_tasks {
                return Err(format!(
                    "instance has {} tasks, over the service limit of {max_tasks}",
                    inst.num_tasks()
                ));
            }
            Ok(inst)
        })?;
        Ok((inst, hit, key))
    }

    /// The full cached compute path for one schedule request, with no
    /// request-scoped tracing (library callers; the server routes
    /// through [`SweepService::schedule_traced`]).
    pub fn schedule(&self, req: &ScheduleRequest) -> Result<ScheduleResponse, String> {
        self.schedule_traced(req, &TraceCtx::disabled())
    }

    /// The full cached compute path for one schedule request, recording
    /// stage spans (`cache`, `induce`, `schedule`) and cache/pool
    /// attribution notes onto `ctx`.
    pub fn schedule_traced(
        &self,
        req: &ScheduleRequest,
        ctx: &TraceCtx,
    ) -> Result<ScheduleResponse, String> {
        let outcome = self.artifact_with(req, ctx, true)?;
        let ArtifactOutcome {
            inst,
            inst_hit,
            key,
            artifact,
            hit,
            cluster,
        } = outcome;
        let lb = lower_bounds(&inst, req.m);
        Ok(ScheduleResponse {
            name: inst.name().to_string(),
            cells: inst.num_cells(),
            directions: inst.num_directions(),
            tasks: inst.num_tasks(),
            m: req.m,
            algorithm: req.algorithm.clone(),
            makespan: artifact.schedule.makespan(),
            lower_bound: lb.best(),
            c1: c1_interprocessor_edges(&inst, artifact.schedule.assignment()),
            c2: c2_comm_delay(&inst, &artifact.schedule),
            trial: artifact.trial,
            b: req.b,
            cache_hit: hit,
            instance_cache_hit: inst_hit,
            digest: key,
            cluster,
        })
    }

    /// The cached artifact for a request, as the answer to a peer's
    /// forward RPC: the same cached compute path minus the forwarding
    /// step — the home shard always computes (or serves) locally, which
    /// is the loop guard if two shards ever disagree about a ring.
    pub fn schedule_artifact(
        &self,
        req: &ScheduleRequest,
        ctx: &TraceCtx,
    ) -> Result<Arc<ScheduleArtifact>, String> {
        Ok(self.artifact_with(req, ctx, false)?.artifact)
    }

    /// The shared artifact acquisition path: tier-1 instance, tier-2
    /// single-flight, and — when `allow_forward` and this shard is not
    /// the digest's home — one forwarded RPC that every concurrent
    /// follower coalesces onto (cluster-wide single-flight). Any
    /// forward failure degrades to local compute; determinism makes the
    /// degraded answer bit-identical.
    fn artifact_with(
        &self,
        req: &ScheduleRequest,
        ctx: &TraceCtx,
        allow_forward: bool,
    ) -> Result<ArtifactOutcome, String> {
        let _span = telemetry::span!("serve.schedule");
        check_m(req.m)?;
        let algorithm = algorithm_from_name(&req.algorithm, req.delays)?;
        let (inst, inst_hit, inst_key) = self.instance_for(req, ctx)?;
        let key = schedule_digest(inst_key, req.m, &req.algorithm, req.delays, req.seed, req.b);
        let cache_span = ctx.span("cache");
        let cctx = cache_span.ctx().clone();
        let mut cluster_via: Option<ClusterDisposition> = None;
        let (artifact, hit) = self.cache.schedule(key, &cctx, || {
            if allow_forward {
                if let Some(outcome) = self.try_forward(key, req, &inst, &cctx) {
                    match outcome {
                        Ok(remote) => {
                            cluster_via = Some(ClusterDisposition::Forwarded { home: remote.0 });
                            return Ok(remote.1);
                        }
                        Err(home) => {
                            cluster_via = Some(ClusterDisposition::Fallback { home });
                        }
                    }
                }
            }
            let _span = telemetry::span!("serve.compute");
            let _stage = cctx.span("schedule");
            // Attribute the pool work this request triggered: the
            // `pool.tasks` counter delta across the compute closure is
            // the number of pool tasks charged to this request.
            let tasks_before = telemetry::counter_value("pool.tasks");
            let assignment = Assignment::random_cells(inst.num_cells(), req.m, req.seed);
            let best = best_of_trials_with_pool(
                &sweep_pool::global(),
                &inst,
                &assignment,
                algorithm,
                req.b,
                req.seed,
            );
            let pool_tasks = telemetry::counter_value("pool.tasks").saturating_sub(tasks_before);
            if pool_tasks > 0 {
                cctx.note("pool_tasks", pool_tasks);
            }
            validate(&inst, &best.schedule)
                .map_err(|e| format!("internal: infeasible schedule: {e}"))?;
            Ok(ScheduleArtifact {
                trial: best.trial,
                trial_seed: best.seed,
                trial_makespans: best.outcomes.iter().map(|o| o.makespan).collect(),
                schedule: best.schedule,
                digest: key,
            })
        })?;
        drop(cache_span);
        Ok(ArtifactOutcome {
            inst,
            inst_hit,
            key,
            artifact,
            hit,
            cluster: cluster_via,
        })
    }

    /// The forwarding decision inside the tier-2 leader closure.
    ///
    /// * `None` — not clustered, or this shard is the digest's home:
    ///   compute locally with no cluster disposition.
    /// * `Some(Ok((home, artifact)))` — the home shard answered and the
    ///   artifact validated against the locally induced instance.
    /// * `Some(Err(home))` — the home shard is down, unreachable, or
    ///   answered garbage: degrade to local compute, noted as a
    ///   fallback.
    #[allow(clippy::type_complexity)]
    fn try_forward(
        &self,
        key: u64,
        req: &ScheduleRequest,
        inst: &SweepInstance,
        cctx: &TraceCtx,
    ) -> Option<Result<(u64, ScheduleArtifact), u64>> {
        let cluster = self.cluster.get()?;
        match cluster.route_for(key) {
            Route::Local => None,
            Route::Degraded(home) => {
                cluster.record_fallback();
                cctx.note("cluster", "fallback");
                telemetry::counter_add("serve.cluster.fallbacks", 1);
                Some(Err(home))
            }
            Route::Forward(peer) => {
                let home = cluster.home_of(key);
                let _stage = cctx.span("schedule");
                match cluster.forward_schedule(peer, req.to_canonical_json(), key) {
                    Ok(remote) => {
                        // Never trust bytes off the wire blindly: the
                        // artifact must be a feasible schedule for the
                        // locally induced instance.
                        match validate(inst, &remote.schedule) {
                            Ok(()) => {
                                cctx.note("cluster", "forward");
                                telemetry::counter_add("serve.cluster.forwards", 1);
                                Some(Ok((home, remote)))
                            }
                            Err(e) => {
                                cluster.record_forward_fail();
                                cluster.record_fallback();
                                cctx.note("cluster", "fallback");
                                cctx.note("cluster_error", format!("infeasible: {e}"));
                                telemetry::counter_add("serve.cluster.fallbacks", 1);
                                Some(Err(home))
                            }
                        }
                    }
                    Err(e) => {
                        cluster.record_forward_fail();
                        cluster.record_fallback();
                        cctx.note("cluster", "fallback");
                        cctx.note("cluster_error", e);
                        telemetry::counter_add("serve.cluster.fallbacks", 1);
                        Some(Err(home))
                    }
                }
            }
        }
    }

    /// Serves one inbound peer RPC frame: pings get pongs, forwarded
    /// schedule requests run the local (never re-forwarding) cached
    /// compute path and return the encoded artifact. Emits an
    /// access-log line with method `RPC` so cluster-wide single-flight
    /// is observable in the same place as HTTP traffic.
    pub fn serve_peer_rpc(&self, frame: &Frame) -> Frame {
        match RpcRequest::from_frame(frame) {
            Ok(RpcRequest::Ping) => RpcResponse::Pong.to_frame(),
            Ok(RpcRequest::Schedule { origin, body }) => {
                let started = Instant::now();
                if let Some(cluster) = self.cluster.get() {
                    cluster.record_rpc_serve();
                }
                telemetry::counter_add("serve.cluster.rpc_serves", 1);
                let conn = self.ops.next_conn();
                let ctx = self.ops.trace_ctx(conn);
                let root = ctx.span("request");
                root.ctx().note("forwarded_from", origin);
                let result = match ScheduleRequest::from_json(&body) {
                    Ok(req) => self.schedule_artifact(&req, root.ctx()),
                    Err(e) => Err(e),
                };
                drop(root);
                let trace = ctx.finish();
                let (response, status, bytes) = match result {
                    Ok(artifact) => {
                        let encoded = encode_artifact(&artifact);
                        let n = encoded.len();
                        (RpcResponse::Artifact(encoded), 200, n)
                    }
                    Err(e) => {
                        let status = if e.starts_with("internal:") { 500 } else { 422 };
                        (RpcResponse::Error(e), status, 0)
                    }
                };
                if self.ops.should_log(conn) {
                    self.ops.log(&access_log_line(
                        ctx.request_id(),
                        "RPC",
                        "/rpc/schedule",
                        status,
                        bytes,
                        started.elapsed().as_micros() as u64,
                        self.ops.sheds(),
                        trace.as_ref(),
                    ));
                }
                response.to_frame()
            }
            Err(e) => RpcResponse::Error(format!("{e}")).to_frame(),
        }
    }

    /// Recomputes a request **cold** — no cache read, no cache write —
    /// for the SW024 identity certification.
    pub fn compute_cold(
        &self,
        req: &ScheduleRequest,
    ) -> Result<(SweepInstance, ScheduleArtifact), String> {
        check_m(req.m)?;
        let algorithm = algorithm_from_name(&req.algorithm, req.delays)?;
        let inst = match &req.mesh {
            MeshSource::Preset { name, scale } => {
                let preset = MeshPreset::from_name(name)
                    .ok_or_else(|| format!("unknown preset '{name}'"))?;
                let mesh = preset.build_scaled(*scale).map_err(|e| e.to_string())?;
                let quad = QuadratureSet::level_symmetric(req.sn).map_err(|e| e.to_string())?;
                SweepInstance::from_mesh(&mesh, &quad, preset.name()).0
            }
            MeshSource::Inline { text } => sweep_dag::from_text(text)?,
            MeshSource::Mesh { format, text } => {
                import_mesh_instance(format, text, req.sn, self.config.max_tasks)?
            }
        };
        let assignment = Assignment::random_cells(inst.num_cells(), req.m, req.seed);
        let best = best_of_trials_with_pool(
            &sweep_pool::global(),
            &inst,
            &assignment,
            algorithm,
            req.b,
            req.seed,
        );
        let key = schedule_digest(
            instance_digest(&req.mesh_bytes(), req.sn),
            req.m,
            &req.algorithm,
            req.delays,
            req.seed,
            req.b,
        );
        let artifact = ScheduleArtifact {
            trial: best.trial,
            trial_seed: best.seed,
            trial_makespans: best.outcomes.iter().map(|o| o.makespan).collect(),
            schedule: best.schedule,
            digest: key,
        };
        Ok((inst, artifact))
    }

    /// Routes one parsed HTTP request with no request-scoped tracing.
    pub fn route(&self, req: &Request) -> Response {
        self.route_traced(req, &TraceCtx::disabled())
    }

    /// Routes one parsed HTTP request, recording stage spans onto `ctx`.
    /// All endpoint semantics (including error mapping) live here so
    /// they are socket-independent.
    pub fn route_traced(&self, req: &Request, ctx: &TraceCtx) -> Response {
        telemetry::counter_add("serve.http.requests", 1);
        let response = match (req.method.as_str(), req.path.as_str()) {
            // In cluster mode health is a JSON document carrying the
            // cluster surface; peers being down makes it
            // `"degraded": true` but never non-200 — a shard that can
            // still compute locally is alive.
            ("GET", "/healthz") => match self.cluster.get() {
                None => Response::text("ok\n".to_string()),
                Some(cluster) => Response::json(format!(
                    "{{\"status\": \"ok\", \"cluster\": {}}}\n",
                    cluster.status_json_fragment()
                )),
            },
            ("GET", "/v1/presets") => Response::json(render_presets()),
            ("GET", "/metrics") => {
                let text = telemetry::to_prometheus(&telemetry::snapshot());
                Response {
                    status: 200,
                    content_type: "text/plain; version=0.0.4; charset=utf-8",
                    extra_headers: Vec::new(),
                    body: text,
                }
            }
            ("GET", "/debug/vars") => Response::json(self.debug_vars_json()),
            ("GET", "/debug/trace") => {
                Response::json(sweep_telemetry::traces_to_chrome(&self.ops.slow_traces()))
            }
            ("POST", "/v1/schedule") => match std::str::from_utf8(&req.body) {
                Err(_) => Response::error(400, "body is not valid UTF-8"),
                Ok(body) => {
                    let parse_span = ctx.span("parse");
                    let parsed = ScheduleRequest::from_json(body);
                    drop(parse_span);
                    match parsed {
                        Err(e) => Response::error(400, &e),
                        Ok(parsed) => match self.schedule_traced(&parsed, ctx) {
                            Ok(resp) => {
                                let _ser = ctx.span("serialize");
                                // Cluster disposition travels as headers
                                // only: JSON bodies stay bit-identical
                                // across forward/fallback/local paths.
                                let response = Response::json(resp.render_json());
                                match resp.cluster {
                                    None => response,
                                    Some(ClusterDisposition::Forwarded { home }) => response
                                        .with_header("X-Sweep-Forwarded-From", home.to_string()),
                                    Some(ClusterDisposition::Fallback { home }) => response
                                        .with_header(
                                            "X-Sweep-Degraded",
                                            format!("fallback; home={home}"),
                                        ),
                                }
                            }
                            // A well-formed request naming something that
                            // doesn't exist or doesn't fit is the client's
                            // problem (422); a mesh body that fails to parse
                            // or validate is a malformed request (400); an
                            // internal inconsistency is ours.
                            Err(e) if e.starts_with("internal:") => Response::error(500, &e),
                            Err(e) if e.starts_with("mesh:") => Response::error(400, &e),
                            Err(e) => Response::error(422, &e),
                        },
                    }
                }
            },
            (_, "/healthz" | "/v1/presets" | "/metrics" | "/debug/vars" | "/debug/trace") => {
                Response::error(405, "use GET on this endpoint")
            }
            (_, "/v1/schedule") => Response::error(405, "use POST on this endpoint"),
            (_, path) => Response::error(404, &format!("no such endpoint '{path}'")),
        };
        let class = match response.status {
            200..=299 => "serve.http.responses_2xx",
            429 => "serve.http.responses_429",
            400..=499 => "serve.http.responses_4xx",
            _ => "serve.http.responses_5xx",
        };
        telemetry::counter_add(class, 1);
        // Per-route × status-class request counter. The route label is
        // drawn from the fixed endpoint vocabulary (unknown paths all
        // collapse to "other") so a path-scanning client can't mint
        // unbounded label values.
        let route = match req.path.as_str() {
            p @ ("/healthz" | "/v1/presets" | "/metrics" | "/v1/schedule" | "/debug/vars"
            | "/debug/trace") => p,
            _ => "other",
        };
        let status = match response.status {
            200..=299 => "2xx",
            429 => "429",
            400..=499 => "4xx",
            _ => "5xx",
        };
        telemetry::counter_add(
            &telemetry::labeled(
                "serve.http.requests_by_route",
                &[("route", route), ("status", status)],
            ),
            1,
        );
        // Every response from a clustered shard names the shard that
        // produced it, so a client behind a load balancer can tell the
        // shards apart.
        match self.cluster.get() {
            None => response,
            Some(cluster) => response.with_header("X-Sweep-Shard", cluster.self_id().to_string()),
        }
    }

    /// The `GET /debug/vars` body: a point-in-time JSON snapshot of the
    /// live operational surface — request/shed counters, in-flight
    /// depth, cache residency per tier, pool work, and per-stage latency
    /// quantiles.
    pub fn debug_vars_json(&self) -> String {
        let snap = telemetry::snapshot();
        let stats = self.cache.stats();
        let (t1, t2) = self.cache.tier_stats();
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        let _ = writeln!(
            out,
            "  \"requests\": {},",
            snap.counters
                .get("serve.http.requests")
                .copied()
                .unwrap_or(0)
        );
        let _ = writeln!(
            out,
            "  \"inflight\": {},",
            snap.gauges.get("serve.inflight").copied().unwrap_or(0.0) as u64
        );
        let _ = writeln!(out, "  \"sheds\": {},", self.ops.sheds());
        let _ = writeln!(
            out,
            "  \"cache\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \
             \"coalesced\": {}, \"bytes\": {},",
            stats.hits, stats.misses, stats.evictions, stats.coalesced, stats.bytes
        );
        let _ = writeln!(
            out,
            "    \"tier1\": {{\"entries\": {}, \"bytes\": {}}},",
            t1.entries, t1.bytes
        );
        let _ = writeln!(
            out,
            "    \"tier2\": {{\"entries\": {}, \"bytes\": {}}}}},",
            t2.entries, t2.bytes
        );
        let _ = writeln!(
            out,
            "  \"pool\": {{\"tasks\": {}, \"steals\": {}, \"steal_attempts\": {}, \
             \"steal_failures\": {}, \"parked\": {}}},",
            snap.counters.get("pool.tasks").copied().unwrap_or(0),
            snap.counters.get("pool.steals").copied().unwrap_or(0),
            snap.counters
                .get("pool.steal_attempts")
                .copied()
                .unwrap_or(0),
            snap.counters
                .get("pool.steal_failures")
                .copied()
                .unwrap_or(0),
            snap.counters.get("pool.parked").copied().unwrap_or(0)
        );
        if let Some(cluster) = self.cluster.get() {
            let _ = writeln!(out, "  \"cluster\": {},", cluster.status_json_fragment());
        }
        out.push_str("  \"stages_us\": {");
        for (i, stage) in telemetry::STAGES.iter().enumerate() {
            let (p50, p99, count) = snap
                .histograms
                .get(&format!("serve.stage.{stage}_us"))
                .map(|h| (h.p50(), h.p99(), h.count()))
                .unwrap_or((0.0, 0.0, 0));
            let _ = write!(
                out,
                "{}\"{stage}\": {{\"p50\": {p50:.1}, \"p99\": {p99:.1}, \"count\": {count}}}",
                if i == 0 { "" } else { ", " }
            );
        }
        out.push_str("},\n");
        let _ = writeln!(out, "  \"slow_traces\": {}", self.ops.slow_traces().len());
        out.push_str("}\n");
        out
    }
}

/// The `GET /v1/presets` body.
fn render_presets() -> String {
    let mut out = String::new();
    out.push_str("{\n  \"presets\": [\n");
    let last = MeshPreset::ALL.len() - 1;
    for (i, p) in MeshPreset::ALL.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"name\": \"{}\", \"paper_cells\": {}}}{}",
            p.name(),
            p.paper_cells(),
            if i == last { "" } else { "," }
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Runs the SW024 cache-identity certification for one request against
/// a service: serves it twice (the second **must** be a tier-2 hit),
/// recomputes it cold outside the cache, and diffs the two schedules
/// bit-for-bit through `sweep-analyze`.
pub fn certify_cache_identity(
    service: &SweepService,
    req: &ScheduleRequest,
) -> Result<sweep_analyze::Report, String> {
    service.schedule(req)?; // warm (miss or pre-existing)
    let warm = service.schedule(req)?; // must now be a hit
    if !warm.cache_hit {
        return Err("second identical request did not hit the schedule cache".to_string());
    }
    let key = schedule_digest(
        instance_digest(&req.mesh_bytes(), req.sn),
        req.m,
        &req.algorithm,
        req.delays,
        req.seed,
        req.b,
    );
    let (cached, _) = service.cache().schedule(key, &TraceCtx::disabled(), || {
        Err("internal: artifact vanished after a hit".to_string())
    })?;
    let (inst, cold) = service.compute_cold(req)?;
    Ok(sweep_analyze::analyze_cache_identity(
        &inst,
        &cached.schedule,
        &cold.schedule,
        sweep_analyze::CacheIdentityMeta {
            digest: key,
            cached_trial: cached.trial,
            cold_trial: cold.trial,
            cached_seed: cached.trial_seed,
            cold_seed: cold.trial_seed,
        },
    ))
}

/// Runs the SW029 cluster-identity certification for one request:
/// serves it through this shard's full cluster path — whichever way it
/// resolves (forwarded from the home shard, degraded to local compute,
/// plain local, or already cached) — then recomputes the request cold
/// on this node and diffs the served schedule against the cold one
/// bit-for-bit through `sweep-analyze`.
pub fn certify_cluster_identity(
    service: &SweepService,
    req: &ScheduleRequest,
) -> Result<sweep_analyze::Report, String> {
    let served = service.schedule(req)?;
    let path = match served.cluster {
        Some(ClusterDisposition::Forwarded { .. }) => "forward",
        Some(ClusterDisposition::Fallback { .. }) => "fallback",
        None if served.cache_hit => "cached",
        None => "local",
    };
    let key = served.digest;
    let (artifact, _) = service.cache().schedule(key, &TraceCtx::disabled(), || {
        Err("internal: artifact vanished after serving".to_string())
    })?;
    let (inst, cold) = service.compute_cold(req)?;
    Ok(sweep_analyze::analyze_cluster_identity(
        &inst,
        &artifact.schedule,
        &cold.schedule,
        sweep_analyze::ClusterIdentityMeta {
            digest: key,
            path: path.to_string(),
            served_trial: artifact.trial,
            cold_trial: cold.trial,
            served_seed: artifact.trial_seed,
            cold_seed: cold.trial_seed,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn tiny() -> ScheduleRequest {
        ScheduleRequest::preset("tetonly", 0.01, 2, 4)
    }

    const TINY_OBJ: &str = "v 0 0 0\nv 1 0 0\nv 0 1 0\nv 1 1 0\nf 1 2 3\nf 2 4 3\n";

    fn mesh_req() -> ScheduleRequest {
        ScheduleRequest {
            mesh: MeshSource::Mesh {
                format: "auto".to_string(),
                text: TINY_OBJ.to_string(),
            },
            sn: 2,
            m: 2,
            algorithm: "greedy".to_string(),
            delays: false,
            seed: 1,
            b: 2,
        }
    }

    #[test]
    fn parses_minimal_and_full_bodies() {
        let r = ScheduleRequest::from_json(r#"{"preset": "tetonly", "m": 4}"#).unwrap();
        assert_eq!(r, {
            let mut want = ScheduleRequest::preset("tetonly", 0.02, 4, 4);
            want.b = 8;
            want
        });
        let r = ScheduleRequest::from_json(
            r#"{"preset": "long", "scale": 0.05, "sn": 2, "m": 16,
                "algorithm": "dfds", "delays": true, "seed": 7, "b": 3}"#,
        )
        .unwrap();
        assert_eq!(r.algorithm, "dfds");
        assert!(r.delays);
        assert_eq!((r.seed, r.b, r.sn, r.m), (7, 3, 2, 16));
    }

    #[test]
    fn rejects_bad_bodies() {
        for (body, needle) in [
            ("nonsense", "invalid JSON"),
            ("[1]", "must be a JSON object"),
            (r#"{"m": 4}"#, "missing mesh"),
            (r#"{"preset": "tetonly"}"#, "'m' must be a positive"),
            (r#"{"preset": "t", "instance": "x", "m": 1}"#, "exactly one"),
            (
                r#"{"preset": "tetonly", "m": 4, "typo": 1}"#,
                "unknown field",
            ),
            (r#"{"preset": "tetonly", "m": -2}"#, "non-negative"),
            (r#"{"preset": "tetonly", "m": 1048577}"#, "exceeds"),
            (r#"{"preset": "tetonly", "m": 4294967296}"#, "exceeds"),
            (r#"{"preset": 5, "m": 4}"#, "'preset' must be a string"),
        ] {
            let err = ScheduleRequest::from_json(body).unwrap_err();
            assert!(err.contains(needle), "{body}: {err}");
        }
    }

    #[test]
    fn schedule_twice_hits_and_matches() {
        let svc = SweepService::new(ServiceConfig::default());
        let first = svc.schedule(&tiny()).unwrap();
        let second = svc.schedule(&tiny()).unwrap();
        assert!(!first.cache_hit && second.cache_hit);
        assert!(second.instance_cache_hit);
        assert_eq!(first.makespan, second.makespan);
        assert_eq!(first.digest, second.digest);
        assert!(first.makespan as u64 >= first.lower_bound);
    }

    #[test]
    fn different_content_means_different_digest_and_recompute() {
        let svc = SweepService::new(ServiceConfig::default());
        let a = svc.schedule(&tiny()).unwrap();
        let mut other = tiny();
        other.seed += 1;
        let b = svc.schedule(&other).unwrap();
        assert_ne!(a.digest, b.digest);
        assert!(!b.cache_hit);
        // Same mesh though: tier 1 must hit.
        assert!(b.instance_cache_hit);
    }

    #[test]
    fn inline_instance_round_trips() {
        let inst = SweepInstance::random_layered(30, 2, 4, 2, 5);
        let text = sweep_dag::to_text(&inst);
        let req = ScheduleRequest {
            mesh: MeshSource::Inline { text },
            sn: 0,
            m: 3,
            algorithm: "greedy".to_string(),
            delays: false,
            seed: 1,
            b: 2,
        };
        let svc = SweepService::new(ServiceConfig::default());
        let resp = svc.schedule(&req).unwrap();
        assert_eq!(resp.cells, 30);
        assert_eq!(resp.directions, 2);
    }

    #[test]
    fn oversized_requests_are_rejected_before_any_work_runs() {
        let svc = SweepService::new(ServiceConfig {
            max_tasks: 1000,
            ..ServiceConfig::default()
        });
        // Preset path: predicted cells × directions over budget is
        // refused before the mesh is generated (this test would take
        // visibly long otherwise).
        let err = svc
            .schedule(&ScheduleRequest::preset("prismtet", 1.0, 8, 4))
            .unwrap_err();
        assert!(err.contains("over the service limit"), "{err}");
        // Inline path: the header alone condemns the request — no edge
        // parsing, no O(cells × directions) allocation.
        let huge = "sweep-instance v1\nname huge\ncells 1000000000\ndirections 1000\n";
        let req = ScheduleRequest {
            mesh: MeshSource::Inline {
                text: huge.to_string(),
            },
            sn: 0,
            m: 4,
            algorithm: "greedy".to_string(),
            delays: false,
            seed: 1,
            b: 1,
        };
        assert!(svc
            .schedule(&req)
            .unwrap_err()
            .contains("over the service limit"));
        // A programmatically-built request with an absurd m is stopped
        // by the same guard the parser uses.
        let mut big_m = tiny();
        big_m.m = MAX_M + 1;
        assert!(svc.schedule(&big_m).unwrap_err().contains("exceeds"));
    }

    #[test]
    fn unknown_preset_and_algorithm_are_client_errors() {
        let svc = SweepService::new(ServiceConfig::default());
        let mut req = tiny();
        req.algorithm = "quantum".to_string();
        assert!(svc
            .schedule(&req)
            .unwrap_err()
            .contains("unknown algorithm"));
        let mut req = tiny();
        req.mesh = MeshSource::Preset {
            name: "nope".to_string(),
            scale: 0.01,
        };
        assert!(svc.schedule(&req).unwrap_err().contains("unknown preset"));
    }

    #[test]
    fn routing_matrix() {
        let svc = SweepService::new(ServiceConfig::default());
        let get = |path: &str| Request {
            method: "GET".to_string(),
            path: path.to_string(),
            query: None,
            headers: HashMap::new(),
            body: Vec::new(),
        };
        assert_eq!(svc.route(&get("/healthz")).status, 200);
        let presets = svc.route(&get("/v1/presets"));
        assert_eq!(presets.status, 200);
        assert!(presets.body.contains("well_logging"));
        assert_eq!(svc.route(&get("/metrics")).status, 200);
        assert_eq!(svc.route(&get("/nope")).status, 404);
        let mut post = get("/v1/schedule");
        post.method = "POST".to_string();
        post.body = br#"{"preset": "tetonly", "scale": 0.01, "sn": 2, "m": 4}"#.to_vec();
        let resp = svc.route(&post);
        assert_eq!(resp.status, 200, "{}", resp.body);
        assert!(resp.body.contains("\"cache\": \"miss\""));
        let again = svc.route(&post);
        assert!(again.body.contains("\"cache\": \"hit\""));
        let mut wrong = get("/v1/schedule");
        wrong.method = "GET".to_string();
        assert_eq!(svc.route(&wrong).status, 405);
        post.body = br#"{"preset": "tetonly", "m": 0}"#.to_vec();
        assert_eq!(svc.route(&post).status, 400);
        post.body = br#"{"preset": "mars", "m": 4}"#.to_vec();
        assert_eq!(svc.route(&post).status, 422);
    }

    #[test]
    fn mesh_body_parses_and_round_trips_canonically() {
        let body = format!(r#"{{"mesh": "{}", "m": 2}}"#, sweep_json::escape(TINY_OBJ));
        let r = ScheduleRequest::from_json(&body).unwrap();
        assert_eq!(
            r.mesh,
            MeshSource::Mesh {
                format: "auto".to_string(),
                text: TINY_OBJ.to_string(),
            }
        );
        let again = ScheduleRequest::from_json(&r.to_canonical_json()).unwrap();
        assert_eq!(again, r);
        // Explicit format survives too.
        let body = format!(
            r#"{{"mesh": "{}", "mesh_format": "obj", "m": 2}}"#,
            sweep_json::escape(TINY_OBJ)
        );
        let r = ScheduleRequest::from_json(&body).unwrap();
        assert_eq!(
            r.mesh,
            MeshSource::Mesh {
                format: "obj".to_string(),
                text: TINY_OBJ.to_string(),
            }
        );
    }

    #[test]
    fn mesh_body_misuse_is_rejected() {
        for (body, needle) in [
            (
                r#"{"mesh": "v 0 0 0", "preset": "tetonly", "m": 2}"#,
                "exactly one",
            ),
            (
                r#"{"preset": "tetonly", "mesh_format": "obj", "m": 2}"#,
                "only valid together with 'mesh'",
            ),
            (
                r#"{"mesh": "v 0 0 0", "mesh_format": "stl", "m": 2}"#,
                "'mesh_format' must be auto, obj, or msh",
            ),
            (r#"{"mesh": 7, "m": 2}"#, "'mesh' must be a string"),
        ] {
            let err = ScheduleRequest::from_json(body).unwrap_err();
            assert!(err.contains(needle), "{body}: {err}");
        }
    }

    #[test]
    fn mesh_upload_schedules_hits_cache_and_certifies() {
        let svc = SweepService::new(ServiceConfig::default());
        let first = svc.schedule(&mesh_req()).unwrap();
        assert_eq!(first.cells, 2);
        assert_eq!(first.name, "imported-obj");
        assert!(!first.cache_hit);
        let second = svc.schedule(&mesh_req()).unwrap();
        assert!(second.cache_hit && second.instance_cache_hit);
        assert_eq!(first.digest, second.digest);
        assert_eq!(first.makespan, second.makespan);
        // SW024: the cached artifact is bit-identical to a cold compute.
        let report = certify_cache_identity(&svc, &mesh_req()).unwrap();
        assert!(!report.has_errors(), "{}", report.render_text());
        assert!(report.has_code(sweep_analyze::Code::Certified));
        // Same bytes under a different declared format = different digest.
        let mut explicit = mesh_req();
        explicit.mesh = MeshSource::Mesh {
            format: "obj".to_string(),
            text: TINY_OBJ.to_string(),
        };
        let third = svc.schedule(&explicit).unwrap();
        assert_ne!(third.digest, first.digest);
        assert_eq!(third.makespan, first.makespan);
    }

    #[test]
    fn mesh_route_maps_import_failures_to_400() {
        let svc = SweepService::new(ServiceConfig::default());
        let post = |mesh: &str| Request {
            method: "POST".to_string(),
            path: "/v1/schedule".to_string(),
            query: None,
            headers: HashMap::new(),
            body: format!(
                r#"{{"mesh": "{}", "m": 2, "sn": 2}}"#,
                sweep_json::escape(mesh)
            )
            .into_bytes(),
        };
        // Healthy upload serves.
        let ok = svc.route(&post(TINY_OBJ));
        assert_eq!(ok.status, 200, "{}", ok.body);
        // Truncated .msh: typed import error → 400, not 422 or 500.
        let bad = svc.route(&post("$MeshFormat\n4.1 0 8\n"));
        assert_eq!(bad.status, 400, "{}", bad.body);
        assert!(bad.body.contains("mesh:"), "{}", bad.body);
        // Unrecognizable content → 400.
        let huh = svc.route(&post("hello world\n"));
        assert_eq!(huh.status, 400, "{}", huh.body);
        // Non-manifold mesh assembles but fails validation → 400.
        let nm = svc.route(&post(
            "v 0 0 0\nv 1 0 0\nv 0 1 0\nv 0 -1 0\nv 1 1 1\nf 1 2 3\nf 1 2 4\nf 1 2 5\n",
        ));
        assert_eq!(nm.status, 400, "{}", nm.body);
        assert!(nm.body.contains("non-manifold"), "{}", nm.body);
    }

    #[test]
    fn oversized_mesh_upload_is_rejected_from_headers() {
        let svc = SweepService::new(ServiceConfig {
            max_tasks: 10,
            ..ServiceConfig::default()
        });
        // 6 declared faces × 8 directions = 48 predicted tasks > 10; the
        // peek admits nothing proportional to the declared counts.
        let mut req = mesh_req();
        if let MeshSource::Mesh { text, .. } = &mut req.mesh {
            text.push_str("f 1 2 3\nf 1 2 3\nf 1 2 3\nf 1 2 3\n");
        }
        let err = svc.schedule(&req).unwrap_err();
        assert!(err.contains("over the service limit"), "{err}");
    }

    #[test]
    fn sw024_certifies_the_cache() {
        let svc = SweepService::new(ServiceConfig::default());
        let report = certify_cache_identity(&svc, &tiny()).unwrap();
        assert!(!report.has_errors(), "{}", report.render_text());
        assert!(report.has_code(sweep_analyze::Code::Certified));
    }
}
