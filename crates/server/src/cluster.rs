//! The cluster layer: static membership, a per-peer failure detector,
//! artifact forwarding over `sweep-rpc`, and the wire codec for
//! [`ScheduleArtifact`].
//!
//! Topology is a static membership file (no gossip, no coordinator):
//! every shard reads the same list of `<id> <http_addr> <rpc_addr>`
//! lines and derives the identical consistent-hash [`Ring`], so a
//! digest's home shard is agreed everywhere without a single byte of
//! agreement traffic.
//!
//! The failure detector is deliberately simple: any RPC failure against
//! a peer marks it `suspect`; [`ClusterConfig::down_after`] consecutive
//! failures mark it `down`, after which the forward path stops trying
//! it (requests degrade to local compute immediately instead of paying
//! a dial timeout). A background prober keeps pinging non-`ok` peers —
//! the half-open probe — and one success re-promotes the peer to `ok`.
//!
//! Forwarding moves *artifacts*, not rendered responses: the home shard
//! returns its cached (or freshly computed) [`ScheduleArtifact`], the
//! edge shard inserts it into its own tier-2 cache and renders locally.
//! Because the compute path is deterministic, a forwarded artifact and
//! a local fallback compute are bit-identical — forwarding is a
//! de-duplication optimisation, never a correctness dependency.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::time::Duration;

use sweep_rpc::{RpcClient, RpcClientConfig, RpcRequest, RpcResponse};

use crate::cache::ScheduleArtifact;
use crate::ring::Ring;
use sweep_core::{Assignment, Schedule};

/// One line of the membership file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Member {
    /// Stable shard id (the ring hashes these).
    pub id: u64,
    /// HTTP address clients talk to (`host:port`).
    pub http_addr: String,
    /// RPC address peers forward to (`host:port`).
    pub rpc_addr: String,
}

/// Parses a membership file: one `<id> <http_addr> <rpc_addr>` per
/// line, `#` comments and blank lines ignored, ids unique.
pub fn parse_members(text: &str) -> Result<Vec<Member>, String> {
    let mut members: Vec<Member> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 3 {
            return Err(format!(
                "members line {}: want '<id> <http_addr> <rpc_addr>', got '{line}'",
                lineno + 1
            ));
        }
        let id: u64 = fields[0]
            .parse()
            .map_err(|_| format!("members line {}: bad shard id '{}'", lineno + 1, fields[0]))?;
        if members.iter().any(|m| m.id == id) {
            return Err(format!(
                "members line {}: duplicate shard id {id}",
                lineno + 1
            ));
        }
        members.push(Member {
            id,
            http_addr: fields[1].to_string(),
            rpc_addr: fields[2].to_string(),
        });
    }
    if members.is_empty() {
        return Err("members file names no shards".to_string());
    }
    members.sort_by_key(|m| m.id);
    Ok(members)
}

/// Cluster-mode knobs; [`ClusterConfig::new`] fills the defaults.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// This shard's id (must appear in `members`).
    pub self_id: u64,
    /// The full static membership, self included.
    pub members: Vec<Member>,
    /// Threads serving inbound peer RPCs.
    pub rpc_threads: usize,
    /// Read deadline for one inbound RPC frame (slow-loris bound).
    pub rpc_read_timeout: Duration,
    /// Dial deadline per forward attempt.
    pub connect_timeout: Duration,
    /// Read/write deadline per forward attempt — the forward deadline:
    /// when it expires the request degrades to local compute.
    pub forward_timeout: Duration,
    /// Total attempts per forward call (retries ride the full-jitter
    /// backoff curve).
    pub forward_attempts: u32,
    /// Base of the retry jitter curve, in seconds.
    pub retry_base: f64,
    /// Interval between failure-detector probe rounds.
    pub probe_interval: Duration,
    /// Consecutive failures that demote a peer from `suspect` to
    /// `down`.
    pub down_after: u32,
}

impl ClusterConfig {
    /// A config with the service defaults for everything but identity.
    pub fn new(self_id: u64, members: Vec<Member>) -> ClusterConfig {
        ClusterConfig {
            self_id,
            members,
            rpc_threads: 2,
            rpc_read_timeout: Duration::from_secs(5),
            connect_timeout: Duration::from_millis(500),
            forward_timeout: Duration::from_secs(2),
            forward_attempts: 2,
            retry_base: 0.05,
            probe_interval: Duration::from_secs(1),
            down_after: 3,
        }
    }
}

/// Peer health as the failure detector sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerStatus {
    /// Last contact succeeded.
    Up,
    /// At least one recent failure; still tried on the forward path.
    Suspect,
    /// `down_after` consecutive failures; skipped by the forward path
    /// until a half-open probe succeeds.
    Down,
}

impl PeerStatus {
    /// The wire vocabulary used by `/healthz` and `/debug/vars`.
    pub fn as_str(self) -> &'static str {
        match self {
            PeerStatus::Up => "ok",
            PeerStatus::Suspect => "suspect",
            PeerStatus::Down => "down",
        }
    }
}

struct Peer {
    member: Member,
    status: AtomicU8, // PeerStatus discriminant
    fails: AtomicU32,
    client: RpcClient,
}

impl Peer {
    fn status(&self) -> PeerStatus {
        match self.status.load(Ordering::Relaxed) {
            0 => PeerStatus::Up,
            1 => PeerStatus::Suspect,
            _ => PeerStatus::Down,
        }
    }

    fn set_status(&self, s: PeerStatus) {
        let v = match s {
            PeerStatus::Up => 0,
            PeerStatus::Suspect => 1,
            PeerStatus::Down => 2,
        };
        self.status.store(v, Ordering::Relaxed);
    }
}

/// Live counters for the cluster surface (`/healthz`, `/debug/vars`).
#[derive(Debug, Default)]
pub struct ClusterCounters {
    /// Forward RPCs attempted against a home shard.
    pub forwards: AtomicU64,
    /// Forward RPCs that failed (transport, refusal, or bad artifact).
    pub forward_fails: AtomicU64,
    /// Requests that degraded to local compute (their home shard was
    /// down or the forward failed).
    pub fallbacks: AtomicU64,
    /// Inbound peer schedule RPCs served.
    pub rpc_serves: AtomicU64,
    /// Failure-detector probes sent.
    pub probes: AtomicU64,
}

/// Where a digest should be computed, as decided by the ring and the
/// failure detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// This shard is the home: compute locally.
    Local,
    /// Forward to the peer at this index in the peer table.
    Forward(usize),
    /// The home shard (by id) is marked down: degrade to local compute
    /// without paying a dial timeout.
    Degraded(u64),
}

/// The shared cluster state one shard carries: membership, ring, peer
/// clients with health, and the operational counters.
pub struct ClusterState {
    config: ClusterConfig,
    ring: Ring,
    peers: Vec<Peer>,
    counters: ClusterCounters,
}

impl ClusterState {
    /// Validates the membership and builds the per-peer clients.
    pub fn new(config: ClusterConfig) -> Result<ClusterState, String> {
        if config.members.is_empty() {
            return Err("cluster has no members".to_string());
        }
        if !config.members.iter().any(|m| m.id == config.self_id) {
            return Err(format!(
                "--self-id {} does not appear in the members file",
                config.self_id
            ));
        }
        let ids: Vec<u64> = config.members.iter().map(|m| m.id).collect();
        let ring = Ring::new(&ids);
        let peers = config
            .members
            .iter()
            .filter(|m| m.id != config.self_id)
            .map(|m| Peer {
                member: m.clone(),
                status: AtomicU8::new(0),
                fails: AtomicU32::new(0),
                client: RpcClient::new(
                    &m.rpc_addr,
                    RpcClientConfig {
                        connect_timeout: config.connect_timeout,
                        io_timeout: config.forward_timeout,
                        attempts: config.forward_attempts,
                        retry_base: config.retry_base,
                        pool_cap: 4,
                        // Fold both endpoints into the jitter seed so two
                        // shards retrying against the same recovered peer
                        // are decorrelated.
                        seed: 0x5357_5250 ^ (config.self_id << 16) ^ m.id,
                    },
                ),
            })
            .collect();
        Ok(ClusterState {
            config,
            ring,
            peers,
            counters: ClusterCounters::default(),
        })
    }

    /// This shard's id.
    pub fn self_id(&self) -> u64 {
        self.config.self_id
    }

    /// The cluster config.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The full membership (self included), sorted by id.
    pub fn members(&self) -> &[Member] {
        &self.config.members
    }

    /// The consistent-hash ring.
    pub fn ring(&self) -> &Ring {
        &self.ring
    }

    /// The live counters.
    pub fn counters(&self) -> &ClusterCounters {
        &self.counters
    }

    /// The home shard id for a digest.
    pub fn home_of(&self, digest: u64) -> u64 {
        self.ring.home_of(digest)
    }

    /// Routing decision for a digest: local, forward, or degraded.
    pub fn route_for(&self, digest: u64) -> Route {
        let home = self.ring.home_of(digest);
        if home == self.config.self_id {
            return Route::Local;
        }
        match self.peers.iter().position(|p| p.member.id == home) {
            // Unreachable with a validated membership, but never panic
            // on a routing decision.
            None => Route::Local,
            Some(i) => {
                if self.peers[i].status() == PeerStatus::Down {
                    Route::Degraded(home)
                } else {
                    Route::Forward(i)
                }
            }
        }
    }

    fn record_success(&self, peer: &Peer) {
        peer.fails.store(0, Ordering::Relaxed);
        peer.set_status(PeerStatus::Up);
    }

    fn record_failure(&self, peer: &Peer) {
        let fails = peer.fails.fetch_add(1, Ordering::Relaxed) + 1;
        peer.set_status(if fails >= self.config.down_after {
            PeerStatus::Down
        } else {
            PeerStatus::Suspect
        });
    }

    /// Forwards a canonical request JSON to the peer at `peer_index`
    /// and decodes the artifact it returns. Any failure is reported to
    /// the failure detector; the caller degrades to local compute.
    pub fn forward_schedule(
        &self,
        peer_index: usize,
        request_json: String,
        want_digest: u64,
    ) -> Result<ScheduleArtifact, String> {
        let peer = &self.peers[peer_index];
        self.counters.forwards.fetch_add(1, Ordering::Relaxed);
        let rpc = RpcRequest::Schedule {
            origin: self.config.self_id,
            body: request_json,
        };
        match peer.client.call(&rpc.to_frame()) {
            Ok(frame) => match RpcResponse::from_frame(&frame) {
                Ok(RpcResponse::Artifact(bytes)) => {
                    self.record_success(peer);
                    let artifact = decode_artifact(&bytes)?;
                    if artifact.digest != want_digest {
                        return Err(format!(
                            "peer {} returned digest {:016x}, wanted {:016x}",
                            peer.member.id, artifact.digest, want_digest
                        ));
                    }
                    Ok(artifact)
                }
                Ok(RpcResponse::Error(msg)) => {
                    // The peer is alive and answering; the refusal is a
                    // service-level error, not a detector event.
                    self.record_success(peer);
                    Err(format!("peer {} refused: {msg}", peer.member.id))
                }
                Ok(RpcResponse::Pong) => {
                    self.record_failure(peer);
                    Err(format!("peer {} answered out of protocol", peer.member.id))
                }
                Err(e) => {
                    self.record_failure(peer);
                    Err(format!("peer {}: {e}", peer.member.id))
                }
            },
            Err(e) => {
                self.record_failure(peer);
                Err(format!("peer {}: {e}", peer.member.id))
            }
        }
    }

    /// One failure-detector round: ping every peer. A success
    /// re-promotes the peer to `ok` (the half-open recovery path); a
    /// failure walks it toward `down`.
    pub fn probe_round(&self) {
        for peer in &self.peers {
            self.counters.probes.fetch_add(1, Ordering::Relaxed);
            match peer.client.call(&RpcRequest::Ping.to_frame()) {
                Ok(frame) => match RpcResponse::from_frame(&frame) {
                    Ok(RpcResponse::Pong) => self.record_success(peer),
                    _ => self.record_failure(peer),
                },
                Err(_) => self.record_failure(peer),
            }
        }
    }

    /// Whether any peer is not `ok`. Health checks report this as
    /// `"degraded": true` with a 200 status — a shard that can still
    /// compute locally is healthy, just slower on remote-homed digests.
    pub fn degraded(&self) -> bool {
        self.peers.iter().any(|p| p.status() != PeerStatus::Up)
    }

    /// Per-peer `(id, status)` pairs, sorted by id.
    pub fn peer_statuses(&self) -> Vec<(u64, PeerStatus)> {
        self.peers
            .iter()
            .map(|p| (p.member.id, p.status()))
            .collect()
    }

    /// Count an inbound peer schedule RPC.
    pub fn record_rpc_serve(&self) {
        self.counters.rpc_serves.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a degrade-to-local-compute decision.
    pub fn record_fallback(&self) {
        self.counters.fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a failed forward.
    pub fn record_forward_fail(&self) {
        self.counters.forward_fails.fetch_add(1, Ordering::Relaxed);
    }

    /// Re-points the client for peer `id` (tests bind shards on
    /// ephemeral ports after the membership file is written).
    pub fn set_peer_addr(&self, id: u64, addr: &str) {
        if let Some(peer) = self.peers.iter().find(|p| p.member.id == id) {
            peer.client.set_addr(addr);
        }
    }

    /// The cluster object rendered into `/healthz` and `/debug/vars`:
    /// self id, ring size, per-peer status, and the forward/fallback
    /// counters.
    pub fn status_json_fragment(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(256);
        let _ = write!(
            out,
            "{{\"self_id\": {}, \"members\": {}, \"ring_points\": {}, \"degraded\": {}, ",
            self.config.self_id,
            self.config.members.len(),
            self.ring.len_points(),
            self.degraded()
        );
        out.push_str("\"peers\": [");
        for (i, (id, status)) in self.peer_statuses().iter().enumerate() {
            let _ = write!(
                out,
                "{}{{\"id\": {id}, \"status\": \"{}\"}}",
                if i == 0 { "" } else { ", " },
                status.as_str()
            );
        }
        let _ = write!(
            out,
            "], \"forwards\": {}, \"forward_fails\": {}, \"fallbacks\": {}, \
             \"rpc_serves\": {}, \"probes\": {}}}",
            self.counters.forwards.load(Ordering::Relaxed),
            self.counters.forward_fails.load(Ordering::Relaxed),
            self.counters.fallbacks.load(Ordering::Relaxed),
            self.counters.rpc_serves.load(Ordering::Relaxed),
            self.counters.probes.load(Ordering::Relaxed),
        );
        out
    }

    /// Installs a deterministic fault plan on every peer client: link
    /// partitions, per-attempt drops, and delivery jitter from the plan
    /// apply to all outbound forwards and probes.
    #[cfg(feature = "cluster-faults")]
    pub fn install_fault_plan(&self, plan: &sweep_faults::FaultPlan) {
        for peer in &self.peers {
            peer.client
                .set_fault_plan(plan.clone(), self.config.self_id, peer.member.id);
        }
    }

    /// Clears any installed fault plan from every peer client.
    #[cfg(feature = "cluster-faults")]
    pub fn clear_fault_plan(&self) {
        for peer in &self.peers {
            peer.client.clear_fault_plan();
        }
    }
}

const ARTIFACT_MAGIC: [u8; 4] = *b"SART";
const ARTIFACT_VERSION: u8 = 1;

/// Serializes a [`ScheduleArtifact`] for the RPC wire: magic, version,
/// digest, trial metadata, then the assignment and start times as raw
/// `u32` arrays. Everything little-endian, fully length-checked on
/// decode.
pub fn encode_artifact(artifact: &ScheduleArtifact) -> Vec<u8> {
    let starts = artifact.schedule.starts();
    let assignment = artifact.schedule.assignment();
    let cells = assignment.num_cells();
    let mut out = Vec::with_capacity(64 + 4 * (starts.len() + cells));
    out.extend_from_slice(&ARTIFACT_MAGIC);
    out.push(ARTIFACT_VERSION);
    out.extend_from_slice(&artifact.digest.to_le_bytes());
    out.extend_from_slice(&(artifact.trial as u64).to_le_bytes());
    out.extend_from_slice(&artifact.trial_seed.to_le_bytes());
    out.extend_from_slice(&(artifact.trial_makespans.len() as u32).to_le_bytes());
    for &mk in &artifact.trial_makespans {
        out.extend_from_slice(&mk.to_le_bytes());
    }
    out.extend_from_slice(&(assignment.num_procs() as u32).to_le_bytes());
    out.extend_from_slice(&(cells as u32).to_le_bytes());
    for v in 0..cells as u32 {
        out.extend_from_slice(&assignment.proc_of(v).to_le_bytes());
    }
    out.extend_from_slice(&(starts.len() as u32).to_le_bytes());
    for &s in starts {
        out.extend_from_slice(&s.to_le_bytes());
    }
    out
}

struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| "artifact truncated".to_string())?;
        let slice = &self.bytes[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32, String> {
        let b = self.take(4)?;
        let mut a = [0u8; 4];
        a.copy_from_slice(b);
        Ok(u32::from_le_bytes(a))
    }

    fn u64(&mut self) -> Result<u64, String> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn u32_vec(&mut self, n: usize) -> Result<Vec<u32>, String> {
        let raw = self.take(n.checked_mul(4).ok_or("artifact length overflow")?)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }
}

/// Decodes an artifact off the wire, validating every length and every
/// processor id before touching the panicking constructors — a
/// malicious or corrupt peer yields `Err`, never a panic.
pub fn decode_artifact(bytes: &[u8]) -> Result<ScheduleArtifact, String> {
    let mut cur = Cursor { bytes, at: 0 };
    if cur.take(4)? != ARTIFACT_MAGIC {
        return Err("artifact: bad magic".to_string());
    }
    if cur.take(1)? != [ARTIFACT_VERSION] {
        return Err("artifact: unknown version".to_string());
    }
    let digest = cur.u64()?;
    let trial = cur.u64()? as usize;
    let trial_seed = cur.u64()?;
    let n_makespans = cur.u32()? as usize;
    let trial_makespans = cur.u32_vec(n_makespans)?;
    let m = cur.u32()? as usize;
    if m == 0 {
        return Err("artifact: zero processors".to_string());
    }
    let cells = cur.u32()? as usize;
    let proc_of_cell = cur.u32_vec(cells)?;
    if let Some(&bad) = proc_of_cell.iter().find(|&&p| p as usize >= m) {
        return Err(format!("artifact: cell assigned to processor {bad} of {m}"));
    }
    let n_starts = cur.u32()? as usize;
    let starts = cur.u32_vec(n_starts)?;
    if cur.at != bytes.len() {
        return Err(format!("artifact: {} trailing bytes", bytes.len() - cur.at));
    }
    if cells == 0 || !n_starts.is_multiple_of(cells) {
        return Err(format!(
            "artifact: {n_starts} starts not a multiple of {cells} cells"
        ));
    }
    let assignment = Assignment::from_vec(proc_of_cell, m);
    let schedule = Schedule::new(starts, assignment).map_err(|e| format!("artifact: {e}"))?;
    Ok(ScheduleArtifact {
        schedule,
        trial,
        trial_seed,
        trial_makespans,
        digest,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_members_file() {
        let text =
            "# two shards\n0 127.0.0.1:7469 127.0.0.1:7470\n\n1 127.0.0.1:7471 127.0.0.1:7472\n";
        let members = parse_members(text).unwrap();
        assert_eq!(members.len(), 2);
        assert_eq!(members[0].id, 0);
        assert_eq!(members[1].rpc_addr, "127.0.0.1:7472");
    }

    #[test]
    fn rejects_bad_members_files() {
        for (text, needle) in [
            ("", "no shards"),
            ("0 a\n", "want '<id>"),
            ("x a b\n", "bad shard id"),
            ("0 a b\n0 c d\n", "duplicate shard id"),
        ] {
            let err = parse_members(text).unwrap_err();
            assert!(err.contains(needle), "{text:?}: {err}");
        }
    }

    #[test]
    fn cluster_state_validates_self_id() {
        let members = parse_members("0 a b\n1 c d\n").unwrap();
        assert!(ClusterState::new(ClusterConfig::new(2, members.clone())).is_err());
        let state = ClusterState::new(ClusterConfig::new(0, members)).unwrap();
        assert_eq!(state.self_id(), 0);
        assert_eq!(state.peer_statuses(), vec![(1, PeerStatus::Up)]);
        assert!(!state.degraded());
    }

    #[test]
    fn failure_detector_walks_suspect_then_down_then_recovers() {
        let members = parse_members("0 a b\n1 c d\n").unwrap();
        let state = ClusterState::new(ClusterConfig::new(0, members)).unwrap();
        let peer = &state.peers[0];
        state.record_failure(peer);
        assert_eq!(peer.status(), PeerStatus::Suspect);
        assert!(state.degraded());
        assert!(matches!(state.route_for_peer_test(1), Route::Forward(0)));
        state.record_failure(peer);
        state.record_failure(peer);
        assert_eq!(peer.status(), PeerStatus::Down);
        assert!(matches!(state.route_for_peer_test(1), Route::Degraded(1)));
        state.record_success(peer);
        assert_eq!(peer.status(), PeerStatus::Up);
        assert!(!state.degraded());
    }

    impl ClusterState {
        /// A digest homed on `shard` (tests only).
        fn route_for_peer_test(&self, shard: u64) -> Route {
            let mut d = 0u64;
            while self.ring.home_of(d) != shard {
                d = d.wrapping_add(0x9E37_79B9_7F4A_7C15);
            }
            self.route_for(d)
        }
    }

    #[test]
    fn status_fragment_is_valid_json() {
        let members = parse_members("0 a b\n1 c d\n2 e f\n").unwrap();
        let state = ClusterState::new(ClusterConfig::new(1, members)).unwrap();
        let doc = sweep_json::parse(&state.status_json_fragment()).unwrap();
        assert_eq!(doc.get("self_id").and_then(|v| v.as_u64()), Some(1));
        assert_eq!(doc.get("members").and_then(|v| v.as_u64()), Some(3));
        assert_eq!(doc.get("degraded").and_then(|v| v.as_bool()), Some(false));
    }

    #[test]
    fn artifact_codec_round_trips() {
        let assignment = Assignment::from_vec(vec![0, 1, 1, 0], 2);
        let schedule = Schedule::new(vec![0, 1, 2, 3, 4, 5, 6, 7], assignment).unwrap();
        let artifact = ScheduleArtifact {
            schedule,
            trial: 3,
            trial_seed: 0xDEAD_BEEF,
            trial_makespans: vec![9, 8, 7, 6],
            digest: 0x0123_4567_89AB_CDEF,
        };
        let bytes = encode_artifact(&artifact);
        let back = decode_artifact(&bytes).unwrap();
        assert_eq!(back.digest, artifact.digest);
        assert_eq!(back.trial, 3);
        assert_eq!(back.trial_seed, 0xDEAD_BEEF);
        assert_eq!(back.trial_makespans, artifact.trial_makespans);
        assert_eq!(back.schedule.starts(), artifact.schedule.starts());
        assert_eq!(
            back.schedule.assignment().num_procs(),
            artifact.schedule.assignment().num_procs()
        );
        assert_eq!(back.schedule.makespan(), artifact.schedule.makespan());
    }

    #[test]
    fn artifact_decode_rejects_corruption_without_panicking() {
        let assignment = Assignment::from_vec(vec![0, 1], 2);
        let schedule = Schedule::new(vec![0, 1], assignment).unwrap();
        let artifact = ScheduleArtifact {
            schedule,
            trial: 0,
            trial_seed: 1,
            trial_makespans: vec![1],
            digest: 42,
        };
        let good = encode_artifact(&artifact);
        // Every truncation fails cleanly.
        for cut in 0..good.len() {
            assert!(decode_artifact(&good[..cut]).is_err(), "cut {cut}");
        }
        // Bad magic.
        let mut evil = good.clone();
        evil[0] = b'X';
        assert!(decode_artifact(&evil).unwrap_err().contains("magic"));
        // Out-of-range processor id: the byte after magic+version+3×u64
        // +len+1×u32 starts the m field; corrupt an assignment entry
        // instead via a rebuilt buffer.
        let mut evil = Vec::new();
        evil.extend_from_slice(&ARTIFACT_MAGIC);
        evil.push(ARTIFACT_VERSION);
        evil.extend_from_slice(&42u64.to_le_bytes());
        evil.extend_from_slice(&0u64.to_le_bytes());
        evil.extend_from_slice(&1u64.to_le_bytes());
        evil.extend_from_slice(&0u32.to_le_bytes()); // no makespans
        evil.extend_from_slice(&2u32.to_le_bytes()); // m = 2
        evil.extend_from_slice(&1u32.to_le_bytes()); // 1 cell
        evil.extend_from_slice(&9u32.to_le_bytes()); // proc 9 >= m
        evil.extend_from_slice(&1u32.to_le_bytes());
        evil.extend_from_slice(&0u32.to_le_bytes());
        assert!(decode_artifact(&evil).unwrap_err().contains("processor"));
        // Trailing garbage.
        let mut evil = good.clone();
        evil.push(0);
        assert!(decode_artifact(&evil).unwrap_err().contains("trailing"));
    }
}
