//! Operational state for a running server: connection counting,
//! head-based sampling, the structured access log, and the
//! slow-request exemplar buffer behind `GET /debug/trace`.
//!
//! Everything here is shared between the socket layer (which stamps
//! request ids and writes log lines) and the service (which renders
//! `/debug/vars` and `/debug/trace`), so it hangs off
//! [`SweepService`](crate::service::SweepService) as one `Arc<OpsState>`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use sweep_telemetry::{request_id_from_counter, RequestTrace, TraceCtx, STAGES};

/// Where access-log lines go. The default is standard error (one JSON
/// object per line, the conventional sidecar-scrapable place); tests
/// use [`AccessLogSink::memory`] to assert on lines and `Null` to stay
/// quiet.
#[derive(Debug, Clone)]
pub enum AccessLogSink {
    /// One line per request on standard error.
    Stderr,
    /// Lines appended to a shared vector (tests).
    Memory(Arc<Mutex<Vec<String>>>),
    /// Lines discarded.
    Null,
}

impl AccessLogSink {
    /// A memory sink plus the handle its lines land in.
    pub fn memory() -> (AccessLogSink, Arc<Mutex<Vec<String>>>) {
        let store = Arc::new(Mutex::new(Vec::new()));
        (AccessLogSink::Memory(Arc::clone(&store)), store)
    }

    fn emit(&self, line: &str) {
        match self {
            AccessLogSink::Stderr => eprintln!("{line}"),
            AccessLogSink::Memory(store) => store
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .push(line.to_string()),
            AccessLogSink::Null => {}
        }
    }
}

/// The N-slowest-requests-per-window exemplar buffer. Keeping whole
/// [`RequestTrace`]s (not just latencies) means the operator can open
/// the span tree of exactly the requests that hurt; windowing keeps the
/// exemplars fresh instead of pinning the worst request of all time.
#[derive(Debug)]
struct SlowBuf {
    /// Requests per window; the buffer resets when a window rolls over.
    window: u64,
    /// Exemplars retained per window.
    capacity: usize,
    seen: u64,
    /// Kept sorted slowest-first.
    traces: Vec<RequestTrace>,
}

impl SlowBuf {
    fn offer(&mut self, trace: &RequestTrace) {
        if self.capacity == 0 {
            return;
        }
        self.seen += 1;
        if self.seen > self.window.max(1) {
            self.seen = 1;
            self.traces.clear();
        }
        let slowest_needed = self.traces.len() >= self.capacity;
        if slowest_needed && trace.total_us <= self.traces[self.traces.len() - 1].total_us {
            return;
        }
        if slowest_needed {
            self.traces.pop();
        }
        self.traces.push(trace.clone());
        self.traces.sort_by_key(|t| std::cmp::Reverse(t.total_us));
    }
}

/// Shared operational state: the connection counter request ids derive
/// from, shed tally, sampling knobs, log sink, and the slow buffer.
#[derive(Debug)]
pub struct OpsState {
    next_conn: AtomicU64,
    sheds: AtomicU64,
    /// Trace 1 of every N connections (0 = never, 1 = all).
    trace_sample_every: AtomicU64,
    /// Log 1 of every N requests (0 = never, 1 = all).
    log_sample_every: AtomicU64,
    slow: Mutex<SlowBuf>,
    sink: Mutex<AccessLogSink>,
}

impl Default for OpsState {
    fn default() -> OpsState {
        OpsState {
            next_conn: AtomicU64::new(0),
            sheds: AtomicU64::new(0),
            trace_sample_every: AtomicU64::new(1),
            log_sample_every: AtomicU64::new(1),
            slow: Mutex::new(SlowBuf {
                window: 512,
                capacity: 8,
                seen: 0,
                traces: Vec::new(),
            }),
            sink: Mutex::new(AccessLogSink::Stderr),
        }
    }
}

impl OpsState {
    /// Claims the next connection number (1-based).
    pub fn next_conn(&self) -> u64 {
        self.next_conn.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Connections accepted so far.
    pub fn conns(&self) -> u64 {
        self.next_conn.load(Ordering::Relaxed)
    }

    /// Builds the tracing context for connection `conn`: every request
    /// gets a deterministic id; 1-in-N (head-based sampling) also get a
    /// recording span tree.
    pub fn trace_ctx(&self, conn: u64) -> TraceCtx {
        let rid = request_id_from_counter(conn);
        let every = self.trace_sample_every.load(Ordering::Relaxed);
        if every > 0 && conn.is_multiple_of(every) {
            TraceCtx::root(rid)
        } else {
            TraceCtx::untraced(rid)
        }
    }

    /// Whether connection `conn` should emit an access-log line.
    pub fn should_log(&self, conn: u64) -> bool {
        let every = self.log_sample_every.load(Ordering::Relaxed);
        every > 0 && conn.is_multiple_of(every)
    }

    /// Sets the trace sampling rate (trace 1 of every `every`; 0 = off).
    pub fn set_trace_sampling(&self, every: u64) {
        self.trace_sample_every.store(every, Ordering::Relaxed);
    }

    /// Sets the access-log sampling rate (log 1 of every `every`;
    /// 0 = off).
    pub fn set_log_sampling(&self, every: u64) {
        self.log_sample_every.store(every, Ordering::Relaxed);
    }

    /// Replaces the access-log sink.
    pub fn set_access_log(&self, sink: AccessLogSink) {
        *self.sink.lock().unwrap_or_else(|p| p.into_inner()) = sink;
    }

    /// Reconfigures the slow-request buffer: keep the `capacity` slowest
    /// traces out of every `window` requests.
    pub fn set_slow_buffer(&self, capacity: usize, window: u64) {
        let mut slow = self.slow.lock().unwrap_or_else(|p| p.into_inner());
        slow.capacity = capacity;
        slow.window = window;
        slow.seen = 0;
        slow.traces.clear();
    }

    /// Counts one shed (429 before any service work).
    pub fn record_shed(&self) {
        self.sheds.fetch_add(1, Ordering::Relaxed);
    }

    /// Total sheds since start.
    pub fn sheds(&self) -> u64 {
        self.sheds.load(Ordering::Relaxed)
    }

    /// Offers a finished trace to the slow-request buffer.
    pub fn offer_slow(&self, trace: &RequestTrace) {
        self.slow
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .offer(trace);
    }

    /// The current slow-request exemplars, slowest first.
    pub fn slow_traces(&self) -> Vec<RequestTrace> {
        self.slow
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .traces
            .clone()
    }

    /// Emits one access-log line through the configured sink.
    pub fn log(&self, line: &str) {
        self.sink
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .emit(line);
    }

    /// Logs a shed: the request never reached the service, so the line
    /// carries only what the accept loop knows.
    pub fn log_shed(&self, retry_after_secs: u64) {
        let line = format!(
            "{{\"shed\":true,\"status\":429,\"retry_after_s\":{},\"sheds\":{}}}",
            retry_after_secs,
            self.sheds()
        );
        self.log(&line);
    }
}

/// Builds one structured access-log line (a single JSON object, no
/// trailing newline). Traced requests carry full stage attribution and
/// cache disposition; untraced ones still log id, route, status, size,
/// and latency.
// One flat call per request site beats a builder struct for a
// fixed-schema log line; the schema is the argument list.
#[allow(clippy::too_many_arguments)]
pub fn access_log_line(
    request_id: u64,
    method: &str,
    route: &str,
    status: u16,
    bytes: usize,
    total_us: u64,
    sheds: u64,
    trace: Option<&RequestTrace>,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(256);
    let _ = write!(
        out,
        "{{\"request_id\":\"{request_id:016x}\",\"method\":\"{}\",\"route\":\"{}\",\
         \"status\":{status},\"bytes\":{bytes},\"total_us\":{total_us},\"sheds\":{sheds}",
        sweep_json::escape(method),
        sweep_json::escape(route),
    );
    if let Some(t) = trace {
        out.push_str(",\"stages_us\":{");
        for (i, stage) in STAGES.iter().enumerate() {
            let _ = write!(
                out,
                "{}\"{stage}\":{}",
                if i == 0 { "" } else { "," },
                t.stage_us(stage)
            );
        }
        out.push('}');
        if let Some(leader) = t.coalesced_onto {
            let _ = write!(out, ",\"coalesced_onto\":\"{leader:016x}\"");
        }
        for (k, v) in &t.notes {
            let _ = write!(
                out,
                ",\"{}\":\"{}\"",
                sweep_json::escape(k),
                sweep_json::escape(v)
            );
        }
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traced(total_ms: u64) -> RequestTrace {
        let ctx = TraceCtx::root(7);
        {
            let r = ctx.span("request");
            let _p = r.ctx().span("parse");
        }
        let mut t = ctx.finish().unwrap();
        t.total_us = total_ms * 1000; // deterministic ordering for tests
        t
    }

    #[test]
    fn sampling_knobs_gate_tracing_and_logging() {
        let ops = OpsState::default();
        assert!(ops.trace_ctx(1).is_traced());
        assert!(ops.should_log(1));
        ops.set_trace_sampling(0);
        ops.set_log_sampling(4);
        assert!(!ops.trace_ctx(2).is_traced());
        // The id survives sampling-out — headers still echo it.
        assert_ne!(ops.trace_ctx(2).request_id(), 0);
        assert!(!ops.should_log(2));
        assert!(ops.should_log(4));
        ops.set_trace_sampling(3);
        assert!(ops.trace_ctx(3).is_traced());
        assert!(!ops.trace_ctx(4).is_traced());
    }

    #[test]
    fn slow_buffer_keeps_the_n_slowest_and_rolls_windows() {
        let ops = OpsState::default();
        ops.set_slow_buffer(2, 10);
        for ms in [5, 1, 9, 3, 7] {
            ops.offer_slow(&traced(ms));
        }
        let kept: Vec<u64> = ops.slow_traces().iter().map(|t| t.total_us).collect();
        assert_eq!(kept, vec![9000, 7000]);
        // 7 more offers cross the window boundary after the 10th: the
        // buffer restarts and only the new window's offers remain.
        for ms in [1, 1, 1, 1, 1, 2, 3] {
            ops.offer_slow(&traced(ms));
        }
        let kept: Vec<u64> = ops.slow_traces().iter().map(|t| t.total_us).collect();
        assert_eq!(kept, vec![3000, 2000]);
    }

    #[test]
    fn memory_sink_captures_lines_and_null_discards() {
        let ops = OpsState::default();
        let (sink, store) = AccessLogSink::memory();
        ops.set_access_log(sink);
        ops.log("{\"x\":1}");
        ops.log_shed(2);
        let lines = store.lock().unwrap().clone();
        assert_eq!(lines.len(), 2);
        assert!(lines[1].contains("\"shed\":true"));
        ops.set_access_log(AccessLogSink::Null);
        ops.log("dropped");
        assert_eq!(store.lock().unwrap().len(), 2);
    }

    #[test]
    fn access_log_line_is_valid_json_with_all_stages() {
        let ctx = TraceCtx::root(0xbeef);
        {
            let r = ctx.span("request");
            let _c = r.ctx().span("cache");
        }
        ctx.set_coalesced_onto(0xfeed);
        ctx.note("tier2", "coalesced");
        let t = ctx.finish().unwrap();
        let line = access_log_line(0xbeef, "POST", "/v1/schedule", 200, 123, 4567, 1, Some(&t));
        let doc = sweep_json::parse(&line).unwrap();
        assert_eq!(
            doc.get("request_id").and_then(|v| v.as_str()),
            Some("000000000000beef")
        );
        assert_eq!(doc.get("status").and_then(|v| v.as_u64()), Some(200));
        assert_eq!(
            doc.get("coalesced_onto").and_then(|v| v.as_str()),
            Some("000000000000feed")
        );
        assert_eq!(doc.get("tier2").and_then(|v| v.as_str()), Some("coalesced"));
        let stages = doc.get("stages_us").expect("stages_us present");
        for stage in STAGES {
            assert!(stages.get(stage).is_some(), "{line}");
        }
        // Untraced: still a valid object with the core fields.
        let line = access_log_line(1, "GET", "/healthz", 200, 3, 42, 0, None);
        let doc = sweep_json::parse(&line).unwrap();
        assert!(doc.get("stages_us").is_none());
        assert_eq!(doc.get("total_us").and_then(|v| v.as_u64()), Some(42));
    }
}
