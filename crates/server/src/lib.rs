//! # sweep-serve — batched scheduling service with a content-addressed cache
//!
//! The serving layer of the sweep-scheduling workspace: a
//! dependency-free HTTP/1.1 service (std `TcpListener` + the shared
//! [`sweep_json`] codec) that answers scheduling requests for the
//! paper's mesh presets and inline instances, amortizing the expensive
//! parts — DAG induction and best-of-`b` trial scheduling — across
//! requests through a **content-addressed two-tier cache**.
//!
//! * `POST /v1/schedule` — mesh preset (or inline instance text) +
//!   quadrature + `m` + algorithm → schedule summary (makespan, bounds,
//!   C1/C2, winning trial, cache disposition).
//! * `GET /v1/presets` — the four paper meshes with their cell counts.
//! * `GET /metrics` — Prometheus text exposition via `sweep-telemetry`
//!   (request/latency/cache counters).
//! * `GET /debug/vars` — live operational snapshot: cache residency per
//!   tier, in-flight depth, shed count, pool work, per-stage latency
//!   quantiles.
//! * `GET /debug/trace` — Chrome `trace_event` export of the slowest
//!   recent requests' full span trees.
//! * `GET /healthz` — liveness.
//!
//! Every request is stamped with a deterministic 64-bit id (echoed in
//! `X-Sweep-Request-Id`) and, when sampled in, carries a request-scoped
//! span tree ([`sweep_telemetry::TraceCtx`]) through parse, cache
//! lookup, DAG induction, scheduling, and serialization — surfaced as a
//! `Server-Timing` response header, a structured JSON access log, and
//! the `/debug/trace` exemplar buffer ([`ops`]).
//!
//! Cache keys are [FxHash-style digests](digest) of the *content* of a
//! request — mesh spec bytes, quadrature order, `m`, algorithm, seed,
//! and trial count — so equal work is recognized no matter how it is
//! phrased. Tier 1 holds induced [`sweep_dag::SweepInstance`]s, tier 2
//! winning [`sweep_core::Schedule`] summaries, both LRU-bounded by
//! bytes. N concurrent identical requests trigger **one** computation
//! (single-flight coalescing); the accept loop bounds in-flight work
//! and sheds load with `429 Too Many Requests` + a backoff hint
//! (`sweep_faults::backoff`) when saturated.
//!
//! With `--cluster members.txt --self-id N` the same server runs as
//! one shard of a static, crash-surviving cluster ([`cluster`]): a
//! consistent-hash ring over the content digests assigns each request
//! a home shard, non-home shards forward at the artifact level over
//! the in-tree [`sweep_rpc`] framed protocol (single-flight stays
//! intact *cluster-wide*), a Suspect/Down failure detector with
//! background probing tracks peers, and an unreachable home shard
//! degrades gracefully to a bit-identical local compute — certified
//! by the SW029 `analyze_cluster_identity` analyzer. Cluster
//! disposition is reported only in response headers (`X-Sweep-Shard`,
//! `X-Sweep-Forwarded-From`, `X-Sweep-Degraded`), never in the body.
//!
//! The service core is plain Rust and fully testable without sockets:
//!
//! ```
//! use sweep_serve::{ScheduleRequest, SweepService, ServiceConfig};
//!
//! let svc = SweepService::new(ServiceConfig::default());
//! let req = ScheduleRequest::preset("tetonly", 0.01, 2, 4);
//! let first = svc.schedule(&req).unwrap();
//! let second = svc.schedule(&req).unwrap();
//! assert!(!first.cache_hit && second.cache_hit);
//! assert_eq!(first.makespan, second.makespan);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod cache;
pub mod cluster;
pub mod digest;
pub mod http;
#[cfg(feature = "model-check")]
pub mod model;
pub mod ops;
pub mod ring;
pub mod server;
pub mod service;

pub use cache::{CacheStats, ScheduleCache, TierStats};
pub use cluster::{
    decode_artifact, encode_artifact, parse_members, ClusterConfig, ClusterState, Member,
    PeerStatus,
};
pub use digest::{fx_digest, instance_digest, schedule_digest};
pub use http::{Request, Response};
pub use ops::{access_log_line, AccessLogSink, OpsState};
pub use ring::Ring;
pub use server::{Server, ServerConfig, ShutdownHandle};
pub use service::{
    certify_cache_identity, certify_cluster_identity, ClusterDisposition, MeshSource,
    ScheduleRequest, ScheduleResponse, ServiceConfig, SweepService,
};
