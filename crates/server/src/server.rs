//! The socket layer: a bounded accept loop feeding a fixed worker pool,
//! overload shedding, and cooperative graceful shutdown.
//!
//! Design notes:
//!
//! * **Bounded in-flight work.** The accept loop tracks how many
//!   connections are queued or being served; past
//!   [`ServerConfig::max_inflight`] it answers `429 Too Many Requests`
//!   *itself* (cheap — no scheduling work happens) with a `Retry-After`
//!   hint from [`sweep_faults::backoff`]: consecutive rejections walk up
//!   the same capped exponential curve the fault simulator's retry
//!   protocol was validated against.
//! * **Graceful shutdown without signals.** The workspace forbids
//!   `unsafe`, so there is no signal handler; instead a
//!   [`ShutdownHandle`] flips an atomic flag and pokes the listener with
//!   a throwaway local connection to wake the blocking `accept`. The
//!   loop then stops accepting, the channel to the workers is dropped,
//!   and every in-flight request is drained before `run` returns.
//! * **Per-connection timeouts.** Read and write timeouts bound how
//!   long a slow or dead peer can hold a worker; a timeout mid-request
//!   drops the connection (`ReadError::Io`), a malformed request gets a
//!   clean 4xx.

use std::io::{BufReader, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use sweep_rpc::{RpcServer, RpcServerConfig, RpcShutdownHandle};
use sweep_telemetry as telemetry;
use sweep_telemetry::STAGES;

use crate::cluster::{ClusterConfig, ClusterState};
use crate::http::{ReadError, Request, Response};
use crate::ops::{access_log_line, AccessLogSink};
use crate::service::{ServiceConfig, SweepService};

/// Socket-level configuration; service semantics live in
/// [`ServiceConfig`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7469`. Port `0` picks an ephemeral
    /// port (query it with [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads serving requests.
    pub threads: usize,
    /// Byte budget per cache tier.
    pub cache_bytes: usize,
    /// Connections allowed in flight (queued + being served) before the
    /// accept loop sheds load with `429`.
    pub max_inflight: usize,
    /// Per-connection read timeout.
    pub read_timeout: Duration,
    /// Per-connection write timeout.
    pub write_timeout: Duration,
    /// Base of the `Retry-After` backoff curve, in seconds.
    pub retry_base_secs: f64,
    /// Record a full span tree for 1 of every N requests (head-based
    /// sampling; 1 = trace everything, 0 = never). Untraced requests
    /// still get a request id and zero-valued `Server-Timing` stages.
    pub trace_sample_every: u64,
    /// Emit an access-log line for 1 of every N requests (1 = all,
    /// 0 = never).
    pub log_sample_every: u64,
    /// Where access-log lines go.
    pub access_log: AccessLogSink,
    /// Slow-request exemplars retained per window for `/debug/trace`.
    pub slow_keep: usize,
    /// Requests per slow-exemplar window.
    pub slow_window: u64,
    /// Cluster membership; `None` (the default) runs a plain
    /// single-node server. `Some` makes [`Server::bind`] also bind this
    /// shard's peer RPC listener and [`Server::run`] route schedule
    /// requests across the consistent-hash ring.
    pub cluster: Option<ClusterConfig>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:7469".to_string(),
            threads: 4,
            cache_bytes: ServiceConfig::default().cache_bytes,
            max_inflight: 32,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            retry_base_secs: 1.0,
            trace_sample_every: 1,
            log_sample_every: 1,
            access_log: AccessLogSink::Stderr,
            slow_keep: 8,
            slow_window: 512,
            cluster: None,
        }
    }
}

/// A clonable handle that asks a running [`Server`] to stop.
#[derive(Debug, Clone)]
pub struct ShutdownHandle {
    flag: Arc<AtomicBool>,
    addr: SocketAddr,
    rpc: Option<RpcShutdownHandle>,
}

impl ShutdownHandle {
    /// Requests shutdown: stops accepting new connections (HTTP and,
    /// in cluster mode, peer RPC) and drains the in-flight ones.
    /// Idempotent; returns immediately (join the thread running
    /// [`Server::run`] to wait for the drain).
    pub fn shutdown(&self) {
        self.flag.store(true, Ordering::SeqCst);
        if let Some(rpc) = &self.rpc {
            rpc.shutdown();
        }
        // Wake the blocking accept with a throwaway connection; if the
        // connect fails the listener is already gone, which is fine.
        let _ = TcpStream::connect(self.addr);
    }

    /// Whether shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// A bound (not yet running) server.
pub struct Server {
    listener: TcpListener,
    config: ServerConfig,
    service: Arc<SweepService>,
    flag: Arc<AtomicBool>,
    cluster: Option<Arc<ClusterState>>,
    rpc: Option<RpcServer>,
}

impl Server {
    /// Binds the listen socket and builds the service (empty caches).
    /// Telemetry collection is switched on so `/metrics` has data.
    ///
    /// In cluster mode (`config.cluster` is `Some`) this also builds
    /// the shared [`ClusterState`] and binds this shard's peer RPC
    /// listener at its own member's `rpc_addr`; a bad membership
    /// (self id absent, empty list) surfaces as `InvalidInput`.
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        telemetry::set_enabled(true);
        let service = Arc::new(SweepService::new(ServiceConfig {
            cache_bytes: config.cache_bytes,
            ..ServiceConfig::default()
        }));
        let ops = service.ops();
        ops.set_trace_sampling(config.trace_sample_every);
        ops.set_log_sampling(config.log_sample_every);
        ops.set_access_log(config.access_log.clone());
        ops.set_slow_buffer(config.slow_keep, config.slow_window);
        let (cluster, rpc) = match &config.cluster {
            None => (None, None),
            Some(cluster_config) => {
                let bad = |e: String| std::io::Error::new(std::io::ErrorKind::InvalidInput, e);
                let state = Arc::new(ClusterState::new(cluster_config.clone()).map_err(bad)?);
                let rpc_addr = cluster_config
                    .members
                    .iter()
                    .find(|m| m.id == cluster_config.self_id)
                    .map(|m| m.rpc_addr.clone())
                    .ok_or_else(|| bad("self id missing from members".to_string()))?;
                let handler_service = Arc::clone(&service);
                let rpc = RpcServer::bind(
                    &rpc_addr,
                    RpcServerConfig {
                        threads: cluster_config.rpc_threads,
                        read_timeout: cluster_config.rpc_read_timeout,
                        write_timeout: cluster_config.rpc_read_timeout,
                    },
                    Arc::new(move |frame| handler_service.serve_peer_rpc(frame)),
                )?;
                service.set_cluster(Arc::clone(&state));
                (Some(state), Some(rpc))
            }
        };
        Ok(Server {
            listener,
            config,
            service,
            flag: Arc::new(AtomicBool::new(false)),
            cluster,
            rpc,
        })
    }

    /// The bound address (resolves port `0` to the real ephemeral port).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The bound peer-RPC address in cluster mode (resolves port `0`),
    /// `None` on a single-node server.
    pub fn rpc_addr(&self) -> Option<SocketAddr> {
        self.rpc.as_ref().and_then(|r| r.local_addr().ok())
    }

    /// The shared cluster state in cluster mode (peer health, counters,
    /// the test-only fault hooks), `None` on a single-node server.
    pub fn cluster(&self) -> Option<Arc<ClusterState>> {
        self.cluster.as_ref().map(Arc::clone)
    }

    /// A handle that can stop this server from another thread.
    pub fn shutdown_handle(&self) -> std::io::Result<ShutdownHandle> {
        Ok(ShutdownHandle {
            flag: Arc::clone(&self.flag),
            addr: self.local_addr()?,
            rpc: match &self.rpc {
                None => None,
                Some(rpc) => Some(rpc.shutdown_handle()?),
            },
        })
    }

    /// The shared service (cache stats introspection in tests/benches).
    pub fn service(&self) -> Arc<SweepService> {
        Arc::clone(&self.service)
    }

    /// Runs the accept loop until [`ShutdownHandle::shutdown`] is
    /// called, then drains in-flight connections and returns.
    ///
    /// Cluster mode also runs two more loops inside the same scope: the
    /// peer RPC accept loop (schedule requests forwarded from other
    /// shards) and a prober that pings Suspect/Down peers every
    /// `probe_interval` so a healed partition re-promotes them to Up.
    pub fn run(self) -> std::io::Result<()> {
        let inflight = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let threads = self.config.threads.max(1);
        let rpc_handle = match &self.rpc {
            None => None,
            Some(rpc) => Some(rpc.shutdown_handle()?),
        };
        std::thread::scope(|scope| {
            if let Some(rpc) = &self.rpc {
                scope.spawn(move || rpc.run());
            }
            if let Some(cluster) = &self.cluster {
                let flag = Arc::clone(&self.flag);
                let interval = cluster.config().probe_interval;
                scope.spawn(move || {
                    let slice = Duration::from_millis(50);
                    loop {
                        // Sleep in short slices so shutdown is never
                        // blocked behind a full probe interval.
                        let mut slept = Duration::ZERO;
                        while slept < interval {
                            if flag.load(Ordering::SeqCst) {
                                return;
                            }
                            std::thread::sleep(slice);
                            slept += slice;
                        }
                        if flag.load(Ordering::SeqCst) {
                            return;
                        }
                        cluster.probe_round();
                    }
                });
            }
            for _ in 0..threads {
                let rx = Arc::clone(&rx);
                let inflight = Arc::clone(&inflight);
                let service = Arc::clone(&self.service);
                let config = &self.config;
                scope.spawn(move || loop {
                    // Hold the lock only for the recv; hangup means the
                    // accept loop is done and the queue is drained.
                    let next = rx.lock().unwrap_or_else(|p| p.into_inner()).recv();
                    let Ok(stream) = next else { break };
                    // The in-flight decrement lives in a drop guard and
                    // the handler runs under catch_unwind, so a
                    // panicking request costs only its own connection —
                    // never a worker thread or an in-flight slot.
                    // AssertUnwindSafe is sound here: the service's
                    // interior state stays consistent across an unwind
                    // (single-flight slots publish-on-panic, mutexes
                    // recover from poisoning with `into_inner`).
                    let _slot = InflightSlot(&inflight);
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        handle_connection(&service, config, stream);
                    }));
                    if outcome.is_err() {
                        telemetry::counter_add("serve.http.panics", 1);
                    }
                });
            }

            // Consecutive sheds walk the Retry-After hint up the capped
            // exponential backoff curve; any accepted request resets it.
            let mut sheds: u32 = 0;
            for stream in self.listener.incoming() {
                if self.flag.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                if inflight.load(Ordering::SeqCst) >= self.config.max_inflight {
                    telemetry::counter_add("serve.http.requests", 1);
                    telemetry::counter_add("serve.http.responses_429", 1);
                    let hint =
                        sweep_faults::backoff::retry_after_secs(self.config.retry_base_secs, sheds);
                    sheds = sheds.saturating_add(1);
                    self.service.ops().record_shed();
                    self.service.ops().log_shed(hint);
                    shed(stream, self.config.write_timeout, hint);
                    continue;
                }
                sheds = 0;
                let now = inflight.fetch_add(1, Ordering::SeqCst) + 1;
                telemetry::gauge_set("serve.inflight", now as f64);
                if tx.send(stream).is_err() {
                    break;
                }
            }
            drop(tx); // workers drain the queue, then exit
            if let Some(rpc) = &rpc_handle {
                // Idempotent: ensures the RPC accept loop exits even
                // when `run` stops for a reason other than the handle.
                rpc.shutdown();
            }
        });
        Ok(())
    }
}

/// Releases one unit of server capacity on drop — including during a
/// panic unwind — so a poisoned request can't leak an in-flight slot
/// and walk the server into answering only `429`.
struct InflightSlot<'a>(&'a AtomicUsize);

impl Drop for InflightSlot<'_> {
    fn drop(&mut self) {
        let now = self.0.fetch_sub(1, Ordering::SeqCst) - 1;
        telemetry::gauge_set("serve.inflight", now as f64);
    }
}

/// Answers an over-capacity connection with `429` + `Retry-After`
/// without handing it to a worker. Runs on a short-lived detached
/// thread: after writing the response the connection must be drained
/// until the peer closes — dropping a socket with unread request bytes
/// makes the kernel send RST, which would discard the 429 from the
/// client's receive buffer — and that drain must not block the accept
/// loop.
fn shed(stream: TcpStream, write_timeout: Duration, retry_after_secs: u64) {
    std::thread::spawn(move || {
        use std::io::Read as _;
        let mut stream = stream;
        let _ = stream.set_write_timeout(Some(write_timeout));
        let _ = stream.set_read_timeout(Some(write_timeout));
        let _ = Response::error(429, "server is at its in-flight request limit")
            .with_header("Retry-After", retry_after_secs.to_string())
            .write_to(&mut stream);
        let _ = stream.shutdown(std::net::Shutdown::Write);
        let mut scratch = [0u8; 4096];
        while let Ok(n) = stream.read(&mut scratch) {
            if n == 0 {
                break;
            }
        }
    });
}

/// The `Server-Timing` value an untraced request reports: every stage
/// present (so clients can rely on the shape) with zero durations.
fn zero_server_timing() -> String {
    STAGES
        .iter()
        .map(|s| format!("{s};dur=0.000"))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Serves exactly one request on `stream` (the protocol is
/// `Connection: close`): stamps a deterministic request id, traces the
/// sampled-in requests end to end, echoes `X-Sweep-Request-Id` and
/// `Server-Timing` on every response, and emits one access-log line.
fn handle_connection(service: &SweepService, config: &ServerConfig, stream: TcpStream) {
    let started = Instant::now();
    let ops = service.ops();
    let conn = ops.next_conn();
    let ctx = ops.trace_ctx(conn);
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut writer = stream;
    let mut reader = BufReader::new(read_half);
    let root = ctx.span("request");
    let read_result = {
        let _parse = root.ctx().span("parse");
        Request::read_from(&mut reader)
    };
    match read_result {
        Ok(request) => {
            let response = service.route_traced(&request, root.ctx());
            drop(root);
            let trace = ctx.finish();
            let response = response
                .with_header("X-Sweep-Request-Id", ctx.request_id_hex())
                .with_header(
                    "Server-Timing",
                    trace
                        .as_ref()
                        .map_or_else(zero_server_timing, |t| t.server_timing()),
                );
            let _ = response.write_to(&mut writer);
            if let Some(t) = &trace {
                for stage in STAGES {
                    telemetry::histogram_record(
                        &format!("serve.stage.{stage}_us"),
                        t.stage_us(stage) as f64,
                    );
                }
                ops.offer_slow(t);
            }
            if ops.should_log(conn) {
                ops.log(&access_log_line(
                    ctx.request_id(),
                    &request.method,
                    &request.path,
                    response.status,
                    response.body.len(),
                    started.elapsed().as_micros() as u64,
                    ops.sheds(),
                    trace.as_ref(),
                ));
            }
        }
        Err(ReadError::Bad(status, message)) => {
            drop(root);
            // route() never saw this request, so count it here.
            telemetry::counter_add("serve.http.requests", 1);
            telemetry::counter_add("serve.http.responses_4xx", 1);
            let _ = Response::error(status, &message)
                .with_header("X-Sweep-Request-Id", ctx.request_id_hex())
                .write_to(&mut writer);
            if ops.should_log(conn) {
                let trace = ctx.finish();
                ops.log(&access_log_line(
                    ctx.request_id(),
                    "-",
                    "-",
                    status,
                    0,
                    started.elapsed().as_micros() as u64,
                    ops.sheds(),
                    trace.as_ref(),
                ));
            }
            // The request was only partially read; drain it so closing
            // the socket doesn't RST the error reply away (see `shed`).
            use std::io::Read as _;
            let _ = writer.shutdown(std::net::Shutdown::Write);
            let mut scratch = [0u8; 4096];
            while let Ok(n) = writer.read(&mut scratch) {
                if n == 0 {
                    break;
                }
            }
        }
        // Timeout or peer hangup mid-request: nothing to answer.
        Err(ReadError::Io(_)) => {}
    }
    let _ = writer.flush();
    telemetry::histogram_record(
        "serve.http.latency_us",
        started.elapsed().as_secs_f64() * 1e6,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read as _;

    /// A config bound to an ephemeral port with a tiny worker pool and
    /// a quiet access log.
    fn test_config() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 2,
            max_inflight: 4,
            access_log: AccessLogSink::Null,
            ..ServerConfig::default()
        }
    }

    fn raw_request(addr: SocketAddr, request: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(request.as_bytes()).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_healthz_and_shuts_down() {
        let server = Server::bind(test_config()).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = server.shutdown_handle().unwrap();
        let join = std::thread::spawn(move || server.run());

        let reply = raw_request(addr, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 200 OK\r\n"), "{reply}");
        assert!(reply.ends_with("ok\n"));

        let reply = raw_request(addr, "BROKEN\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 400 "), "{reply}");

        handle.shutdown();
        join.join().unwrap().unwrap();
        assert!(handle.is_shutdown());
    }

    #[test]
    fn every_response_carries_request_id_and_server_timing() {
        let (sink, lines) = AccessLogSink::memory();
        let server = Server::bind(ServerConfig {
            access_log: sink,
            ..test_config()
        })
        .unwrap();
        let addr = server.local_addr().unwrap();
        let handle = server.shutdown_handle().unwrap();
        let join = std::thread::spawn(move || server.run());

        let reply = raw_request(addr, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(reply.contains("X-Sweep-Request-Id: "), "{reply}");
        assert!(reply.contains("Server-Timing: "), "{reply}");
        for stage in STAGES {
            assert!(reply.contains(&format!("{stage};dur=")), "{reply}");
        }
        // Even a malformed request gets an id on its error reply.
        let reply = raw_request(addr, "BROKEN\r\n\r\n");
        assert!(reply.contains("X-Sweep-Request-Id: "), "{reply}");

        handle.shutdown();
        join.join().unwrap().unwrap();
        // One JSON access-log line per request, both parseable.
        let lines = lines.lock().unwrap().clone();
        assert_eq!(lines.len(), 2, "{lines:?}");
        for line in &lines {
            let doc = sweep_json::parse(line).expect(line);
            assert!(doc.get("request_id").is_some(), "{line}");
            assert!(doc.get("status").is_some(), "{line}");
        }
        assert_eq!(
            lines[0].matches("\"route\":\"/healthz\"").count(),
            1,
            "{lines:?}"
        );
    }

    #[test]
    fn debug_vars_and_trace_render_from_a_live_server() {
        let server = Server::bind(test_config()).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = server.shutdown_handle().unwrap();
        let service = server.service();
        let join = std::thread::spawn(move || server.run());

        let _ = raw_request(addr, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
        let vars = raw_request(addr, "GET /debug/vars HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(vars.starts_with("HTTP/1.1 200 OK\r\n"), "{vars}");
        let body = vars.split("\r\n\r\n").nth(1).unwrap();
        let doc = sweep_json::parse(body).expect(body);
        assert!(doc.get("cache").and_then(|c| c.get("tier1")).is_some());
        assert!(doc.get("stages_us").and_then(|s| s.get("parse")).is_some());

        let trace = raw_request(addr, "GET /debug/trace HTTP/1.1\r\nHost: x\r\n\r\n");
        let body = trace.split("\r\n\r\n").nth(1).unwrap();
        telemetry::validate_chrome_trace(body).expect(body);

        handle.shutdown();
        join.join().unwrap().unwrap();
        // The healthz request was traced (sample-every-1) and so sits in
        // the slow buffer the /debug/trace body was rendered from.
        assert!(!service.ops().slow_traces().is_empty());
    }

    #[test]
    fn single_member_cluster_serves_and_reports_itself() {
        use crate::cluster::{ClusterConfig, Member};
        let members = vec![Member {
            id: 3,
            http_addr: "127.0.0.1:0".to_string(),
            rpc_addr: "127.0.0.1:0".to_string(),
        }];
        let server = Server::bind(ServerConfig {
            cluster: Some(ClusterConfig::new(3, members)),
            ..test_config()
        })
        .unwrap();
        let addr = server.local_addr().unwrap();
        assert!(server.rpc_addr().is_some());
        let cluster = server.cluster().unwrap();
        assert_eq!(cluster.self_id(), 3);
        let handle = server.shutdown_handle().unwrap();
        let join = std::thread::spawn(move || server.run());

        // Cluster healthz is a JSON document with the cluster fragment,
        // and every response names the shard that served it.
        let reply = raw_request(addr, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 200 OK\r\n"), "{reply}");
        assert!(reply.contains("X-Sweep-Shard: 3\r\n"), "{reply}");
        let body = reply.split("\r\n\r\n").nth(1).unwrap();
        let doc = sweep_json::parse(body).expect(body);
        let c = doc.get("cluster").expect(body);
        assert_eq!(c.get("self_id").and_then(|v| v.as_f64()), Some(3.0));
        assert_eq!(c.get("degraded").and_then(|v| v.as_bool()), Some(false));

        // A single-member ring homes everything locally: no cluster
        // disposition headers, identical schedule to a plain service.
        let body = r#"{"preset": "tetonly", "scale": 0.01, "sn": 2, "m": 4, "seed": 11, "b": 2}"#;
        let reply = raw_request(
            addr,
            &format!(
                "POST /v1/schedule HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            ),
        );
        assert!(reply.starts_with("HTTP/1.1 200 OK\r\n"), "{reply}");
        assert!(!reply.contains("X-Sweep-Forwarded-From"), "{reply}");
        assert!(!reply.contains("X-Sweep-Degraded"), "{reply}");

        handle.shutdown();
        join.join().unwrap().unwrap();
    }

    #[test]
    fn cluster_bind_rejects_a_bad_membership() {
        use crate::cluster::{ClusterConfig, Member};
        let members = vec![Member {
            id: 0,
            http_addr: "127.0.0.1:0".to_string(),
            rpc_addr: "127.0.0.1:0".to_string(),
        }];
        let err = Server::bind(ServerConfig {
            cluster: Some(ClusterConfig::new(9, members)),
            ..test_config()
        })
        .err()
        .expect("bind must fail when self id is absent");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    }

    #[test]
    fn shed_writes_a_retry_after_hint() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            let mut out = String::new();
            stream.read_to_string(&mut out).unwrap();
            out
        });
        let (stream, _) = listener.accept().unwrap();
        shed(stream, Duration::from_secs(1), 3);
        let reply = client.join().unwrap();
        assert!(reply.starts_with("HTTP/1.1 429 "), "{reply}");
        assert!(reply.contains("Retry-After: 3\r\n"));
    }
}
