//! Consistent hashing: a fixed-point ring over the `u64` digest space.
//!
//! Every schedule digest (the pinned content addresses from
//! [`digest`](crate::digest)) gets exactly one *home shard*: the member
//! owning the first ring point at or clockwise-after the digest. Each
//! member contributes [`VNODES`] virtual points — `fx_digest` of
//! `"shard:{id}:vnode:{v}"` — so ownership is spread evenly and adding
//! or removing a member moves only `~1/n` of the key space.
//!
//! The ring is a pure function of the sorted member id set, so every
//! shard in a cluster computes the identical ring from the same
//! membership file and routing never needs agreement traffic.

use crate::digest::fx_digest;

/// Virtual points each member contributes to the ring.
pub const VNODES: usize = 64;

/// An immutable consistent-hash ring over member ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ring {
    /// `(point, member id)` sorted by point (ties broken by id).
    points: Vec<(u64, u64)>,
}

impl Ring {
    /// Builds the ring for a member id set. Order of `member_ids` does
    /// not matter; duplicate ids are the caller's bug (membership
    /// parsing rejects them).
    pub fn new(member_ids: &[u64]) -> Ring {
        let mut points = Vec::with_capacity(member_ids.len() * VNODES);
        for &id in member_ids {
            for v in 0..VNODES {
                let point = fx_digest(format!("shard:{id}:vnode:{v}").as_bytes());
                points.push((point, id));
            }
        }
        points.sort_unstable();
        Ring { points }
    }

    /// The home shard for a digest: the owner of the first point at or
    /// after it, wrapping at the top of the `u64` space.
    pub fn home_of(&self, digest: u64) -> u64 {
        debug_assert!(!self.points.is_empty(), "ring has no members");
        let i = self.points.partition_point(|&(p, _)| p < digest);
        self.points[i % self.points.len()].1
    }

    /// Total virtual points on the ring (`members × VNODES`).
    pub fn len_points(&self) -> usize {
        self.points.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::schedule_digest;

    #[test]
    fn ring_is_deterministic_and_order_insensitive() {
        let a = Ring::new(&[0, 1, 2]);
        let b = Ring::new(&[2, 0, 1]);
        assert_eq!(a, b);
        assert_eq!(a.len_points(), 3 * VNODES);
        for d in [0u64, 1, u64::MAX, 0x1234_5678_9abc_def0] {
            assert_eq!(a.home_of(d), b.home_of(d));
        }
    }

    #[test]
    fn every_member_owns_a_reasonable_share() {
        let ring = Ring::new(&[0, 1]);
        let mut counts = [0usize; 2];
        for i in 0..10_000u64 {
            let d = fx_digest(&i.to_le_bytes());
            counts[ring.home_of(d) as usize] += 1;
        }
        for (id, &c) in counts.iter().enumerate() {
            assert!(
                (2_000..=8_000).contains(&c),
                "member {id} owns {c} of 10000 keys"
            );
        }
    }

    #[test]
    fn adding_a_member_moves_only_part_of_the_space() {
        let two = Ring::new(&[0, 1]);
        let three = Ring::new(&[0, 1, 2]);
        let mut moved = 0usize;
        let total = 10_000u64;
        for i in 0..total {
            let d = fx_digest(&i.to_le_bytes());
            let before = two.home_of(d);
            let after = three.home_of(d);
            if before != after {
                // Consistent hashing: keys only ever move *to* the new
                // member, never between the old ones.
                assert_eq!(after, 2, "key {i} moved {before} -> {after}");
                moved += 1;
            }
        }
        assert!(
            moved > 0 && moved < total as usize * 6 / 10,
            "moved {moved} of {total}"
        );
    }

    #[test]
    fn real_schedule_digests_split_across_a_two_shard_ring() {
        // The roundtrip tests rely on finding request seeds homed on
        // each shard; make sure both shards own live schedule digests.
        let ring = Ring::new(&[0, 1]);
        let inst_key = crate::digest::instance_digest(b"preset:tetonly:3f847ae147ae147b", 2);
        let homes: Vec<u64> = (0..16u64)
            .map(|seed| ring.home_of(schedule_digest(inst_key, 4, "rdp", false, seed, 4)))
            .collect();
        assert!(homes.contains(&0) && homes.contains(&1), "{homes:?}");
    }

    #[test]
    fn single_member_ring_owns_everything() {
        let ring = Ring::new(&[7]);
        for d in [0u64, 42, u64::MAX] {
            assert_eq!(ring.home_of(d), 7);
        }
    }
}
