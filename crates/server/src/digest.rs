//! Content digests for cache addressing.
//!
//! An FxHash-style 64-bit mix (the rustc hasher's rotate–xor–multiply
//! round) over the *content* of a request: mesh specification bytes,
//! quadrature order, processor count, algorithm, seed, and trial count.
//! Two requests that describe the same work digest to the same key no
//! matter how they were phrased or which connection carried them; any
//! difference in content changes the key with overwhelming probability.
//!
//! The digest is **not** cryptographic — the service is a scheduling
//! cache, not a trust boundary — but it is deterministic across
//! processes and platforms (fixed seed, explicit little-endian
//! chunking), which is what lets CI pin golden digests.

/// The FxHash multiplier (same constant rustc uses for 64-bit state).
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Digest seed: "sweep-serve v1" folded into 8 bytes. Bump when the
/// keyed content's layout changes so stale persisted digests can never
/// alias a new scheme.
const SEED: u64 = 0x7365_7276_6531_0001;

/// One FxHash round: rotate, xor the word in, multiply.
#[inline]
fn mix(state: u64, word: u64) -> u64 {
    (state.rotate_left(5) ^ word).wrapping_mul(K)
}

/// FxHash-style digest of a byte string (little-endian 8-byte chunks,
/// zero-padded tail, length folded in so prefixes don't alias).
pub fn fx_digest(bytes: &[u8]) -> u64 {
    let mut state = mix(SEED, bytes.len() as u64);
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let w = u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]);
        state = mix(state, w);
    }
    let rest = chunks.remainder();
    if !rest.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rest.len()].copy_from_slice(rest);
        state = mix(state, u64::from_le_bytes(tail));
    }
    state
}

/// Tier-1 key: digest of the mesh/instance content plus the quadrature
/// order. `mesh_bytes` is the canonical description of the geometry —
/// `preset:<name>:<scale bits>` for a preset, or the full serialized
/// instance text for an inline mesh spec.
pub fn instance_digest(mesh_bytes: &[u8], sn: usize) -> u64 {
    mix(fx_digest(mesh_bytes), sn as u64)
}

/// Tier-2 key: the tier-1 instance digest extended with everything the
/// winning schedule depends on — processor count, algorithm name,
/// delay flag, master seed, and trial count `b`.
pub fn schedule_digest(
    instance: u64,
    m: usize,
    algorithm: &str,
    delays: bool,
    seed: u64,
    b: usize,
) -> u64 {
    let mut state = mix(instance, m as u64);
    state = mix(state, fx_digest(algorithm.as_bytes()));
    state = mix(state, delays as u64);
    state = mix(state, seed);
    mix(state, b as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_deterministic_and_content_sensitive() {
        assert_eq!(fx_digest(b"tetonly"), fx_digest(b"tetonly"));
        assert_ne!(fx_digest(b"tetonly"), fx_digest(b"tetonly "));
        assert_ne!(fx_digest(b""), fx_digest(b"\0"), "length must be folded in");
    }

    #[test]
    fn prefix_padding_does_not_alias() {
        // 7 bytes vs the same 7 bytes + explicit NUL: the zero-padded
        // tail chunk is identical, so only the length fold separates them.
        assert_ne!(fx_digest(b"1234567"), fx_digest(b"1234567\0"));
    }

    #[test]
    fn schedule_digest_varies_in_every_field() {
        let base = instance_digest(b"preset:tetonly:0.01", 2);
        let d = schedule_digest(base, 4, "rdp", false, 2005, 8);
        assert_ne!(d, schedule_digest(base, 5, "rdp", false, 2005, 8));
        assert_ne!(d, schedule_digest(base, 4, "dfds", false, 2005, 8));
        assert_ne!(d, schedule_digest(base, 4, "rdp", true, 2005, 8));
        assert_ne!(d, schedule_digest(base, 4, "rdp", false, 2006, 8));
        assert_ne!(d, schedule_digest(base, 4, "rdp", false, 2005, 9));
        assert_ne!(
            d,
            schedule_digest(instance_digest(b"x", 2), 4, "rdp", false, 2005, 8)
        );
    }

    /// Pinned output of `fx_digest(b"tetonly")`; recompute when SEED bumps.
    const GOLDEN_TETONLY: u64 = 0xb97d_96a1_3f94_a5c0;

    #[test]
    fn digest_is_stable_across_releases() {
        // Golden values: CI and persisted caches rely on these never
        // drifting. Bump SEED (and these) on any intentional change.
        assert_eq!(fx_digest(b""), mix(SEED, 0));
        assert_eq!(fx_digest(b"tetonly"), GOLDEN_TETONLY);
    }
}
