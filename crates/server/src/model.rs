//! Model-check bodies for the single-flight protocol (compiled only
//! under the `model-check` feature; run by `sweep check` and the
//! model-check test suite).
//!
//! These run the *production* [`SingleFlight`](crate::cache) code —
//! claim/lead/wait/publish, including the leader-panic drop guard —
//! under `sweep-check`'s controllable scheduler. A clean, complete
//! exploration here is what stands between the cache's condvar
//! protocol and the SW026/SW027 failure modes the fixtures
//! demonstrate.

use std::panic::AssertUnwindSafe;
use std::sync::Arc;

use crate::cache::{Claim, SingleFlight};

/// One request against the flight table: lead (computing `41` and
/// tallying on the out-of-model `computations` counter) or wait.
fn serve(
    flights: &SingleFlight<u32>,
    computations: &std::sync::atomic::AtomicUsize,
) -> Result<u32, String> {
    match flights.claim(9, 0) {
        Claim::Leader(f) => flights.lead(9, &f, || {
            computations.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            Ok(41)
        }),
        Claim::Follower(f) => flights.wait(&f),
    }
}

/// Two identical requests race on a cold key: under every
/// interleaving both get the right answer, nobody wedges, and the
/// computation runs once when the requests overlap (twice only when
/// the first flight fully completed before the second claim — correct
/// single-flight semantics, which coalesces *concurrent* requests).
pub fn single_flight_coalesce() {
    let flights = Arc::new(SingleFlight::<u32>::new());
    let computations = Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let (f2, c2) = (Arc::clone(&flights), Arc::clone(&computations));
    let t = sweep_check::thread::spawn(move || serve(&f2, &c2));
    let mine = serve(&flights, &computations);
    let theirs = t
        .join()
        .unwrap_or_else(|_| Err("request thread panicked".to_string()));
    assert_eq!(mine, Ok(41), "single-flight model: wrong value for main");
    assert_eq!(theirs, Ok(41), "single-flight model: wrong value for peer");
    let n = computations.load(std::sync::atomic::Ordering::SeqCst);
    assert!(
        (1..=2).contains(&n),
        "single-flight model: {n} computations for 2 requests"
    );
}

/// The leader *panics* mid-computation: the drop guard must publish an
/// error and clear the flight during the unwind, so a concurrent
/// follower unblocks with `Err` (never wedges), and a late claimer
/// becomes a fresh leader. This drives the exact unwind path the
/// SW027 diagnostic certifies.
pub fn single_flight_leader_panic() {
    let flights = Arc::new(SingleFlight::<u32>::new());
    // Claim before spawning the peer, so this thread is the leader
    // deterministically and the peer's role is the explored variable.
    let Claim::Leader(flight) = flights.claim(7, 0) else {
        unreachable!("first claim on a cold key must lead")
    };
    let f2 = Arc::clone(&flights);
    let peer = sweep_check::thread::spawn(move || match f2.claim(7, 0) {
        Claim::Follower(f) => {
            let r = f2.wait(&f);
            assert!(
                r.is_err(),
                "single-flight model: follower of a panicked leader got {r:?}"
            );
        }
        Claim::Leader(f) => {
            // The panicked flight was already cleared: this thread
            // leads a fresh one and must be able to complete it.
            let r = f2.lead(7, &f, || Ok(1));
            assert_eq!(r, Ok(1));
        }
    });
    let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
        flights.lead(7, &flight, || panic!("leader exploded"))
    }));
    assert!(
        caught.is_err(),
        "leader's panic must propagate to its caller"
    );
    let _ = peer.join();
}

#[cfg(test)]
mod tests {
    /// The production single-flight comes back clean and *complete*
    /// under exhaustive exploration (plus a few random schedules).
    #[test]
    fn single_flight_models_explore_clean_and_complete() {
        let cfg = sweep_check::Config {
            max_executions: 50_000,
            random_schedules: 16,
            ..sweep_check::Config::default()
        };
        let scenarios: [(&str, fn()); 2] = [
            (
                "serve.single-flight.coalesce",
                super::single_flight_coalesce,
            ),
            (
                "serve.single-flight.leader-panic",
                super::single_flight_leader_panic,
            ),
        ];
        for (name, body) in scenarios {
            let report = sweep_check::explore(name, &cfg, body);
            assert!(report.finding.is_none(), "{name}: {:?}", report.finding);
            assert!(report.lock_cycles.is_empty(), "{name} cycled");
            assert!(report.complete, "{name} did not exhaust: {report:?}");
        }
    }
}
