//! Compact CSR task-DAG representation.
//!
//! One [`TaskDag`] holds the precedence constraints of a single sweep
//! direction over the cells `0..n`. Both successor and predecessor
//! adjacency are materialized because the schedulers walk the DAG in both
//! directions (readiness tracking uses predecessors, priority computations
//! walk successors).

/// A directed acyclic graph over the cells `0..n` in CSR form.
///
/// Construction does **not** verify acyclicity (that would double build
/// cost for callers that guarantee it); use [`TaskDag::is_acyclic`] or
/// [`TaskDag::topo_order`] to check, and
/// [`crate::induce::break_cycles`] to repair cyclic edge sets.
// Structural equality is well-defined because `from_edges` canonicalizes
// (sorts + dedups) the CSR arrays — used by the parallel-determinism
// tests to diff whole induced instances.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskDag {
    n: usize,
    succ_xadj: Vec<u32>,
    succ: Vec<u32>,
    pred_xadj: Vec<u32>,
    pred: Vec<u32>,
}

impl TaskDag {
    /// Builds from an edge list `(u, v)` meaning *u must precede v*.
    /// Duplicate edges are removed; self-loops are rejected.
    ///
    /// # Panics
    /// Panics if an endpoint is `>= n` or a self-loop is present.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> TaskDag {
        for &(u, v) in edges {
            assert!(
                (u as usize) < n && (v as usize) < n,
                "edge ({u},{v}) out of range"
            );
            assert_ne!(u, v, "self-loop at {u}");
        }
        let mut sorted: Vec<(u32, u32)> = edges.to_vec();
        sorted.sort_unstable();
        sorted.dedup();

        let mut succ_deg = vec![0u32; n];
        let mut pred_deg = vec![0u32; n];
        for &(u, v) in &sorted {
            succ_deg[u as usize] += 1;
            pred_deg[v as usize] += 1;
        }
        let prefix = |deg: &[u32]| {
            let mut x = vec![0u32; n + 1];
            for i in 0..n {
                x[i + 1] = x[i] + deg[i];
            }
            x
        };
        let succ_xadj = prefix(&succ_deg);
        let pred_xadj = prefix(&pred_deg);
        let mut succ = vec![0u32; sorted.len()];
        let mut pred = vec![0u32; sorted.len()];
        let mut scur: Vec<u32> = succ_xadj[..n].to_vec();
        let mut pcur: Vec<u32> = pred_xadj[..n].to_vec();
        for &(u, v) in &sorted {
            succ[scur[u as usize] as usize] = v;
            scur[u as usize] += 1;
            pred[pcur[v as usize] as usize] = u;
            pcur[v as usize] += 1;
        }
        TaskDag {
            n,
            succ_xadj,
            succ,
            pred_xadj,
            pred,
        }
    }

    /// An edgeless DAG over `n` nodes (every task independent).
    pub fn edgeless(n: usize) -> TaskDag {
        TaskDag::from_edges(n, &[])
    }

    /// Number of nodes (cells).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of directed edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.succ.len()
    }

    /// Successors of `v` (tasks that depend on `v`).
    #[inline]
    pub fn successors(&self, v: u32) -> &[u32] {
        let (s, e) = (self.succ_xadj[v as usize], self.succ_xadj[v as usize + 1]);
        &self.succ[s as usize..e as usize]
    }

    /// Predecessors of `v` (tasks `v` depends on).
    #[inline]
    pub fn predecessors(&self, v: u32) -> &[u32] {
        let (s, e) = (self.pred_xadj[v as usize], self.pred_xadj[v as usize + 1]);
        &self.pred[s as usize..e as usize]
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: u32) -> u32 {
        self.pred_xadj[v as usize + 1] - self.pred_xadj[v as usize]
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: u32) -> u32 {
        self.succ_xadj[v as usize + 1] - self.succ_xadj[v as usize]
    }

    /// Iterates over all edges `(u, v)`.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.n as u32).flat_map(move |u| self.successors(u).iter().map(move |&v| (u, v)))
    }

    /// A topological order via Kahn's algorithm, or `None` if cyclic.
    pub fn topo_order(&self) -> Option<Vec<u32>> {
        let mut indeg: Vec<u32> = (0..self.n as u32).map(|v| self.in_degree(v)).collect();
        let mut order = Vec::with_capacity(self.n);
        let mut queue: Vec<u32> = (0..self.n as u32)
            .filter(|&v| indeg[v as usize] == 0)
            .collect();
        while let Some(v) = queue.pop() {
            order.push(v);
            for &w in self.successors(v) {
                indeg[w as usize] -= 1;
                if indeg[w as usize] == 0 {
                    queue.push(w);
                }
            }
        }
        (order.len() == self.n).then_some(order)
    }

    /// True when the graph has no directed cycle.
    pub fn is_acyclic(&self) -> bool {
        self.topo_order().is_some()
    }

    /// Source nodes (in-degree 0) — the paper's *roots*.
    pub fn sources(&self) -> Vec<u32> {
        (0..self.n as u32)
            .filter(|&v| self.in_degree(v) == 0)
            .collect()
    }

    /// Sink nodes (out-degree 0) — the paper's *leaves*.
    pub fn sinks(&self) -> Vec<u32> {
        (0..self.n as u32)
            .filter(|&v| self.out_degree(v) == 0)
            .collect()
    }

    /// The transpose DAG (every edge reversed).
    pub fn transpose(&self) -> TaskDag {
        TaskDag {
            n: self.n,
            succ_xadj: self.pred_xadj.clone(),
            succ: self.pred.clone(),
            pred_xadj: self.succ_xadj.clone(),
            pred: self.succ.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> TaskDag {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        TaskDag::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn counts_and_adjacency() {
        let g = diamond();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.successors(0), &[1, 2]);
        assert_eq!(g.predecessors(3), &[1, 2]);
        assert_eq!(g.in_degree(0), 0);
        assert_eq!(g.out_degree(3), 0);
        assert_eq!(g.sources(), vec![0]);
        assert_eq!(g.sinks(), vec![3]);
    }

    #[test]
    fn duplicate_edges_removed() {
        let g = TaskDag::from_edges(2, &[(0, 1), (0, 1), (0, 1)]);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_panics() {
        TaskDag::from_edges(2, &[(1, 1)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        TaskDag::from_edges(2, &[(0, 5)]);
    }

    #[test]
    fn topo_order_respects_edges() {
        let g = diamond();
        let order = g.topo_order().expect("diamond is acyclic");
        let pos: Vec<usize> = (0..4u32)
            .map(|v| order.iter().position(|&x| x == v).unwrap())
            .collect();
        for (u, v) in g.edges() {
            assert!(pos[u as usize] < pos[v as usize]);
        }
        assert!(g.is_acyclic());
    }

    #[test]
    fn cycle_detected() {
        let g = TaskDag::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        assert!(!g.is_acyclic());
        assert!(g.topo_order().is_none());
    }

    #[test]
    fn edgeless_is_trivially_acyclic() {
        let g = TaskDag::edgeless(5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.sources().len(), 5);
        assert_eq!(g.sinks().len(), 5);
        assert!(g.is_acyclic());
    }

    #[test]
    fn transpose_reverses_edges() {
        let g = diamond();
        let t = g.transpose();
        assert_eq!(t.successors(3), &[1, 2]);
        assert_eq!(t.predecessors(0).len(), 2);
        let mut e1: Vec<_> = g.edges().map(|(u, v)| (v, u)).collect();
        let mut e2: Vec<_> = t.edges().collect();
        e1.sort_unstable();
        e2.sort_unstable();
        assert_eq!(e1, e2);
    }

    #[test]
    fn edges_iterator_matches_count() {
        let g = diamond();
        assert_eq!(g.edges().count(), g.num_edges());
    }
}
