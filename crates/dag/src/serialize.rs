//! Plain-text serialization of [`SweepInstance`] — a minimal exchange
//! format so instances can be archived, diffed, and passed between tools
//! (including non-Rust analysis stacks) without new dependencies.
//!
//! Format (line-oriented, `#` comments allowed):
//!
//! ```text
//! sweep-instance v1
//! name <string>
//! cells <n>
//! directions <k>
//! dag <i> edges <e>      # followed by e lines "u v"
//! u v
//! ...
//! end
//! ```

use crate::graph::TaskDag;
use crate::instance::SweepInstance;

/// Serializes an instance to the v1 text format.
pub fn to_text(instance: &SweepInstance) -> String {
    let mut out = String::new();
    out.push_str("sweep-instance v1\n");
    out.push_str(&format!("name {}\n", instance.name().replace('\n', " ")));
    out.push_str(&format!("cells {}\n", instance.num_cells()));
    out.push_str(&format!("directions {}\n", instance.num_directions()));
    for (i, dag) in instance.dags().iter().enumerate() {
        out.push_str(&format!("dag {} edges {}\n", i, dag.num_edges()));
        for (u, v) in dag.edges() {
            out.push_str(&format!("{u} {v}\n"));
        }
    }
    out.push_str("end\n");
    out
}

/// Parses the v1 text format back into an instance, rejecting cyclic
/// direction graphs (schedulers require DAGs).
pub fn from_text(text: &str) -> Result<SweepInstance, String> {
    let inst = from_text_unchecked(text)?;
    for (i, dag) in inst.dags().iter().enumerate() {
        if !dag.is_acyclic() {
            return Err(format!("dag {i} is cyclic"));
        }
    }
    Ok(inst)
}

/// Parses the fixed document prefix (format header, `name`, `cells`,
/// `directions`) and returns the line iterator positioned at the first
/// `dag` header.
fn parse_prefix(text: &str) -> Result<(String, usize, usize, impl Iterator<Item = &str>), String> {
    let mut lines = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'));
    let header = lines.next().ok_or("empty input")?;
    if header != "sweep-instance v1" {
        return Err(format!("bad header '{header}'"));
    }
    let name_line = lines.next().ok_or("missing name line")?;
    let name = name_line
        .strip_prefix("name ")
        .ok_or_else(|| format!("expected 'name …', got '{name_line}'"))?
        .to_string();
    let parse_kv = |line: &str, key: &str| -> Result<usize, String> {
        line.strip_prefix(key)
            .and_then(|r| r.trim().parse().ok())
            .ok_or_else(|| format!("expected '{key} <int>', got '{line}'"))
    };
    let n = parse_kv(lines.next().ok_or("missing cells line")?, "cells")?;
    let k = parse_kv(lines.next().ok_or("missing directions line")?, "directions")?;
    if k == 0 {
        return Err("instance needs at least one direction".into());
    }
    Ok((name, n, k, lines))
}

/// Reads just the `cells` and `directions` counts from a v1 document's
/// header, without materializing any DAG — so a caller can bound
/// `cells × directions` *before* paying for the full parse (the
/// per-direction node arrays alone are `O(cells × directions)`).
pub fn peek_counts(text: &str) -> Result<(usize, usize), String> {
    let (_, n, k, _) = parse_prefix(text)?;
    Ok((n, k))
}

/// Parses the v1 text format **without** the acyclicity check, so that
/// cyclic inputs can be loaded for diagnosis (`sweep-analyze` reports a
/// witness cycle rather than refusing to parse).
pub fn from_text_unchecked(text: &str) -> Result<SweepInstance, String> {
    let (name, n, k, mut lines) = parse_prefix(text)?;
    let mut dags = Vec::with_capacity(k);
    for i in 0..k {
        let head = lines
            .next()
            .ok_or_else(|| format!("missing 'dag {i}' header"))?;
        let rest = head
            .strip_prefix("dag ")
            .ok_or_else(|| format!("expected 'dag {i} …', got '{head}'"))?;
        let mut parts = rest.split_whitespace();
        let idx: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("bad dag index in '{head}'"))?;
        if idx != i {
            return Err(format!("expected dag {i}, found dag {idx}"));
        }
        if parts.next() != Some("edges") {
            return Err(format!("expected 'edges' in '{head}'"));
        }
        let e: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("bad edge count in '{head}'"))?;
        let mut edges = Vec::with_capacity(e);
        for _ in 0..e {
            let line = lines.next().ok_or("unexpected end of edge list")?;
            let mut it = line.split_whitespace();
            let u: u32 = it
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| format!("bad edge line '{line}'"))?;
            let v: u32 = it
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| format!("bad edge line '{line}'"))?;
            if (u as usize) >= n || (v as usize) >= n {
                return Err(format!("edge ({u},{v}) out of range for {n} cells"));
            }
            if u == v {
                return Err(format!("self-loop at {u}"));
            }
            edges.push((u, v));
        }
        dags.push(TaskDag::from_edges(n, &edges));
    }
    match lines.next() {
        Some("end") => {}
        other => return Err(format!("expected 'end', got {other:?}")),
    }
    Ok(SweepInstance::new_unchecked(n, dags, name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peek_counts_reads_the_header_only() {
        let inst = SweepInstance::random_layered(40, 3, 5, 2, 7);
        assert_eq!(peek_counts(&to_text(&inst)).unwrap(), (40, 3));
        // The counts come from the header alone: a document claiming an
        // enormous size peeks fine with no size-proportional work.
        let text = "sweep-instance v1\nname big\ncells 1000000000\ndirections 1000\n";
        assert_eq!(peek_counts(text).unwrap(), (1_000_000_000, 1000));
        assert!(peek_counts("nonsense").is_err());
    }

    #[test]
    fn peek_counts_rejects_truncated_headers() {
        // Truncation at every byte offset (the document is ASCII):
        // anything short of the full prefix is an `Err`, never a panic
        // or a fabricated count.
        let doc = "sweep-instance v1\nname t\ncells 4\ndirections 2\n";
        for end in 0..doc.len() - 1 {
            assert!(
                peek_counts(&doc[..end]).is_err(),
                "truncation at byte {end} was accepted"
            );
        }
        assert_eq!(peek_counts(doc).unwrap(), (4, 2));
    }

    #[test]
    fn peek_counts_on_overflowing_and_garbage_counts() {
        // Counts that would overflow a naive `cells × directions`
        // prediction still peek: bounding is the caller's contract
        // (`check_task_budget` in sweep-serve), and it must saturate
        // rather than multiply blindly.
        let huge = format!(
            "sweep-instance v1\nname h\ncells {max}\ndirections {max}\n",
            max = usize::MAX
        );
        let (n, k) = peek_counts(&huge).unwrap();
        assert_eq!((n, k), (usize::MAX, usize::MAX));
        assert_eq!(n.saturating_mul(k), usize::MAX);

        // Values that do not fit a usize at all are rejected, not
        // wrapped into something small enough to pass a budget check.
        let oversize = format!(
            "sweep-instance v1\nname o\ncells {}0\ndirections 1\n",
            usize::MAX
        );
        assert!(peek_counts(&oversize).is_err());

        // Garbage numerics: non-digits and negatives never parse.
        for bad in ["lots", "-3", "4.5", "0x10", ""] {
            let doc = format!("sweep-instance v1\nname g\ncells {bad}\ndirections 2\n");
            assert!(peek_counts(&doc).is_err(), "cells '{bad}' was accepted");
        }
    }

    #[test]
    fn peek_counts_and_parse_on_zero_task_bodies() {
        // `cells 0` is representable (an empty mesh): it peeks to a
        // zero task budget and the full parser accepts the matching
        // empty per-direction DAG bodies.
        let empty = "sweep-instance v1\nname e\ncells 0\ndirections 2\n\
                     dag 0 edges 0\ndag 1 edges 0\nend\n";
        assert_eq!(peek_counts(empty).unwrap(), (0, 2));
        let inst = from_text(empty).unwrap();
        assert_eq!(inst.num_cells(), 0);
        assert_eq!(inst.num_tasks(), 0);

        // `directions 0` never peeks — the shared prefix parser rejects
        // it before any caller can divide or iterate by it.
        assert!(peek_counts("sweep-instance v1\nname z\ncells 5\ndirections 0\n").is_err());

        // A zero-cell body still cannot smuggle in edges.
        let bogus = "sweep-instance v1\nname b\ncells 0\ndirections 1\n\
                     dag 0 edges 1\n0 1\nend\n";
        assert!(from_text(bogus).is_err());
    }

    #[test]
    fn round_trip_preserves_structure() {
        let inst = SweepInstance::random_layered(40, 3, 5, 2, 7);
        let text = to_text(&inst);
        let back = from_text(&text).unwrap();
        assert_eq!(back.num_cells(), inst.num_cells());
        assert_eq!(back.num_directions(), inst.num_directions());
        assert_eq!(back.name(), inst.name());
        for i in 0..3 {
            let mut e1: Vec<_> = inst.dag(i).edges().collect();
            let mut e2: Vec<_> = back.dag(i).edges().collect();
            e1.sort_unstable();
            e2.sort_unstable();
            assert_eq!(e1, e2, "direction {i}");
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let inst = SweepInstance::identical_chains(3, 1);
        let text = to_text(&inst);
        let noisy = text
            .lines()
            .map(|l| format!("{l}\n# comment\n\n"))
            .collect::<String>();
        let back = from_text(&noisy).unwrap();
        assert_eq!(back.num_cells(), 3);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(from_text("").is_err());
        assert!(from_text("wrong header\n").is_err());
        let inst = SweepInstance::identical_chains(3, 1);
        let good = to_text(&inst);
        // Corrupt: out-of-range edge.
        let bad = good.replace("0 1", "0 99");
        assert!(from_text(&bad).unwrap_err().contains("out of range"));
        // Corrupt: truncate the end marker.
        let bad2 = good.replace("end\n", "");
        assert!(from_text(&bad2).is_err());
        // Corrupt: cyclic edges.
        let cyclic = "sweep-instance v1\nname x\ncells 2\ndirections 1\n\
                      dag 0 edges 2\n0 1\n1 0\nend\n";
        assert!(from_text(cyclic).unwrap_err().contains("cyclic"));
    }

    #[test]
    fn unchecked_parse_accepts_cycles() {
        let cyclic = "sweep-instance v1\nname x\ncells 2\ndirections 1\n\
                      dag 0 edges 2\n0 1\n1 0\nend\n";
        let inst = from_text_unchecked(cyclic).unwrap();
        assert_eq!(inst.num_cells(), 2);
        assert!(!inst.dag(0).is_acyclic());
    }

    #[test]
    fn edge_counts_must_match() {
        let text = "sweep-instance v1\nname x\ncells 2\ndirections 1\n\
                    dag 0 edges 2\n0 1\nend\n";
        assert!(from_text(text).is_err());
    }

    #[test]
    fn name_with_spaces_survives() {
        let inst = SweepInstance::new(2, vec![TaskDag::edgeless(2)], "my fancy instance");
        let back = from_text(&to_text(&inst)).unwrap();
        assert_eq!(back.name(), "my fancy instance");
    }
}
