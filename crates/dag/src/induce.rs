//! Induction of per-direction dependence DAGs from a mesh, with cycle
//! breaking.
//!
//! For sweep direction `ω`, every interior face with `a→b` unit normal `n`
//! contributes the edge `a → b` when `n · ω > ε` and `b → a` when
//! `n · ω < −ε` (faces nearly parallel to the sweep contribute nothing —
//! no flux crosses them). On jittered unstructured meshes the resulting
//! digraph can contain directed cycles; following the paper ("we break the
//! cycles") we repair them: Tarjan's strongly-connected components are
//! computed, and within each non-trivial SCC only edges consistent with the
//! *geometric height* order `h(v) = centroid(v) · ω` (ties by cell id) are
//! kept. Cross-SCC edges can never participate in a cycle and are all
//! preserved, so the repair is minimal in that sense.

use sweep_mesh::{SweepMesh, Vec3};
use sweep_quadrature::QuadratureSet;
use sweep_telemetry as telemetry;

use crate::graph::TaskDag;

/// Faces whose normal is within this tolerance of perpendicular to the
/// sweep direction induce no dependence.
pub const PARALLEL_EPS: f64 = 1e-12;

/// Statistics from inducing one direction's DAG.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InduceStats {
    /// Edges induced by face normals before repair.
    pub raw_edges: usize,
    /// Edges dropped by cycle breaking.
    pub dropped_edges: usize,
    /// Number of non-trivial (size ≥ 2) strongly connected components
    /// encountered.
    pub nontrivial_sccs: usize,
}

/// Induces the dependence DAG of one sweep direction from a mesh.
/// Guaranteed acyclic.
///
/// ```
/// use sweep_mesh::{TriMesh2d, Vec3};
/// use sweep_dag::induce_dag;
///
/// let mesh = TriMesh2d::unit_square(4, 4, 0.2, 1).unwrap();
/// let (dag, stats) = induce_dag(&mesh, Vec3::new(0.8, 0.6, 0.0));
/// assert!(dag.is_acyclic());
/// assert!(stats.raw_edges > 0);
/// ```
pub fn induce_dag(mesh: &impl SweepMesh, omega: Vec3) -> (TaskDag, InduceStats) {
    let n = mesh.num_cells();
    let edges = induce_raw(mesh, omega);
    let raw = edges.len();
    let height: Vec<f64> = (0..n)
        .map(|c| mesh.centroid(sweep_mesh::CellId(c as u32)).dot(omega))
        .collect();
    let (edges, dropped, sccs) = break_cycles(n, edges, &height);
    let dag = TaskDag::from_edges(n, &edges);
    debug_assert!(dag.is_acyclic());
    (
        dag,
        InduceStats {
            raw_edges: raw,
            dropped_edges: dropped,
            nontrivial_sccs: sccs,
        },
    )
}

/// The raw (pre-repair) dependence edges one sweep direction induces: the
/// edge list [`induce_dag`] would hand to [`break_cycles`]. On hanging-node
/// and polytopal meshes this digraph can contain directed cycles — exactly
/// the witnesses the `SW001` analyzer row certifies — so it is exposed for
/// inspection and for exporting cyclic instances (`sweep mesh import
/// --raw-out`).
///
/// ```
/// use sweep_dag::{induce_dag, induce_raw};
/// use sweep_mesh::{PolyPreset, Vec3};
///
/// // The Pillow preset provably induces a 2-cycle for every direction...
/// let mesh = PolyPreset::Pillow.build(2).unwrap();
/// let omega = Vec3::new(0.48, 0.6, 0.64);
/// let raw = induce_raw(&mesh, omega);
/// assert!(raw.contains(&(0, 1)) && raw.contains(&(1, 0)));
/// // ...which induce_dag's cycle breaking removes.
/// let (dag, stats) = induce_dag(&mesh, omega);
/// assert!(dag.is_acyclic());
/// assert!(stats.dropped_edges > 0);
/// ```
pub fn induce_raw(mesh: &impl SweepMesh, omega: Vec3) -> Vec<(u32, u32)> {
    let mut edges = Vec::with_capacity(mesh.interior_faces().len());
    for f in mesh.interior_faces() {
        let d = f.normal.dot(omega);
        if d > PARALLEL_EPS {
            edges.push((f.a.0, f.b.0));
        } else if d < -PARALLEL_EPS {
            edges.push((f.b.0, f.a.0));
        }
    }
    edges
}

/// Induces all `k` DAGs for a quadrature set; returns the DAGs and the
/// per-direction repair statistics.
///
/// The per-direction inductions are independent, so they fan out over
/// the [`sweep_pool::global`] thread pool. Each induction is a pure
/// function of `(mesh, ω)` and results come back ordered by direction
/// index, so the output is bit-identical at every worker count
/// (`--threads 1` reproduces the historical sequential loop exactly).
pub fn induce_all(
    mesh: &(impl SweepMesh + Sync),
    quadrature: &QuadratureSet,
) -> (Vec<TaskDag>, Vec<InduceStats>) {
    let _span = telemetry::span!("dag.induce");
    let omegas: Vec<Vec3> = quadrature.iter().map(|(_, omega)| omega).collect();
    let per_dir = sweep_pool::global().par_map(&omegas, |_, &omega| induce_dag(mesh, omega));
    let mut dags = Vec::with_capacity(quadrature.len());
    let mut stats = Vec::with_capacity(quadrature.len());
    for (d, s) in per_dir {
        dags.push(d);
        stats.push(s);
    }
    if telemetry::enabled() {
        telemetry::counter_add(
            "dag.induce.raw_edges",
            stats.iter().map(|s| s.raw_edges as u64).sum(),
        );
        telemetry::counter_add(
            "dag.induce.dropped_edges",
            stats.iter().map(|s| s.dropped_edges as u64).sum(),
        );
    }
    (dags, stats)
}

/// Removes a set of edges so the remainder is acyclic — the paper's "we
/// break the cycles" step (§3).
///
/// The contract:
///
/// * **Acyclic in, untouched out.** Edges whose endpoints lie in different
///   strongly connected components can never participate in a cycle and are
///   all kept — an already-acyclic digraph passes through bit-identically,
///   even when `height` disagrees with the edge directions.
/// * **Cyclic in, geometric repair.** Within each non-trivial SCC only edges
///   going strictly upward in `(height, id)` lexicographic order survive.
///   Since that order is total, the result is acyclic; `height[v]` is the
///   cell centroid projected on the sweep direction, so surviving edges are
///   the physically plausible ones.
/// * **Deterministic.** Output order equals input order (a filter), so
///   results are reproducible across runs and thread counts.
///
/// Returns `(kept_edges, dropped_count, nontrivial_scc_count)`.
///
/// ```
/// use sweep_dag::break_cycles;
///
/// // A 2-cycle between nodes at heights 0.0 < 1.0: the upward edge
/// // survives, the downward edge is dropped, one non-trivial SCC.
/// let (kept, dropped, sccs) = break_cycles(2, vec![(0, 1), (1, 0)], &[0.0, 1.0]);
/// assert_eq!((kept, dropped, sccs), (vec![(0, 1)], 1, 1));
///
/// // Acyclic input is never modified, even under inconsistent heights.
/// let (kept, dropped, _) = break_cycles(3, vec![(0, 1), (1, 2)], &[9.0, 0.0, 4.0]);
/// assert_eq!((kept, dropped), (vec![(0, 1), (1, 2)], 0));
/// ```
///
/// # Panics
/// Panics when `height.len() != n`.
pub fn break_cycles(
    n: usize,
    edges: Vec<(u32, u32)>,
    height: &[f64],
) -> (Vec<(u32, u32)>, usize, usize) {
    assert_eq!(height.len(), n, "one height per node");
    let scc = tarjan_scc(n, &edges);

    // Count SCC sizes to identify non-trivial components.
    let mut scc_size = vec![0u32; n];
    for &c in &scc {
        scc_size[c as usize] += 1;
    }
    let nontrivial = scc_size.iter().filter(|&&s| s >= 2).count();

    let before = edges.len();
    let upward = |u: u32, v: u32| {
        let (hu, hv) = (height[u as usize], height[v as usize]);
        hu < hv || (hu == hv && u < v)
    };
    let kept: Vec<(u32, u32)> = edges
        .into_iter()
        .filter(|&(u, v)| scc[u as usize] != scc[v as usize] || upward(u, v))
        .collect();
    let dropped = before - kept.len();
    (kept, dropped, nontrivial)
}

/// Iterative Tarjan SCC; returns the component id of every node.
fn tarjan_scc(n: usize, edges: &[(u32, u32)]) -> Vec<u32> {
    // Build successor CSR.
    let mut deg = vec![0u32; n];
    for &(u, _) in edges {
        deg[u as usize] += 1;
    }
    let mut xadj = vec![0u32; n + 1];
    for i in 0..n {
        xadj[i + 1] = xadj[i] + deg[i];
    }
    let mut adj = vec![0u32; edges.len()];
    let mut cur: Vec<u32> = xadj[..n].to_vec();
    for &(u, v) in edges {
        adj[cur[u as usize] as usize] = v;
        cur[u as usize] += 1;
    }

    const UNVISITED: u32 = u32::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut comp = vec![UNVISITED; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut next_comp = 0u32;

    // Explicit DFS stack of (node, next-child-offset).
    let mut dfs: Vec<(u32, u32)> = Vec::new();
    for root in 0..n as u32 {
        if index[root as usize] != UNVISITED {
            continue;
        }
        dfs.push((root, 0));
        index[root as usize] = next_index;
        lowlink[root as usize] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root as usize] = true;

        while let Some(&mut (v, ref mut ci)) = dfs.last_mut() {
            let (s, e) = (xadj[v as usize], xadj[v as usize + 1]);
            if s + *ci < e {
                let w = adj[(s + *ci) as usize];
                *ci += 1;
                if index[w as usize] == UNVISITED {
                    index[w as usize] = next_index;
                    lowlink[w as usize] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                    dfs.push((w, 0));
                } else if on_stack[w as usize] {
                    lowlink[v as usize] = lowlink[v as usize].min(index[w as usize]);
                }
            } else {
                dfs.pop();
                if let Some(&(p, _)) = dfs.last() {
                    lowlink[p as usize] = lowlink[p as usize].min(lowlink[v as usize]);
                }
                if lowlink[v as usize] == index[v as usize] {
                    // v is the root of an SCC.
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        comp[w as usize] = next_comp;
                        if w == v {
                            break;
                        }
                    }
                    next_comp += 1;
                }
            }
        }
    }
    comp
}

#[cfg(test)]
mod tests {
    use super::*;
    use sweep_mesh::{MeshPreset, TriMesh2d};
    use sweep_quadrature::QuadratureSet;

    #[test]
    fn tarjan_identifies_components() {
        // 0 <-> 1 form a cycle; 2 is separate; 1 -> 2.
        let scc = tarjan_scc(3, &[(0, 1), (1, 0), (1, 2)]);
        assert_eq!(scc[0], scc[1]);
        assert_ne!(scc[0], scc[2]);
    }

    #[test]
    fn tarjan_on_dag_gives_singletons() {
        let scc = tarjan_scc(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]);
        let mut ids = scc.clone();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 4);
    }

    #[test]
    fn break_cycles_repairs_two_cycle() {
        let heights = vec![0.0, 1.0];
        let (kept, dropped, sccs) = break_cycles(2, vec![(0, 1), (1, 0)], &heights);
        assert_eq!(kept, vec![(0, 1)]); // upward edge survives
        assert_eq!(dropped, 1);
        assert_eq!(sccs, 1);
        assert!(TaskDag::from_edges(2, &kept).is_acyclic());
    }

    #[test]
    fn break_cycles_keeps_acyclic_input_intact() {
        let heights = vec![5.0, 0.0, 2.0]; // deliberately inconsistent
        let edges = vec![(0u32, 1u32), (1, 2)];
        let (kept, dropped, sccs) = break_cycles(3, edges.clone(), &heights);
        // No cycles ⇒ nothing may be dropped even though heights disagree.
        assert_eq!(kept, edges);
        assert_eq!(dropped, 0);
        assert_eq!(sccs, 0);
    }

    #[test]
    fn break_cycles_handles_big_scc() {
        // Directed 4-cycle plus a chord.
        let edges = vec![(0u32, 1u32), (1, 2), (2, 3), (3, 0), (0, 2)];
        let heights = vec![0.0, 1.0, 2.0, 3.0];
        let (kept, _, sccs) = break_cycles(4, edges, &heights);
        assert_eq!(sccs, 1);
        assert!(TaskDag::from_edges(4, &kept).is_acyclic());
        // All upward edges survive: (0,1),(1,2),(2,3),(0,2).
        assert_eq!(kept.len(), 4);
    }

    #[test]
    fn equal_heights_broken_by_id() {
        let edges = vec![(0u32, 1u32), (1, 0)];
        let heights = vec![1.0, 1.0];
        let (kept, dropped, _) = break_cycles(2, edges, &heights);
        assert_eq!(kept, vec![(0, 1)]);
        assert_eq!(dropped, 1);
    }

    #[test]
    fn induced_2d_dags_are_acyclic_and_cover_most_faces() {
        let mesh = TriMesh2d::unit_square(8, 8, 0.2, 3).unwrap();
        let quad = QuadratureSet::uniform_2d(8).unwrap();
        let (dags, stats) = induce_all(&mesh, &quad);
        assert_eq!(dags.len(), 8);
        for (d, s) in dags.iter().zip(&stats) {
            assert!(d.is_acyclic());
            assert_eq!(d.num_nodes(), mesh.num_cells());
            // Nearly every interior face induces an edge (none parallel).
            assert!(s.raw_edges >= mesh.interior_faces().len() * 9 / 10);
            // Dropped edges must be a small fraction.
            assert!(s.dropped_edges * 20 <= s.raw_edges, "{s:?}");
        }
    }

    #[test]
    fn induced_3d_dags_are_acyclic() {
        let mesh = MeshPreset::Tetonly.build_scaled(0.01).unwrap();
        let quad = QuadratureSet::level_symmetric(2).unwrap();
        let (dags, _) = induce_all(&mesh, &quad);
        for d in &dags {
            assert!(d.is_acyclic());
        }
    }

    #[test]
    fn opposite_directions_induce_transposed_dags() {
        let mesh = TriMesh2d::unit_square(5, 5, 0.15, 1).unwrap();
        let omega = Vec3::new(0.6, 0.8, 0.0);
        let (d1, s1) = induce_dag(&mesh, omega);
        let (d2, _) = induce_dag(&mesh, -omega);
        // Raw induced edge sets are exact transposes; cycle breaking uses
        // opposite height orders, so the *kept* sets are transposes too
        // when no cycles existed.
        if s1.dropped_edges == 0 {
            let mut e1: Vec<_> = d1.edges().map(|(u, v)| (v, u)).collect();
            let mut e2: Vec<_> = d2.edges().collect();
            e1.sort_unstable();
            e2.sort_unstable();
            assert_eq!(e1, e2);
        }
    }

    #[test]
    fn poly_presets_induce_cycles_in_every_direction() {
        use sweep_mesh::PolyPreset;
        // TripleRing and Pillow guarantee a cycle for EVERY unit direction;
        // check the full S2 level-symmetric set plus assorted oblique ones.
        let mut dirs: Vec<Vec3> = QuadratureSet::level_symmetric(4)
            .unwrap()
            .iter()
            .map(|(_, o)| o)
            .collect();
        dirs.push(Vec3::new(0.48, 0.6, 0.64));
        dirs.push(Vec3::new(-0.2, 0.3, 0.933).normalized());
        for preset in [PolyPreset::TripleRing, PolyPreset::Pillow] {
            let mesh = preset.build(preset.min_cells().max(12)).unwrap();
            for &omega in &dirs {
                let (dag, stats) = induce_dag(&mesh, omega);
                assert!(
                    stats.nontrivial_sccs >= 1 && stats.dropped_edges >= 1,
                    "{} should cycle along {omega:?}: {stats:?}",
                    preset.name()
                );
                assert!(dag.is_acyclic(), "repair must still produce a DAG");
            }
        }
        // Ring cycles whenever ω has a z component.
        let ring = PolyPreset::Ring.build(8).unwrap();
        let (_, s) = induce_dag(&ring, Vec3::new(0.0, 0.6, 0.8));
        assert_eq!(s.nontrivial_sccs, 1);
        // The full ring is one Hamiltonian cycle over all 8 interfaces;
        // repair keeps the height-upward half.
        assert_eq!(s.raw_edges, 8);
        assert!(s.dropped_edges >= 1);
        let (_, s) = induce_dag(&ring, Vec3::new(1.0, 0.0, 0.0));
        assert_eq!(s.raw_edges, 0, "in-plane direction induces no ring edges");
    }

    #[test]
    fn dag_sources_are_upstream_cells() {
        // In a structured (no-jitter) strip, the sweep direction +x makes
        // the leftmost cells the sources.
        let mesh = TriMesh2d::unit_square(6, 1, 0.0, 0).unwrap();
        let (dag, stats) = induce_dag(&mesh, Vec3::new(1.0, 0.0, 0.0));
        assert_eq!(stats.dropped_edges, 0);
        assert!(dag.is_acyclic());
        let sources = dag.sources();
        assert!(!sources.is_empty());
        use sweep_mesh::{CellId, SweepMesh as _};
        let min_x = sources
            .iter()
            .map(|&c| mesh.centroid(CellId(c)).x)
            .fold(f64::INFINITY, f64::min);
        assert!(min_x < 0.25, "sources should be near the left edge");
    }
}
