//! The sweep-scheduling *instance*: a shared cell set plus one DAG per
//! direction (paper §3).
//!
//! Tasks are the pairs `(v, i)` of cell `v` and direction `i`, identified
//! densely as `task = i·n + v` (see [`TaskId`]). Besides mesh-induced
//! instances, this module provides synthetic generators used by tests,
//! property tests, and the adversarial experiment family.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sweep_mesh::SweepMesh;
use sweep_quadrature::QuadratureSet;
use sweep_telemetry as telemetry;

use crate::graph::TaskDag;
use crate::induce::{induce_all, InduceStats};
use crate::levels::{critical_path_len, levels, Levels};

/// Dense identifier of a task `(cell, direction)`: `task = dir·n + cell`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub u64);

impl TaskId {
    /// Packs `(cell, dir)` given the instance's cell count.
    #[inline]
    pub fn pack(cell: u32, dir: u32, n: usize) -> TaskId {
        TaskId(dir as u64 * n as u64 + cell as u64)
    }

    /// Unpacks into `(cell, dir)`.
    #[inline]
    pub fn unpack(self, n: usize) -> (u32, u32) {
        ((self.0 % n as u64) as u32, (self.0 / n as u64) as u32)
    }

    /// Raw index for dense arrays of size `n·k`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A sweep-scheduling instance: `n` cells and `k` precedence DAGs over them.
#[derive(Debug, Clone)]
pub struct SweepInstance {
    n: usize,
    dags: Vec<TaskDag>,
    name: String,
}

impl SweepInstance {
    /// Builds an instance from explicit DAGs.
    ///
    /// # Panics
    /// Panics if any DAG has a node count different from `n`, if `k = 0`,
    /// or if any DAG is cyclic.
    pub fn new(n: usize, dags: Vec<TaskDag>, name: impl Into<String>) -> SweepInstance {
        assert!(!dags.is_empty(), "instance needs at least one direction");
        for (i, d) in dags.iter().enumerate() {
            assert_eq!(d.num_nodes(), n, "DAG {i} has wrong node count");
            assert!(d.is_acyclic(), "DAG {i} is cyclic");
        }
        SweepInstance {
            n,
            dags,
            name: name.into(),
        }
    }

    /// Builds an instance **without** the acyclicity check (node counts
    /// are still enforced). Schedulers require acyclic DAGs, so only hand
    /// instances built this way to `sweep-analyze`, which detects cycles
    /// and reports a witness instead of panicking.
    ///
    /// # Panics
    /// Panics if any DAG has a node count different from `n` or `k = 0`.
    pub fn new_unchecked(n: usize, dags: Vec<TaskDag>, name: impl Into<String>) -> SweepInstance {
        assert!(!dags.is_empty(), "instance needs at least one direction");
        for (i, d) in dags.iter().enumerate() {
            assert_eq!(d.num_nodes(), n, "DAG {i} has wrong node count");
        }
        SweepInstance {
            n,
            dags,
            name: name.into(),
        }
    }

    /// Induces the instance from a mesh and a quadrature set (cycles broken
    /// geometrically); also returns per-direction induction statistics.
    ///
    /// Per-direction inductions run on the global thread pool (see
    /// [`induce_all`]); the `Sync` bound lets workers share the mesh.
    pub fn from_mesh(
        mesh: &(impl SweepMesh + Sync),
        quadrature: &QuadratureSet,
        name: impl Into<String>,
    ) -> (SweepInstance, Vec<InduceStats>) {
        let _span = telemetry::span!("dag.instance.from_mesh");
        let (dags, stats) = induce_all(mesh, quadrature);
        (
            SweepInstance {
                n: mesh.num_cells(),
                dags,
                name: name.into(),
            },
            stats,
        )
    }

    /// Number of cells `n`.
    #[inline]
    pub fn num_cells(&self) -> usize {
        self.n
    }

    /// Number of directions `k`.
    #[inline]
    pub fn num_directions(&self) -> usize {
        self.dags.len()
    }

    /// Total number of tasks `n·k`.
    #[inline]
    pub fn num_tasks(&self) -> usize {
        self.n * self.dags.len()
    }

    /// The DAG of direction `i`.
    #[inline]
    pub fn dag(&self, i: usize) -> &TaskDag {
        &self.dags[i]
    }

    /// All DAGs.
    #[inline]
    pub fn dags(&self) -> &[TaskDag] {
        &self.dags
    }

    /// Instance name (for reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Level decompositions of every direction.
    pub fn all_levels(&self) -> Vec<Levels> {
        self.dags.iter().map(levels).collect()
    }

    /// The paper's `D`: maximum number of layers over all directions.
    pub fn max_depth(&self) -> usize {
        self.dags.iter().map(critical_path_len).max().unwrap_or(0)
    }

    /// Total number of precedence edges over all directions.
    pub fn total_edges(&self) -> usize {
        self.dags.iter().map(TaskDag::num_edges).sum()
    }

    // ---------------------------------------------------------------
    // Synthetic generators
    // ---------------------------------------------------------------

    /// Random layered instance: each direction partitions the cells into
    /// `depth` layers uniformly at random and adds up to `max_preds` edges
    /// from the previous layer to every node. Acyclic by construction.
    ///
    /// # Panics
    /// Panics when `n == 0`, `k == 0` or `depth == 0`.
    pub fn random_layered(
        n: usize,
        k: usize,
        depth: usize,
        max_preds: usize,
        seed: u64,
    ) -> SweepInstance {
        assert!(n > 0 && k > 0 && depth > 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut dags = Vec::with_capacity(k);
        for _ in 0..k {
            // Random layer for every node; layer sets are then compacted.
            let layer_of: Vec<usize> = (0..n).map(|_| rng.random_range(0..depth)).collect();
            let mut by_layer: Vec<Vec<u32>> = vec![Vec::new(); depth];
            for (v, &l) in layer_of.iter().enumerate() {
                by_layer[l].push(v as u32);
            }
            by_layer.retain(|l| !l.is_empty());
            let mut edges = Vec::new();
            for w in 1..by_layer.len() {
                let prev = &by_layer[w - 1];
                for &v in &by_layer[w] {
                    let preds = rng.random_range(1..=max_preds.max(1));
                    for _ in 0..preds {
                        let u = prev[rng.random_range(0..prev.len())];
                        edges.push((u, v));
                    }
                }
            }
            dags.push(TaskDag::from_edges(n, &edges));
        }
        SweepInstance::new(n, dags, format!("random_layered(n={n},k={k},d={depth})"))
    }

    /// Every direction is an independent random permutation *chain* over all
    /// cells — the fully sequential worst case mentioned in the paper's
    /// introduction ("if all the cells in some direction form a chain, the
    /// computation has to proceed sequentially").
    pub fn random_chains(n: usize, k: usize, seed: u64) -> SweepInstance {
        assert!(n > 0 && k > 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut dags = Vec::with_capacity(k);
        for _ in 0..k {
            let mut perm: Vec<u32> = (0..n as u32).collect();
            rand::seq::SliceRandom::shuffle(perm.as_mut_slice(), &mut rng);
            let edges: Vec<(u32, u32)> = perm.windows(2).map(|w| (w[0], w[1])).collect();
            dags.push(TaskDag::from_edges(n, &edges));
        }
        SweepInstance::new(n, dags, format!("random_chains(n={n},k={k})"))
    }

    /// Adversarial family: **all `k` directions share one identical chain**
    /// over the `n` cells.
    ///
    /// Layer-sequential scheduling *without* random delays needs `≈ n·k`
    /// steps (the `k` copies of each cell live in the same combined layer
    /// and serialize on the cell's processor, and layers are processed one
    /// at a time), while the same algorithm *with* random delays — and any
    /// list schedule — pipelines to `≈ n + k`. This realizes the separation
    /// the Figure 3(a) ablation probes.
    pub fn identical_chains(n: usize, k: usize) -> SweepInstance {
        assert!(n > 0 && k > 0);
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|v| (v, v + 1)).collect();
        let dag = TaskDag::from_edges(n, &edges);
        let dags = vec![dag; k];
        SweepInstance::new(n, dags, format!("identical_chains(n={n},k={k})"))
    }

    /// Wide-layer instance with a single bottleneck cell between
    /// consecutive layers, shared by every direction. Stresses both the
    /// same-processor constraint (the bottleneck's `k` copies serialize)
    /// and layer-width imbalance.
    pub fn bottleneck(width: usize, depth: usize, k: usize) -> SweepInstance {
        assert!(width > 0 && depth > 0 && k > 0);
        // Layout: depth blocks of `width` wide cells, with a bottleneck
        // cell after each block: [w cells][b][w cells][b]...
        let n = depth * (width + 1);
        let mut edges = Vec::new();
        for d in 0..depth {
            let base = (d * (width + 1)) as u32;
            let bott = base + width as u32;
            for w in 0..width as u32 {
                edges.push((base + w, bott));
                if d + 1 < depth {
                    let next_base = bott + 1;
                    edges.push((bott, next_base + w));
                }
            }
        }
        let dag = TaskDag::from_edges(n, &edges);
        let dags = vec![dag; k];
        SweepInstance::new(n, dags, format!("bottleneck(w={width},d={depth},k={k})"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sweep_mesh::TriMesh2d;

    #[test]
    fn task_id_round_trips() {
        let n = 1000;
        for (c, d) in [(0u32, 0u32), (999, 0), (0, 23), (123, 7)] {
            let t = TaskId::pack(c, d, n);
            assert_eq!(t.unpack(n), (c, d));
        }
    }

    #[test]
    fn from_mesh_builds_k_dags() {
        let mesh = TriMesh2d::unit_square(4, 4, 0.2, 1).unwrap();
        let quad = QuadratureSet::uniform_2d(6).unwrap();
        let (inst, stats) = SweepInstance::from_mesh(&mesh, &quad, "t");
        assert_eq!(inst.num_cells(), 32);
        assert_eq!(inst.num_directions(), 6);
        assert_eq!(inst.num_tasks(), 192);
        assert_eq!(stats.len(), 6);
        assert!(inst.max_depth() >= 2);
        assert!(inst.total_edges() > 0);
    }

    #[test]
    fn random_layered_is_acyclic_and_deterministic() {
        let a = SweepInstance::random_layered(100, 4, 10, 3, 42);
        let b = SweepInstance::random_layered(100, 4, 10, 3, 42);
        for i in 0..4 {
            assert!(a.dag(i).is_acyclic());
            assert_eq!(a.dag(i).num_edges(), b.dag(i).num_edges());
        }
        assert!(a.max_depth() <= 10);
    }

    #[test]
    fn random_chains_have_full_depth() {
        let inst = SweepInstance::random_chains(50, 3, 7);
        assert_eq!(inst.max_depth(), 50);
        for i in 0..3 {
            assert_eq!(inst.dag(i).num_edges(), 49);
            assert_eq!(inst.dag(i).sources().len(), 1);
            assert_eq!(inst.dag(i).sinks().len(), 1);
        }
    }

    #[test]
    fn identical_chains_share_structure() {
        let inst = SweepInstance::identical_chains(20, 5);
        assert_eq!(inst.num_directions(), 5);
        for i in 0..5 {
            assert_eq!(inst.dag(i).num_edges(), 19);
        }
        assert_eq!(inst.max_depth(), 20);
    }

    #[test]
    fn bottleneck_structure() {
        let inst = SweepInstance::bottleneck(4, 3, 2);
        assert_eq!(inst.num_cells(), 15);
        // Depth: w -> b -> w -> b -> w -> b = 6 levels.
        assert_eq!(inst.max_depth(), 6);
        let lv = inst.all_levels();
        assert_eq!(lv[0].max_width(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one direction")]
    fn empty_direction_set_panics() {
        SweepInstance::new(3, vec![], "bad");
    }

    #[test]
    #[should_panic(expected = "wrong node count")]
    fn mismatched_dag_panics() {
        SweepInstance::new(3, vec![TaskDag::edgeless(4)], "bad");
    }

    #[test]
    #[should_panic(expected = "cyclic")]
    fn cyclic_dag_panics() {
        let g = TaskDag::from_edges(2, &[(0, 1), (1, 0)]);
        SweepInstance::new(2, vec![g], "bad");
    }
}
