//! Level (layer) structure of a task DAG — the paper's §3 "Levels".
//!
//! Layer `L_{i,j}` is the set of vertices with no predecessors once layers
//! `1..j-1` are removed; equivalently, `level(v)` is the length (in nodes)
//! of the longest source-to-`v` path. Processing layers in order respects
//! every precedence constraint. The *b-level* (used by DFDS priorities) is
//! the symmetric bottom-up quantity: the number of nodes on the longest
//! path from `v` to a sink.

use crate::graph::TaskDag;

/// The level decomposition of one DAG.
#[derive(Debug, Clone)]
pub struct Levels {
    /// `level_of[v]` ∈ `0..depth` (0-based; the paper's `L_{i,1}` is level 0).
    pub level_of: Vec<u32>,
    /// CSR layout of the layers: nodes of layer `j` are
    /// `layer_nodes[layer_xadj[j]..layer_xadj[j+1]]`.
    pub layer_xadj: Vec<u32>,
    /// Concatenated layer members.
    pub layer_nodes: Vec<u32>,
}

impl Levels {
    /// Number of layers — the paper's `D` for this direction.
    #[inline]
    pub fn depth(&self) -> usize {
        self.layer_xadj.len() - 1
    }

    /// The nodes of layer `j`.
    #[inline]
    pub fn layer(&self, j: usize) -> &[u32] {
        let (s, e) = (self.layer_xadj[j] as usize, self.layer_xadj[j + 1] as usize);
        &self.layer_nodes[s..e]
    }

    /// Iterator over layers, in order.
    pub fn iter(&self) -> impl Iterator<Item = &[u32]> + '_ {
        (0..self.depth()).map(move |j| self.layer(j))
    }

    /// Width of the widest layer.
    pub fn max_width(&self) -> usize {
        (0..self.depth())
            .map(|j| self.layer(j).len())
            .max()
            .unwrap_or(0)
    }
}

/// Computes the level decomposition.
///
/// # Panics
/// Panics if the graph is cyclic (levels are undefined); induced mesh DAGs
/// must be passed through [`crate::induce::break_cycles`] first.
pub fn levels(dag: &TaskDag) -> Levels {
    let n = dag.num_nodes();
    let order = dag.topo_order().expect("levels require an acyclic graph");
    let mut level_of = vec![0u32; n];
    for &v in &order {
        for &w in dag.successors(v) {
            level_of[w as usize] = level_of[w as usize].max(level_of[v as usize] + 1);
        }
    }
    let depth = level_of.iter().map(|&l| l + 1).max().unwrap_or(0) as usize;
    let mut counts = vec![0u32; depth];
    for &l in &level_of {
        counts[l as usize] += 1;
    }
    let mut layer_xadj = vec![0u32; depth + 1];
    for j in 0..depth {
        layer_xadj[j + 1] = layer_xadj[j] + counts[j];
    }
    let mut layer_nodes = vec![0u32; n];
    let mut cursor: Vec<u32> = layer_xadj[..depth].to_vec();
    for v in 0..n as u32 {
        let l = level_of[v as usize] as usize;
        layer_nodes[cursor[l] as usize] = v;
        cursor[l] += 1;
    }
    Levels {
        level_of,
        layer_xadj,
        layer_nodes,
    }
}

/// The b-level of every node: the number of nodes on the longest path from
/// the node to a sink (sinks have b-level 1), as in Pautz's DFDS.
///
/// # Panics
/// Panics if the graph is cyclic.
pub fn b_levels(dag: &TaskDag) -> Vec<u32> {
    let order = dag.topo_order().expect("b-levels require an acyclic graph");
    let mut b = vec![1u32; dag.num_nodes()];
    for &v in order.iter().rev() {
        for &w in dag.successors(v) {
            b[v as usize] = b[v as usize].max(b[w as usize] + 1);
        }
    }
    b
}

/// Length (in nodes) of the longest path in the DAG — the critical path,
/// equal to the number of layers.
pub fn critical_path_len(dag: &TaskDag) -> usize {
    if dag.num_nodes() == 0 {
        return 0;
    }
    b_levels(dag).into_iter().max().unwrap_or(0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An 8-cell digraph in the style of the paper's Figure 1(a) (it
    /// contains the two dependencies the text calls out: 3 before 6, and 2
    /// before 5). Its levels are {1,2}, {3,5}, {4,6}, {7}, {8} (1-based).
    fn figure1() -> TaskDag {
        // Using 0-based ids.
        TaskDag::from_edges(
            8,
            &[
                (0, 2), // 1 -> 3
                (1, 2), // 2 -> 3
                (1, 4), // 2 -> 5
                (2, 3), // 3 -> 4
                (2, 5), // 3 -> 6
                (4, 5), // 5 -> 6
                (3, 6), // 4 -> 7
                (5, 6), // 6 -> 7
                (6, 7), // 7 -> 8
            ],
        )
    }

    #[test]
    fn figure1_levels_match_paper() {
        let l = levels(&figure1());
        assert_eq!(l.depth(), 5);
        let mut layers: Vec<Vec<u32>> = l.iter().map(|s| s.to_vec()).collect();
        for lay in &mut layers {
            lay.sort_unstable();
        }
        assert_eq!(layers[0], vec![0, 1]); // {1,2}
        assert_eq!(layers[1], vec![2, 4]); // {3,5}
        assert_eq!(layers[2], vec![3, 5]); // {4,6}
        assert_eq!(layers[3], vec![6]); // {7}
        assert_eq!(layers[4], vec![7]); // {8}
    }

    #[test]
    fn level_of_is_longest_path() {
        let l = levels(&figure1());
        assert_eq!(l.level_of[0], 0);
        assert_eq!(l.level_of[7], 4);
        assert_eq!(l.max_width(), 2);
    }

    #[test]
    fn edges_go_to_strictly_higher_levels() {
        let g = figure1();
        let l = levels(&g);
        for (u, v) in g.edges() {
            assert!(l.level_of[u as usize] < l.level_of[v as usize]);
        }
    }

    #[test]
    fn layers_partition_the_nodes() {
        let g = figure1();
        let l = levels(&g);
        let total: usize = l.iter().map(|s| s.len()).sum();
        assert_eq!(total, g.num_nodes());
        let mut all: Vec<u32> = l.layer_nodes.clone();
        all.sort_unstable();
        assert_eq!(all, (0..8).collect::<Vec<u32>>());
    }

    #[test]
    fn b_levels_of_figure1() {
        let b = b_levels(&figure1());
        // Node 8 (idx 7) is a sink: b-level 1. Node 1 (idx 0): longest path
        // 1->3->4->7->8 or 1->3->6->7->8 = 5 nodes.
        assert_eq!(b[7], 1);
        assert_eq!(b[0], 5);
        assert_eq!(b[1], 5); // 2->3->6->7->8 … also 5 nodes
    }

    #[test]
    fn duality_level_plus_blevel_bounded_by_depth() {
        let g = figure1();
        let l = levels(&g);
        let b = b_levels(&g);
        for (lv, bv) in l.level_of.iter().zip(&b) {
            // level is 0-based, b-level counts nodes: any source-to-sink
            // path through v has level(v) + b(v) nodes ≤ depth.
            assert!(lv + bv <= l.depth() as u32);
        }
        assert_eq!(critical_path_len(&g), l.depth());
    }

    #[test]
    fn edgeless_graph_single_layer() {
        let g = TaskDag::edgeless(4);
        let l = levels(&g);
        assert_eq!(l.depth(), 1);
        assert_eq!(l.layer(0).len(), 4);
        assert_eq!(critical_path_len(&g), 1);
    }

    #[test]
    fn chain_has_n_layers() {
        let g = TaskDag::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let l = levels(&g);
        assert_eq!(l.depth(), 5);
        assert_eq!(l.max_width(), 1);
        let b = b_levels(&g);
        assert_eq!(b, vec![5, 4, 3, 2, 1]);
    }

    #[test]
    fn empty_graph() {
        let g = TaskDag::edgeless(0);
        assert_eq!(critical_path_len(&g), 0);
        let l = levels(&g);
        assert_eq!(l.depth(), 0);
    }

    #[test]
    #[should_panic(expected = "acyclic")]
    fn cyclic_graph_panics() {
        let g = TaskDag::from_edges(2, &[(0, 1), (1, 0)]);
        levels(&g);
    }
}
