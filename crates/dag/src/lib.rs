//! # sweep-dag — task-DAG substrate for sweep scheduling
//!
//! Everything between the mesh and the schedulers:
//!
//! * [`TaskDag`] — compact CSR digraph of one direction's precedence
//!   constraints;
//! * [`induce_dag`] / [`induce_all`] — induction of per-direction DAGs
//!   from face normals, with geometric cycle breaking (paper §3);
//! * [`levels()`](levels()) / [`b_levels`] — the layer structure `L_{i,j}` that both
//!   the Random Delay algorithms and the Level/DFDS priorities consume;
//! * [`descendant_counts`] — exact and approximate descendant counts for
//!   the Plimpton-style priority;
//! * [`SweepInstance`] — the full instance (`n` cells, `k` DAGs) plus
//!   synthetic and adversarial generators.
//!
//! ```
//! use sweep_mesh::TriMesh2d;
//! use sweep_quadrature::QuadratureSet;
//! use sweep_dag::SweepInstance;
//!
//! let mesh = TriMesh2d::unit_square(6, 6, 0.2, 1).unwrap();
//! let quad = QuadratureSet::uniform_2d(8).unwrap();
//! let (inst, _) = SweepInstance::from_mesh(&mesh, &quad, "demo");
//! assert_eq!(inst.num_tasks(), 72 * 8);
//! assert!(inst.dags().iter().all(|d| d.is_acyclic()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod bitset;
pub mod descendants;
pub mod graph;
pub mod induce;
pub mod instance;
pub mod levels;
pub mod serialize;
pub mod stats;

pub use bitset::BitSet;
pub use descendants::{
    descendant_counts, descendant_counts_approx, descendant_counts_exact, DescendantMode,
};
pub use graph::TaskDag;
pub use induce::{break_cycles, induce_all, induce_dag, induce_raw, InduceStats};
pub use instance::{SweepInstance, TaskId};
pub use levels::{b_levels, critical_path_len, levels, Levels};
pub use serialize::{from_text, from_text_unchecked, peek_counts, to_text};
pub use stats::{dag_stats, instance_stats, to_dot, DagStats, InstanceStats};
