//! Structural statistics and export helpers for task DAGs and instances.
//!
//! The paper's experiments are all shaped by a few structural quantities —
//! depth `D`, layer-width profiles, degree distribution — and debugging a
//! scheduler usually starts by looking at them. [`DagStats`] gathers them
//! in one pass; [`to_dot`] renders small DAGs for inspection with
//! Graphviz.

use crate::graph::TaskDag;
use crate::instance::SweepInstance;
use crate::levels::levels;

/// One DAG's structural summary.
#[derive(Debug, Clone, PartialEq)]
pub struct DagStats {
    /// Node count.
    pub nodes: usize,
    /// Edge count.
    pub edges: usize,
    /// Number of sources (in-degree 0).
    pub sources: usize,
    /// Number of sinks (out-degree 0).
    pub sinks: usize,
    /// Critical-path length in nodes (= number of layers).
    pub depth: usize,
    /// Widest layer.
    pub max_width: usize,
    /// Mean layer width (`nodes / depth`).
    pub mean_width: f64,
    /// Maximum out-degree.
    pub max_out_degree: u32,
    /// Maximum in-degree.
    pub max_in_degree: u32,
}

/// Computes [`DagStats`] (requires an acyclic graph).
pub fn dag_stats(dag: &TaskDag) -> DagStats {
    let lv = levels(dag);
    let n = dag.num_nodes();
    let depth = lv.depth();
    DagStats {
        nodes: n,
        edges: dag.num_edges(),
        sources: dag.sources().len(),
        sinks: dag.sinks().len(),
        depth,
        max_width: lv.max_width(),
        mean_width: if depth == 0 {
            0.0
        } else {
            n as f64 / depth as f64
        },
        max_out_degree: (0..n as u32).map(|v| dag.out_degree(v)).max().unwrap_or(0),
        max_in_degree: (0..n as u32).map(|v| dag.in_degree(v)).max().unwrap_or(0),
    }
}

/// Aggregate statistics over an instance's directions.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceStats {
    /// Per-direction stats.
    pub per_direction: Vec<DagStats>,
    /// The paper's `D`: max depth over directions.
    pub max_depth: usize,
    /// Total edges over all directions.
    pub total_edges: usize,
    /// Total tasks `n·k`.
    pub total_tasks: usize,
}

/// Computes [`InstanceStats`].
pub fn instance_stats(instance: &SweepInstance) -> InstanceStats {
    let per_direction: Vec<DagStats> = instance.dags().iter().map(dag_stats).collect();
    InstanceStats {
        max_depth: per_direction.iter().map(|s| s.depth).max().unwrap_or(0),
        total_edges: per_direction.iter().map(|s| s.edges).sum(),
        total_tasks: instance.num_tasks(),
        per_direction,
    }
}

/// Renders a DAG in Graphviz DOT format, ranking nodes by layer. Intended
/// for small graphs (refuses more than `max_nodes`).
pub fn to_dot(dag: &TaskDag, name: &str, max_nodes: usize) -> Result<String, String> {
    if dag.num_nodes() > max_nodes {
        return Err(format!(
            "graph has {} nodes, above the requested cap {max_nodes}",
            dag.num_nodes()
        ));
    }
    let lv = levels(dag);
    let mut out = String::new();
    out.push_str(&format!("digraph \"{name}\" {{\n  rankdir=TB;\n"));
    for (j, layer) in lv.iter().enumerate() {
        out.push_str("  { rank=same;");
        for &v in layer {
            out.push_str(&format!(" v{v};"));
        }
        out.push_str(&format!(" }} // layer {j}\n"));
    }
    for (u, v) in dag.edges() {
        out.push_str(&format!("  v{u} -> v{v};\n"));
    }
    out.push_str("}\n");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> TaskDag {
        TaskDag::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn diamond_stats() {
        let s = dag_stats(&diamond());
        assert_eq!(s.nodes, 4);
        assert_eq!(s.edges, 4);
        assert_eq!(s.sources, 1);
        assert_eq!(s.sinks, 1);
        assert_eq!(s.depth, 3);
        assert_eq!(s.max_width, 2);
        assert_eq!(s.max_out_degree, 2);
        assert_eq!(s.max_in_degree, 2);
        assert!((s.mean_width - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn instance_stats_aggregate() {
        let inst = SweepInstance::identical_chains(5, 3);
        let s = instance_stats(&inst);
        assert_eq!(s.per_direction.len(), 3);
        assert_eq!(s.max_depth, 5);
        assert_eq!(s.total_edges, 12);
        assert_eq!(s.total_tasks, 15);
    }

    #[test]
    fn dot_contains_all_edges_and_ranks() {
        let dot = to_dot(&diamond(), "d", 100).unwrap();
        assert!(dot.starts_with("digraph \"d\""));
        assert!(dot.contains("v0 -> v1;"));
        assert!(dot.contains("v2 -> v3;"));
        assert_eq!(dot.matches("rank=same").count(), 3);
    }

    #[test]
    fn dot_refuses_large_graphs() {
        let g = TaskDag::edgeless(50);
        assert!(to_dot(&g, "big", 10).is_err());
    }

    #[test]
    fn edgeless_stats() {
        let s = dag_stats(&TaskDag::edgeless(3));
        assert_eq!(s.depth, 1);
        assert_eq!(s.sources, 3);
        assert_eq!(s.sinks, 3);
        assert_eq!(s.max_out_degree, 0);
    }
}
