//! Descendant counting — the priority of Plimpton et al. used in §5.2.
//!
//! Two implementations:
//!
//! * [`descendant_counts_exact`] — the true number of *distinct* nodes
//!   reachable from each node, computed with chunked bitsets in reverse
//!   topological order. Memory is `O(n · chunk/8)` per pass and
//!   `⌈n/chunk⌉` passes are made, so even 100k-node DAGs fit comfortably.
//! * [`descendant_counts_approx`] — the cheap bottom-up recurrence
//!   `d(v) = Σ_{w ∈ succ(v)} (1 + d(w))` (saturating), which counts
//!   *paths* rather than nodes and therefore overcounts shared
//!   descendants. This is what large transport codes actually use as a
//!   priority, and it only needs one linear pass.
//!
//! The approximate count dominates the exact one (every descendant is
//! reached by at least one path), which the tests verify.

use crate::graph::TaskDag;

/// Number of target nodes processed per exact-counting pass.
const CHUNK_BITS: usize = 4096;

/// Exact number of distinct descendants (excluding the node itself).
///
/// # Panics
/// Panics if the graph is cyclic.
pub fn descendant_counts_exact(dag: &TaskDag) -> Vec<u64> {
    let n = dag.num_nodes();
    let order = dag.topo_order().expect("descendant counts require a DAG");
    let mut counts = vec![0u64; n];
    if n == 0 {
        return counts;
    }
    let words = CHUNK_BITS / 64;
    // reach[v] = bitset over the current chunk of target nodes.
    let mut reach: Vec<u64> = vec![0; n * words];
    for chunk_start in (0..n).step_by(CHUNK_BITS) {
        let chunk_end = (chunk_start + CHUNK_BITS).min(n);
        reach.iter_mut().for_each(|w| *w = 0);
        // Reverse topological order: successors are finalized before
        // predecessors.
        for &v in order.iter().rev() {
            let vi = v as usize;
            // Union of successor sets, plus the successor's own bit when it
            // falls inside the chunk.
            // (Split borrows via split_at_mut-free manual indexing.)
            for &w in dag.successors(v) {
                let wi = w as usize;
                for b in 0..words {
                    let val = reach[wi * words + b];
                    reach[vi * words + b] |= val;
                }
                if (chunk_start..chunk_end).contains(&wi) {
                    let bit = wi - chunk_start;
                    reach[vi * words + bit / 64] |= 1u64 << (bit % 64);
                }
            }
            let mut c = 0u32;
            for b in 0..words {
                c += reach[vi * words + b].count_ones();
            }
            counts[vi] += c as u64;
        }
    }
    counts
}

/// Approximate descendant count: the saturating number of downward *paths*,
/// `d(v) = Σ_{w ∈ succ(v)} (1 + d(w))`. Upper-bounds the exact count.
///
/// # Panics
/// Panics if the graph is cyclic.
pub fn descendant_counts_approx(dag: &TaskDag) -> Vec<u64> {
    let order = dag.topo_order().expect("descendant counts require a DAG");
    let mut d = vec![0u64; dag.num_nodes()];
    for &v in order.iter().rev() {
        let mut acc = 0u64;
        for &w in dag.successors(v) {
            acc = acc.saturating_add(1).saturating_add(d[w as usize]);
        }
        d[v as usize] = acc;
    }
    d
}

/// Strategy for descendant-based priorities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DescendantMode {
    /// Exact distinct-descendant counts (chunked bitsets).
    Exact,
    /// Path-count upper bound (single pass) — the production default.
    #[default]
    Approximate,
}

/// Dispatches on [`DescendantMode`].
pub fn descendant_counts(dag: &TaskDag, mode: DescendantMode) -> Vec<u64> {
    match mode {
        DescendantMode::Exact => descendant_counts_exact(dag),
        DescendantMode::Approximate => descendant_counts_approx(dag),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> TaskDag {
        TaskDag::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn exact_counts_on_diamond() {
        // 0 reaches {1,2,3}=3; 1 and 2 reach {3}=1; 3 reaches nothing.
        assert_eq!(descendant_counts_exact(&diamond()), vec![3, 1, 1, 0]);
    }

    #[test]
    fn approx_overcounts_shared_descendants() {
        // Paths from 0: 0->1, 0->2, 0->1->3, 0->2->3 = 4 paths.
        assert_eq!(descendant_counts_approx(&diamond()), vec![4, 1, 1, 0]);
    }

    #[test]
    fn approx_dominates_exact() {
        let g = TaskDag::from_edges(
            7,
            &[
                (0, 1),
                (0, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (3, 5),
                (4, 6),
                (5, 6),
            ],
        );
        let ex = descendant_counts_exact(&g);
        let ap = descendant_counts_approx(&g);
        for v in 0..7 {
            assert!(
                ap[v] >= ex[v],
                "node {v}: approx {} < exact {}",
                ap[v],
                ex[v]
            );
        }
    }

    #[test]
    fn chain_counts() {
        let g = TaskDag::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let want = vec![4, 3, 2, 1, 0];
        assert_eq!(descendant_counts_exact(&g), want);
        assert_eq!(descendant_counts_approx(&g), want); // chains have no sharing
    }

    #[test]
    fn edgeless_counts_are_zero() {
        let g = TaskDag::edgeless(6);
        assert_eq!(descendant_counts_exact(&g), vec![0; 6]);
        assert_eq!(descendant_counts_approx(&g), vec![0; 6]);
    }

    #[test]
    fn exact_crosses_chunk_boundaries() {
        // A chain longer than one chunk would be slow to build here; instead
        // exercise multiple chunks with a wide two-level graph larger than
        // CHUNK_BITS: one root pointing at many sinks.
        let n = CHUNK_BITS + 100;
        let edges: Vec<(u32, u32)> = (1..n as u32).map(|v| (0, v)).collect();
        let g = TaskDag::from_edges(n, &edges);
        let c = descendant_counts_exact(&g);
        assert_eq!(c[0], (n - 1) as u64);
        assert!(c[1..].iter().all(|&x| x == 0));
    }

    #[test]
    fn saturating_behaviour_on_exponential_paths() {
        // A ladder of diamonds has 2^depth paths; with depth 70 the path
        // count overflows u64 and must saturate rather than wrap.
        let depth = 70usize;
        let n = 2 * depth + 1;
        let mut edges = Vec::new();
        // node layout: 0 -(two parallel nodes)-> ... -> last
        for d in 0..depth {
            let top = (2 * d) as u32;
            let a = (2 * d + 1) as u32;
            let b = (2 * d + 2) as u32;
            // a is the "parallel" node, b the next junction
            edges.push((top, a));
            edges.push((a, b));
            edges.push((top, b));
        }
        let g = TaskDag::from_edges(n, &edges);
        let ap = descendant_counts_approx(&g);
        assert!(
            ap[0] >= u64::MAX / 2,
            "expected near-saturation, got {}",
            ap[0]
        );
        let ex = descendant_counts_exact(&g);
        assert_eq!(ex[0], (n - 1) as u64);
    }

    #[test]
    fn mode_dispatch() {
        let g = diamond();
        assert_eq!(
            descendant_counts(&g, DescendantMode::Exact),
            vec![3, 1, 1, 0]
        );
        assert_eq!(
            descendant_counts(&g, DescendantMode::Approximate),
            vec![4, 1, 1, 0]
        );
        assert_eq!(DescendantMode::default(), DescendantMode::Approximate);
    }
}
