//! A word-packed fixed-capacity bitset for ready-frontier bookkeeping.
//!
//! Level scheduling maintains *sets* of task/cell ids — the ready
//! frontier of a Graham step, the completed/started sets of the fault
//! simulator — whose natural operations are membership tests, bulk
//! unions, and iteration in ascending id order. A `Vec<bool>` wastes
//! 8x the cache footprint and cannot be unioned a word at a time; a
//! `HashSet` adds hashing and pointer chasing to the innermost loops.
//! This is the classic `FixedBitSet` shape, in-tree because the
//! workspace is dependency-free: 64 ids per `u64` word, O(n/64) bulk
//! `or`/`andnot`, and a trailing-zeros iterator over set bits.
//!
//! ```
//! use sweep_dag::BitSet;
//!
//! let mut ready = BitSet::new(130);
//! ready.insert(0);
//! ready.insert(64);
//! ready.insert(129);
//! assert_eq!(ready.ones().collect::<Vec<_>>(), vec![0, 64, 129]);
//!
//! let mut next = BitSet::new(130);
//! next.insert(7);
//! ready.union_with(&next); // bulk or, one instruction per 64 ids
//! assert!(ready.contains(7));
//! ```

/// A fixed-capacity set of `usize` ids in `0..len`, packed 64 per word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// An empty set over the id universe `0..len`.
    pub fn new(len: usize) -> BitSet {
        BitSet {
            words: vec![0u64; len.div_ceil(64)],
            len,
        }
    }

    /// The full set over `0..len` (every id present).
    pub fn full(len: usize) -> BitSet {
        let mut s = BitSet {
            words: vec![!0u64; len.div_ceil(64)],
            len,
        };
        // Mask the tail so out-of-universe bits never leak into
        // `ones()`/`count_ones`.
        if !len.is_multiple_of(64) {
            if let Some(last) = s.words.last_mut() {
                *last &= (1u64 << (len % 64)) - 1;
            }
        }
        s
    }

    /// Capacity of the id universe (not the number of set bits).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no bit is set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Clears every bit, keeping the allocation.
    #[inline]
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Re-dimensions the universe to `0..len` and clears every bit.
    /// Only (re)allocates when the new universe needs more words than
    /// the buffer ever held — arena-friendly for scratch reuse.
    pub fn reset(&mut self, len: usize) {
        let words = len.div_ceil(64);
        self.words.clear();
        self.words.resize(words, 0);
        self.len = len;
    }

    /// Inserts `i`, returning true if it was newly inserted.
    ///
    /// # Panics
    /// Panics when `i >= len` (debug and release: the shift would
    /// otherwise index out of bounds anyway).
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        let (w, b) = (i / 64, 1u64 << (i % 64));
        let was = self.words[w] & b != 0;
        self.words[w] |= b;
        !was
    }

    /// Removes `i`, returning true if it was present.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        let (w, b) = (i / 64, 1u64 << (i % 64));
        let was = self.words[w] & b != 0;
        self.words[w] &= !b;
        was
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        self.words
            .get(i / 64)
            .is_some_and(|w| w & (1u64 << (i % 64)) != 0)
    }

    /// Number of set bits.
    #[inline]
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Bulk `self |= other` (other may have a smaller universe).
    ///
    /// # Panics
    /// Panics when `other`'s universe is larger than `self`'s.
    pub fn union_with(&mut self, other: &BitSet) {
        assert!(other.words.len() <= self.words.len(), "universe mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Bulk `self &= !other` — removes every member of `other`.
    pub fn difference_with(&mut self, other: &BitSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// The smallest set id, if any.
    #[inline]
    pub fn first(&self) -> Option<usize> {
        self.words
            .iter()
            .position(|&w| w != 0)
            .map(|i| i * 64 + self.words[i].trailing_zeros() as usize)
    }

    /// Iterates set ids in ascending order (trailing-zeros word scan).
    pub fn ones(&self) -> Ones<'_> {
        Ones {
            words: &self.words,
            word: self.words.first().copied().unwrap_or(0),
            idx: 0,
        }
    }

    /// The raw 64-bit words (low id = low bit of word 0).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

/// Ascending iterator over set bits (see [`BitSet::ones`]).
pub struct Ones<'a> {
    words: &'a [u64],
    word: u64,
    idx: usize,
}

impl Iterator for Ones<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.word == 0 {
            self.idx += 1;
            self.word = *self.words.get(self.idx)?;
        }
        let bit = self.word.trailing_zeros() as usize;
        self.word &= self.word - 1; // clear lowest set bit
        Some(self.idx * 64 + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains_roundtrip() {
        let mut s = BitSet::new(200);
        assert!(s.is_empty());
        assert!(s.insert(0));
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(s.insert(199));
        assert!(!s.insert(64), "double insert reports false");
        assert_eq!(s.count_ones(), 4);
        assert!(s.contains(63) && s.contains(64) && !s.contains(65));
        assert!(s.remove(63));
        assert!(!s.remove(63), "double remove reports false");
        assert_eq!(s.count_ones(), 3);
        assert!(!s.contains(500), "out-of-universe contains is false");
    }

    #[test]
    fn ones_iterates_ascending_across_words() {
        let mut s = BitSet::new(300);
        let ids = [0usize, 1, 63, 64, 65, 127, 128, 255, 299];
        for &i in ids.iter().rev() {
            s.insert(i);
        }
        assert_eq!(s.ones().collect::<Vec<_>>(), ids);
        assert_eq!(s.first(), Some(0));
        s.remove(0);
        assert_eq!(s.first(), Some(1));
    }

    #[test]
    fn union_and_difference_are_bulk_word_ops() {
        let mut a = BitSet::new(130);
        let mut b = BitSet::new(130);
        for i in (0..130).step_by(3) {
            a.insert(i);
        }
        for i in (0..130).step_by(2) {
            b.insert(i);
        }
        let mut u = a.clone();
        u.union_with(&b);
        for i in 0..130 {
            assert_eq!(u.contains(i), i % 3 == 0 || i % 2 == 0, "union at {i}");
        }
        let mut d = u.clone();
        d.difference_with(&b);
        for i in 0..130 {
            assert_eq!(d.contains(i), i % 3 == 0 && i % 2 != 0, "andnot at {i}");
        }
    }

    #[test]
    fn clear_and_reset_keep_capacity() {
        let mut s = BitSet::new(1000);
        s.insert(999);
        let cap = s.words.capacity();
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.len(), 1000);
        s.reset(500);
        assert_eq!(s.len(), 500);
        assert!(s.is_empty());
        assert_eq!(s.words.capacity(), cap, "reset to smaller must not realloc");
        s.insert(499);
        assert_eq!(s.ones().collect::<Vec<_>>(), vec![499]);
    }

    #[test]
    fn empty_universe() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.ones().count(), 0);
        assert_eq!(s.first(), None);
    }

    #[test]
    fn matches_naive_set_on_random_ops() {
        // SplitMix-driven differential test against a Vec<bool> oracle.
        let mut z = 0x1234_5678_9abc_def0u64;
        let mut next = || {
            z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut x = z;
            x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            x ^ (x >> 31)
        };
        let n = 257;
        let mut s = BitSet::new(n);
        let mut oracle = vec![false; n];
        for _ in 0..2000 {
            let i = (next() as usize) % n;
            if next() % 2 == 0 {
                assert_eq!(s.insert(i), !oracle[i]);
                oracle[i] = true;
            } else {
                assert_eq!(s.remove(i), oracle[i]);
                oracle[i] = false;
            }
        }
        let expect: Vec<usize> = (0..n).filter(|&i| oracle[i]).collect();
        assert_eq!(s.ones().collect::<Vec<_>>(), expect);
        assert_eq!(s.count_ones(), expect.len());
    }
}
