//! Microbenchmarks for the scheduling algorithms — the paper's "almost
//! linear time" claim (§2): runtime versus task count for the Random
//! Delay family, the heuristics, the feasibility validator, and the
//! static analyzers. Uses the in-tree harness (`sweep_bench::microbench`)
//! so the workspace builds offline.

use std::hint::black_box;

use sweep_bench::microbench::Group;
use sweep_core::{
    greedy_schedule, lower_bounds, random_delay, random_delay_priorities, validate, Algorithm,
    Assignment,
};
use sweep_dag::SweepInstance;

fn bench_instance(n: usize) -> SweepInstance {
    SweepInstance::random_layered(n, 8, (n as f64).cbrt() as usize + 2, 3, 42)
}

fn schedulers() {
    let g = Group::new("schedulers");
    for n in [1_000usize, 4_000, 16_000] {
        let inst = bench_instance(n);
        let m = 64;
        g.bench(&format!("random_delay/{n}"), || {
            let a = Assignment::random_cells(inst.num_cells(), m, 1);
            black_box(random_delay(&inst, a, 2))
        });
        g.bench(&format!("random_delay_prio/{n}"), || {
            let a = Assignment::random_cells(inst.num_cells(), m, 1);
            black_box(random_delay_priorities(&inst, a, 2))
        });
        g.bench(&format!("greedy/{n}"), || {
            let a = Assignment::random_cells(inst.num_cells(), m, 1);
            black_box(greedy_schedule(&inst, a))
        });
        g.bench(&format!("dfds/{n}"), || {
            let a = Assignment::random_cells(inst.num_cells(), m, 1);
            black_box(Algorithm::Dfds { delays: false }.run(&inst, a, 2))
        });
    }
}

fn analysis() {
    let g = Group::new("analysis");
    let inst = bench_instance(8_000);
    let a = Assignment::random_cells(inst.num_cells(), 64, 1);
    let s = random_delay_priorities(&inst, a, 2);
    g.bench("validate", || black_box(validate(&inst, &s).is_ok()));
    g.bench("lower_bounds", || black_box(lower_bounds(&inst, 64)));
    g.bench("c2_comm_delay", || {
        black_box(sweep_core::c2_comm_delay(&inst, &s))
    });
    g.bench("analyze_instance", || {
        black_box(sweep_analyze::analyze_instance(&inst).len())
    });
    g.bench("analyze_schedule", || {
        black_box(sweep_analyze::analyze_schedule(&inst, &s).len())
    });
}

fn extensions() {
    let g = Group::new("extensions");
    let inst = bench_instance(8_000);
    let n = inst.num_cells();
    let m = 64;
    let weights: Vec<u64> = (0..n as u64).map(|v| 1 + v % 9).collect();
    g.bench("weighted_rdp", || {
        let a = Assignment::random_cells(n, m, 1);
        black_box(sweep_core::weighted_random_delay_priorities(
            &inst, a, &weights, 2,
        ))
    });
    let a = Assignment::random_cells(n, m, 1);
    let prio = vec![0i64; inst.num_tasks()];
    g.bench("async_simulation", || {
        black_box(sweep_sim::async_makespan(&inst, &a, &prio, None, 1.0))
    });
    let s = greedy_schedule(&inst, a.clone());
    g.bench("latency_model", || {
        black_box(sweep_sim::latency_makespan(&inst, &s, 1.0))
    });
}

fn main() {
    schedulers();
    analysis();
    extensions();
}
