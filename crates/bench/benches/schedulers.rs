//! Criterion microbenchmarks for the scheduling algorithms — the paper's
//! "almost linear time" claim (§2): runtime versus task count for the
//! Random Delay family, the heuristics, and the feasibility validator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use sweep_core::{
    greedy_schedule, lower_bounds, random_delay, random_delay_priorities, validate,
    Algorithm, Assignment,
};
use sweep_dag::SweepInstance;

fn bench_instance(n: usize) -> SweepInstance {
    SweepInstance::random_layered(n, 8, (n as f64).cbrt() as usize + 2, 3, 42)
}

fn schedulers(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedulers");
    group.sample_size(10);
    for n in [1_000usize, 4_000, 16_000] {
        let inst = bench_instance(n);
        let m = 64;
        group.bench_with_input(BenchmarkId::new("random_delay", n), &n, |b, _| {
            b.iter(|| {
                let a = Assignment::random_cells(inst.num_cells(), m, 1);
                black_box(random_delay(&inst, a, 2))
            })
        });
        group.bench_with_input(BenchmarkId::new("random_delay_prio", n), &n, |b, _| {
            b.iter(|| {
                let a = Assignment::random_cells(inst.num_cells(), m, 1);
                black_box(random_delay_priorities(&inst, a, 2))
            })
        });
        group.bench_with_input(BenchmarkId::new("greedy", n), &n, |b, _| {
            b.iter(|| {
                let a = Assignment::random_cells(inst.num_cells(), m, 1);
                black_box(greedy_schedule(&inst, a))
            })
        });
        group.bench_with_input(BenchmarkId::new("dfds", n), &n, |b, _| {
            b.iter(|| {
                let a = Assignment::random_cells(inst.num_cells(), m, 1);
                black_box(Algorithm::Dfds { delays: false }.run(&inst, a, 2))
            })
        });
    }
    group.finish();
}

fn analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis");
    group.sample_size(10);
    let inst = bench_instance(8_000);
    let a = Assignment::random_cells(inst.num_cells(), 64, 1);
    let s = random_delay_priorities(&inst, a, 2);
    group.bench_function("validate", |b| {
        b.iter(|| black_box(validate(&inst, &s).is_ok()))
    });
    group.bench_function("lower_bounds", |b| {
        b.iter(|| black_box(lower_bounds(&inst, 64)))
    });
    group.bench_function("c2_comm_delay", |b| {
        b.iter(|| black_box(sweep_core::c2_comm_delay(&inst, &s)))
    });
    group.finish();
}

fn extensions(c: &mut Criterion) {
    let mut group = c.benchmark_group("extensions");
    group.sample_size(10);
    let inst = bench_instance(8_000);
    let n = inst.num_cells();
    let m = 64;
    let weights: Vec<u64> = (0..n as u64).map(|v| 1 + v % 9).collect();
    group.bench_function("weighted_rdp", |b| {
        b.iter(|| {
            let a = Assignment::random_cells(n, m, 1);
            black_box(sweep_core::weighted_random_delay_priorities(
                &inst, a, &weights, 2,
            ))
        })
    });
    let a = Assignment::random_cells(n, m, 1);
    let prio = vec![0i64; inst.num_tasks()];
    group.bench_function("async_simulation", |b| {
        b.iter(|| black_box(sweep_sim::async_makespan(&inst, &a, &prio, None, 1.0)))
    });
    let s = greedy_schedule(&inst, a.clone());
    group.bench_function("latency_model", |b| {
        b.iter(|| black_box(sweep_sim::latency_makespan(&inst, &s, 1.0)))
    });
    group.finish();
}

criterion_group!(benches, schedulers, analysis, extensions);
criterion_main!(benches);
