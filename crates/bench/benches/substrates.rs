//! Microbenchmarks for the substrates: mesh generation, per-direction
//! DAG induction + leveling, and the multilevel partitioner. Uses the
//! in-tree harness (`sweep_bench::microbench`) so the workspace builds
//! offline.

use std::hint::black_box;

use sweep_bench::microbench::Group;
use sweep_dag::{induce_dag, levels};
use sweep_mesh::{generate, GeneratorConfig, MeshPreset, SweepMesh, Vec3};
use sweep_partition::{block_partition, CsrGraph, PartitionOptions};
use sweep_quadrature::QuadratureSet;

fn mesh_generation() {
    let g = Group::new("mesh_generation");
    for n in [6usize, 10, 14] {
        g.bench(&format!("cube/{}", n * n * n * 12), || {
            black_box(generate(&GeneratorConfig::cube(n, 1)).expect("valid config"))
        });
    }
}

fn dag_induction() {
    let g = Group::new("dag_induction");
    let mesh = MeshPreset::Tetonly
        .build_scaled(0.1)
        .expect("preset builds");
    let quad = QuadratureSet::level_symmetric(4).expect("S4 exists");
    let omega = quad.direction(sweep_quadrature::DirectionId(0));
    g.bench("induce_one_direction", || {
        black_box(induce_dag(&mesh, omega))
    });
    let (dag, _) = induce_dag(&mesh, omega);
    g.bench("levels", || black_box(levels(&dag)));
    g.bench("b_levels", || black_box(sweep_dag::b_levels(&dag)));
    g.bench("descendants_approx", || {
        black_box(sweep_dag::descendant_counts_approx(&dag))
    });
}

fn partitioner() {
    let g = Group::new("partitioner");
    let mesh = MeshPreset::Tetonly
        .build_scaled(0.1)
        .expect("preset builds");
    let (xadj, adjncy) = mesh.adjacency_csr();
    let graph = CsrGraph::from_csr_parts(xadj, adjncy);
    for block in [16usize, 64] {
        g.bench(&format!("block_partition/{block}"), || {
            black_box(block_partition(&graph, block, &PartitionOptions::default()))
        });
    }
}

fn quadrature() {
    let g = Group::new("quadrature");
    g.bench("s8", || {
        black_box(QuadratureSet::level_symmetric(8).expect("S8 exists"))
    });
    g.bench("random_256", || {
        black_box(QuadratureSet::random_unit(256, 1).expect("valid count"))
    });
    let _ = Vec3::ZERO;
}

fn main() {
    mesh_generation();
    dag_induction();
    partitioner();
    quadrature();
}
