//! Criterion microbenchmarks for the substrates: mesh generation,
//! per-direction DAG induction + leveling, and the multilevel
//! partitioner.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use sweep_dag::{induce_dag, levels};
use sweep_mesh::{generate, GeneratorConfig, MeshPreset, SweepMesh, Vec3};
use sweep_partition::{block_partition, CsrGraph, PartitionOptions};
use sweep_quadrature::QuadratureSet;

fn mesh_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("mesh_generation");
    group.sample_size(10);
    for n in [6usize, 10, 14] {
        group.bench_with_input(BenchmarkId::new("cube", n * n * n * 12), &n, |b, &n| {
            b.iter(|| black_box(generate(&GeneratorConfig::cube(n, 1)).unwrap()))
        });
    }
    group.finish();
}

fn dag_induction(c: &mut Criterion) {
    let mut group = c.benchmark_group("dag_induction");
    group.sample_size(10);
    let mesh = MeshPreset::Tetonly.build_scaled(0.1).unwrap();
    let quad = QuadratureSet::level_symmetric(4).unwrap();
    let omega = quad.direction(sweep_quadrature::DirectionId(0));
    group.bench_function("induce_one_direction", |b| {
        b.iter(|| black_box(induce_dag(&mesh, omega)))
    });
    let (dag, _) = induce_dag(&mesh, omega);
    group.bench_function("levels", |b| b.iter(|| black_box(levels(&dag))));
    group.bench_function("b_levels", |b| {
        b.iter(|| black_box(sweep_dag::b_levels(&dag)))
    });
    group.bench_function("descendants_approx", |b| {
        b.iter(|| black_box(sweep_dag::descendant_counts_approx(&dag)))
    });
    group.finish();
}

fn partitioner(c: &mut Criterion) {
    let mut group = c.benchmark_group("partitioner");
    group.sample_size(10);
    let mesh = MeshPreset::Tetonly.build_scaled(0.1).unwrap();
    let (xadj, adjncy) = mesh.adjacency_csr();
    let graph = CsrGraph::from_csr_parts(xadj, adjncy);
    for block in [16usize, 64] {
        group.bench_with_input(BenchmarkId::new("block_partition", block), &block, |b, &bs| {
            b.iter(|| {
                black_box(block_partition(&graph, bs, &PartitionOptions::default()))
            })
        });
    }
    group.finish();
}

fn quadrature(c: &mut Criterion) {
    let mut group = c.benchmark_group("quadrature");
    group.bench_function("s8", |b| {
        b.iter(|| black_box(QuadratureSet::level_symmetric(8).unwrap()))
    });
    group.bench_function("random_256", |b| {
        b.iter(|| black_box(QuadratureSet::random_unit(256, 1).unwrap()))
    });
    let _ = Vec3::ZERO;
    group.finish();
}

criterion_group!(benches, mesh_generation, dag_induction, partitioner, quadrature);
criterion_main!(benches);
