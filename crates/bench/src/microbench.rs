//! Minimal wall-clock microbenchmark harness (criterion stand-in).
//!
//! The workspace builds offline with no external crates, so the
//! `benches/` targets use this instead of criterion: each benchmark is
//! timed over enough iterations to pass a floor wall-time, then the
//! median, min, and max per-iteration times are reported on stdout in a
//! fixed-width table. Not statistically rigorous — good enough to watch
//! the "almost linear time" scaling claims and catch order-of-magnitude
//! regressions.

use std::time::{Duration, Instant};

/// Groups related benchmarks under one heading.
pub struct Group {
    name: String,
    /// Minimum total measuring time per benchmark.
    pub floor: Duration,
    /// Hard cap on measuring iterations.
    pub max_iters: u32,
}

impl Group {
    /// Starts a group and prints its heading.
    pub fn new(name: &str) -> Group {
        println!("\n== {name} ==");
        println!(
            "{:<40} {:>12} {:>12} {:>12} {:>8}",
            "benchmark", "median", "min", "max", "iters"
        );
        Group {
            name: name.to_string(),
            floor: Duration::from_millis(200),
            max_iters: 1000,
        }
    }

    /// Times `f`, discarding its result, and prints one table row.
    pub fn bench<T>(&self, label: &str, mut f: impl FnMut() -> T) {
        // One warm-up call, then measure until the floor is met.
        let warm = Instant::now();
        std::hint::black_box(f());
        let estimate = warm.elapsed();
        let target = self
            .floor
            .as_nanos()
            .div_ceil(estimate.as_nanos().max(1))
            .min(self.max_iters as u128) as u32;
        let iters = target.max(3);
        let mut samples: Vec<Duration> = Vec::with_capacity(iters as usize);
        for _ in 0..iters {
            let t = Instant::now();
            std::hint::black_box(f());
            samples.push(t.elapsed());
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        println!(
            "{:<40} {:>12} {:>12} {:>12} {:>8}",
            format!("{}/{}", self.name, label),
            fmt_duration(median),
            fmt_duration(samples[0]),
            fmt_duration(*samples.last().expect("non-empty")),
            iters,
        );
    }
}

/// Frozen *uninstrumented* copy of Algorithm 1's layer-sequential core
/// (`sweep_core::random_delay_with` as of the pre-telemetry revision).
/// Serves as the baseline for [`telemetry_overhead_ratio`]: the only
/// difference from the live implementation is the absence of the
/// telemetry span/counter/histogram calls, so the measured gap is exactly
/// the instrumentation cost. Keep this in sync if the algorithm itself
/// changes.
fn random_delay_uninstrumented(
    instance: &sweep_dag::SweepInstance,
    assignment: sweep_core::Assignment,
    delays: &[u32],
) -> sweep_core::Schedule {
    use sweep_core::Schedule;
    use sweep_dag::{levels, TaskId};
    let n = instance.num_cells();
    let k = instance.num_directions();
    assert_eq!(delays.len(), k, "one delay per direction");
    let m = assignment.num_procs();
    let mut start = vec![0u32; n * k];
    if n == 0 {
        return Schedule::new_checked(start, assignment);
    }
    // Mirrors the live implementation's two-phase structure: the
    // delay-independent base levels are materialized first (the live
    // path hoists them per trial batch), then combined with the delays.
    let mut base = vec![0u32; n * k];
    for (i, dag) in instance.dags().iter().enumerate() {
        let lv = levels(dag);
        for v in 0..n as u32 {
            base[TaskId::pack(v, i as u32, n).index()] = lv.level_of[v as usize];
        }
    }
    let mut layer_of = Vec::with_capacity(n * k);
    let mut num_layers = 0u32;
    layer_of.extend((0..n * k).map(|t| {
        let r = base[t] + delays[t / n];
        num_layers = num_layers.max(r + 1);
        r
    }));
    let mut layer_xadj = vec![0u32; num_layers as usize + 1];
    for &r in &layer_of {
        layer_xadj[r as usize + 1] += 1;
    }
    for r in 0..num_layers as usize {
        layer_xadj[r + 1] += layer_xadj[r];
    }
    let mut layer_tasks = vec![0u64; n * k];
    let mut cursor: Vec<u32> = layer_xadj[..num_layers as usize].to_vec();
    for (t, &r) in layer_of.iter().enumerate() {
        layer_tasks[cursor[r as usize] as usize] = t as u64;
        cursor[r as usize] += 1;
    }
    let mut clock = 0u32;
    let mut next_slot = vec![0u32; m];
    for r in 0..num_layers as usize {
        let tasks = &layer_tasks[layer_xadj[r] as usize..layer_xadj[r + 1] as usize];
        if tasks.is_empty() {
            continue;
        }
        next_slot.iter_mut().for_each(|s| *s = clock);
        let mut layer_span = 0u32;
        for &t in tasks {
            let v = (t % n as u64) as u32;
            let p = assignment.proc_of(v) as usize;
            start[t as usize] = next_slot[p];
            next_slot[p] += 1;
            layer_span = layer_span.max(next_slot[p] - clock);
        }
        clock += layer_span;
    }
    Schedule::new_checked(start, assignment)
}

/// Measures the *disabled-telemetry* overhead of the instrumented
/// `random_delay_with` against the frozen uninstrumented baseline above:
/// returns `median(instrumented) / median(baseline)` over `samples`
/// interleaved timing runs on a synthetic layered instance. Verifies both
/// paths produce identical schedules as a side effect.
///
/// With telemetry disabled the instrumented path adds one relaxed atomic
/// load per span/metric call, so this ratio should sit within noise of
/// 1.0; the `telemetry_overhead` test (and the `schedulers` bench) keep
/// it under 1.05.
pub fn telemetry_overhead_ratio(samples: usize) -> f64 {
    use sweep_core::{random_delay_with, Assignment};
    use sweep_dag::SweepInstance;
    assert!(samples >= 3, "need enough samples for a median");
    sweep_telemetry::set_enabled(false);
    let inst = SweepInstance::random_layered(600, 6, 12, 3, 77);
    let a = Assignment::random_cells(600, 16, 78);
    let delays: Vec<u32> = (0..6).collect();

    let base = random_delay_uninstrumented(&inst, a.clone(), &delays);
    let live = random_delay_with(&inst, a.clone(), &delays);
    assert_eq!(
        base.starts(),
        live.starts(),
        "baseline diverged from the instrumented implementation — update \
         random_delay_uninstrumented"
    );

    // Interleave A/B measurements so clock drift and frequency scaling
    // hit both sides equally; compare medians.
    let mut base_ns: Vec<u128> = Vec::with_capacity(samples);
    let mut live_ns: Vec<u128> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t = Instant::now();
        std::hint::black_box(random_delay_uninstrumented(&inst, a.clone(), &delays));
        base_ns.push(t.elapsed().as_nanos());
        let t = Instant::now();
        std::hint::black_box(random_delay_with(&inst, a.clone(), &delays));
        live_ns.push(t.elapsed().as_nanos());
    }
    base_ns.sort_unstable();
    live_ns.sort_unstable();
    live_ns[samples / 2] as f64 / base_ns[samples / 2].max(1) as f64
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.1} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn telemetry_overhead_below_five_percent_when_disabled() {
        let _guard = crate::TELEMETRY_TEST_LOCK
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        // Noise-damped: accept the first of several attempts under the
        // bound; a loaded CI machine can skew any single measurement.
        let mut last = f64::NAN;
        for attempt in 0..5 {
            last = telemetry_overhead_ratio(21);
            if last < 1.05 {
                return;
            }
            eprintln!("attempt {attempt}: overhead ratio {last:.4}, retrying");
        }
        panic!("disabled-telemetry overhead ratio {last:.4} ≥ 1.05 across 5 attempts");
    }

    #[test]
    fn bench_runs_and_formats() {
        let g = Group::new("smoke");
        g.bench("noop", || 1 + 1);
        assert_eq!(fmt_duration(Duration::from_nanos(50)), "50 ns");
        assert_eq!(fmt_duration(Duration::from_micros(50)), "50.0 µs");
        assert_eq!(fmt_duration(Duration::from_millis(50)), "50.0 ms");
        assert_eq!(fmt_duration(Duration::from_secs(50)), "50.00 s");
    }
}
