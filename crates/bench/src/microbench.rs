//! Minimal wall-clock microbenchmark harness (criterion stand-in).
//!
//! The workspace builds offline with no external crates, so the
//! `benches/` targets use this instead of criterion: each benchmark is
//! timed over enough iterations to pass a floor wall-time, then the
//! median, min, and max per-iteration times are reported on stdout in a
//! fixed-width table. Not statistically rigorous — good enough to watch
//! the "almost linear time" scaling claims and catch order-of-magnitude
//! regressions.

use std::time::{Duration, Instant};

/// Groups related benchmarks under one heading.
pub struct Group {
    name: String,
    /// Minimum total measuring time per benchmark.
    pub floor: Duration,
    /// Hard cap on measuring iterations.
    pub max_iters: u32,
}

impl Group {
    /// Starts a group and prints its heading.
    pub fn new(name: &str) -> Group {
        println!("\n== {name} ==");
        println!(
            "{:<40} {:>12} {:>12} {:>12} {:>8}",
            "benchmark", "median", "min", "max", "iters"
        );
        Group {
            name: name.to_string(),
            floor: Duration::from_millis(200),
            max_iters: 1000,
        }
    }

    /// Times `f`, discarding its result, and prints one table row.
    pub fn bench<T>(&self, label: &str, mut f: impl FnMut() -> T) {
        // One warm-up call, then measure until the floor is met.
        let warm = Instant::now();
        std::hint::black_box(f());
        let estimate = warm.elapsed();
        let target = self
            .floor
            .as_nanos()
            .div_ceil(estimate.as_nanos().max(1))
            .min(self.max_iters as u128) as u32;
        let iters = target.max(3);
        let mut samples: Vec<Duration> = Vec::with_capacity(iters as usize);
        for _ in 0..iters {
            let t = Instant::now();
            std::hint::black_box(f());
            samples.push(t.elapsed());
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        println!(
            "{:<40} {:>12} {:>12} {:>12} {:>8}",
            format!("{}/{}", self.name, label),
            fmt_duration(median),
            fmt_duration(samples[0]),
            fmt_duration(*samples.last().expect("non-empty")),
            iters,
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.1} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_formats() {
        let g = Group::new("smoke");
        g.bench("noop", || 1 + 1);
        assert_eq!(fmt_duration(Duration::from_nanos(50)), "50 ns");
        assert_eq!(fmt_duration(Duration::from_micros(50)), "50.0 µs");
        assert_eq!(fmt_duration(Duration::from_millis(50)), "50.0 ms");
        assert_eq!(fmt_duration(Duration::from_secs(50)), "50.00 s");
    }
}
