//! Shared infrastructure for the experiment harness: argument parsing,
//! mesh construction at a chosen scale, and CSV emission.
//!
//! Every binary under `src/bin/` regenerates one figure or claim of the
//! paper (see DESIGN.md §4 and EXPERIMENTS.md). All accept:
//!
//! * `--scale <f>` — mesh scale relative to the paper's cell counts
//!   (default 0.05; `1.0` reproduces the full-size meshes);
//! * `--out <dir>` — directory for CSV output (default `results/`);
//! * `--seed <u64>` — base RNG seed (default 2005, the paper's year);
//! * `--threads <n>` — worker threads for the parallel execution layer
//!   (default: available parallelism; `1` forces the sequential path —
//!   outputs are bit-identical either way).
//!
//! Output goes to stdout *and* `<out>/<experiment>.csv`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod microbench;

/// Serializes unit tests that flip the process-global telemetry collector
/// (cargo's test harness is multithreaded).
#[cfg(test)]
pub(crate) static TELEMETRY_TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

use sweep_core::Assignment;
use sweep_dag::SweepInstance;
use sweep_mesh::{MeshPreset, SweepMesh, TetMesh};
use sweep_partition::{block_partition, CsrGraph, PartitionOptions};
use sweep_quadrature::QuadratureSet;
use sweep_telemetry as telemetry;

/// Common command-line options.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Mesh scale in `(0, 1]`.
    pub scale: f64,
    /// Output directory for CSVs.
    pub out: PathBuf,
    /// Base seed.
    pub seed: u64,
    /// Worker threads for the parallel execution layer (`0` = available
    /// parallelism).
    pub threads: usize,
}

impl BenchArgs {
    /// Parses `--scale`, `--out`, `--seed`, `--threads` from
    /// `std::env::args`. Unknown flags abort with a usage message.
    pub fn parse() -> BenchArgs {
        let mut args = BenchArgs {
            scale: 0.05,
            out: PathBuf::from("results"),
            seed: 2005,
            threads: 0,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next().unwrap_or_else(|| {
                    eprintln!("missing value for {name}");
                    std::process::exit(2);
                })
            };
            match flag.as_str() {
                "--scale" => args.scale = value("--scale").parse().expect("numeric --scale"),
                "--out" => args.out = PathBuf::from(value("--out")),
                "--seed" => args.seed = value("--seed").parse().expect("integer --seed"),
                "--threads" => {
                    args.threads = value("--threads").parse().expect("integer --threads")
                }
                "--help" | "-h" => {
                    eprintln!("usage: <bench> [--scale f] [--out dir] [--seed u64] [--threads n]");
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown flag {other}");
                    std::process::exit(2);
                }
            }
        }
        assert!(
            args.scale > 0.0 && args.scale <= 1.0,
            "--scale must be in (0, 1]"
        );
        sweep_pool::set_global_threads(args.threads);
        // Every bench binary records telemetry; CsvSink::finish persists
        // the aggregates next to the CSV as BENCH_telemetry.json.
        telemetry::reset();
        telemetry::set_enabled(true);
        args
    }

    /// Builds a preset mesh at the chosen scale.
    pub fn mesh(&self, preset: MeshPreset) -> TetMesh {
        preset
            .build_scaled(self.scale)
            .unwrap_or_else(|e| panic!("building {}: {e}", preset.name()))
    }

    /// Builds the instance for a preset mesh and S_n order.
    pub fn instance(&self, preset: MeshPreset, sn: usize) -> (TetMesh, SweepInstance) {
        let mesh = self.mesh(preset);
        let quad = QuadratureSet::level_symmetric(sn).expect("valid S_n order");
        let (inst, _) =
            SweepInstance::from_mesh(&mesh, &quad, format!("{}@{}", preset.name(), self.scale));
        (mesh, inst)
    }

    /// A block size scaled to keep the *number of blocks* comparable to a
    /// full-size run with `paper_block`; at least 2 cells per block.
    pub fn scaled_block(&self, paper_block: usize) -> usize {
        ((paper_block as f64 * self.scale).round() as usize).max(2)
    }

    /// Processor counts `2, 4, …` capped so the largest stays below
    /// `tasks/4` (pointless parallelism otherwise at small scales).
    pub fn proc_sweep(&self, max_m: usize, tasks: usize) -> Vec<usize> {
        let mut ms = Vec::new();
        let mut m = 2usize;
        while m <= max_m && m * 4 <= tasks {
            ms.push(m);
            m *= 2;
        }
        ms
    }
}

/// Fans an experiment grid across the global thread pool, preserving
/// input order.
///
/// Each cell must be a pure function of its input (derive any RNG seed
/// from the cell's own parameters, as the bench binaries already do);
/// the result vector is then bit-identical at every `--threads` count.
pub fn par_grid<C, R>(cells: &[C], f: impl Fn(&C) -> R + Sync) -> Vec<R>
where
    C: Sync,
    R: Send,
{
    sweep_pool::global().par_map(cells, |_, c| f(c))
}

/// Block partition of a mesh's cell-adjacency graph.
pub fn mesh_blocks(mesh: &TetMesh, block_size: usize) -> Vec<u32> {
    let (xadj, adjncy) = mesh.adjacency_csr();
    let graph = CsrGraph::from_csr_parts(xadj, adjncy);
    block_partition(&graph, block_size, &PartitionOptions::default())
}

/// Assignment policy used by an experiment row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignPolicy<'a> {
    /// Per-cell uniform random.
    PerCell,
    /// Per-block uniform random over the given block map.
    PerBlock(&'a [u32]),
}

impl AssignPolicy<'_> {
    /// Draws the assignment.
    pub fn draw(&self, n: usize, m: usize, seed: u64) -> Assignment {
        match self {
            AssignPolicy::PerCell => Assignment::random_cells(n, m, seed),
            AssignPolicy::PerBlock(blocks) => Assignment::random_blocks(blocks, m, seed),
        }
    }

    /// Label for CSV rows.
    pub fn label(&self) -> &'static str {
        match self {
            AssignPolicy::PerCell => "per_cell",
            AssignPolicy::PerBlock(_) => "per_block",
        }
    }
}

/// Collects CSV rows and mirrors them to stdout; [`CsvSink::finish`]
/// writes the file.
pub struct CsvSink {
    name: String,
    out: PathBuf,
    buffer: String,
}

impl CsvSink {
    /// Starts a sink with the given header (comma-separated column names).
    pub fn new(args: &BenchArgs, name: &str, header: &str) -> CsvSink {
        println!(
            "# experiment: {name} (scale {:.3}, seed {})",
            args.scale, args.seed
        );
        println!("{header}");
        CsvSink {
            name: name.to_string(),
            out: args.out.clone(),
            buffer: format!("{header}\n"),
        }
    }

    /// Emits one row.
    pub fn row(&mut self, row: std::fmt::Arguments<'_>) {
        let mut line = String::new();
        let _ = write!(line, "{row}");
        println!("{line}");
        self.buffer.push_str(&line);
        self.buffer.push('\n');
    }

    /// Writes the CSV file and returns its path. Also persists the
    /// telemetry collected since [`BenchArgs::parse`] (per-phase
    /// wall-clock aggregates, counters, peak gauges) to
    /// `<out>/BENCH_telemetry.json` so every experiment leaves a
    /// machine-readable performance record alongside its data.
    pub fn finish(self) -> PathBuf {
        let path = self.out.join(format!("{}.csv", self.name));
        if let Err(e) = fs::create_dir_all(&self.out) {
            eprintln!("warning: cannot create {}: {e}", self.out.display());
            return path;
        }
        if let Err(e) = fs::write(&path, &self.buffer) {
            eprintln!("warning: cannot write {}: {e}", path.display());
        } else {
            eprintln!("# wrote {}", path.display());
        }
        if telemetry::enabled() {
            let json = telemetry_json(&self.name, &telemetry::snapshot());
            let tpath = self.out.join("BENCH_telemetry.json");
            if let Err(e) = fs::write(&tpath, &json) {
                eprintln!("warning: cannot write {}: {e}", tpath.display());
            } else {
                eprintln!("# wrote {}", tpath.display());
            }
        }
        path
    }
}

/// Renders a telemetry snapshot as the `BENCH_telemetry.json` document:
/// per-span-name wall-clock aggregates (count, total, p50, p99 in µs),
/// all counters, and all gauges (peaks such as
/// `sched.list_schedule.ready_peak`).
pub fn telemetry_json(experiment: &str, snap: &telemetry::Snapshot) -> String {
    use telemetry::json::escape;
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"experiment\": \"{}\",", escape(experiment));
    out.push_str("  \"phases\": {\n");
    let summaries = snap.span_summaries();
    for (i, s) in summaries.iter().enumerate() {
        let comma = if i + 1 < summaries.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    \"{}\": {{\"count\": {}, \"total_us\": {}, \"p50_us\": {}, \"p99_us\": {}}}{comma}",
            escape(&s.name),
            s.count,
            s.total_us,
            s.p50_us,
            s.p99_us,
        );
    }
    out.push_str("  },\n  \"counters\": {\n");
    for (i, (name, value)) in snap.counters.iter().enumerate() {
        let comma = if i + 1 < snap.counters.len() { "," } else { "" };
        let _ = writeln!(out, "    \"{}\": {}{comma}", escape(name), value);
    }
    out.push_str("  },\n  \"gauges\": {\n");
    for (i, (name, value)) in snap.gauges.iter().enumerate() {
        let comma = if i + 1 < snap.gauges.len() { "," } else { "" };
        let _ = writeln!(out, "    \"{}\": {}{comma}", escape(name), value);
    }
    out.push_str("  }\n}\n");
    out
}

/// Shared driver for the Figure 3 family: compares "Random Delays with
/// Priorities" against a heuristic priority scheme with and without random
/// delays, under a fixed block assignment (the paper fixes the block
/// assignment so C1 is identical across algorithms and only makespans are
/// compared). One CSV row per `(S_n, m)`.
pub fn run_fig3(
    args: &BenchArgs,
    preset: MeshPreset,
    paper_block: usize,
    scheme: sweep_core::PriorityScheme,
    experiment: &str,
) {
    use sweep_core::{approx_ratio, random_delay_priorities, schedule_with_priorities, validate};
    let mut sink = CsvSink::new(
        args,
        experiment,
        "directions,m,block,ratio_rdp,ratio_heur,ratio_heur_delays",
    );
    for sn in [2usize, 4, 6] {
        let (mesh, instance) = args.instance(preset, sn);
        let k = instance.num_directions();

        let block = args.scaled_block(paper_block);
        let blocks = mesh_blocks(&mesh, block);
        let ms = args.proc_sweep(512, instance.num_tasks());
        // Each m-cell is a pure function of (instance, blocks, m, seed),
        // so the grid fans out over the pool and the rows come back in
        // m-order — the CSV is bit-identical at every --threads count.
        let rows = par_grid(&ms, |&m| {
            let seed = args.seed ^ ((m as u64) << 16) ^ sn as u64;
            let a = Assignment::random_blocks(&blocks, m, seed);
            let s_rdp = random_delay_priorities(&instance, a.clone(), seed);
            let s_heur = schedule_with_priorities(&instance, a.clone(), scheme, None);
            let s_heur_d = schedule_with_priorities(&instance, a, scheme, Some(seed ^ 0xd3));
            for s in [&s_rdp, &s_heur, &s_heur_d] {
                validate(&instance, s).expect("feasible");
            }
            format!(
                "{k},{m},{block},{r0:.3},{r1:.3},{r2:.3}",
                r0 = approx_ratio(&instance, m, s_rdp.makespan()),
                r1 = approx_ratio(&instance, m, s_heur.makespan()),
                r2 = approx_ratio(&instance, m, s_heur_d.makespan()),
            )
        });
        for row in rows {
            sink.row(format_args!("{row}"));
        }
    }
    sink.finish();
}

/// Geometric-mean helper for summarizing ratio columns.
pub fn geometric_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_args() -> BenchArgs {
        BenchArgs {
            scale: 0.01,
            out: std::env::temp_dir().join("sweep-bench-test"),
            seed: 1,
            threads: 0,
        }
    }

    #[test]
    fn scaled_block_floors_at_two() {
        let a = test_args();
        assert_eq!(a.scaled_block(64), 2);
        let b = BenchArgs {
            scale: 0.5,
            ..test_args()
        };
        assert_eq!(b.scaled_block(64), 32);
    }

    #[test]
    fn proc_sweep_respects_caps() {
        let a = test_args();
        let ms = a.proc_sweep(512, 1000);
        assert!(ms.iter().all(|&m| m * 4 <= 1000));
        assert!(ms.windows(2).all(|w| w[1] == 2 * w[0]));
    }

    #[test]
    fn instance_builds() {
        let a = test_args();
        let (mesh, inst) = a.instance(MeshPreset::Tetonly, 2);
        assert_eq!(inst.num_cells(), mesh.num_cells());
        assert_eq!(inst.num_directions(), 8);
    }

    #[test]
    fn csv_sink_writes() {
        let a = test_args();
        let mut sink = CsvSink::new(&a, "unit_test", "a,b");
        sink.row(format_args!("1,2"));
        let path = sink.finish();
        let content = std::fs::read_to_string(path).unwrap();
        assert_eq!(content, "a,b\n1,2\n");
    }

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!(geometric_mean(&[]).is_nan());
    }

    #[test]
    fn run_fig3_smoke() {
        // Keeps the Figure 3 experiment driver itself under test: one
        // minuscule configuration end-to-end (S2 only is exercised because
        // proc_sweep caps by task count at this scale).
        let args = BenchArgs {
            scale: 0.003,
            out: std::env::temp_dir().join("sweep-bench-fig3-test"),
            seed: 1,
            threads: 0,
        };
        run_fig3(
            &args,
            MeshPreset::Tetonly,
            64,
            sweep_core::PriorityScheme::Level,
            "fig3_smoke_test",
        );
        let csv = std::fs::read_to_string(args.out.join("fig3_smoke_test.csv"))
            .expect("experiment must write its CSV");
        assert!(csv.starts_with("directions,m,block,"));
        assert!(csv.lines().count() >= 2, "at least one data row");
    }

    #[test]
    fn finish_emits_parseable_bench_telemetry_json() {
        let _guard = crate::TELEMETRY_TEST_LOCK
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        let args = BenchArgs {
            scale: 0.01,
            out: std::env::temp_dir().join("sweep-bench-telemetry-test"),
            seed: 1,
            threads: 0,
        };
        telemetry::reset();
        telemetry::set_enabled(true);
        let (_, inst) = args.instance(MeshPreset::Tetonly, 2);
        let a = Assignment::random_cells(inst.num_cells(), 4, 7);
        let _ = sweep_core::random_delay_priorities(&inst, a, 3);
        let mut sink = CsvSink::new(&args, "telemetry_unit_test", "a");
        sink.row(format_args!("1"));
        sink.finish();
        telemetry::set_enabled(false);
        let text = std::fs::read_to_string(args.out.join("BENCH_telemetry.json")).unwrap();
        let doc = telemetry::json::parse(&text).expect("valid JSON");
        let phases = doc.get("phases").expect("phases object");
        assert!(phases.get("mesh.build").is_some(), "{text}");
        assert!(phases.get("sched.list_schedule").is_some(), "{text}");
        let counters = doc.get("counters").expect("counters object");
        assert!(
            counters
                .get("sched.tasks_scheduled")
                .and_then(telemetry::json::Value::as_f64)
                .unwrap_or(0.0)
                > 0.0,
            "{text}"
        );
    }

    #[test]
    fn par_grid_is_order_preserving_and_thread_invariant() {
        let cells: Vec<u64> = (0..40).collect();
        let f = |&c: &u64| c.wrapping_mul(0x9e37_79b9).rotate_left(11);
        sweep_pool::set_global_threads(1);
        let seq = par_grid(&cells, f);
        sweep_pool::set_global_threads(4);
        let par = par_grid(&cells, f);
        sweep_pool::set_global_threads(0);
        assert_eq!(seq, par);
        assert_eq!(seq, cells.iter().map(f).collect::<Vec<_>>());
    }

    #[test]
    fn mesh_blocks_cover_all_cells() {
        let a = test_args();
        let mesh = a.mesh(MeshPreset::Tetonly);
        let blocks = mesh_blocks(&mesh, 8);
        assert_eq!(blocks.len(), mesh.num_cells());
    }
}
